# Empty compiler generated dependencies file for test_paperconfigs.
# This may be replaced when dependencies are built.
