file(REMOVE_RECURSE
  "CMakeFiles/test_paperconfigs.dir/test_paperconfigs.cc.o"
  "CMakeFiles/test_paperconfigs.dir/test_paperconfigs.cc.o.d"
  "test_paperconfigs"
  "test_paperconfigs.pdb"
  "test_paperconfigs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paperconfigs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
