file(REMOVE_RECURSE
  "CMakeFiles/test_criticality.dir/test_criticality.cc.o"
  "CMakeFiles/test_criticality.dir/test_criticality.cc.o.d"
  "test_criticality"
  "test_criticality.pdb"
  "test_criticality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_criticality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
