file(REMOVE_RECURSE
  "CMakeFiles/test_figure.dir/test_figure.cc.o"
  "CMakeFiles/test_figure.dir/test_figure.cc.o.d"
  "test_figure"
  "test_figure.pdb"
  "test_figure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_figure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
