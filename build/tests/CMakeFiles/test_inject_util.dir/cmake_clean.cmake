file(REMOVE_RECURSE
  "CMakeFiles/test_inject_util.dir/test_inject_util.cc.o"
  "CMakeFiles/test_inject_util.dir/test_inject_util.cc.o.d"
  "test_inject_util"
  "test_inject_util.pdb"
  "test_inject_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inject_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
