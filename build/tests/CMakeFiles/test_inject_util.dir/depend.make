# Empty dependencies file for test_inject_util.
# This may be replaced when dependencies are built.
