file(REMOVE_RECURSE
  "CMakeFiles/test_hotspot.dir/test_hotspot.cc.o"
  "CMakeFiles/test_hotspot.dir/test_hotspot.cc.o.d"
  "test_hotspot"
  "test_hotspot.pdb"
  "test_hotspot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
