# Empty dependencies file for test_workload_contract.
# This may be replaced when dependencies are built.
