file(REMOVE_RECURSE
  "CMakeFiles/test_workload_contract.dir/test_workload_contract.cc.o"
  "CMakeFiles/test_workload_contract.dir/test_workload_contract.cc.o.d"
  "test_workload_contract"
  "test_workload_contract.pdb"
  "test_workload_contract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
