file(REMOVE_RECURSE
  "CMakeFiles/test_beamlog.dir/test_beamlog.cc.o"
  "CMakeFiles/test_beamlog.dir/test_beamlog.cc.o.d"
  "test_beamlog"
  "test_beamlog.pdb"
  "test_beamlog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beamlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
