# Empty compiler generated dependencies file for test_beamlog.
# This may be replaced when dependencies are built.
