# Empty dependencies file for test_harden.
# This may be replaced when dependencies are built.
