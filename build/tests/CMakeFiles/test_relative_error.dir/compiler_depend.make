# Empty compiler generated dependencies file for test_relative_error.
# This may be replaced when dependencies are built.
