file(REMOVE_RECURSE
  "CMakeFiles/test_relative_error.dir/test_relative_error.cc.o"
  "CMakeFiles/test_relative_error.dir/test_relative_error.cc.o.d"
  "test_relative_error"
  "test_relative_error.pdb"
  "test_relative_error[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relative_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
