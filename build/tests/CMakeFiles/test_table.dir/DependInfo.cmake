
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_table.cc" "tests/CMakeFiles/test_table.dir/test_table.cc.o" "gcc" "tests/CMakeFiles/test_table.dir/test_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/campaign/CMakeFiles/radcrit_campaign.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/radcrit_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/abft/CMakeFiles/radcrit_abft.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/radcrit_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/harden/CMakeFiles/radcrit_harden.dir/DependInfo.cmake"
  "/root/repo/build/src/avf/CMakeFiles/radcrit_avf.dir/DependInfo.cmake"
  "/root/repo/build/src/mtbf/CMakeFiles/radcrit_mtbf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/radcrit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/radcrit_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/radcrit_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/radcrit_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/radcrit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
