file(REMOVE_RECURSE
  "CMakeFiles/test_lavamd.dir/test_lavamd.cc.o"
  "CMakeFiles/test_lavamd.dir/test_lavamd.cc.o.d"
  "test_lavamd"
  "test_lavamd.pdb"
  "test_lavamd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lavamd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
