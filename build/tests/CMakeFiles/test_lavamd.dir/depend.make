# Empty dependencies file for test_lavamd.
# This may be replaced when dependencies are built.
