file(REMOVE_RECURSE
  "CMakeFiles/test_mtbf.dir/test_mtbf.cc.o"
  "CMakeFiles/test_mtbf.dir/test_mtbf.cc.o.d"
  "test_mtbf"
  "test_mtbf.pdb"
  "test_mtbf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mtbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
