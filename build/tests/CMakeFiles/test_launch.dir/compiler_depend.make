# Empty compiler generated dependencies file for test_launch.
# This may be replaced when dependencies are built.
