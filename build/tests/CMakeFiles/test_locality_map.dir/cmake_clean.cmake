file(REMOVE_RECURSE
  "CMakeFiles/test_locality_map.dir/test_locality_map.cc.o"
  "CMakeFiles/test_locality_map.dir/test_locality_map.cc.o.d"
  "test_locality_map"
  "test_locality_map.pdb"
  "test_locality_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_locality_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
