# Empty compiler generated dependencies file for test_locality_map.
# This may be replaced when dependencies are built.
