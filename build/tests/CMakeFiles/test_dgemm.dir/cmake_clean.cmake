file(REMOVE_RECURSE
  "CMakeFiles/test_dgemm.dir/test_dgemm.cc.o"
  "CMakeFiles/test_dgemm.dir/test_dgemm.cc.o.d"
  "test_dgemm"
  "test_dgemm.pdb"
  "test_dgemm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
