# Empty dependencies file for test_dgemm.
# This may be replaced when dependencies are built.
