# Empty compiler generated dependencies file for test_abft.
# This may be replaced when dependencies are built.
