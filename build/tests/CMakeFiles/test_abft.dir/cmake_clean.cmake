file(REMOVE_RECURSE
  "CMakeFiles/test_abft.dir/test_abft.cc.o"
  "CMakeFiles/test_abft.dir/test_abft.cc.o.d"
  "test_abft"
  "test_abft.pdb"
  "test_abft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
