file(REMOVE_RECURSE
  "CMakeFiles/test_clamr.dir/test_clamr.cc.o"
  "CMakeFiles/test_clamr.dir/test_clamr.cc.o.d"
  "test_clamr"
  "test_clamr.pdb"
  "test_clamr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clamr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
