# Empty dependencies file for test_clamr.
# This may be replaced when dependencies are built.
