# Empty dependencies file for bench_ablation_filter_threshold.
# This may be replaced when dependencies are built.
