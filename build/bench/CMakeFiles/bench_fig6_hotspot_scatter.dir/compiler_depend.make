# Empty compiler generated dependencies file for bench_fig6_hotspot_scatter.
# This may be replaced when dependencies are built.
