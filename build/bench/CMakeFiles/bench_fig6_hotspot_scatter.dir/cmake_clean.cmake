file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_hotspot_scatter.dir/bench_fig6_hotspot_scatter.cc.o"
  "CMakeFiles/bench_fig6_hotspot_scatter.dir/bench_fig6_hotspot_scatter.cc.o.d"
  "bench_fig6_hotspot_scatter"
  "bench_fig6_hotspot_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_hotspot_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
