# Empty dependencies file for bench_fig4_lavamd_scatter.
# This may be replaced when dependencies are built.
