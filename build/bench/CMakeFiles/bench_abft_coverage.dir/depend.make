# Empty dependencies file for bench_abft_coverage.
# This may be replaced when dependencies are built.
