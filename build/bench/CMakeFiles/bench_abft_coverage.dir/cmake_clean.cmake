file(REMOVE_RECURSE
  "CMakeFiles/bench_abft_coverage.dir/bench_abft_coverage.cc.o"
  "CMakeFiles/bench_abft_coverage.dir/bench_abft_coverage.cc.o.d"
  "bench_abft_coverage"
  "bench_abft_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abft_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
