# Empty dependencies file for bench_fig9_clamr_map.
# This may be replaced when dependencies are built.
