# Empty compiler generated dependencies file for bench_sdc_crash_ratios.
# This may be replaced when dependencies are built.
