file(REMOVE_RECURSE
  "CMakeFiles/bench_sdc_crash_ratios.dir/bench_sdc_crash_ratios.cc.o"
  "CMakeFiles/bench_sdc_crash_ratios.dir/bench_sdc_crash_ratios.cc.o.d"
  "bench_sdc_crash_ratios"
  "bench_sdc_crash_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sdc_crash_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
