file(REMOVE_RECURSE
  "CMakeFiles/bench_detectors.dir/bench_detectors.cc.o"
  "CMakeFiles/bench_detectors.dir/bench_detectors.cc.o.d"
  "bench_detectors"
  "bench_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
