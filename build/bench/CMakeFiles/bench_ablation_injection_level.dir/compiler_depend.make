# Empty compiler generated dependencies file for bench_ablation_injection_level.
# This may be replaced when dependencies are built.
