# Empty dependencies file for bench_fig2_dgemm_scatter.
# This may be replaced when dependencies are built.
