# Empty dependencies file for bench_fig1_setup.
# This may be replaced when dependencies are built.
