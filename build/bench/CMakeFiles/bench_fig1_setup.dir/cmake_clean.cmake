file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_setup.dir/bench_fig1_setup.cc.o"
  "CMakeFiles/bench_fig1_setup.dir/bench_fig1_setup.cc.o.d"
  "bench_fig1_setup"
  "bench_fig1_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
