file(REMOVE_RECURSE
  "CMakeFiles/bench_mtbf_projection.dir/bench_mtbf_projection.cc.o"
  "CMakeFiles/bench_mtbf_projection.dir/bench_mtbf_projection.cc.o.d"
  "bench_mtbf_projection"
  "bench_mtbf_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mtbf_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
