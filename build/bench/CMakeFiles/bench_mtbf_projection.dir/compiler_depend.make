# Empty compiler generated dependencies file for bench_mtbf_projection.
# This may be replaced when dependencies are built.
