file(REMOVE_RECURSE
  "CMakeFiles/bench_avf_comparison.dir/bench_avf_comparison.cc.o"
  "CMakeFiles/bench_avf_comparison.dir/bench_avf_comparison.cc.o.d"
  "bench_avf_comparison"
  "bench_avf_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_avf_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
