# Empty dependencies file for bench_avf_comparison.
# This may be replaced when dependencies are built.
