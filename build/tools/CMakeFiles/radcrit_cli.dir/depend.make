# Empty dependencies file for radcrit_cli.
# This may be replaced when dependencies are built.
