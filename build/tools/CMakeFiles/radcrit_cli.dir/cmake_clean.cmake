file(REMOVE_RECURSE
  "CMakeFiles/radcrit_cli.dir/radcrit_cli.cc.o"
  "CMakeFiles/radcrit_cli.dir/radcrit_cli.cc.o.d"
  "radcrit_cli"
  "radcrit_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radcrit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
