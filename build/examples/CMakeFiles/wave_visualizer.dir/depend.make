# Empty dependencies file for wave_visualizer.
# This may be replaced when dependencies are built.
