file(REMOVE_RECURSE
  "CMakeFiles/wave_visualizer.dir/wave_visualizer.cpp.o"
  "CMakeFiles/wave_visualizer.dir/wave_visualizer.cpp.o.d"
  "wave_visualizer"
  "wave_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wave_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
