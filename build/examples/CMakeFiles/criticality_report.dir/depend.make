# Empty dependencies file for criticality_report.
# This may be replaced when dependencies are built.
