file(REMOVE_RECURSE
  "CMakeFiles/abft_protection.dir/abft_protection.cpp.o"
  "CMakeFiles/abft_protection.dir/abft_protection.cpp.o.d"
  "abft_protection"
  "abft_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abft_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
