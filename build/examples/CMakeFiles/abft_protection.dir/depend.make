# Empty dependencies file for abft_protection.
# This may be replaced when dependencies are built.
