# Empty dependencies file for log_reanalysis.
# This may be replaced when dependencies are built.
