file(REMOVE_RECURSE
  "CMakeFiles/log_reanalysis.dir/log_reanalysis.cpp.o"
  "CMakeFiles/log_reanalysis.dir/log_reanalysis.cpp.o.d"
  "log_reanalysis"
  "log_reanalysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_reanalysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
