# Empty compiler generated dependencies file for radcrit_harden.
# This may be replaced when dependencies are built.
