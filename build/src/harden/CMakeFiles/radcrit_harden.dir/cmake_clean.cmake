file(REMOVE_RECURSE
  "CMakeFiles/radcrit_harden.dir/advisor.cc.o"
  "CMakeFiles/radcrit_harden.dir/advisor.cc.o.d"
  "CMakeFiles/radcrit_harden.dir/attribution.cc.o"
  "CMakeFiles/radcrit_harden.dir/attribution.cc.o.d"
  "libradcrit_harden.a"
  "libradcrit_harden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radcrit_harden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
