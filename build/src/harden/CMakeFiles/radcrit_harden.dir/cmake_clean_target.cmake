file(REMOVE_RECURSE
  "libradcrit_harden.a"
)
