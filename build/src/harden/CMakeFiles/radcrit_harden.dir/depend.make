# Empty dependencies file for radcrit_harden.
# This may be replaced when dependencies are built.
