# Empty dependencies file for radcrit_sim.
# This may be replaced when dependencies are built.
