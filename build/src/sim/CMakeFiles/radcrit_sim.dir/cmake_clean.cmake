file(REMOVE_RECURSE
  "CMakeFiles/radcrit_sim.dir/beam.cc.o"
  "CMakeFiles/radcrit_sim.dir/beam.cc.o.d"
  "CMakeFiles/radcrit_sim.dir/fault.cc.o"
  "CMakeFiles/radcrit_sim.dir/fault.cc.o.d"
  "CMakeFiles/radcrit_sim.dir/sampler.cc.o"
  "CMakeFiles/radcrit_sim.dir/sampler.cc.o.d"
  "libradcrit_sim.a"
  "libradcrit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radcrit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
