file(REMOVE_RECURSE
  "libradcrit_sim.a"
)
