
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/device.cc" "src/arch/CMakeFiles/radcrit_arch.dir/device.cc.o" "gcc" "src/arch/CMakeFiles/radcrit_arch.dir/device.cc.o.d"
  "/root/repo/src/arch/manifestation.cc" "src/arch/CMakeFiles/radcrit_arch.dir/manifestation.cc.o" "gcc" "src/arch/CMakeFiles/radcrit_arch.dir/manifestation.cc.o.d"
  "/root/repo/src/arch/resource.cc" "src/arch/CMakeFiles/radcrit_arch.dir/resource.cc.o" "gcc" "src/arch/CMakeFiles/radcrit_arch.dir/resource.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/radcrit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
