file(REMOVE_RECURSE
  "libradcrit_arch.a"
)
