# Empty dependencies file for radcrit_arch.
# This may be replaced when dependencies are built.
