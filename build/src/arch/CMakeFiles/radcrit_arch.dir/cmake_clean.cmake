file(REMOVE_RECURSE
  "CMakeFiles/radcrit_arch.dir/device.cc.o"
  "CMakeFiles/radcrit_arch.dir/device.cc.o.d"
  "CMakeFiles/radcrit_arch.dir/manifestation.cc.o"
  "CMakeFiles/radcrit_arch.dir/manifestation.cc.o.d"
  "CMakeFiles/radcrit_arch.dir/resource.cc.o"
  "CMakeFiles/radcrit_arch.dir/resource.cc.o.d"
  "libradcrit_arch.a"
  "libradcrit_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radcrit_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
