file(REMOVE_RECURSE
  "libradcrit_kernels.a"
)
