file(REMOVE_RECURSE
  "CMakeFiles/radcrit_kernels.dir/amr.cc.o"
  "CMakeFiles/radcrit_kernels.dir/amr.cc.o.d"
  "CMakeFiles/radcrit_kernels.dir/clamr.cc.o"
  "CMakeFiles/radcrit_kernels.dir/clamr.cc.o.d"
  "CMakeFiles/radcrit_kernels.dir/dgemm.cc.o"
  "CMakeFiles/radcrit_kernels.dir/dgemm.cc.o.d"
  "CMakeFiles/radcrit_kernels.dir/hotspot.cc.o"
  "CMakeFiles/radcrit_kernels.dir/hotspot.cc.o.d"
  "CMakeFiles/radcrit_kernels.dir/inject_util.cc.o"
  "CMakeFiles/radcrit_kernels.dir/inject_util.cc.o.d"
  "CMakeFiles/radcrit_kernels.dir/lavamd.cc.o"
  "CMakeFiles/radcrit_kernels.dir/lavamd.cc.o.d"
  "libradcrit_kernels.a"
  "libradcrit_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radcrit_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
