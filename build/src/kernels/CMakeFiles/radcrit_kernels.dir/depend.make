# Empty dependencies file for radcrit_kernels.
# This may be replaced when dependencies are built.
