# Empty compiler generated dependencies file for radcrit_common.
# This may be replaced when dependencies are built.
