file(REMOVE_RECURSE
  "CMakeFiles/radcrit_common.dir/cli.cc.o"
  "CMakeFiles/radcrit_common.dir/cli.cc.o.d"
  "CMakeFiles/radcrit_common.dir/csv.cc.o"
  "CMakeFiles/radcrit_common.dir/csv.cc.o.d"
  "CMakeFiles/radcrit_common.dir/figure.cc.o"
  "CMakeFiles/radcrit_common.dir/figure.cc.o.d"
  "CMakeFiles/radcrit_common.dir/logging.cc.o"
  "CMakeFiles/radcrit_common.dir/logging.cc.o.d"
  "CMakeFiles/radcrit_common.dir/rng.cc.o"
  "CMakeFiles/radcrit_common.dir/rng.cc.o.d"
  "CMakeFiles/radcrit_common.dir/stats.cc.o"
  "CMakeFiles/radcrit_common.dir/stats.cc.o.d"
  "CMakeFiles/radcrit_common.dir/table.cc.o"
  "CMakeFiles/radcrit_common.dir/table.cc.o.d"
  "libradcrit_common.a"
  "libradcrit_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radcrit_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
