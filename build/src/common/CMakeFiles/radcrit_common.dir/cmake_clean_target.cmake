file(REMOVE_RECURSE
  "libradcrit_common.a"
)
