# Empty dependencies file for radcrit_avf.
# This may be replaced when dependencies are built.
