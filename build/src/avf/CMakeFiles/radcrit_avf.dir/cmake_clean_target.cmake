file(REMOVE_RECURSE
  "libradcrit_avf.a"
)
