file(REMOVE_RECURSE
  "CMakeFiles/radcrit_avf.dir/avf.cc.o"
  "CMakeFiles/radcrit_avf.dir/avf.cc.o.d"
  "libradcrit_avf.a"
  "libradcrit_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radcrit_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
