# Empty dependencies file for radcrit_mtbf.
# This may be replaced when dependencies are built.
