file(REMOVE_RECURSE
  "libradcrit_mtbf.a"
)
