file(REMOVE_RECURSE
  "CMakeFiles/radcrit_mtbf.dir/projection.cc.o"
  "CMakeFiles/radcrit_mtbf.dir/projection.cc.o.d"
  "libradcrit_mtbf.a"
  "libradcrit_mtbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radcrit_mtbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
