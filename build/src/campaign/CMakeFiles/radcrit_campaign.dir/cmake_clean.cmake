file(REMOVE_RECURSE
  "CMakeFiles/radcrit_campaign.dir/paperconfigs.cc.o"
  "CMakeFiles/radcrit_campaign.dir/paperconfigs.cc.o.d"
  "CMakeFiles/radcrit_campaign.dir/runner.cc.o"
  "CMakeFiles/radcrit_campaign.dir/runner.cc.o.d"
  "CMakeFiles/radcrit_campaign.dir/series.cc.o"
  "CMakeFiles/radcrit_campaign.dir/series.cc.o.d"
  "libradcrit_campaign.a"
  "libradcrit_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radcrit_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
