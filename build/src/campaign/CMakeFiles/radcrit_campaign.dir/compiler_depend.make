# Empty compiler generated dependencies file for radcrit_campaign.
# This may be replaced when dependencies are built.
