file(REMOVE_RECURSE
  "libradcrit_campaign.a"
)
