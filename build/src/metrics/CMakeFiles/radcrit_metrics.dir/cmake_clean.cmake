file(REMOVE_RECURSE
  "CMakeFiles/radcrit_metrics.dir/criticality.cc.o"
  "CMakeFiles/radcrit_metrics.dir/criticality.cc.o.d"
  "CMakeFiles/radcrit_metrics.dir/filter.cc.o"
  "CMakeFiles/radcrit_metrics.dir/filter.cc.o.d"
  "CMakeFiles/radcrit_metrics.dir/locality.cc.o"
  "CMakeFiles/radcrit_metrics.dir/locality.cc.o.d"
  "CMakeFiles/radcrit_metrics.dir/locality_map.cc.o"
  "CMakeFiles/radcrit_metrics.dir/locality_map.cc.o.d"
  "CMakeFiles/radcrit_metrics.dir/relative_error.cc.o"
  "CMakeFiles/radcrit_metrics.dir/relative_error.cc.o.d"
  "libradcrit_metrics.a"
  "libradcrit_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radcrit_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
