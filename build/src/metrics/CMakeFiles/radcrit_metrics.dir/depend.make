# Empty dependencies file for radcrit_metrics.
# This may be replaced when dependencies are built.
