
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/criticality.cc" "src/metrics/CMakeFiles/radcrit_metrics.dir/criticality.cc.o" "gcc" "src/metrics/CMakeFiles/radcrit_metrics.dir/criticality.cc.o.d"
  "/root/repo/src/metrics/filter.cc" "src/metrics/CMakeFiles/radcrit_metrics.dir/filter.cc.o" "gcc" "src/metrics/CMakeFiles/radcrit_metrics.dir/filter.cc.o.d"
  "/root/repo/src/metrics/locality.cc" "src/metrics/CMakeFiles/radcrit_metrics.dir/locality.cc.o" "gcc" "src/metrics/CMakeFiles/radcrit_metrics.dir/locality.cc.o.d"
  "/root/repo/src/metrics/locality_map.cc" "src/metrics/CMakeFiles/radcrit_metrics.dir/locality_map.cc.o" "gcc" "src/metrics/CMakeFiles/radcrit_metrics.dir/locality_map.cc.o.d"
  "/root/repo/src/metrics/relative_error.cc" "src/metrics/CMakeFiles/radcrit_metrics.dir/relative_error.cc.o" "gcc" "src/metrics/CMakeFiles/radcrit_metrics.dir/relative_error.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/radcrit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
