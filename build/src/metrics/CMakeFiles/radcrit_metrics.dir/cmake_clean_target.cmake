file(REMOVE_RECURSE
  "libradcrit_metrics.a"
)
