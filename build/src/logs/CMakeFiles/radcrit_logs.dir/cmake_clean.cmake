file(REMOVE_RECURSE
  "CMakeFiles/radcrit_logs.dir/beamlog.cc.o"
  "CMakeFiles/radcrit_logs.dir/beamlog.cc.o.d"
  "libradcrit_logs.a"
  "libradcrit_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radcrit_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
