file(REMOVE_RECURSE
  "libradcrit_logs.a"
)
