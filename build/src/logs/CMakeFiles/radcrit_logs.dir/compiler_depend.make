# Empty compiler generated dependencies file for radcrit_logs.
# This may be replaced when dependencies are built.
