
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abft/abft_dgemm.cc" "src/abft/CMakeFiles/radcrit_abft.dir/abft_dgemm.cc.o" "gcc" "src/abft/CMakeFiles/radcrit_abft.dir/abft_dgemm.cc.o.d"
  "/root/repo/src/abft/detectors.cc" "src/abft/CMakeFiles/radcrit_abft.dir/detectors.cc.o" "gcc" "src/abft/CMakeFiles/radcrit_abft.dir/detectors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/radcrit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
