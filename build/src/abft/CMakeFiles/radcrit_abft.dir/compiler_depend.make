# Empty compiler generated dependencies file for radcrit_abft.
# This may be replaced when dependencies are built.
