file(REMOVE_RECURSE
  "CMakeFiles/radcrit_abft.dir/abft_dgemm.cc.o"
  "CMakeFiles/radcrit_abft.dir/abft_dgemm.cc.o.d"
  "CMakeFiles/radcrit_abft.dir/detectors.cc.o"
  "CMakeFiles/radcrit_abft.dir/detectors.cc.o.d"
  "libradcrit_abft.a"
  "libradcrit_abft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radcrit_abft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
