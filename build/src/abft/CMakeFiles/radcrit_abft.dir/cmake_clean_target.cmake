file(REMOVE_RECURSE
  "libradcrit_abft.a"
)
