file(REMOVE_RECURSE
  "libradcrit_exec.a"
)
