# Empty compiler generated dependencies file for radcrit_exec.
# This may be replaced when dependencies are built.
