file(REMOVE_RECURSE
  "CMakeFiles/radcrit_exec.dir/launch.cc.o"
  "CMakeFiles/radcrit_exec.dir/launch.cc.o.d"
  "libradcrit_exec.a"
  "libradcrit_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radcrit_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
