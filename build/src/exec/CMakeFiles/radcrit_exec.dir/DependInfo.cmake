
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/launch.cc" "src/exec/CMakeFiles/radcrit_exec.dir/launch.cc.o" "gcc" "src/exec/CMakeFiles/radcrit_exec.dir/launch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/radcrit_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/radcrit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
