/**
 * @file
 * Self-contained HTML report builder for the observability layer.
 *
 * HtmlReport assembles a single-file HTML document — inline CSS,
 * inline SVG charts, zero external fetches — from sections of
 * key/value grids, tables, horizontal bar charts and log-scale
 * histogram plots. The campaign layer composes it into the
 * per-campaign report (campaign/report.hh); keeping the builder
 * here means it only depends on StatsSnapshot and can be reused by
 * any emitter.
 *
 * Rendering is a pure function of the data fed in: the same inputs
 * produce byte-identical documents, which is what lets tests golden
 * the report and lets users diff reports across runs.
 */

#ifndef RADCRIT_OBS_REPORT_HH
#define RADCRIT_OBS_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/stats_registry.hh"

namespace radcrit
{

/** Escape text for embedding in HTML (and inline SVG) content. */
std::string htmlEscape(const std::string &s);

/**
 * Builder for one self-contained HTML document.
 */
class HtmlReport
{
  public:
    /** @param title Document title and top heading. */
    explicit HtmlReport(std::string title);

    /** Open a new section with the given heading. */
    void section(const std::string &heading);

    /** Add a paragraph of plain text. */
    void paragraph(const std::string &text);

    /** Add a two-column key/value grid. */
    void keyValues(
        const std::vector<std::pair<std::string, std::string>>
            &rows);

    /** Add a table; the first row style is the header. */
    void table(const std::vector<std::string> &header,
               const std::vector<std::vector<std::string>> &rows);

    /**
     * Add a horizontal bar chart as inline SVG. Bar lengths are
     * scaled to the largest value; each bar is labelled with its
     * name and formatted value.
     */
    void barChart(
        const std::string &caption,
        const std::vector<std::pair<std::string, double>> &bars);

    /**
     * Add a log-scale histogram (one bar per occupied power-of-two
     * bucket) as inline SVG, from a histogram snapshot entry.
     */
    void logHistogram(const std::string &caption,
                      const StatsSnapshot::Entry &hist);

    /**
     * Add the wall-clock attribution block for a set of phase
     * timers: a table (phase, wall ms, share of the listed total)
     * plus a bar chart, reading "<phase>.ns" counters from the
     * snapshot. Phases missing from the snapshot render as 0.
     *
     * @param stats Snapshot holding the timers.
     * @param phases Timer names ("campaign.phase.replay", ...).
     */
    void phaseAttribution(const StatsSnapshot &stats,
                          const std::vector<std::string> &phases);

    /** Render the complete document. */
    void render(std::ostream &os) const;

    /** @return the complete document as a string. */
    std::string str() const;

  private:
    std::string title_;
    std::vector<std::string> blocks_;
};

} // namespace radcrit

#endif // RADCRIT_OBS_REPORT_HH
