#include "obs/timer.hh"

namespace radcrit
{

PhaseTimer::PhaseTimer(StatsRegistry &registry,
                       const std::string &name, bool with_hist)
    : name_(name),
      calls_(registry.counter(name + ".calls")),
      ns_(registry.counter(name + ".ns")),
      hist_(with_hist ? &registry.histogram(name + ".hist")
                      : nullptr)
{
}

} // namespace radcrit
