#include "obs/json.hh"

#include <cmath>

#include "common/logging.hh"

namespace radcrit
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += strprintf(
                    "\\u%04x", static_cast<unsigned char>(c));
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        return "0";
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        return strprintf("%.0f", v);
    return strprintf("%.9g", v);
}

} // namespace radcrit
