#include "obs/json.hh"

#include <cmath>
#include <ostream>

#include "common/logging.hh"

namespace radcrit
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += strprintf(
                    "\\u%04x", static_cast<unsigned char>(c));
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        return "0";
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        return strprintf("%.0f", v);
    return strprintf("%.9g", v);
}

JsonObjectWriter::JsonObjectWriter(std::ostream &os, int indent)
    : os_(os), indent_(indent)
{
    os_ << "{";
}

JsonObjectWriter::~JsonObjectWriter()
{
    close();
}

void
JsonObjectWriter::startField(const std::string &key)
{
    if (closed_)
        panic("JsonObjectWriter: field '%s' added after close()",
              key.c_str());
    if (!first_)
        os_ << ",";
    first_ = false;
    os_ << "\n" << std::string(static_cast<size_t>(indent_), ' ')
        << "\"" << jsonEscape(key) << "\": ";
}

void
JsonObjectWriter::field(const std::string &key,
                        const std::string &value)
{
    startField(key);
    os_ << "\"" << jsonEscape(value) << "\"";
}

void
JsonObjectWriter::field(const std::string &key, const char *value)
{
    field(key, std::string(value));
}

void
JsonObjectWriter::field(const std::string &key, uint64_t value)
{
    startField(key);
    os_ << value;
}

void
JsonObjectWriter::field(const std::string &key, double value)
{
    startField(key);
    os_ << jsonNum(value);
}

void
JsonObjectWriter::beginRawField(const std::string &key)
{
    startField(key);
}

void
JsonObjectWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    if (first_) {
        os_ << "}";
        return;
    }
    os_ << "\n";
    if (indent_ > 2)
        os_ << std::string(static_cast<size_t>(indent_ - 2), ' ');
    os_ << "}";
}

} // namespace radcrit
