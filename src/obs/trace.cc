#include "obs/trace.hh"

#include <atomic>

#include "common/logging.hh"
#include "obs/json.hh"

namespace radcrit
{

namespace
{

std::atomic<TraceSink *> globalSink{nullptr};

/** Forward a diagnostic line from the logging layer to the sink. */
void
traceLogHook(const char *level, const std::string &msg)
{
    TraceSink *sink = globalSink.load(std::memory_order_acquire);
    if (sink)
        sink->log(level, msg);
}

} // anonymous namespace

void
MemoryTraceSink::strike(const StrikeTraceRecord &rec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    strikes_.push_back(rec);
}

void
MemoryTraceSink::log(const std::string &level,
                     const std::string &msg)
{
    std::lock_guard<std::mutex> lock(mutex_);
    logs_.emplace_back(level, msg);
}

std::vector<StrikeTraceRecord>
MemoryTraceSink::strikes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return strikes_;
}

std::vector<std::pair<std::string, std::string>>
MemoryTraceSink::logs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return logs_;
}

void
MemoryTraceSink::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    strikes_.clear();
    logs_.clear();
}

JsonlTraceSink::JsonlTraceSink(const std::string &path)
    : path_(path), out_(path)
{
    if (!out_)
        fatal("cannot open trace file '%s'", path.c_str());
}

JsonlTraceSink::~JsonlTraceSink()
{
    flush();
}

void
JsonlTraceSink::strike(const StrikeTraceRecord &rec)
{
    std::string line = strikeTraceJson(rec);
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << line << "\n";
}

void
JsonlTraceSink::log(const std::string &level,
                    const std::string &msg)
{
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << "{\"schema\": " << traceSchemaVersion
         << ", \"type\": \"log\", \"level\": \""
         << jsonEscape(level) << "\", \"msg\": \""
         << jsonEscape(msg) << "\"}\n";
}

void
JsonlTraceSink::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    out_.flush();
}

OrderedTraceSink::OrderedTraceSink(TraceSink *inner,
                                   uint64_t first_run)
    : inner_(inner), next_(first_run)
{
}

OrderedTraceSink::~OrderedTraceSink()
{
    drain();
}

void
OrderedTraceSink::strike(const StrikeTraceRecord &rec)
{
    if (!inner_)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (rec.run != next_) {
        pending_.emplace(rec.run, rec);
        return;
    }
    inner_->strike(rec);
    ++next_;
    // Release the contiguous prefix that was waiting on this run.
    auto it = pending_.begin();
    while (it != pending_.end() && it->first == next_) {
        inner_->strike(it->second);
        ++next_;
        it = pending_.erase(it);
    }
}

void
OrderedTraceSink::log(const std::string &level,
                      const std::string &msg)
{
    if (inner_)
        inner_->log(level, msg);
}

void
OrderedTraceSink::flush()
{
    if (inner_)
        inner_->flush();
}

void
OrderedTraceSink::drain()
{
    if (!inner_)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[run, rec] : pending_) {
        inner_->strike(rec);
        next_ = run + 1;
    }
    pending_.clear();
}

size_t
OrderedTraceSink::pending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
}

std::string
strikeTraceJson(const StrikeTraceRecord &rec)
{
    std::string s;
    s.reserve(256);
    s += "{\"schema\": ";
    s += std::to_string(traceSchemaVersion);
    s += ", \"type\": \"strike\", \"run\": ";
    s += std::to_string(rec.run);
    s += ", \"device\": \"";
    s += jsonEscape(rec.device);
    s += "\", \"workload\": \"";
    s += jsonEscape(rec.workload);
    s += "\", \"input\": \"";
    s += jsonEscape(rec.input);
    s += "\", \"resource\": \"";
    s += resourceKindName(rec.resource);
    s += "\", \"manifestation\": \"";
    s += manifestationName(rec.manifestation);
    s += "\", \"timeFraction\": ";
    s += jsonNum(rec.timeFraction);
    s += ", \"burstBits\": ";
    s += std::to_string(rec.burstBits);
    s += ", \"outcome\": \"";
    s += outcomeName(rec.outcome);
    s += "\"";
    if (rec.outcome == Outcome::Sdc) {
        s += ", \"numIncorrect\": ";
        s += std::to_string(rec.numIncorrect);
        s += ", \"meanRelErrPct\": ";
        s += jsonNum(rec.meanRelErrPct);
        s += ", \"pattern\": \"";
        s += patternName(rec.pattern);
        s += "\", \"filtered\": ";
        s += rec.executionFiltered ? "true" : "false";
    }
    s += ", \"wallNs\": ";
    s += std::to_string(rec.wallNs);
    s += "}";
    return s;
}

TraceSink *
setTraceSink(TraceSink *sink)
{
    TraceSink *prev =
        globalSink.exchange(sink, std::memory_order_acq_rel);
    setLogHook(sink ? traceLogHook : nullptr);
    return prev;
}

TraceSink *
traceSink()
{
    return globalSink.load(std::memory_order_acquire);
}

} // namespace radcrit
