/**
 * @file
 * Scoped phase timers over the stats registry.
 *
 * A PhaseTimer names one phase ("campaign.phase.replay",
 * "kernel.dgemm.inject") and resolves its registry instruments once
 * — a call counter "<name>.calls", a nanosecond total "<name>.ns"
 * and optionally a log-scale latency histogram "<name>.hist" — so
 * hot paths pay only two steady_clock reads and a few relaxed
 * atomic adds per timed section. ScopedTick is the RAII guard for a
 * cached PhaseTimer; ScopedTimer is the one-shot convenience that
 * resolves by name for coarse, infrequent phases.
 */

#ifndef RADCRIT_OBS_TIMER_HH
#define RADCRIT_OBS_TIMER_HH

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/stats_registry.hh"

namespace radcrit
{

/**
 * One named phase accumulating call count and total nanoseconds
 * (plus an optional latency histogram) into a registry.
 */
class PhaseTimer
{
  public:
    /**
     * @param registry Registry owning the instruments.
     * @param name Phase name; instruments are created under it.
     * @param with_hist Also record per-call latencies into
     * "<name>.hist" (skip for the very hottest paths).
     */
    PhaseTimer(StatsRegistry &registry, const std::string &name,
               bool with_hist = true);

    /** Account one timed section of the given duration. */
    void recordNs(uint64_t ns)
    {
        calls_.inc();
        ns_.inc(ns);
        if (hist_)
            hist_->add(static_cast<double>(ns));
    }

    /** @return the phase name. */
    const std::string &name() const { return name_; }

    /** @return calls recorded so far. */
    uint64_t calls() const { return calls_.value(); }

    /** @return total nanoseconds recorded so far. */
    uint64_t totalNs() const { return ns_.value(); }

  private:
    std::string name_;
    Counter &calls_;
    Counter &ns_;
    LogHistogram *hist_;
};

/**
 * RAII guard timing one section into a cached PhaseTimer.
 */
class ScopedTick
{
  public:
    explicit ScopedTick(PhaseTimer &timer)
        : timer_(timer),
          start_(std::chrono::steady_clock::now())
    {}

    ~ScopedTick() { timer_.recordNs(elapsedNs()); }

    ScopedTick(const ScopedTick &) = delete;
    ScopedTick &operator=(const ScopedTick &) = delete;

    /** @return nanoseconds elapsed since construction. */
    uint64_t elapsedNs() const
    {
        auto dt = std::chrono::steady_clock::now() - start_;
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                dt).count());
    }

  private:
    PhaseTimer &timer_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * One-shot scoped timer resolving instruments by name; for coarse
 * phases (golden-run setup, whole-campaign sections) where the map
 * lookup is negligible.
 */
class ScopedTimer
{
  public:
    ScopedTimer(StatsRegistry &registry, const std::string &name)
        : timer_(registry, name), tick_(timer_)
    {}

    /** @return nanoseconds elapsed since construction. */
    uint64_t elapsedNs() const { return tick_.elapsedNs(); }

  private:
    // Member order matters: tick_ destructs first and records into
    // timer_ while it is still alive.
    PhaseTimer timer_;
    ScopedTick tick_;
};

} // namespace radcrit

#endif // RADCRIT_OBS_TIMER_HH
