/**
 * @file
 * Structured run tracing: one record per simulated strike, in the
 * spirit of the per-event logs the paper's host computer kept
 * during beam time (and that examples/log_reanalysis.cpp replays).
 *
 * A TraceSink receives StrikeTraceRecord events and free-form
 * diagnostic lines; implementations route them nowhere
 * (NullTraceSink), to memory for tests (MemoryTraceSink) or to a
 * JSONL file (JsonlTraceSink, one versioned JSON object per line —
 * see README "Observability" for the schema). The process-wide
 * sink is attached with setTraceSink(); the campaign runner and the
 * logging layer emit into it only when one is attached, so the
 * disabled path costs a single pointer load per event.
 */

#ifndef RADCRIT_OBS_TRACE_HH
#define RADCRIT_OBS_TRACE_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "arch/manifestation.hh"
#include "arch/resource.hh"
#include "metrics/locality.hh"
#include "sim/fault.hh"

namespace radcrit
{

/** Version of the JSONL trace schema emitted by JsonlTraceSink. */
constexpr int traceSchemaVersion = 1;

/**
 * Everything observable about one simulated strike: the strike
 * site, the program-level outcome, and (for SDCs) the criticality
 * metrics, plus the wall time the simulation spent on the run.
 */
struct StrikeTraceRecord
{
    /** Zero-based index of the run within its campaign. */
    uint64_t run = 0;
    std::string device;
    std::string workload;
    std::string input;

    /** Strike site. */
    ResourceKind resource = ResourceKind::RegisterFile;
    Manifestation manifestation = Manifestation::BitFlipValue;
    double timeFraction = 0.0;
    uint32_t burstBits = 1;

    /** Program-level outcome. */
    Outcome outcome = Outcome::Masked;

    /** Criticality metrics; meaningful only for Sdc outcomes. */
    uint64_t numIncorrect = 0;
    double meanRelErrPct = 0.0;
    Pattern pattern = Pattern::None;
    bool executionFiltered = false;

    /** Wall time spent simulating this run. */
    uint64_t wallNs = 0;
};

/**
 * Pluggable destination for trace events. Implementations must
 * tolerate concurrent calls.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** One simulated strike completed. */
    virtual void strike(const StrikeTraceRecord &rec) = 0;

    /**
     * One diagnostic line from the logging layer.
     *
     * @param level "warn" or "info".
     * @param msg The formatted message.
     */
    virtual void log(const std::string &level,
                     const std::string &msg) = 0;

    /** Flush buffered output (no-op by default). */
    virtual void flush() {}
};

/**
 * Discards everything: for measuring instrumentation overhead and
 * as an explicit "tracing off" sink.
 */
class NullTraceSink : public TraceSink
{
  public:
    void strike(const StrikeTraceRecord &) override {}
    void log(const std::string &, const std::string &) override {}
};

/**
 * Buffers events in memory; the test sink.
 */
class MemoryTraceSink : public TraceSink
{
  public:
    void strike(const StrikeTraceRecord &rec) override;
    void log(const std::string &level,
             const std::string &msg) override;

    /** @return all strike records received so far. */
    std::vector<StrikeTraceRecord> strikes() const;

    /** @return all (level, message) diagnostics received so far. */
    std::vector<std::pair<std::string, std::string>> logs() const;

    /** Drop everything buffered. */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::vector<StrikeTraceRecord> strikes_;
    std::vector<std::pair<std::string, std::string>> logs_;
};

/**
 * Streams one JSON object per line ("JSON Lines"). Every record
 * carries "schema": 1 and a "type" of "strike" or "log".
 */
class JsonlTraceSink : public TraceSink
{
  public:
    /** Open `path` for writing; fatal() when it cannot be opened. */
    explicit JsonlTraceSink(const std::string &path);

    ~JsonlTraceSink() override;

    void strike(const StrikeTraceRecord &rec) override;
    void log(const std::string &level,
             const std::string &msg) override;
    void flush() override;

    /** @return the path records are written to. */
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::mutex mutex_;
    std::ofstream out_;
};

/**
 * Reordering decorator: buffers out-of-order strike records and
 * forwards them to the wrapped sink sorted by run index, so a
 * parallel campaign produces the exact same trace stream as a
 * serial one regardless of worker completion order. Records must
 * carry dense run indices starting at `first_run`; drain() (also
 * called from the destructor) flushes any remainder in index order.
 * Log lines pass straight through.
 */
class OrderedTraceSink : public TraceSink
{
  public:
    /**
     * @param inner Sink receiving the ordered stream (not owned;
     * may be nullptr, which discards everything).
     * @param first_run Index the ordered stream starts at.
     */
    explicit OrderedTraceSink(TraceSink *inner,
                              uint64_t first_run = 0);

    ~OrderedTraceSink() override;

    void strike(const StrikeTraceRecord &rec) override;
    void log(const std::string &level,
             const std::string &msg) override;
    void flush() override;

    /** Forward everything still buffered, in run-index order. */
    void drain();

    /** @return records currently buffered (for tests). */
    size_t pending() const;

  private:
    TraceSink *inner_;
    mutable std::mutex mutex_;
    uint64_t next_;
    std::map<uint64_t, StrikeTraceRecord> pending_;
};

/** @return one strike record rendered as a single JSON line. */
std::string strikeTraceJson(const StrikeTraceRecord &rec);

/**
 * Attach the process-wide trace sink (non-owning; pass nullptr to
 * detach). Also routes warn()/inform() diagnostics into the sink.
 *
 * @return the previously attached sink.
 */
TraceSink *setTraceSink(TraceSink *sink);

/** @return the attached sink, or nullptr when tracing is off. */
TraceSink *traceSink();

} // namespace radcrit

#endif // RADCRIT_OBS_TRACE_HH
