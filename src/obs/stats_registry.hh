/**
 * @file
 * Campaign telemetry: a process-wide registry of named counters,
 * gauges and log-scale histograms.
 *
 * Names are hierarchical dotted paths in the gem5/prometheus
 * tradition ("campaign.k40.dgemm.sdc", "kernel.dgemm.inject.ns");
 * snapshots can be taken of the whole registry or of one subtree,
 * diffed against an earlier snapshot, and dumped as text or JSON.
 * Instruments are created on first use and live for the process
 * lifetime, so hot paths can cache the returned references and pay
 * only an atomic add per event.
 */

#ifndef RADCRIT_OBS_STATS_REGISTRY_HH
#define RADCRIT_OBS_STATS_REGISTRY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace radcrit
{

struct StatsSnapshot;

/**
 * Sanitize a label for use as one segment of a hierarchical stat
 * name: lower-cased, with every non-alphanumeric character replaced
 * by '_' so labels with spaces or dots ("Xeon Phi", "v1.2") cannot
 * corrupt the dotted-name hierarchy.
 */
std::string statToken(const std::string &label);

/**
 * Monotonic event counter.
 */
class Counter
{
  public:
    /** Add n events (default one). */
    void inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    /** @return the accumulated count. */
    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Reset to zero. */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/**
 * Last-value instrument for levels (occupancy, sensitive area).
 */
class Gauge
{
  public:
    /** Set the current level. */
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    /** @return the current level. */
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Reset to zero. */
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Power-of-two-bucketed histogram for long-tailed non-negative
 * samples (latencies in ns, element counts). Bucket i holds samples
 * in [2^(i-1), 2^i); bucket 0 holds samples < 1.
 */
class LogHistogram
{
  public:
    /** Number of buckets (covers the full uint64 range). */
    static constexpr size_t numBuckets = 65;

    /** Add one sample; negative samples clamp to bucket 0. */
    void add(double x);

    /**
     * Fold another histogram's aggregate (as captured in a
     * snapshot) into this one: bucket counts and moments add, the
     * min/max envelope widens. Used when merging per-worker stat
     * shards.
     */
    void absorb(uint64_t count, double sum, double min, double max,
                const std::vector<std::pair<size_t, uint64_t>>
                    &buckets);

    /** @return count in bucket i. */
    uint64_t bucketCount(size_t i) const;

    /** @return inclusive lower edge of bucket i. */
    static double bucketLo(size_t i);

    /** @return total samples. */
    uint64_t count() const;

    /** @return sum of all samples. */
    double sum() const;

    /** @return sample mean (0 when empty). */
    double mean() const;

    /** @return smallest sample (0 when empty). */
    double min() const;

    /** @return largest sample (0 when empty). */
    double max() const;

    /** Reset all buckets and moments. */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::array<uint64_t, numBuckets> buckets_{};
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Instrument kinds, used by snapshot entries. */
enum class StatKind : uint8_t { Counter, Gauge, Histogram };

/** @return printable kind name ("counter", ...). */
const char *statKindName(StatKind kind);

/**
 * Point-in-time copy of registry contents, sorted by name.
 * Snapshots are plain data: they survive registry resets and can be
 * carried inside campaign results.
 */
struct StatsSnapshot
{
    struct Entry
    {
        std::string name;
        StatKind kind = StatKind::Counter;
        /** Counter count or gauge level. */
        double value = 0.0;
        /** Histogram-only moments. */
        uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        /** Non-empty histogram buckets as (bucket index, count). */
        std::vector<std::pair<size_t, uint64_t>> buckets;
    };

    std::vector<Entry> entries;

    /** @return the entry with the given name, or nullptr. */
    const Entry *find(const std::string &name) const;

    /** @return counter/gauge value by name (0 when missing). */
    double value(const std::string &name) const;

    /**
     * @return a snapshot of what happened between `earlier` and this
     * snapshot: counters and histograms are subtracted, gauges keep
     * their latest level. Entries absent from `earlier` pass through.
     */
    StatsSnapshot since(const StatsSnapshot &earlier) const;

    /** Human-readable dump, one instrument per line. */
    void writeText(std::ostream &os) const;

    /** Machine-readable dump: one JSON object keyed by name. */
    void writeJson(std::ostream &os, int indent = 0) const;
};

/**
 * The registry: owns every instrument, keyed by dotted name.
 */
class StatsRegistry
{
  public:
    /**
     * @return the counter registered under `name`, creating it on
     * first use. fatal() if the name is already a different kind.
     */
    Counter &counter(const std::string &name);

    /** @return the gauge registered under `name`. */
    Gauge &gauge(const std::string &name);

    /** @return the log-scale histogram registered under `name`. */
    LogHistogram &histogram(const std::string &name);

    /** @return a snapshot of every instrument. */
    StatsSnapshot snapshot() const;

    /**
     * @return a snapshot of instruments whose name equals `prefix`
     * or starts with `prefix` + ".".
     */
    StatsSnapshot snapshot(const std::string &prefix) const;

    /**
     * Fold a snapshot into this registry: counters add their
     * values, histograms absorb buckets and moments, gauges take
     * the snapshot's level. Instruments are created on demand. The
     * campaign engine uses this to combine per-worker registry
     * shards in run-index order, and to publish the combined
     * campaign contribution into the global registry.
     */
    void merge(const StatsSnapshot &snap);

    /** Zero every instrument (instruments stay registered). */
    void reset();

    /** @return the process-wide default registry. */
    static StatsRegistry &global();

  private:
    struct Instrument
    {
        StatKind kind;
        // At most one is engaged, selected by kind. unique_ptr
        // keeps Instrument movable despite the atomics/mutex.
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<LogHistogram> histogram;
    };

    Instrument &lookup(const std::string &name, StatKind kind);

    mutable std::mutex mutex_;
    std::map<std::string, Instrument> instruments_;
};

} // namespace radcrit

#endif // RADCRIT_OBS_STATS_REGISTRY_HH
