#include "obs/timeline.hh"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <ostream>

#include "common/logging.hh"
#include "obs/json.hh"

namespace radcrit
{

namespace
{

std::atomic<Timeline *> globalTimeline{nullptr};

/** Render ns as trace-event microseconds ("12345.678"). */
std::string
traceUs(uint64_t ns)
{
    return strprintf("%llu.%03llu",
                     static_cast<unsigned long long>(ns / 1000),
                     static_cast<unsigned long long>(ns % 1000));
}

void
writeArgs(std::ostream &os, const std::vector<TimelineArg> &args)
{
    os << "{";
    bool first = true;
    for (const auto &[key, value] : args) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << jsonEscape(key) << "\": \""
           << jsonEscape(value) << "\"";
    }
    os << "}";
}

void
writeEvent(std::ostream &os, uint32_t tid,
           const TimelineEvent &event)
{
    os << "{\"name\": \"" << jsonEscape(event.name)
       << "\", \"cat\": \"" << jsonEscape(event.category)
       << "\", \"ph\": \"" << (event.instant ? "i" : "X")
       << "\", \"pid\": 1, \"tid\": " << tid
       << ", \"ts\": " << traceUs(event.tsNs);
    if (event.instant)
        os << ", \"s\": \"t\"";
    else
        os << ", \"dur\": " << traceUs(event.durNs);
    if (!event.args.empty()) {
        os << ", \"args\": ";
        writeArgs(os, event.args);
    }
    os << "}";
}

void
writeThreadName(std::ostream &os, uint32_t tid,
                const std::string &label)
{
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
       << "\"tid\": " << tid << ", \"args\": {\"name\": \""
       << jsonEscape(label) << "\"}}";
}

} // anonymous namespace

void
TimelineLane::span(std::string name, std::string category,
                   uint64_t ts_ns, uint64_t dur_ns,
                   std::vector<TimelineArg> args)
{
    TimelineEvent event;
    event.name = std::move(name);
    event.category = std::move(category);
    event.instant = false;
    event.tsNs = ts_ns;
    event.durNs = dur_ns;
    event.args = std::move(args);
    events_.push_back(std::move(event));
}

void
TimelineLane::instant(std::string name, std::string category,
                      uint64_t ts_ns,
                      std::vector<TimelineArg> args)
{
    TimelineEvent event;
    event.name = std::move(name);
    event.category = std::move(category);
    event.instant = true;
    event.tsNs = ts_ns;
    event.args = std::move(args);
    events_.push_back(std::move(event));
}

uint64_t
TimelineLane::busyNs() const
{
    uint64_t total = 0;
    for (const auto &event : events_)
        total += event.durNs;
    return total;
}

Timeline::Timeline()
    : epoch_(std::chrono::steady_clock::now())
{
}

TimelineLane &
Timeline::lane(uint32_t tid, const std::string &label)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &lane : lanes_) {
        if (lane->tid() == tid)
            return *lane;
    }
    lanes_.push_back(std::unique_ptr<TimelineLane>(
        new TimelineLane(tid, label)));
    return *lanes_.back();
}

uint64_t
Timeline::nowNs() const
{
    auto dt = std::chrono::steady_clock::now() - epoch_;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
            .count());
}

std::vector<const TimelineLane *>
Timeline::lanes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const TimelineLane *> out;
    out.reserve(lanes_.size());
    for (const auto &lane : lanes_)
        out.push_back(lane.get());
    std::sort(out.begin(), out.end(),
              [](const TimelineLane *a, const TimelineLane *b)
              { return a->tid() < b->tid(); });
    return out;
}

size_t
Timeline::eventCount() const
{
    size_t count = 0;
    for (const TimelineLane *lane : lanes())
        count += lane->events().size();
    return count;
}

void
Timeline::writeJson(std::ostream &os) const
{
    std::vector<const TimelineLane *> sorted = lanes();
    os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
       << "\"tid\": 0, \"args\": {\"name\": \"radcrit\"}}";
    for (const TimelineLane *lane : sorted) {
        os << ",\n";
        writeThreadName(os, lane->tid(), lane->label());
    }
    for (const TimelineLane *lane : sorted) {
        for (const auto &event : lane->events()) {
            os << ",\n";
            writeEvent(os, lane->tid(), event);
        }
    }
    os << "\n]\n}\n";
}

void
Timeline::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open timeline file '%s'", path.c_str());
    writeJson(out);
}

Timeline *
setTimeline(Timeline *timeline)
{
    return globalTimeline.exchange(timeline,
                                   std::memory_order_acq_rel);
}

Timeline *
timeline()
{
    return globalTimeline.load(std::memory_order_acquire);
}

} // namespace radcrit
