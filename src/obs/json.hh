/**
 * @file
 * Minimal JSON rendering helpers shared by the observability
 * emitters (stats dumps, JSONL traces, bench results). Writing —
 * not parsing — is all the subsystem needs, so no dependency is
 * taken on a JSON library.
 */

#ifndef RADCRIT_OBS_JSON_HH
#define RADCRIT_OBS_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>

namespace radcrit
{

/** Escape a string for embedding between JSON double quotes. */
std::string jsonEscape(const std::string &s);

/**
 * Render a finite double as a JSON number (integral values without
 * a fraction); NaN/Inf render as 0 since JSON has no literal for
 * them.
 */
std::string jsonNum(double v);

/**
 * Stream writer for one pretty-printed JSON object: handles the
 * braces, commas, indentation, key quoting/escaping and value
 * formatting so emitters cannot produce inconsistent escaping or
 * trailing-comma bugs by hand-assembling the syntax.
 *
 * Usage:
 *
 *   JsonObjectWriter obj(out);
 *   obj.field("bench", name);      // string value, escaped
 *   obj.field("runs", runs);       // integer value
 *   obj.field("ns_per_op", ns);    // double via jsonNum()
 *   obj.beginRawField("stats");    // caller streams the value
 *   snapshot.writeJson(out, 2);
 *   obj.close();                   // or let the destructor close
 */
class JsonObjectWriter
{
  public:
    /**
     * Open an object on `os`.
     *
     * @param os Output stream; must outlive the writer.
     * @param indent Indentation of the object's fields in spaces
     * (the closing brace sits one level shallower).
     */
    explicit JsonObjectWriter(std::ostream &os, int indent = 2);

    /** Closes the object if close() was not called. */
    ~JsonObjectWriter();

    JsonObjectWriter(const JsonObjectWriter &) = delete;
    JsonObjectWriter &operator=(const JsonObjectWriter &) = delete;

    /** Emit a string field (value escaped and quoted). */
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);

    /** Emit an integer field. */
    void field(const std::string &key, uint64_t value);

    /** Emit a numeric field rendered via jsonNum(). */
    void field(const std::string &key, double value);

    /**
     * Emit the key and separator of a field whose value the caller
     * streams directly afterwards (nested objects like the stats
     * snapshot).
     */
    void beginRawField(const std::string &key);

    /**
     * Close the object (idempotent). Adding a field after close()
     * is a panic(): the writer cannot emit valid JSON past its own
     * closing brace.
     */
    void close();

  private:
    void startField(const std::string &key);

    std::ostream &os_;
    int indent_;
    bool first_ = true;
    bool closed_ = false;
};

} // namespace radcrit

#endif // RADCRIT_OBS_JSON_HH
