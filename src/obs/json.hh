/**
 * @file
 * Minimal JSON rendering helpers shared by the observability
 * emitters (stats dumps, JSONL traces, bench results). Writing —
 * not parsing — is all the subsystem needs, so no dependency is
 * taken on a JSON library.
 */

#ifndef RADCRIT_OBS_JSON_HH
#define RADCRIT_OBS_JSON_HH

#include <string>

namespace radcrit
{

/** Escape a string for embedding between JSON double quotes. */
std::string jsonEscape(const std::string &s);

/**
 * Render a finite double as a JSON number (integral values without
 * a fraction); NaN/Inf render as 0 since JSON has no literal for
 * them.
 */
std::string jsonNum(double v);

} // namespace radcrit

#endif // RADCRIT_OBS_JSON_HH
