#include "obs/stats_registry.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <ostream>

#include "common/logging.hh"
#include "obs/json.hh"

namespace radcrit
{

std::string
statToken(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (char c : label) {
        auto u = static_cast<unsigned char>(c);
        out += std::isalnum(u)
            ? static_cast<char>(std::tolower(u))
            : '_';
    }
    return out;
}

namespace
{

/** Bucket index for a sample: 0 for x < 1, else floor(log2) + 1. */
size_t
bucketOf(double x)
{
    if (!(x >= 1.0))
        return 0;
    int exp = std::ilogb(x);
    size_t idx = static_cast<size_t>(exp) + 1;
    return std::min<size_t>(idx, LogHistogram::numBuckets - 1);
}

} // anonymous namespace

void
LogHistogram::add(double x)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++buckets_[bucketOf(x)];
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
}

void
LogHistogram::absorb(uint64_t count, double sum, double min,
                     double max,
                     const std::vector<std::pair<size_t, uint64_t>>
                         &buckets)
{
    if (count == 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[idx, n] : buckets) {
        if (idx < numBuckets)
            buckets_[idx] += n;
    }
    if (count_ == 0) {
        min_ = min;
        max_ = max;
    } else {
        min_ = std::min(min_, min);
        max_ = std::max(max_, max);
    }
    count_ += count;
    sum_ += sum;
}

uint64_t
LogHistogram::bucketCount(size_t i) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return i < numBuckets ? buckets_[i] : 0;
}

double
LogHistogram::bucketLo(size_t i)
{
    if (i == 0)
        return 0.0;
    return std::ldexp(1.0, static_cast<int>(i) - 1);
}

uint64_t
LogHistogram::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
LogHistogram::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

double
LogHistogram::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
LogHistogram::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return min_;
}

double
LogHistogram::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return max_;
}

void
LogHistogram::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

const char *
statKindName(StatKind kind)
{
    switch (kind) {
      case StatKind::Counter: return "counter";
      case StatKind::Gauge: return "gauge";
      case StatKind::Histogram: return "histogram";
    }
    return "unknown";
}

const StatsSnapshot::Entry *
StatsSnapshot::find(const std::string &name) const
{
    auto it = std::lower_bound(
        entries.begin(), entries.end(), name,
        [](const Entry &e, const std::string &n) {
            return e.name < n;
        });
    if (it != entries.end() && it->name == name)
        return &*it;
    return nullptr;
}

double
StatsSnapshot::value(const std::string &name) const
{
    const Entry *e = find(name);
    return e ? e->value : 0.0;
}

StatsSnapshot
StatsSnapshot::since(const StatsSnapshot &earlier) const
{
    StatsSnapshot out;
    out.entries.reserve(entries.size());
    for (const Entry &e : entries) {
        const Entry *prev = earlier.find(e.name);
        Entry d = e;
        if (prev && prev->kind == e.kind) {
            switch (e.kind) {
              case StatKind::Counter:
                d.value = e.value - prev->value;
                break;
              case StatKind::Gauge:
                // Gauges are levels, not rates: keep the latest.
                break;
              case StatKind::Histogram:
                d.count = e.count - prev->count;
                d.sum = e.sum - prev->sum;
                d.buckets.clear();
                for (const auto &[idx, n] : e.buckets) {
                    uint64_t before = 0;
                    for (const auto &[pidx, pn] : prev->buckets) {
                        if (pidx == idx)
                            before = pn;
                    }
                    if (n > before)
                        d.buckets.emplace_back(idx, n - before);
                }
                break;
            }
        }
        // Drop instruments that saw no activity in the window so
        // campaign snapshots stay scoped to their own run.
        bool active = d.kind == StatKind::Gauge ||
            (d.kind == StatKind::Counter ? d.value != 0.0
                                         : d.count != 0);
        if (!prev || active)
            out.entries.push_back(std::move(d));
    }
    return out;
}

void
StatsSnapshot::writeText(std::ostream &os) const
{
    for (const Entry &e : entries) {
        switch (e.kind) {
          case StatKind::Counter:
            os << e.name << " = "
               << strprintf("%.0f", e.value) << "\n";
            break;
          case StatKind::Gauge:
            os << e.name << " = "
               << strprintf("%g", e.value) << " (gauge)\n";
            break;
          case StatKind::Histogram:
            os << e.name << ": count="
               << e.count << " mean="
               << strprintf("%.1f", e.count == 0 ? 0.0 :
                            e.sum / static_cast<double>(e.count))
               << " min=" << strprintf("%g", e.min)
               << " max=" << strprintf("%g", e.max) << "\n";
            break;
        }
    }
}

void
StatsSnapshot::writeJson(std::ostream &os, int indent) const
{
    std::string pad(static_cast<size_t>(indent), ' ');
    std::string inner = pad + "  ";
    os << "{";
    bool first = true;
    for (const Entry &e : entries) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << inner << "\"" << jsonEscape(e.name)
           << "\": {\"kind\": \"" << statKindName(e.kind) << "\"";
        switch (e.kind) {
          case StatKind::Counter:
          case StatKind::Gauge:
            os << ", \"value\": " << jsonNum(e.value);
            break;
          case StatKind::Histogram:
            os << ", \"count\": " << e.count
               << ", \"sum\": " << jsonNum(e.sum)
               << ", \"min\": " << jsonNum(e.min)
               << ", \"max\": " << jsonNum(e.max)
               << ", \"buckets\": {";
            for (size_t i = 0; i < e.buckets.size(); ++i) {
                if (i > 0)
                    os << ", ";
                os << "\"" << jsonNum(
                    LogHistogram::bucketLo(e.buckets[i].first))
                   << "\": " << e.buckets[i].second;
            }
            os << "}";
            break;
        }
        os << "}";
    }
    if (!first)
        os << "\n" << pad;
    os << "}";
}

Counter &
StatsRegistry::counter(const std::string &name)
{
    return *lookup(name, StatKind::Counter).counter;
}

Gauge &
StatsRegistry::gauge(const std::string &name)
{
    return *lookup(name, StatKind::Gauge).gauge;
}

LogHistogram &
StatsRegistry::histogram(const std::string &name)
{
    return *lookup(name, StatKind::Histogram).histogram;
}

StatsRegistry::Instrument &
StatsRegistry::lookup(const std::string &name, StatKind kind)
{
    if (name.empty())
        panic("stats instrument needs a non-empty name");
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = instruments_.find(name);
    if (it == instruments_.end()) {
        Instrument inst;
        inst.kind = kind;
        switch (kind) {
          case StatKind::Counter:
            inst.counter = std::make_unique<Counter>();
            break;
          case StatKind::Gauge:
            inst.gauge = std::make_unique<Gauge>();
            break;
          case StatKind::Histogram:
            inst.histogram = std::make_unique<LogHistogram>();
            break;
        }
        it = instruments_.emplace(name, std::move(inst)).first;
    } else if (it->second.kind != kind) {
        panic("stats instrument '%s' is a %s, requested as %s",
              name.c_str(), statKindName(it->second.kind),
              statKindName(kind));
    }
    return it->second;
}

StatsSnapshot
StatsRegistry::snapshot() const
{
    return snapshot("");
}

StatsSnapshot
StatsRegistry::snapshot(const std::string &prefix) const
{
    StatsSnapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, inst] : instruments_) {
        if (!prefix.empty() && name != prefix &&
            (name.size() <= prefix.size() ||
             name.compare(0, prefix.size(), prefix) != 0 ||
             name[prefix.size()] != '.')) {
            continue;
        }
        StatsSnapshot::Entry e;
        e.name = name;
        e.kind = inst.kind;
        switch (inst.kind) {
          case StatKind::Counter:
            e.value = static_cast<double>(inst.counter->value());
            break;
          case StatKind::Gauge:
            e.value = inst.gauge->value();
            break;
          case StatKind::Histogram: {
            const LogHistogram &h = *inst.histogram;
            e.count = h.count();
            e.sum = h.sum();
            e.min = h.min();
            e.max = h.max();
            for (size_t i = 0; i < LogHistogram::numBuckets; ++i) {
                uint64_t n = h.bucketCount(i);
                if (n > 0)
                    e.buckets.emplace_back(i, n);
            }
            break;
          }
        }
        snap.entries.push_back(std::move(e));
    }
    // std::map iterates in name order, so entries are sorted.
    return snap;
}

void
StatsRegistry::merge(const StatsSnapshot &snap)
{
    for (const StatsSnapshot::Entry &e : snap.entries) {
        switch (e.kind) {
          case StatKind::Counter:
            counter(e.name).inc(static_cast<uint64_t>(e.value));
            break;
          case StatKind::Gauge:
            gauge(e.name).set(e.value);
            break;
          case StatKind::Histogram:
            histogram(e.name).absorb(e.count, e.sum, e.min, e.max,
                                     e.buckets);
            break;
        }
    }
}

void
StatsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, inst] : instruments_) {
        switch (inst.kind) {
          case StatKind::Counter: inst.counter->reset(); break;
          case StatKind::Gauge: inst.gauge->reset(); break;
          case StatKind::Histogram: inst.histogram->reset(); break;
        }
    }
}

StatsRegistry &
StatsRegistry::global()
{
    static StatsRegistry registry;
    return registry;
}

} // namespace radcrit
