/**
 * @file
 * Campaign flight recorder: per-worker trace-event timelines.
 *
 * A Timeline records where campaign wall-clock goes: span events
 * (phases, per-run execution) and instant events, each stamped with
 * nanoseconds since the timeline's epoch and appended to a lane.
 * Lanes map one-to-one to trace "threads" — the campaign control
 * flow gets lane 0, worker w gets lane w+1 — and are single-writer:
 * each lane is only ever appended to by the thread that owns it, so
 * the hot recording path is a plain vector push_back with no lock.
 * The only lock in the subsystem guards lane creation/lookup, which
 * workers hit once per chunk, not once per run.
 *
 * Export is Chrome trace-event JSON ("X" complete events plus
 * thread-name metadata), loadable in Perfetto / chrome://tracing;
 * tools/check_timeline.py validates the structure in CI. Export
 * must be quiescent — call writeJson() only after every recording
 * thread has been joined (the campaign runner records inside
 * WorkerPool::forChunks(), which joins before returning, so any
 * point after simulateCampaign()/analyzeCampaign() is safe).
 *
 * The process-wide recorder is attached with setTimeline(); the
 * runner records only when one is attached, so the disabled path
 * costs a single atomic pointer load per run and recording cannot
 * change campaign results (runs/CSV/stats stay bit-identical with
 * the recorder on or off).
 */

#ifndef RADCRIT_OBS_TIMELINE_HH
#define RADCRIT_OBS_TIMELINE_HH

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace radcrit
{

/** One key/value annotation on a timeline event. */
using TimelineArg = std::pair<std::string, std::string>;

/**
 * One recorded event. Spans carry a duration; instants do not.
 */
struct TimelineEvent
{
    std::string name;
    /** Trace-event category ("campaign", "run", ...). */
    std::string category;
    bool instant = false;
    /** Start time in nanoseconds since the timeline epoch. */
    uint64_t tsNs = 0;
    /** Span duration in nanoseconds (0 for instants). */
    uint64_t durNs = 0;
    std::vector<TimelineArg> args;
};

/**
 * One lane of the timeline (= one trace tid). Single-writer: only
 * the owning thread may record into a lane, which is what keeps
 * recording lock-free.
 */
class TimelineLane
{
  public:
    /** Record a completed span that started at `ts_ns`. */
    void span(std::string name, std::string category,
              uint64_t ts_ns, uint64_t dur_ns,
              std::vector<TimelineArg> args = {});

    /** Record an instant event. */
    void instant(std::string name, std::string category,
                 uint64_t ts_ns, std::vector<TimelineArg> args = {});

    /** @return the trace tid this lane exports as. */
    uint32_t tid() const { return tid_; }

    /** @return the lane's thread-name label ("worker 3"). */
    const std::string &label() const { return label_; }

    /**
     * @return recorded events in recording order. Only valid once
     * the owning thread has been joined.
     */
    const std::vector<TimelineEvent> &events() const
    {
        return events_;
    }

    /** @return total span nanoseconds recorded in this lane. */
    uint64_t busyNs() const;

  private:
    friend class Timeline;

    TimelineLane(uint32_t tid, std::string label)
        : tid_(tid), label_(std::move(label))
    {}

    uint32_t tid_;
    std::string label_;
    std::vector<TimelineEvent> events_;
};

/**
 * The flight recorder: owns the lanes and the epoch, and exports
 * Chrome trace-event JSON.
 */
class Timeline
{
  public:
    /** The epoch is the construction instant. */
    Timeline();

    /**
     * @return the lane exporting as trace tid `tid`, creating it
     * with `label` as its thread name on first use (later labels
     * are ignored). The returned reference stays valid for the
     * Timeline's lifetime; the caller thread becomes the lane's
     * writer.
     */
    TimelineLane &lane(uint32_t tid, const std::string &label);

    /** @return nanoseconds elapsed since the epoch. */
    uint64_t nowNs() const;

    /** @return lanes in tid order. Quiescent use only. */
    std::vector<const TimelineLane *> lanes() const;

    /** @return total events across lanes. Quiescent use only. */
    size_t eventCount() const;

    /**
     * Export as a Chrome trace-event JSON object: thread-name
     * metadata first, then each lane's events in tid order (per
     * lane, events appear in recording order, so timestamps are
     * monotonic within a tid). Quiescent use only.
     */
    void writeJson(std::ostream &os) const;

    /** writeJson() into `path`; fatal() when it cannot be opened. */
    void writeJsonFile(const std::string &path) const;

  private:
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<TimelineLane>> lanes_;
};

/**
 * Attach the process-wide flight recorder (non-owning; pass
 * nullptr to detach).
 *
 * @return the previously attached recorder.
 */
Timeline *setTimeline(Timeline *timeline);

/** @return the attached recorder, or nullptr when off. */
Timeline *timeline();

} // namespace radcrit

#endif // RADCRIT_OBS_TIMELINE_HH
