#include "obs/report.hh"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace radcrit
{

namespace
{

/** Shared inline stylesheet; keeps the document self-contained. */
const char *reportCss = R"css(
body { font-family: system-ui, sans-serif; margin: 2em auto;
       max-width: 60em; color: #1a1a2e; background: #fbfbfd; }
h1 { font-size: 1.5em; border-bottom: 2px solid #4a5a8a;
     padding-bottom: .3em; }
h2 { font-size: 1.15em; color: #2e3a5e; margin-top: 1.6em; }
table { border-collapse: collapse; margin: .6em 0; }
th, td { border: 1px solid #c8cde0; padding: .25em .7em;
         text-align: left; font-size: .92em; }
th { background: #e8ebf5; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
dl.kv { display: grid; grid-template-columns: max-content auto;
        gap: .15em 1.2em; margin: .6em 0; }
dl.kv dt { font-weight: 600; }
dl.kv dd { margin: 0; }
figure { margin: .8em 0; }
figcaption { font-size: .85em; color: #555; margin-bottom: .3em; }
svg text { font-family: system-ui, sans-serif; }
)css";

/** Format a value for bar labels: integral without a fraction. */
std::string
barNum(double v)
{
    if (!std::isfinite(v))
        return "n/a";
    if (v == std::floor(v) && std::fabs(v) < 1e15)
        return strprintf("%.0f", v);
    return strprintf("%.3g", v);
}

} // anonymous namespace

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          case '\'': out += "&#39;"; break;
          default: out += c;
        }
    }
    return out;
}

HtmlReport::HtmlReport(std::string title)
    : title_(std::move(title))
{
}

void
HtmlReport::section(const std::string &heading)
{
    blocks_.push_back("<h2>" + htmlEscape(heading) + "</h2>\n");
}

void
HtmlReport::paragraph(const std::string &text)
{
    blocks_.push_back("<p>" + htmlEscape(text) + "</p>\n");
}

void
HtmlReport::keyValues(
    const std::vector<std::pair<std::string, std::string>> &rows)
{
    std::ostringstream os;
    os << "<dl class=\"kv\">\n";
    for (const auto &[key, value] : rows) {
        os << "<dt>" << htmlEscape(key) << "</dt><dd>"
           << htmlEscape(value) << "</dd>\n";
    }
    os << "</dl>\n";
    blocks_.push_back(os.str());
}

void
HtmlReport::table(const std::vector<std::string> &header,
                  const std::vector<std::vector<std::string>> &rows)
{
    std::ostringstream os;
    os << "<table>\n<tr>";
    for (const auto &cell : header)
        os << "<th>" << htmlEscape(cell) << "</th>";
    os << "</tr>\n";
    for (const auto &row : rows) {
        os << "<tr>";
        for (size_t i = 0; i < row.size(); ++i) {
            // First column is the label; the rest are numbers by
            // convention and right-align.
            os << (i == 0 ? "<td>" : "<td class=\"num\">")
               << htmlEscape(row[i]) << "</td>";
        }
        os << "</tr>\n";
    }
    os << "</table>\n";
    blocks_.push_back(os.str());
}

void
HtmlReport::barChart(
    const std::string &caption,
    const std::vector<std::pair<std::string, double>> &bars)
{
    double peak = 0.0;
    for (const auto &[name, value] : bars) {
        if (std::isfinite(value))
            peak = std::max(peak, value);
    }

    const int labelWidth = 170;
    const int plotWidth = 360;
    const int rowHeight = 22;
    int height = rowHeight * static_cast<int>(bars.size()) + 6;

    std::ostringstream os;
    os << "<figure>\n<figcaption>" << htmlEscape(caption)
       << "</figcaption>\n"
       << "<svg width=\""
       << labelWidth + plotWidth + 90 << "\" height=\"" << height
       << "\" role=\"img\">\n";
    for (size_t i = 0; i < bars.size(); ++i) {
        const auto &[name, value] = bars[i];
        int y = static_cast<int>(i) * rowHeight + 4;
        double frac = (peak > 0.0 && std::isfinite(value))
            ? std::max(value, 0.0) / peak
            : 0.0;
        int w = static_cast<int>(frac * plotWidth + 0.5);
        os << "<text x=\"" << labelWidth - 6 << "\" y=\""
           << y + 12 << "\" text-anchor=\"end\" font-size=\"12\">"
           << htmlEscape(name) << "</text>\n"
           << "<rect x=\"" << labelWidth << "\" y=\"" << y
           << "\" width=\"" << std::max(w, 1) << "\" height=\""
           << rowHeight - 8 << "\" fill=\"#5a74b8\"/>\n"
           << "<text x=\"" << labelWidth + std::max(w, 1) + 5
           << "\" y=\"" << y + 12 << "\" font-size=\"11\">"
           << htmlEscape(barNum(value)) << "</text>\n";
    }
    os << "</svg>\n</figure>\n";
    blocks_.push_back(os.str());
}

void
HtmlReport::logHistogram(const std::string &caption,
                         const StatsSnapshot::Entry &hist)
{
    std::vector<std::pair<std::string, double>> bars;
    for (const auto &[bucket, count] : hist.buckets) {
        std::string label = bucket == 0
            ? "< 1"
            : strprintf("[%.0f, %.0f)",
                        LogHistogram::bucketLo(bucket),
                        LogHistogram::bucketLo(bucket) * 2.0);
        bars.emplace_back(label, static_cast<double>(count));
    }
    if (bars.empty())
        bars.emplace_back("(empty)", 0.0);
    barChart(caption +
             strprintf(" — %llu samples, mean %s, max %s",
                       static_cast<unsigned long long>(hist.count),
                       barNum(hist.count
                              ? hist.sum /
                                  static_cast<double>(hist.count)
                              : 0.0).c_str(),
                       barNum(hist.max).c_str()),
             bars);
}

void
HtmlReport::phaseAttribution(const StatsSnapshot &stats,
                             const std::vector<std::string> &phases)
{
    double total = 0.0;
    std::vector<std::pair<std::string, double>> ns;
    for (const auto &phase : phases) {
        double v = stats.value(phase + ".ns");
        ns.emplace_back(phase, v);
        total += v;
    }

    std::vector<std::vector<std::string>> rows;
    std::vector<std::pair<std::string, double>> bars;
    for (const auto &[phase, v] : ns) {
        rows.push_back(
            {phase, strprintf("%.3f", v / 1e6),
             total > 0.0 ? strprintf("%.1f%%", 100.0 * v / total)
                         : "n/a"});
        bars.emplace_back(phase, v / 1e6);
    }
    rows.push_back({"(listed total)",
                    strprintf("%.3f", total / 1e6), "100.0%"});
    table({"phase", "wall [ms]", "share"}, rows);
    barChart("wall-clock per phase [ms]", bars);
}

void
HtmlReport::render(std::ostream &os) const
{
    os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
       << "<meta charset=\"utf-8\">\n<title>"
       << htmlEscape(title_) << "</title>\n<style>" << reportCss
       << "</style>\n</head>\n<body>\n<h1>" << htmlEscape(title_)
       << "</h1>\n";
    for (const auto &block : blocks_)
        os << block;
    os << "</body>\n</html>\n";
}

std::string
HtmlReport::str() const
{
    std::ostringstream os;
    render(os);
    return os.str();
}

} // namespace radcrit
