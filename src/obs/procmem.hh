/**
 * @file
 * Process-memory observability: peak and current resident set
 * size, read from Linux /proc/self/status (VmHWM / VmRSS).
 *
 * The streaming campaign pipeline exists to bound peak RSS; this
 * is the instrument that proves it does. readProcMem() samples the
 * kernel's accounting, publishProcMem() publishes the sample as
 * "proc.mem.peak_rss_bytes" / "proc.mem.current_rss_bytes" gauges
 * (global registry material: process-shaped, never part of a
 * campaign's jobs-independent snapshot — the campaign runner
 * strips "proc.*" from its kernel diff), and the bench/suite JSON
 * schema-8 "memory" block and the HTML campaign report surface it.
 *
 * On platforms without /proc the sample comes back invalid and
 * gauges are simply not set; nothing downstream depends on the
 * values being present.
 */

#ifndef RADCRIT_OBS_PROCMEM_HH
#define RADCRIT_OBS_PROCMEM_HH

#include <cstdint>

#include "obs/stats_registry.hh"

namespace radcrit
{

/** One sample of the process's memory accounting. */
struct ProcMemSample
{
    /** Peak resident set size (VmHWM), bytes. */
    uint64_t peakRssBytes = 0;
    /** Current resident set size (VmRSS), bytes. */
    uint64_t currentRssBytes = 0;
    /** False when /proc/self/status was unreadable. */
    bool valid = false;
};

/** @return the current /proc/self/status VmHWM/VmRSS sample. */
ProcMemSample readProcMem();

/**
 * Sample and publish "proc.mem.{peak,current}_rss_bytes" gauges
 * into `reg` (typically the global registry). No-op when the
 * sample is invalid.
 *
 * @return the sample taken.
 */
ProcMemSample publishProcMem(StatsRegistry &reg);

} // namespace radcrit

#endif // RADCRIT_OBS_PROCMEM_HH
