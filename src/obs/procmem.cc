#include "obs/procmem.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

namespace radcrit
{

namespace
{

/** Parse "VmHWM:    1234 kB" into bytes; 0 when absent. */
uint64_t
parseKbLine(const std::string &line)
{
    const char *p = line.c_str();
    while (*p && (*p < '0' || *p > '9'))
        ++p;
    if (!*p)
        return 0;
    return std::strtoull(p, nullptr, 10) * 1024;
}

} // anonymous namespace

ProcMemSample
readProcMem()
{
    ProcMemSample sample;
    std::ifstream status("/proc/self/status");
    if (!status)
        return sample;
    std::string line;
    bool peak = false;
    bool current = false;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            sample.peakRssBytes = parseKbLine(line);
            peak = true;
        } else if (line.rfind("VmRSS:", 0) == 0) {
            sample.currentRssBytes = parseKbLine(line);
            current = true;
        }
        if (peak && current)
            break;
    }
    sample.valid = peak && current;
    return sample;
}

ProcMemSample
publishProcMem(StatsRegistry &reg)
{
    ProcMemSample sample = readProcMem();
    if (!sample.valid)
        return sample;
    reg.gauge("proc.mem.peak_rss_bytes")
        .set(static_cast<double>(sample.peakRssBytes));
    reg.gauge("proc.mem.current_rss_bytes")
        .set(static_cast<double>(sample.currentRssBytes));
    return sample;
}

} // namespace radcrit
