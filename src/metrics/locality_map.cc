#include "metrics/locality_map.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace radcrit
{

LocalityMap::LocalityMap(const SdcRecord &record)
    : record_(record)
{
    if (record_.extent[0] <= 0 || record_.extent[1] <= 0)
        panic("LocalityMap: degenerate extents %ld x %ld",
              static_cast<long>(record_.extent[0]),
              static_cast<long>(record_.extent[1]));
}

void
LocalityMap::renderAscii(std::ostream &os, size_t max_side) const
{
    auto rows = static_cast<size_t>(record_.extent[0]);
    auto cols = static_cast<size_t>(record_.extent[1]);
    size_t out_rows = std::min(rows, max_side);
    size_t out_cols = std::min(cols, max_side);

    std::vector<char> cells(out_rows * out_cols, '.');
    for (const auto &e : record_.elements) {
        auto r = static_cast<size_t>(e.coord[0]) * out_rows / rows;
        auto c = static_cast<size_t>(e.coord[1]) * out_cols / cols;
        r = std::min(r, out_rows - 1);
        c = std::min(c, out_cols - 1);
        cells[r * out_cols + c] = '#';
    }

    os << "+" << std::string(out_cols, '-') << "+\n";
    for (size_t r = 0; r < out_rows; ++r) {
        os << '|';
        os.write(&cells[r * out_cols],
                 static_cast<std::streamsize>(out_cols));
        os << "|\n";
    }
    os << "+" << std::string(out_cols, '-') << "+\n";
    os << "grid " << rows << "x" << cols << ", "
       << record_.elements.size() << " corrupted elements ('#')\n";
}

std::string
LocalityMap::toAscii(size_t max_side) const
{
    std::ostringstream oss;
    renderAscii(oss, max_side);
    return oss.str();
}

void
LocalityMap::writePpm(const std::string &path) const
{
    auto rows = static_cast<size_t>(record_.extent[0]);
    auto cols = static_cast<size_t>(record_.extent[1]);
    std::vector<unsigned char> pix(rows * cols * 3, 255);
    for (const auto &e : record_.elements) {
        auto r = static_cast<size_t>(e.coord[0]);
        auto c = static_cast<size_t>(e.coord[1]);
        if (r >= rows || c >= cols)
            continue;
        size_t off = (r * cols + c) * 3;
        pix[off] = 220;     // red
        pix[off + 1] = 30;
        pix[off + 2] = 30;
    }
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open '%s' for PPM output", path.c_str());
    std::fprintf(f, "P6\n%zu %zu\n255\n", cols, rows);
    std::fwrite(pix.data(), 1, pix.size(), f);
    std::fclose(f);
}

} // namespace radcrit
