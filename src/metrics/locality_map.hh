/**
 * @file
 * Error locality map rendering (paper Fig. 9): the output result as a
 * 2D matrix with corrupted elements marked, in ASCII for terminals
 * and PPM (red dots on white) for image output.
 */

#ifndef RADCRIT_METRICS_LOCALITY_MAP_HH
#define RADCRIT_METRICS_LOCALITY_MAP_HH

#include <iosfwd>
#include <string>

#include "metrics/sdcrecord.hh"

namespace radcrit
{

/**
 * Renders the spatial distribution of a 2D SdcRecord.
 */
class LocalityMap
{
  public:
    /**
     * @param record 2D record (dims must be 2); 3D records are
     * projected onto the first two axes.
     */
    explicit LocalityMap(const SdcRecord &record);

    /**
     * Render at most max_side characters per axis (down-sampling the
     * grid; a character cell is marked when any element inside it is
     * corrupted).
     */
    void renderAscii(std::ostream &os, size_t max_side = 64) const;

    /** Render to a string. */
    std::string toAscii(size_t max_side = 64) const;

    /**
     * Write a full-resolution PPM (P6) image: white background, red
     * corrupted elements. fatal() on I/O failure.
     */
    void writePpm(const std::string &path) const;

  private:
    SdcRecord record_;
};

} // namespace radcrit

#endif // RADCRIT_METRICS_LOCALITY_MAP_HH
