#include "metrics/locality.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace radcrit
{

const char *
patternName(Pattern p)
{
    switch (p) {
      case Pattern::None: return "None";
      case Pattern::Single: return "Single";
      case Pattern::Line: return "Line";
      case Pattern::Square: return "Square";
      case Pattern::Cubic: return "Cubic";
      case Pattern::Random: return "Random";
      default:
        panic("patternName: invalid pattern %d",
              static_cast<int>(p));
    }
}

namespace
{

std::vector<std::array<int64_t, 3>>
uniqueCoords(const SdcRecord &record)
{
    std::vector<std::array<int64_t, 3>> coords;
    coords.reserve(record.elements.size());
    for (const auto &e : record.elements)
        coords.push_back(e.coord);
    std::sort(coords.begin(), coords.end());
    coords.erase(std::unique(coords.begin(), coords.end()),
                 coords.end());
    return coords;
}

} // anonymous namespace

size_t
uniquePositions(const SdcRecord &record)
{
    return uniqueCoords(record).size();
}

Pattern
classifyLocality(const SdcRecord &record,
                 const LocalityParams &params)
{
    auto coords = uniqueCoords(record);
    if (coords.empty())
        return Pattern::None;
    if (coords.size() == 1)
        return Pattern::Single;

    // Determine which axes vary and the bounding box.
    std::array<int64_t, 3> lo = coords.front();
    std::array<int64_t, 3> hi = coords.front();
    for (const auto &c : coords) {
        for (int a = 0; a < 3; ++a) {
            lo[a] = std::min(lo[a], c[a]);
            hi[a] = std::max(hi[a], c[a]);
        }
    }
    int varying = 0;
    for (int a = 0; a < 3; ++a) {
        if (hi[a] != lo[a])
            ++varying;
    }

    if (varying == 0) {
        // Distinct coords with no varying axis cannot happen.
        panic("locality: %zu unique coords but no varying axis",
              coords.size());
    }
    if (varying == 1)
        return Pattern::Line;

    auto n = static_cast<double>(coords.size());
    if (varying == 2) {
        double area = 1.0;
        for (int a = 0; a < 3; ++a)
            area *= static_cast<double>(hi[a] - lo[a] + 1);
        return (n / area >= params.squareDensity) ? Pattern::Square
                                                  : Pattern::Random;
    }

    // varying == 3
    double volume = 1.0;
    for (int a = 0; a < 3; ++a)
        volume *= static_cast<double>(hi[a] - lo[a] + 1);
    return (n / volume >= params.cubicDensity) ? Pattern::Cubic
                                               : Pattern::Random;
}

} // namespace radcrit
