/**
 * @file
 * The combined criticality analysis facade: applies all four paper
 * metrics (and the relative-error filter) to one faulty execution,
 * and aggregates runs into relative-FIT breakdowns by pattern.
 */

#ifndef RADCRIT_METRICS_CRITICALITY_HH
#define RADCRIT_METRICS_CRITICALITY_HH

#include <array>
#include <cstddef>
#include <vector>

#include "metrics/filter.hh"
#include "metrics/locality.hh"
#include "metrics/sdcrecord.hh"

namespace radcrit
{

/**
 * All four criticality metrics of one faulty execution, before and
 * after the relative-error filter.
 */
struct CriticalityReport
{
    /** Metric 1: number of incorrect elements. */
    size_t numIncorrect = 0;
    /** Metric 3: mean relative error (percent). */
    double meanRelErrPct = 0.0;
    /** Metric 4: spatial pattern of all mismatches. */
    Pattern pattern = Pattern::None;

    /** Incorrect elements above the filter threshold. */
    size_t numIncorrectFiltered = 0;
    /** Mean relative error over surviving elements. */
    double meanRelErrFilteredPct = 0.0;
    /** Pattern of surviving elements. */
    Pattern patternFiltered = Pattern::None;
    /** True when the filter removes the whole execution. */
    bool executionFiltered = false;
};

/**
 * Run the full metric suite over one mismatch record.
 */
CriticalityReport
analyzeCriticality(const SdcRecord &record,
                   const RelativeErrorFilter &filter =
                       RelativeErrorFilter(2.0),
                   const LocalityParams &locality = {});

/**
 * Relative FIT (arbitrary units) broken down by spatial pattern —
 * the data behind the paper's Figs. 3, 5 and 7 stacked bars.
 */
struct FitBreakdown
{
    /** FIT contribution per pattern, indexed by Pattern. */
    std::array<double, numPatterns> fit{};

    /** Accumulate a run of the given pattern. */
    void add(Pattern p, double fit_au);

    /** @return FIT for one pattern. */
    double of(Pattern p) const;

    /** @return total FIT across patterns (excludes None). */
    double total() const;
};

/**
 * Build a breakdown from per-run patterns, each contributing
 * fit_per_run arbitrary units (#SDC-in-pattern / fluence scaling is
 * folded into fit_per_run by the campaign layer).
 */
FitBreakdown
makeFitBreakdown(const std::vector<Pattern> &patterns,
                 double fit_per_run);

} // namespace radcrit

#endif // RADCRIT_METRICS_CRITICALITY_HH
