#include "metrics/relative_error.hh"

#include <algorithm>
#include <cmath>

namespace radcrit
{

double
relativeErrorPct(double read, double expected)
{
    if (!std::isfinite(read))
        return relativeErrorSentinelPct;
    if (expected == 0.0)
        return read == 0.0 ? 0.0 : relativeErrorSentinelPct;
    double rel = std::abs(read - expected) / std::abs(expected) *
        100.0;
    if (!std::isfinite(rel))
        return relativeErrorSentinelPct;
    return std::min(rel, relativeErrorSentinelPct);
}

double
meanRelativeErrorPct(const SdcRecord &record)
{
    if (record.elements.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &e : record.elements)
        sum += relativeErrorPct(e.read, e.expected);
    return sum / static_cast<double>(record.elements.size());
}

double
maxRelativeErrorPct(const SdcRecord &record)
{
    double mx = 0.0;
    for (const auto &e : record.elements)
        mx = std::max(mx, relativeErrorPct(e.read, e.expected));
    return mx;
}

} // namespace radcrit
