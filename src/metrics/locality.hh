/**
 * @file
 * Spatial locality of output errors (paper metric 4, Section III).
 *
 * "When several elements are corrupted, but they do not share the
 * same position in one of the axis, they are tagged as random errors.
 * When the corrupted elements share one, two, or three dimensions of
 * the axis we classify them as line, square, or cubic respectively."
 *
 * Concretely (matching the usage throughout the paper's evaluation):
 *  - one corrupted element                     -> Single
 *  - all elements collinear along one axis     -> Line
 *  - elements spanning two axes, clustered     -> Square
 *  - elements spanning three axes, clustered   -> Cubic
 *  - elements spanning multiple axes, scattered-> Random
 *
 * "Clustered" is judged by the density of unique corrupted positions
 * inside their axis-aligned bounding box; the thresholds are
 * parameters because the paper leaves the boundary qualitative.
 * Classification uses *unique positions*: several LavaMD particles
 * of one box share a box coordinate but count once for locality
 * (while still counting individually for metric 1).
 */

#ifndef RADCRIT_METRICS_LOCALITY_HH
#define RADCRIT_METRICS_LOCALITY_HH

#include <array>
#include <cstdint>
#include <string>

#include "metrics/sdcrecord.hh"

namespace radcrit
{

/** Spatial error patterns, in the paper's vocabulary. */
enum class Pattern : uint8_t
{
    /** No corrupted element (masked or fully filtered run). */
    None,
    Single,
    Line,
    Square,
    Cubic,
    Random,

    NumPatterns
};

/** Number of patterns for array sizing. */
constexpr size_t numPatterns =
    static_cast<size_t>(Pattern::NumPatterns);

/** @return a stable printable name of the pattern. */
const char *patternName(Pattern p);

/** Tunable cluster-density thresholds. */
struct LocalityParams
{
    /**
     * Minimum unique-position density inside the 2D bounding box for
     * a two-axis-spanning pattern to count as Square (not Random).
     */
    double squareDensity = 0.05;
    /** Same for three-axis-spanning patterns vs Cubic. */
    double cubicDensity = 0.02;
};

/**
 * Classify the spatial pattern of a corrupted-output record.
 *
 * @param record The mismatch log (possibly already filtered).
 * @param params Cluster-density thresholds.
 * @return the pattern; Pattern::None for an empty record.
 */
Pattern classifyLocality(const SdcRecord &record,
                         const LocalityParams &params = {});

/**
 * @return the number of unique corrupted positions in the record.
 */
size_t uniquePositions(const SdcRecord &record);

} // namespace radcrit

#endif // RADCRIT_METRICS_LOCALITY_HH
