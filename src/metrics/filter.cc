#include "metrics/filter.hh"

#include "common/logging.hh"
#include "metrics/relative_error.hh"

namespace radcrit
{

RelativeErrorFilter::RelativeErrorFilter(double threshold_pct)
    : thresholdPct_(threshold_pct)
{
    if (threshold_pct < 0.0)
        fatal("relative-error filter threshold %f%% is negative",
              threshold_pct);
}

SdcRecord
RelativeErrorFilter::apply(const SdcRecord &record) const
{
    SdcRecord out;
    out.dims = record.dims;
    out.extent = record.extent;
    for (const auto &e : record.elements) {
        if (relativeErrorPct(e.read, e.expected) > thresholdPct_)
            out.elements.push_back(e);
    }
    return out;
}

bool
RelativeErrorFilter::removesExecution(const SdcRecord &record) const
{
    for (const auto &e : record.elements) {
        if (relativeErrorPct(e.read, e.expected) > thresholdPct_)
            return false;
    }
    return true;
}

} // namespace radcrit
