#include "metrics/criticality.hh"

#include "common/logging.hh"
#include "metrics/relative_error.hh"

namespace radcrit
{

CriticalityReport
analyzeCriticality(const SdcRecord &record,
                   const RelativeErrorFilter &filter,
                   const LocalityParams &locality)
{
    CriticalityReport report;
    report.numIncorrect = record.numIncorrect();
    report.meanRelErrPct = meanRelativeErrorPct(record);
    report.pattern = classifyLocality(record, locality);

    SdcRecord filtered = filter.apply(record);
    report.numIncorrectFiltered = filtered.numIncorrect();
    report.meanRelErrFilteredPct = meanRelativeErrorPct(filtered);
    report.patternFiltered = classifyLocality(filtered, locality);
    report.executionFiltered = filtered.empty() && !record.empty();
    return report;
}

void
FitBreakdown::add(Pattern p, double fit_au)
{
    fit[static_cast<size_t>(p)] += fit_au;
}

double
FitBreakdown::of(Pattern p) const
{
    return fit[static_cast<size_t>(p)];
}

double
FitBreakdown::total() const
{
    double sum = 0.0;
    for (size_t i = 0; i < numPatterns; ++i) {
        if (static_cast<Pattern>(i) == Pattern::None)
            continue;
        sum += fit[i];
    }
    return sum;
}

FitBreakdown
makeFitBreakdown(const std::vector<Pattern> &patterns,
                 double fit_per_run)
{
    if (fit_per_run < 0.0)
        panic("makeFitBreakdown: negative fit_per_run %f",
              fit_per_run);
    FitBreakdown bd;
    for (Pattern p : patterns)
        bd.add(p, fit_per_run);
    return bd;
}

} // namespace radcrit
