/**
 * @file
 * The parameterized relative-error filter (paper Section III).
 *
 * "When we apply the filter, we ignore all incorrect elements whose
 * relative error is lower than 2%. We remove faulty executions where
 * there are no mismatches left after the filter."
 */

#ifndef RADCRIT_METRICS_FILTER_HH
#define RADCRIT_METRICS_FILTER_HH

#include "metrics/sdcrecord.hh"

namespace radcrit
{

/**
 * Drops corrupted elements whose relative error does not exceed a
 * tolerance threshold, modelling applications that accept slightly
 * imprecise results (e.g. seismic misfits of ~4%, paper ref. [14]).
 */
class RelativeErrorFilter
{
  public:
    /**
     * @param threshold_pct Keep only elements with relative error
     * strictly greater than this, in percent (paper default: 2).
     */
    explicit RelativeErrorFilter(double threshold_pct = 2.0);

    /** @return the configured threshold in percent. */
    double thresholdPct() const { return thresholdPct_; }

    /**
     * @return a copy of the record containing only elements whose
     * relative error exceeds the threshold. An empty result means
     * the faulty execution would be removed from the evaluation.
     */
    SdcRecord apply(const SdcRecord &record) const;

    /** @return true when the whole execution passes as correct. */
    bool removesExecution(const SdcRecord &record) const;

  private:
    double thresholdPct_;
};

} // namespace radcrit

#endif // RADCRIT_METRICS_FILTER_HH
