/**
 * @file
 * Relative error and mean relative error (paper metrics 2 and 3).
 *
 *   relative_error = |read - expected| / |expected| * 100   [percent]
 *
 * The mean relative error averages the relative errors of all
 * corrupted elements of one faulty execution, giving "an overview of
 * how much the overall corrupted output differs from the expected
 * one" (Section III).
 */

#ifndef RADCRIT_METRICS_RELATIVE_ERROR_HH
#define RADCRIT_METRICS_RELATIVE_ERROR_HH

#include "metrics/sdcrecord.hh"

namespace radcrit
{

/**
 * Relative error of one element, in percent.
 *
 * For expected == 0 the paper's formula is undefined; we return 0
 * when read is also 0 and a large sentinel (1e12 %) otherwise, which
 * keeps such elements above any realistic filter threshold.
 * Non-finite read values (NaN/Inf from corrupted arithmetic) also
 * map to the sentinel.
 */
double relativeErrorPct(double read, double expected);

/** Sentinel relative error used for undefined/non-finite cases. */
constexpr double relativeErrorSentinelPct = 1e12;

/**
 * Mean of relative errors over all corrupted elements (metric 3).
 * @return 0 for an empty record.
 */
double meanRelativeErrorPct(const SdcRecord &record);

/**
 * Largest per-element relative error in the record (0 when empty).
 */
double maxRelativeErrorPct(const SdcRecord &record);

} // namespace radcrit

#endif // RADCRIT_METRICS_RELATIVE_ERROR_HH
