/**
 * @file
 * Corrupted-output records: the raw material of the criticality
 * metrics. An SdcRecord is what the paper's host computer logs when
 * the experimental output mismatches the pre-computed golden output
 * (Section IV-D): every corrupted element with its position, read
 * value, and expected value.
 */

#ifndef RADCRIT_METRICS_SDCRECORD_HH
#define RADCRIT_METRICS_SDCRECORD_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace radcrit
{

/**
 * One output element whose read value differs from the golden value.
 *
 * Coordinates are in the natural output geometry of the workload:
 * (i, j, 0) for matrices and 2D grids, (bx, by, bz) for LavaMD's box
 * grid (several particles of one box share coordinates; the element
 * count stays per-particle while locality is judged in box space, as
 * the paper does).
 */
struct CorruptedElement
{
    std::array<int64_t, 3> coord{0, 0, 0};
    double read = 0.0;
    double expected = 0.0;
};

/**
 * The complete mismatch log of one faulty execution.
 */
struct SdcRecord
{
    /** Output dimensionality: 1, 2 or 3. */
    int dims = 2;
    /** Output extents; unused trailing dims are 1. */
    std::array<int64_t, 3> extent{1, 1, 1};
    /** All mismatching elements. */
    std::vector<CorruptedElement> elements;

    /** @return number of incorrect elements (paper metric 1). */
    size_t numIncorrect() const { return elements.size(); }

    /** @return true when no element mismatches. */
    bool empty() const { return elements.empty(); }
};

} // namespace radcrit

#endif // RADCRIT_METRICS_SDCRECORD_HH
