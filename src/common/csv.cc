#include "common/csv.hh"

#include "common/logging.hh"

namespace radcrit
{

CsvWriter::CsvWriter(const std::string &path)
    : path_(path), out_(path)
{
    if (!out_)
        fatal("cannot open CSV output file '%s'", path.c_str());
}

void
CsvWriter::writeRow(const std::vector<std::string> &fields)
{
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(fields[i]);
    }
    out_ << '\n';
}

std::string
CsvWriter::escape(const std::string &field)
{
    bool needs_quotes = field.find_first_of(",\"\n\r") !=
        std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

} // namespace radcrit
