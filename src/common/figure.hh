/**
 * @file
 * ASCII renderers for the two figure shapes the paper uses: scatter
 * plots (mean relative error vs. number of incorrect elements) and
 * stacked bars (relative FIT broken down by spatial-locality pattern).
 */

#ifndef RADCRIT_COMMON_FIGURE_HH
#define RADCRIT_COMMON_FIGURE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace radcrit
{

/**
 * A labelled point series in a scatter plot (e.g. one input size).
 */
struct ScatterSeries
{
    std::string label;
    std::vector<double> xs;
    std::vector<double> ys;
};

/**
 * ASCII scatter plot with clamping thresholds matching the paper's
 * ">= N" axis saturation (e.g. relative errors above 100% plotted at
 * 100%).
 */
class ScatterPlot
{
  public:
    /**
     * @param title Plot title.
     * @param x_label Label for the x axis.
     * @param y_label Label for the y axis.
     */
    ScatterPlot(std::string title, std::string x_label,
                std::string y_label);

    /** Clamp x values above this threshold to the threshold. */
    void setXClamp(double x_max);

    /** Clamp y values above this threshold to the threshold. */
    void setYClamp(double y_max);

    /** Add a series; each series gets its own glyph. */
    void addSeries(ScatterSeries series);

    /** Render the plot at the given character resolution. */
    void render(std::ostream &os, size_t width = 72,
                size_t height = 24) const;

    /** Render to a string. */
    std::string toString(size_t width = 72, size_t height = 24) const;

  private:
    std::string title_;
    std::string xLabel_;
    std::string yLabel_;
    double xClamp_ = -1.0;
    double yClamp_ = -1.0;
    std::vector<ScatterSeries> series_;
};

/**
 * One stacked bar: a label plus per-segment values keyed by segment
 * names shared across the chart.
 */
struct StackedBar
{
    std::string label;
    std::vector<double> segments;
};

/**
 * Horizontal stacked-bar chart used for the FIT-by-locality figures
 * (Figs. 3, 5, 7 of the paper).
 */
class StackedBarChart
{
  public:
    /**
     * @param title Chart title.
     * @param segment_names Names of the stacked segments, in stacking
     * order (e.g. {"Square", "Line", "Single", "Random"}).
     */
    StackedBarChart(std::string title,
                    std::vector<std::string> segment_names);

    /** Add one bar; segments.size() must match segment_names. */
    void addBar(StackedBar bar);

    /** Render with bars scaled to the widest total. */
    void render(std::ostream &os, size_t width = 60) const;

    /** Render to a string. */
    std::string toString(size_t width = 60) const;

  private:
    std::string title_;
    std::vector<std::string> segmentNames_;
    std::vector<StackedBar> bars_;
};

} // namespace radcrit

#endif // RADCRIT_COMMON_FIGURE_HH
