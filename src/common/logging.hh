/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * panic() is for internal invariant violations (radcrit bugs) and
 * aborts; fatal() is for user errors (bad configuration, invalid
 * arguments) and exits cleanly with an error code. warn() and inform()
 * provide non-fatal status output on stderr.
 */

#ifndef RADCRIT_COMMON_LOGGING_HH
#define RADCRIT_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace radcrit
{

/**
 * Format a printf-style message into a std::string.
 *
 * @param fmt printf-style format string.
 * @return The formatted message.
 */
std::string vstrprintf(const char *fmt, va_list args);

/** printf-style formatting convenience wrapper. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal error that should never happen regardless of user
 * input (a radcrit bug) and abort().
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a condition that prevents continuing and is the user's fault
 * (bad configuration, invalid arguments) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about suspicious but non-fatal conditions. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit an informative status message. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Globally silence inform() output (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true when inform() output is suppressed. */
bool isQuiet();

/**
 * Console verbosity levels for warn()/inform(). fatal()/panic()
 * always print. The initial level comes from the RADCRIT_LOG_LEVEL
 * environment variable ("silent", "error", "warn" or "info");
 * setLogLevel() overrides it at runtime, and setQuiet() remains an
 * additional gate on inform() only.
 */
enum class LogLevel : uint8_t { Silent = 0, Error, Warn, Info };

/**
 * Parse a level name ("silent"/"quiet", "error", "warn"/"warning",
 * "info"/"debug"; case-insensitive).
 *
 * @return true and set `out` on success, false on unknown names.
 */
bool parseLogLevel(const char *name, LogLevel &out);

/**
 * Resolve a RADCRIT_LOG_LEVEL-style value into a level:
 * case-insensitive level names as in parseLogLevel(); null, empty
 * or unrecognized values resolve to Info. The process startup path
 * warns exactly once on an unrecognized value instead of silently
 * defaulting; this helper is exposed so that behavior is testable.
 *
 * @param value The environment value (may be null).
 * @param recognized When non-null, set to whether `value` named a
 * level (null/empty count as not recognized).
 */
LogLevel logLevelFromEnv(const char *value,
                         bool *recognized = nullptr);

/** @return the current console verbosity level. */
LogLevel logLevel();

/** Override the console verbosity level. */
void setLogLevel(LogLevel level);

/**
 * Observer invoked for every warn()/inform() message with its
 * level name ("warn"/"info") — even messages suppressed on the
 * console by the log level or quiet flag, so an attached trace
 * sink records the complete diagnostic stream.
 */
using LogHook = void (*)(const char *level,
                         const std::string &msg);

/** Install (or clear, with nullptr) the diagnostic observer. */
void setLogHook(LogHook hook);

} // namespace radcrit

#endif // RADCRIT_COMMON_LOGGING_HH
