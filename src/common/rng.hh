/**
 * @file
 * Deterministic pseudo-random number generation for campaigns.
 *
 * radcrit uses xoshiro256** (Blackman & Vigna) seeded through
 * SplitMix64 so that every campaign is exactly reproducible from a
 * 64-bit seed, independent of the standard library implementation.
 */

#ifndef RADCRIT_COMMON_RNG_HH
#define RADCRIT_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace radcrit
{

/**
 * SplitMix64 stepper used to expand a 64-bit seed into generator
 * state. Also usable as a cheap standalone generator for hashing.
 *
 * @param state In/out 64-bit state; advanced on each call.
 * @return The next 64-bit output.
 */
uint64_t splitMix64(uint64_t &state);

/**
 * xoshiro256** pseudo-random generator.
 *
 * All campaign-level randomness (strike sampling, bit selection,
 * workload input generation) flows through this class. Instances are
 * cheap to copy, so sub-streams can be forked via split().
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit output. */
    uint64_t next64();

    /** @return a uniformly distributed double in [0, 1). */
    double uniform();

    /** @return a uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /**
     * @return a uniform integer in [0, bound) using Lemire's
     * nearly-divisionless method. bound must be nonzero.
     */
    uint64_t uniformInt(uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    int64_t uniformRange(int64_t lo, int64_t hi);

    /** @return true with probability p (clamped to [0, 1]). */
    bool bernoulli(double p);

    /** @return a standard normal variate (Box-Muller, no caching). */
    double normal();

    /** @return a normal variate with the given mean and stddev. */
    double normal(double mean, double stddev);

    /**
     * @return a Poisson variate with the given mean. Uses Knuth's
     * multiplication method for small means and a normal
     * approximation with continuity correction for mean > 64.
     */
    uint64_t poisson(double mean);

    /** @return an exponential variate with the given rate (> 0). */
    double exponential(double rate);

    /**
     * Fork an independent sub-stream. The child is seeded from this
     * generator's output mixed with the provided tag so that the same
     * (parent seed, tag) always yields the same child stream.
     */
    Rng split(uint64_t tag);

    /** Hash-combine convenience used to derive deterministic tags. */
    static uint64_t hashCombine(uint64_t a, uint64_t b);

  private:
    std::array<uint64_t, 4> state_;
};

} // namespace radcrit

#endif // RADCRIT_COMMON_RNG_HH
