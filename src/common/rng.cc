#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace radcrit
{

namespace
{

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
    // xoshiro must not start from the all-zero state.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 &&
        state_[3] == 0) {
        state_[0] = 0x9e3779b97f4a7c15ULL;
    }
}

uint64_t
Rng::next64()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::uniformInt called with zero bound");
    // Lemire's method with rejection to remove modulo bias.
    uint64_t x = next64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
        uint64_t t = (0 - bound) % bound;
        while (l < t) {
            x = next64();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

int64_t
Rng::uniformRange(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("Rng::uniformRange: lo %ld > hi %ld", lo, hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(uniformInt(span));
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal()
{
    // Box-Muller; a fresh pair every call keeps streams splittable.
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 0.0)
        u1 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
        std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

uint64_t
Rng::poisson(double mean)
{
    if (mean < 0.0)
        panic("Rng::poisson called with negative mean %f", mean);
    if (mean == 0.0)
        return 0;
    if (mean > 64.0) {
        // Normal approximation with continuity correction.
        double v = normal(mean, std::sqrt(mean));
        if (v < 0.0)
            return 0;
        return static_cast<uint64_t>(v + 0.5);
    }
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double prod = uniform();
    uint64_t n = 0;
    while (prod > limit) {
        prod *= uniform();
        ++n;
    }
    return n;
}

double
Rng::exponential(double rate)
{
    if (rate <= 0.0)
        panic("Rng::exponential called with rate %f <= 0", rate);
    double u = uniform();
    while (u <= 0.0)
        u = uniform();
    return -std::log(u) / rate;
}

Rng
Rng::split(uint64_t tag)
{
    uint64_t mixed = hashCombine(next64(), tag);
    return Rng(mixed);
}

uint64_t
Rng::hashCombine(uint64_t a, uint64_t b)
{
    uint64_t state = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) +
                          (a >> 2));
    return splitMix64(state);
}

} // namespace radcrit
