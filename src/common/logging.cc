#include "common/logging.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace radcrit
{

namespace
{

bool quietFlag = false;
std::atomic<LogHook> logHook{nullptr};

/** Initial level: RADCRIT_LOG_LEVEL when set and valid, else Info. */
LogLevel
initialLogLevel()
{
    const char *env = std::getenv("RADCRIT_LOG_LEVEL");
    bool recognized = false;
    LogLevel level = logLevelFromEnv(env, &recognized);
    if (env && *env && !recognized) {
        // Warn exactly once, straight to stderr: warn() itself
        // consults the log level, which is being initialized here.
        static bool warned = false;
        if (!warned) {
            warned = true;
            std::fprintf(
                stderr,
                "warn: RADCRIT_LOG_LEVEL '%s' is not a level "
                "(silent, error, warn, info); using info\n", env);
        }
    }
    return level;
}

std::atomic<LogLevel> &
logLevelVar()
{
    static std::atomic<LogLevel> level{initialLogLevel()};
    return level;
}

/** Forward one diagnostic to the observer, if any. */
void
notifyHook(const char *level, const std::string &msg)
{
    LogHook hook = logHook.load(std::memory_order_acquire);
    if (hook)
        hook(level, msg);
}

} // anonymous namespace

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string("<format error>");
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string result = vstrprintf(fmt, args);
    va_end(args);
    return result;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    if (logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
    notifyHook("warn", msg);
}

void
inform(const char *fmt, ...)
{
    bool print = !quietFlag && logLevel() >= LogLevel::Info;
    bool hooked = logHook.load(std::memory_order_acquire);
    if (!print && !hooked)
        return;
    va_list args;
    va_start(args, fmt);
    std::string msg = vstrprintf(fmt, args);
    va_end(args);
    if (print)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
    notifyHook("info", msg);
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

bool
parseLogLevel(const char *name, LogLevel &out)
{
    if (!name)
        return false;
    std::string lower;
    for (const char *p = name; *p; ++p)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p)));
    if (lower == "silent" || lower == "quiet" || lower == "none")
        out = LogLevel::Silent;
    else if (lower == "error" || lower == "fatal")
        out = LogLevel::Error;
    else if (lower == "warn" || lower == "warning")
        out = LogLevel::Warn;
    else if (lower == "info" || lower == "debug")
        out = LogLevel::Info;
    else
        return false;
    return true;
}

LogLevel
logLevelFromEnv(const char *value, bool *recognized)
{
    LogLevel level = LogLevel::Info;
    bool ok = value && *value && parseLogLevel(value, level);
    if (!ok)
        level = LogLevel::Info;
    if (recognized)
        *recognized = ok;
    return level;
}

LogLevel
logLevel()
{
    return logLevelVar().load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    logLevelVar().store(level, std::memory_order_relaxed);
}

void
setLogHook(LogHook hook)
{
    logHook.store(hook, std::memory_order_release);
}

} // namespace radcrit
