/**
 * @file
 * Minimal CSV writer so every bench can dump machine-readable series
 * next to its human-readable tables/figures.
 */

#ifndef RADCRIT_COMMON_CSV_HH
#define RADCRIT_COMMON_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace radcrit
{

/**
 * RFC-4180-ish CSV writer: quotes fields containing commas, quotes,
 * or newlines; doubles embedded quotes.
 */
class CsvWriter
{
  public:
    /** Open the given path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write one row. */
    void writeRow(const std::vector<std::string> &fields);

    /** Escape a single field per CSV quoting rules. */
    static std::string escape(const std::string &field);

    /** @return path this writer targets. */
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::ofstream out_;
};

} // namespace radcrit

#endif // RADCRIT_COMMON_CSV_HH
