#include "common/cli.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace radcrit
{

CliParser::CliParser(std::string program_name)
    : programName_(std::move(program_name))
{
}

void
CliParser::addString(const std::string &name, std::string def,
                     std::string help)
{
    options_[name] = Option{Kind::String, def, def,
                            std::move(help)};
    order_.push_back(name);
}

void
CliParser::addInt(const std::string &name, int64_t def,
                  std::string help)
{
    std::string s = std::to_string(def);
    options_[name] = Option{Kind::Int, s, s, std::move(help)};
    order_.push_back(name);
}

void
CliParser::addDouble(const std::string &name, double def,
                     std::string help)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", def);
    options_[name] = Option{Kind::Double, buf, buf,
                            std::move(help)};
    order_.push_back(name);
}

void
CliParser::addFlag(const std::string &name, std::string help)
{
    options_[name] = Option{Kind::Flag, "0", "0", std::move(help)};
    order_.push_back(name);
}

void
CliParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage().c_str(), stdout);
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool have_value = false;
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            have_value = true;
        }
        auto it = options_.find(name);
        if (it == options_.end())
            fatal("unknown option --%s (try --help)", name.c_str());
        Option &opt = it->second;
        if (opt.kind == Kind::Flag) {
            if (have_value)
                fatal("flag --%s does not take a value",
                      name.c_str());
            opt.value = "1";
            opt.seen = true;
            continue;
        }
        if (!have_value) {
            if (i + 1 >= argc)
                fatal("option --%s requires a value", name.c_str());
            value = argv[++i];
        }
        if (opt.kind == Kind::Int) {
            char *end = nullptr;
            std::strtoll(value.c_str(), &end, 0);
            if (end == value.c_str() || *end != '\0')
                fatal("option --%s expects an integer, got '%s'",
                      name.c_str(), value.c_str());
        } else if (opt.kind == Kind::Double) {
            char *end = nullptr;
            std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                fatal("option --%s expects a number, got '%s'",
                      name.c_str(), value.c_str());
        }
        opt.value = value;
        opt.seen = true;
    }
}

const CliParser::Option &
CliParser::lookup(const std::string &name, Kind kind) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        panic("option --%s was never registered", name.c_str());
    if (it->second.kind != kind)
        panic("option --%s accessed with the wrong type",
              name.c_str());
    return it->second;
}

std::string
CliParser::getString(const std::string &name) const
{
    return lookup(name, Kind::String).value;
}

int64_t
CliParser::getInt(const std::string &name) const
{
    return std::strtoll(lookup(name, Kind::Int).value.c_str(),
                        nullptr, 0);
}

double
CliParser::getDouble(const std::string &name) const
{
    return std::strtod(lookup(name, Kind::Double).value.c_str(),
                       nullptr);
}

bool
CliParser::getFlag(const std::string &name) const
{
    return lookup(name, Kind::Flag).value == "1";
}

std::string
CliParser::usage() const
{
    std::ostringstream oss;
    oss << "usage: " << programName_ << " [options]\n";
    for (const auto &name : order_) {
        const Option &opt = options_.at(name);
        oss << "  --" << name;
        if (opt.kind != Kind::Flag)
            oss << "=<value>";
        oss << "\n      " << opt.help;
        if (opt.kind != Kind::Flag)
            oss << " (default: " << opt.def << ")";
        oss << '\n';
    }
    return oss.str();
}

} // namespace radcrit
