#include "common/figure.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace radcrit
{

namespace
{

/** Glyphs assigned to scatter series in order. */
const char seriesGlyphs[] = "ox+*#@%&";

/** Glyphs assigned to stacked-bar segments in order. */
const char segmentGlyphs[] = "#=+.:*o%";

std::string
fmtAxis(double v)
{
    char buf[32];
    if (std::abs(v) >= 10000.0 || (std::abs(v) < 0.01 && v != 0.0))
        std::snprintf(buf, sizeof(buf), "%.2e", v);
    else
        std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
}

} // anonymous namespace

ScatterPlot::ScatterPlot(std::string title, std::string x_label,
                         std::string y_label)
    : title_(std::move(title)), xLabel_(std::move(x_label)),
      yLabel_(std::move(y_label))
{
}

void
ScatterPlot::setXClamp(double x_max)
{
    xClamp_ = x_max;
}

void
ScatterPlot::setYClamp(double y_max)
{
    yClamp_ = y_max;
}

void
ScatterPlot::addSeries(ScatterSeries series)
{
    if (series.xs.size() != series.ys.size())
        panic("ScatterSeries '%s' has %zu xs but %zu ys",
              series.label.c_str(), series.xs.size(),
              series.ys.size());
    series_.push_back(std::move(series));
}

void
ScatterPlot::render(std::ostream &os, size_t width,
                    size_t height) const
{
    os << title_ << '\n';

    double x_min = 0.0, x_max = 1.0;
    double y_min = 0.0, y_max = 1.0;
    bool have_point = false;
    auto clampX = [&](double x) {
        return (xClamp_ > 0.0 && x > xClamp_) ? xClamp_ : x;
    };
    auto clampY = [&](double y) {
        return (yClamp_ > 0.0 && y > yClamp_) ? yClamp_ : y;
    };
    for (const auto &s : series_) {
        for (size_t i = 0; i < s.xs.size(); ++i) {
            double x = clampX(s.xs[i]);
            double y = clampY(s.ys[i]);
            if (!have_point) {
                x_min = x_max = x;
                y_min = y_max = y;
                have_point = true;
            } else {
                x_min = std::min(x_min, x);
                x_max = std::max(x_max, x);
                y_min = std::min(y_min, y);
                y_max = std::max(y_max, y);
            }
        }
    }
    if (!have_point) {
        os << "  (no data points)\n";
        return;
    }
    x_min = std::min(x_min, 0.0);
    y_min = std::min(y_min, 0.0);
    if (x_max <= x_min)
        x_max = x_min + 1.0;
    if (y_max <= y_min)
        y_max = y_min + 1.0;

    std::vector<std::string> canvas(height,
                                    std::string(width, ' '));
    for (size_t si = 0; si < series_.size(); ++si) {
        char glyph = seriesGlyphs[si % (sizeof(seriesGlyphs) - 1)];
        const auto &s = series_[si];
        for (size_t i = 0; i < s.xs.size(); ++i) {
            double fx = (clampX(s.xs[i]) - x_min) / (x_max - x_min);
            double fy = (clampY(s.ys[i]) - y_min) / (y_max - y_min);
            auto cx = static_cast<size_t>(
                fx * static_cast<double>(width - 1));
            auto cy = static_cast<size_t>(
                fy * static_cast<double>(height - 1));
            canvas[height - 1 - cy][cx] = glyph;
        }
    }

    std::string y_hi = fmtAxis(y_max);
    std::string y_lo = fmtAxis(y_min);
    size_t margin = std::max(y_hi.size(), y_lo.size());
    for (size_t r = 0; r < height; ++r) {
        std::string lbl;
        if (r == 0)
            lbl = y_hi + (yClamp_ > 0.0 && y_max >= yClamp_
                          ? "+" : "");
        else if (r == height - 1)
            lbl = y_lo;
        os << std::string(margin - std::min(margin, lbl.size()),
                          ' ')
           << lbl << " |" << canvas[r] << '\n';
    }
    os << std::string(margin, ' ') << " +"
       << std::string(width, '-') << '\n';
    std::string x_lo = fmtAxis(x_min);
    std::string x_hi = fmtAxis(x_max) +
        (xClamp_ > 0.0 && x_max >= xClamp_ ? "+" : "");
    os << std::string(margin + 2, ' ') << x_lo
       << std::string(width > x_lo.size() + x_hi.size()
                      ? width - x_lo.size() - x_hi.size() : 1, ' ')
       << x_hi << '\n';
    os << std::string(margin + 2, ' ') << "x: " << xLabel_
       << "   y: " << yLabel_ << '\n';
    for (size_t si = 0; si < series_.size(); ++si) {
        os << std::string(margin + 2, ' ') << "  "
           << seriesGlyphs[si % (sizeof(seriesGlyphs) - 1)] << " = "
           << series_[si].label << " (" << series_[si].xs.size()
           << " runs)\n";
    }
}

std::string
ScatterPlot::toString(size_t width, size_t height) const
{
    std::ostringstream oss;
    render(oss, width, height);
    return oss.str();
}

StackedBarChart::StackedBarChart(std::string title,
                                 std::vector<std::string>
                                     segment_names)
    : title_(std::move(title)),
      segmentNames_(std::move(segment_names))
{
}

void
StackedBarChart::addBar(StackedBar bar)
{
    if (bar.segments.size() != segmentNames_.size())
        panic("StackedBar '%s' has %zu segments, chart expects %zu",
              bar.label.c_str(), bar.segments.size(),
              segmentNames_.size());
    bars_.push_back(std::move(bar));
}

void
StackedBarChart::render(std::ostream &os, size_t width) const
{
    os << title_ << '\n';
    if (bars_.empty()) {
        os << "  (no bars)\n";
        return;
    }
    double max_total = 0.0;
    size_t label_width = 0;
    for (const auto &bar : bars_) {
        double total = 0.0;
        for (double v : bar.segments)
            total += std::max(0.0, v);
        max_total = std::max(max_total, total);
        label_width = std::max(label_width, bar.label.size());
    }
    if (max_total <= 0.0)
        max_total = 1.0;

    for (const auto &bar : bars_) {
        os << bar.label
           << std::string(label_width - bar.label.size(), ' ')
           << " |";
        double total = 0.0;
        std::string body;
        for (size_t si = 0; si < bar.segments.size(); ++si) {
            double v = std::max(0.0, bar.segments[si]);
            total += v;
            auto chars = static_cast<size_t>(
                std::round(v / max_total *
                           static_cast<double>(width)));
            body.append(chars,
                        segmentGlyphs[si % (sizeof(segmentGlyphs) -
                                            1)]);
        }
        os << body << "  " << fmtAxis(total) << '\n';
    }
    os << std::string(label_width, ' ') << " +"
       << std::string(width, '-') << "> FIT [a.u.]\n";
    os << "legend:";
    for (size_t si = 0; si < segmentNames_.size(); ++si) {
        os << "  "
           << segmentGlyphs[si % (sizeof(segmentGlyphs) - 1)]
           << " = " << segmentNames_[si];
    }
    os << '\n';
}

std::string
StackedBarChart::toString(size_t width) const
{
    std::ostringstream oss;
    render(oss, width);
    return oss.str();
}

} // namespace radcrit
