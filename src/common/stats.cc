#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace radcrit
{

void
RunningStat::add(double x)
{
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    size_t n = count_ + other.count_;
    double delta = other.mean_ - mean_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double nn = static_cast<double>(n);
    m2_ = m2_ + other.m2_ + delta * delta * na * nb / nn;
    mean_ = mean_ + delta * nb / nn;
    count_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStat::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::sum() const
{
    return mean_ * static_cast<double>(count_);
}

double
RunningStat::confidenceHalfWidth(double z) const
{
    if (count_ < 2)
        return 0.0;
    return z * stddev() / std::sqrt(static_cast<double>(count_));
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (!(lo < hi))
        panic("Histogram range [%f, %f) is empty", lo, hi);
    if (bins == 0)
        panic("Histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<size_t>(frac *
                                   static_cast<double>(counts_.size()));
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    ++counts_[idx];
}

uint64_t
Histogram::binCount(size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram bin %zu out of range (%zu bins)", i,
              counts_.size());
    return counts_[i];
}

double
Histogram::binLo(size_t i) const
{
    double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(i);
}

double
Histogram::binHi(size_t i) const
{
    return binLo(i + 1);
}

double
Histogram::entropyBits() const
{
    if (total_ == 0)
        return 0.0;
    double entropy = 0.0;
    auto accumulate = [&](uint64_t c) {
        if (c == 0)
            return;
        double p = static_cast<double>(c) /
            static_cast<double>(total_);
        entropy -= p * std::log2(p);
    };
    for (uint64_t c : counts_)
        accumulate(c);
    accumulate(underflow_);
    accumulate(overflow_);
    return entropy;
}

double
quantile(std::vector<double> samples, double p)
{
    if (samples.empty())
        panic("quantile of empty sample set");
    if (p < 0.0 || p > 1.0)
        panic("quantile p=%f outside [0, 1]", p);
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples[0];
    double pos = p * static_cast<double>(samples.size() - 1);
    auto lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, samples.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

} // namespace radcrit
