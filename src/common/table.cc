#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace radcrit
{

TextTable::TextTable(std::string title)
    : title_(std::move(title))
{
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::num(int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    return buf;
}

std::string
TextTable::num(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
TextTable::render(std::ostream &os) const
{
    size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());
    if (cols == 0)
        return;

    std::vector<size_t> width(cols, 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    size_t total = 0;
    for (size_t w : width)
        total += w + 3;
    total = total > 1 ? total - 1 : total;

    auto renderRow = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < cols; ++i) {
            std::string cell = i < row.size() ? row[i] : "";
            os << cell
               << std::string(width[i] - cell.size(), ' ');
            if (i + 1 < cols)
                os << " | ";
        }
        os << '\n';
    };

    if (!title_.empty())
        os << title_ << '\n';
    if (!header_.empty()) {
        renderRow(header_);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_) {
        if (row.empty())
            os << std::string(total, '-') << '\n';
        else
            renderRow(row);
    }
}

std::string
TextTable::toString() const
{
    std::ostringstream oss;
    render(oss);
    return oss.str();
}

} // namespace radcrit
