/**
 * @file
 * Plain-text table renderer used by benches to print paper tables.
 */

#ifndef RADCRIT_COMMON_TABLE_HH
#define RADCRIT_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace radcrit
{

/**
 * Column-aligned text table with an optional title and header row.
 *
 * Cells are strings; numeric convenience setters format with a fixed
 * precision. Rendering pads every column to its widest cell.
 */
class TextTable
{
  public:
    /** @param title Optional table title printed above the header. */
    explicit TextTable(std::string title = "");

    /** Set the header row (also fixes the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append a row; it may be shorter than the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Format an integer. */
    static std::string num(int64_t v);

    /** Format an unsigned integer. */
    static std::string num(uint64_t v);

    /** Render the table to the given stream. */
    void render(std::ostream &os) const;

    /** Render the table to a string. */
    std::string toString() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    /** Separator rows are encoded as empty vectors. */
    std::vector<std::vector<std::string>> rows_;
};

} // namespace radcrit

#endif // RADCRIT_COMMON_TABLE_HH
