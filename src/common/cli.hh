/**
 * @file
 * Tiny command-line option parser shared by examples and benches.
 *
 * Supports --name=value and --name value forms plus boolean flags.
 * Unknown options are a fatal() (user error), matching gem5's
 * fatal-vs-panic discipline.
 */

#ifndef RADCRIT_COMMON_CLI_HH
#define RADCRIT_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace radcrit
{

/**
 * Declarative option set: register options with defaults and help
 * text, then parse argv.
 */
class CliParser
{
  public:
    /** @param program_name Used in the usage banner. */
    explicit CliParser(std::string program_name);

    /** Register a string option. */
    void addString(const std::string &name, std::string def,
                   std::string help);

    /** Register an integer option. */
    void addInt(const std::string &name, int64_t def,
                std::string help);

    /** Register a floating-point option. */
    void addDouble(const std::string &name, double def,
                   std::string help);

    /** Register a boolean flag (presence => true). */
    void addFlag(const std::string &name, std::string help);

    /**
     * Parse argv. Prints usage and exits 0 on --help; fatal() on
     * unknown options or malformed values.
     */
    void parse(int argc, const char *const *argv);

    /** @return string value for a registered string option. */
    std::string getString(const std::string &name) const;

    /** @return integer value for a registered int option. */
    int64_t getInt(const std::string &name) const;

    /** @return double value for a registered double option. */
    double getDouble(const std::string &name) const;

    /** @return true if the flag was supplied. */
    bool getFlag(const std::string &name) const;

    /** @return positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Render the usage/help text. */
    std::string usage() const;

  private:
    enum class Kind { String, Int, Double, Flag };

    struct Option
    {
        Kind kind;
        std::string value;
        std::string def;
        std::string help;
        bool seen = false;
    };

    const Option &lookup(const std::string &name, Kind kind) const;

    std::string programName_;
    std::map<std::string, Option> options_;
    std::vector<std::string> order_;
    std::vector<std::string> positional_;
};

} // namespace radcrit

#endif // RADCRIT_COMMON_CLI_HH
