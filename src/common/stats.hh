/**
 * @file
 * Streaming statistics accumulators used throughout campaign analysis.
 */

#ifndef RADCRIT_COMMON_STATS_HH
#define RADCRIT_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace radcrit
{

/**
 * Welford-style streaming accumulator for mean/variance plus min/max.
 */
class RunningStat
{
  public:
    RunningStat() = default;

    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStat &other);

    /** @return number of samples accumulated. */
    size_t count() const { return count_; }

    /** @return sample mean (0 when empty). */
    double mean() const;

    /** @return unbiased sample variance (0 when count < 2). */
    double variance() const;

    /** @return unbiased sample standard deviation. */
    double stddev() const;

    /** @return smallest sample (+inf when empty). */
    double min() const { return min_; }

    /** @return largest sample (-inf when empty). */
    double max() const { return max_; }

    /** @return sum of all samples. */
    double sum() const;

    /**
     * @return the half-width of the normal-approximation confidence
     * interval at the given z value (default 1.96 for ~95%).
     */
    double confidenceHalfWidth(double z = 1.96) const;

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 1.0 / 0.0;
    double max_ = -1.0 / 0.0;
};

/**
 * Fixed-bin histogram over [lo, hi) with under/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower bound of the binned range.
     * @param hi Exclusive upper bound of the binned range.
     * @param bins Number of equal-width bins (> 0).
     */
    Histogram(double lo, double hi, size_t bins);

    /** Add a sample, routing out-of-range values to overflow bins. */
    void add(double x);

    /** @return count in bin i (0 <= i < bins()). */
    uint64_t binCount(size_t i) const;

    /** @return number of samples below the histogram range. */
    uint64_t underflow() const { return underflow_; }

    /** @return number of samples at or above the range. */
    uint64_t overflow() const { return overflow_; }

    /** @return total samples including under/overflow. */
    uint64_t total() const { return total_; }

    /** @return number of regular bins. */
    size_t bins() const { return counts_.size(); }

    /** @return inclusive lower edge of bin i. */
    double binLo(size_t i) const;

    /** @return exclusive upper edge of bin i. */
    double binHi(size_t i) const;

    /**
     * Shannon entropy (bits) of the normalized bin distribution,
     * including under/overflow mass. Used by the stencil entropy
     * detector.
     */
    double entropyBits() const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

/**
 * @return the p-quantile (0 <= p <= 1) of the given samples using
 * linear interpolation; the input vector is copied and sorted.
 */
double quantile(std::vector<double> samples, double p);

} // namespace radcrit

#endif // RADCRIT_COMMON_STATS_HH
