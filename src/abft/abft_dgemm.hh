/**
 * @file
 * Algorithm-Based Fault Tolerance for matrix multiplication
 * (Huang & Abraham, paper ref. [20]).
 *
 * A and B are extended with column/row checksums; after the
 * multiply, row and column sums of C must match checksums computed
 * from the inputs. Single and line errors are located and corrected
 * in linear time (refs. [33], [47]); square and random patterns are
 * detected but not correctable — which is exactly why the paper's
 * spatial-locality metric matters: it predicts how much of a
 * device's error population ABFT can absorb (Section V-A: 60-80% of
 * all errors remain on the Xeon Phi, 20-40% on the K40).
 */

#ifndef RADCRIT_ABFT_ABFT_DGEMM_HH
#define RADCRIT_ABFT_ABFT_DGEMM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace radcrit
{

/**
 * Checksum-based verifier/corrector for C = A * B.
 */
class AbftDgemm
{
  public:
    /** Outcome of a check-and-correct pass. */
    enum class Status : uint8_t
    {
        /** All checksums match: no (detectable) corruption. */
        Clean,
        /** Mismatches located and corrected in place. */
        Corrected,
        /** Corruption detected but not correctable (square/random
         * patterns or colliding lines). */
        DetectedUncorrectable
    };

    /** Result details. */
    struct Verdict
    {
        Status status = Status::Clean;
        /** Elements corrected (when status == Corrected). */
        size_t correctedElements = 0;
        /** Mismatching row count at detection time. */
        size_t badRows = 0;
        /** Mismatching column count at detection time. */
        size_t badCols = 0;
    };

    /**
     * Precompute input checksums.
     *
     * @param a Row-major n x n input A.
     * @param b Row-major n x n input B.
     * @param n Matrix side.
     * @param rel_tolerance Relative checksum tolerance absorbing FP
     * rounding (default 1e-9).
     */
    AbftDgemm(const std::vector<double> &a,
              const std::vector<double> &b, int64_t n,
              double rel_tolerance = 1e-9);

    /**
     * Verify a candidate output and correct it in place when the
     * mismatch pattern allows.
     *
     * @param c Row-major candidate output; corrected in place.
     */
    Verdict checkAndCorrect(std::vector<double> &c) const;

    /** @return expected row-sum checksums of C. */
    const std::vector<double> &expectedRowSums() const
    {
        return rowSums_;
    }

    /** @return expected column-sum checksums of C. */
    const std::vector<double> &expectedColSums() const
    {
        return colSums_;
    }

  private:
    bool rowMismatch(double actual, double expected) const;

    int64_t n_;
    double relTol_;
    /** rowSums_[i] = sum_j C[i][j] expected from A * (B * e). */
    std::vector<double> rowSums_;
    /** colSums_[j] = sum_i C[i][j] expected from (e^T * A) * B. */
    std::vector<double> colSums_;
};

} // namespace radcrit

#endif // RADCRIT_ABFT_ABFT_DGEMM_HH
