/**
 * @file
 * Application-level SDC detectors discussed in the paper's
 * evaluation:
 *
 *  - EntropyDetector (Section V-C): for stencil codes, widespread
 *    low-magnitude corruption is hard to spot element-wise, but the
 *    distribution entropy of the field shifts measurably; checking
 *    it at regular intervals trades coverage against overhead.
 *  - MassChecker (Section V-D, ref. [4]): CLAMR conserves total
 *    mass; a corrupted execution violates the invariant, which a
 *    cheap global sum detects (fault-injection coverage ~82% in the
 *    reference, because momentum-only corruption leaves the mass
 *    invariant intact).
 */

#ifndef RADCRIT_ABFT_DETECTORS_HH
#define RADCRIT_ABFT_DETECTORS_HH

#include <cstddef>
#include <vector>

namespace radcrit
{

/**
 * Histogram-entropy drift detector for iterative stencil fields.
 */
class EntropyDetector
{
  public:
    /**
     * Calibrate on the golden final field.
     *
     * @param golden Reference field.
     * @param bins Histogram bins (default 64).
     * @param threshold_bits Entropy drift (bits) that flags an
     * error (default 0.02).
     */
    EntropyDetector(const std::vector<float> &golden,
                    size_t bins = 64,
                    double threshold_bits = 0.02);

    /** @return entropy (bits) of a field under the calibration
     * binning. */
    double entropyBits(const std::vector<float> &field) const;

    /** @return true when the field's entropy drifted beyond the
     * threshold. */
    bool detect(const std::vector<float> &field) const;

    /** @return golden entropy in bits. */
    double goldenEntropyBits() const { return goldenEntropy_; }

  private:
    double lo_;
    double hi_;
    size_t bins_;
    double thresholdBits_;
    double goldenEntropy_;
};

/**
 * Total-mass invariant check for CLAMR-style conservative solvers.
 */
class MassChecker
{
  public:
    /**
     * @param golden_mass Mass of the golden final state.
     * @param rel_tolerance Relative drift allowed for FP rounding
     * (default 1e-9).
     */
    explicit MassChecker(double golden_mass,
                         double rel_tolerance = 1e-9);

    /** @return true when the candidate mass violates the
     * invariant. */
    bool detect(double candidate_mass) const;

    /** @return the relative mass drift of a candidate. */
    double relativeDrift(double candidate_mass) const;

  private:
    double goldenMass_;
    double relTol_;
};

} // namespace radcrit

#endif // RADCRIT_ABFT_DETECTORS_HH
