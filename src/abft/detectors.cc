#include "abft/detectors.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace radcrit
{

EntropyDetector::EntropyDetector(const std::vector<float> &golden,
                                 size_t bins,
                                 double threshold_bits)
    : bins_(bins), thresholdBits_(threshold_bits)
{
    if (golden.empty())
        fatal("EntropyDetector needs a non-empty golden field");
    if (bins == 0)
        fatal("EntropyDetector needs at least one bin");
    auto [mn, mx] = std::minmax_element(golden.begin(),
                                        golden.end());
    lo_ = static_cast<double>(*mn);
    hi_ = static_cast<double>(*mx);
    if (hi_ <= lo_)
        hi_ = lo_ + 1.0;
    // Widen slightly so small excursions still bin sensibly.
    double pad = 0.05 * (hi_ - lo_);
    lo_ -= pad;
    hi_ += pad;
    goldenEntropy_ = entropyBits(golden);
}

double
EntropyDetector::entropyBits(const std::vector<float> &field) const
{
    Histogram hist(lo_, hi_, bins_);
    for (float v : field)
        hist.add(static_cast<double>(v));
    return hist.entropyBits();
}

bool
EntropyDetector::detect(const std::vector<float> &field) const
{
    return std::abs(entropyBits(field) - goldenEntropy_) >
        thresholdBits_;
}

MassChecker::MassChecker(double golden_mass, double rel_tolerance)
    : goldenMass_(golden_mass), relTol_(rel_tolerance)
{
    if (golden_mass <= 0.0)
        fatal("MassChecker needs a positive golden mass");
}

double
MassChecker::relativeDrift(double candidate_mass) const
{
    return std::abs(candidate_mass - goldenMass_) / goldenMass_;
}

bool
MassChecker::detect(double candidate_mass) const
{
    return relativeDrift(candidate_mass) > relTol_ ||
        std::isnan(candidate_mass);
}

} // namespace radcrit
