#include "abft/abft_dgemm.hh"

#include <cmath>

#include "common/logging.hh"

namespace radcrit
{

AbftDgemm::AbftDgemm(const std::vector<double> &a,
                     const std::vector<double> &b, int64_t n,
                     double rel_tolerance)
    : n_(n), relTol_(rel_tolerance)
{
    if (n <= 0)
        fatal("ABFT matrix side must be positive");
    auto cells = static_cast<size_t>(n) * n;
    if (a.size() != cells || b.size() != cells)
        fatal("ABFT inputs must be %lld x %lld",
              static_cast<long long>(n),
              static_cast<long long>(n));

    // Row checksum vector of B: (B * e)_k = sum_j b[k][j].
    std::vector<double> b_row_sum(n, 0.0);
    for (int64_t k = 0; k < n; ++k) {
        double s = 0.0;
        for (int64_t j = 0; j < n; ++j)
            s += b[k * n + j];
        b_row_sum[k] = s;
    }
    // Column checksum vector of A: (e^T A)_k = sum_i a[i][k].
    std::vector<double> a_col_sum(n, 0.0);
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t k = 0; k < n; ++k)
            a_col_sum[k] += a[i * n + k];
    }

    rowSums_.assign(cells ? static_cast<size_t>(n) : 0, 0.0);
    for (int64_t i = 0; i < n; ++i) {
        double s = 0.0;
        for (int64_t k = 0; k < n; ++k)
            s += a[i * n + k] * b_row_sum[k];
        rowSums_[i] = s;
    }
    colSums_.assign(static_cast<size_t>(n), 0.0);
    for (int64_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (int64_t k = 0; k < n; ++k)
            s += a_col_sum[k] * b[k * n + j];
        colSums_[j] = s;
    }
}

bool
AbftDgemm::rowMismatch(double actual, double expected) const
{
    double scale = std::abs(expected) +
        static_cast<double>(n_);
    return std::abs(actual - expected) > relTol_ * scale ||
        std::isnan(actual);
}

AbftDgemm::Verdict
AbftDgemm::checkAndCorrect(std::vector<double> &c) const
{
    Verdict verdict;
    std::vector<int64_t> bad_rows;
    std::vector<double> row_delta;
    for (int64_t i = 0; i < n_; ++i) {
        double s = 0.0;
        for (int64_t j = 0; j < n_; ++j)
            s += c[i * n_ + j];
        if (rowMismatch(s, rowSums_[i])) {
            bad_rows.push_back(i);
            row_delta.push_back(s - rowSums_[i]);
        }
    }
    std::vector<int64_t> bad_cols;
    std::vector<double> col_delta;
    for (int64_t j = 0; j < n_; ++j) {
        double s = 0.0;
        for (int64_t i = 0; i < n_; ++i)
            s += c[i * n_ + j];
        if (rowMismatch(s, colSums_[j])) {
            bad_cols.push_back(j);
            col_delta.push_back(s - colSums_[j]);
        }
    }
    verdict.badRows = bad_rows.size();
    verdict.badCols = bad_cols.size();

    if (bad_rows.empty() && bad_cols.empty()) {
        verdict.status = Status::Clean;
        return verdict;
    }

    if (bad_rows.size() == 1 && bad_cols.size() == 1) {
        // Single corrupted element at the intersection.
        c[bad_rows[0] * n_ + bad_cols[0]] -= row_delta[0];
        verdict.status = Status::Corrected;
        verdict.correctedElements = 1;
        return verdict;
    }
    if (bad_rows.size() == 1 && bad_cols.size() > 1) {
        // One corrupted row: each column checksum localizes the
        // element's error within that row.
        for (size_t k = 0; k < bad_cols.size(); ++k)
            c[bad_rows[0] * n_ + bad_cols[k]] -= col_delta[k];
        verdict.status = Status::Corrected;
        verdict.correctedElements = bad_cols.size();
        return verdict;
    }
    if (bad_cols.size() == 1 && bad_rows.size() > 1) {
        for (size_t k = 0; k < bad_rows.size(); ++k)
            c[bad_rows[k] * n_ + bad_cols[0]] -= row_delta[k];
        verdict.status = Status::Corrected;
        verdict.correctedElements = bad_rows.size();
        return verdict;
    }

    // Multiple rows AND multiple columns: square/random patterns
    // are not correctable by the checksum scheme.
    verdict.status = Status::DetectedUncorrectable;
    return verdict;
}

} // namespace radcrit
