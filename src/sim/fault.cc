#include "sim/fault.hh"

#include "common/logging.hh"

namespace radcrit
{

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Masked: return "Masked";
      case Outcome::Sdc: return "SDC";
      case Outcome::Crash: return "Crash";
      case Outcome::Hang: return "Hang";
      case Outcome::InfraError: return "infra_error";
      case Outcome::InfraTimeout: return "infra_timeout";
      default:
        panic("outcomeName: invalid outcome %d",
              static_cast<int>(o));
    }
}

} // namespace radcrit
