#include "sim/sampler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace radcrit
{

StrikeSampler::StrikeSampler(const DeviceModel &device,
                             const KernelLaunch &launch)
    : device_(device), launch_(launch)
{
    for (const auto &res : device.resources) {
        double sens = isStorage(res.kind)
            ? device.storageSensitivity
            : device.logicSensitivity;
        double w = res.sizeBits * sens * res.eccSurvival *
            launch.traits.util(res.kind);
        if (res.kind == ResourceKind::Scheduler)
            w *= launch.schedulerStrain;
        if (res.kind == ResourceKind::RegisterFile)
            w *= launch.registerExposure;
        weights_[static_cast<size_t>(res.kind)] = w;
        totalWeight_ += w;
    }
    if (totalWeight_ <= 0.0)
        panic("launch of %s on %s exercises no sensitive resource",
              launch.traits.name.c_str(), device.name.c_str());
}

double
StrikeSampler::weight(ResourceKind kind) const
{
    return weights_[static_cast<size_t>(kind)];
}

ResourceKind
StrikeSampler::sampleResource(Rng &rng) const
{
    double pick = rng.uniform() * totalWeight_;
    for (size_t i = 0; i < numResourceKinds; ++i) {
        pick -= weights_[i];
        if (pick <= 0.0 && weights_[i] > 0.0)
            return static_cast<ResourceKind>(i);
    }
    // Numerical tail: return the last nonzero-weight resource.
    for (size_t i = numResourceKinds; i-- > 0;) {
        if (weights_[i] > 0.0)
            return static_cast<ResourceKind>(i);
    }
    panic("StrikeSampler::sampleResource: no nonzero weight");
}

Outcome
StrikeSampler::sampleOutcome(ResourceKind kind, Rng &rng) const
{
    OutcomeProfile p = device_.resource(kind).outcome;

    // Storage strikes crash mainly through corrupted addresses and
    // tags; small-footprint codes keep corrupted addresses inside
    // the resident set and see data corruption instead.
    double cx = launch_.traits.crashExposure;
    if (cx < 1.0 && isStorage(kind)) {
        double moved = (p.pCrash + p.pHang) * (1.0 - cx);
        p.pSdc += moved;
        p.pCrash *= cx;
        p.pHang *= cx;
    }

    // Control-flow-heavy kernels (CLAMR) convert more upsets in
    // logic/scheduling resources into crashes and hangs.
    double cf = launch_.traits.controlFlowIntensity;
    if (cf > 0.0 && isLogic(kind)) {
        double boost = 1.0 + 0.8 * cf;
        double extra = (p.pCrash + p.pHang) * (boost - 1.0);
        extra = std::min(extra, p.pSdc * 0.8);
        double ch = p.pCrash + p.pHang;
        if (ch > 0.0) {
            p.pCrash += extra * (p.pCrash / ch);
            p.pHang += extra * (p.pHang / ch);
            p.pSdc -= extra;
        }
    }

    double pick = rng.uniform();
    if ((pick -= p.pSdc) <= 0.0)
        return Outcome::Sdc;
    if ((pick -= p.pCrash) <= 0.0)
        return Outcome::Crash;
    if ((pick -= p.pHang) <= 0.0)
        return Outcome::Hang;
    return Outcome::Masked;
}

Strike
StrikeSampler::sampleStrike(Rng &rng) const
{
    Strike s;
    s.resource = sampleResource(rng);
    s.manifestation = device_.sampleManifestation(s.resource, rng);
    s.timeFraction = rng.uniform();
    s.burstBits = isStorage(s.resource)
        ? device_.sampleBurstBits(rng) : 1;
    s.entropy = rng.next64();
    return s;
}

} // namespace radcrit
