/**
 * @file
 * Accelerated-beam facility model (paper Section IV-D).
 *
 * Models the LANSCE / ISIS experimental setup: a neutron flux 6-8
 * orders of magnitude above the terrestrial reference, a 2-inch beam
 * spot irradiating only the accelerator chip (DRAM stays outside),
 * several boards at different distances with de-rating factors, and
 * the tuning rule that keeps observed error rates below 1e-3
 * errors/execution so that at most one neutron corrupts a run.
 *
 * The facility converts between beam exposure and expected strike
 * counts, and scales observed error rates to FIT at the terrestrial
 * reference flux of 13 n/(cm^2 h) (JEDEC JESD89A, paper ref. [23]).
 */

#ifndef RADCRIT_SIM_BEAM_HH
#define RADCRIT_SIM_BEAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace radcrit
{

class Rng;

/** Terrestrial reference flux at sea level, n/(cm^2 h). */
constexpr double terrestrialFluxPerCm2Hour = 13.0;

/** One board placed in the beam line. */
struct BoardPlacement
{
    /** Label, e.g. "K40 #1". */
    std::string label;
    /** Distance from the neutron source, metres. */
    double distanceM = 1.0;
    /**
     * De-rating factor applied for distance attenuation; effective
     * flux = facility flux * derating.
     */
    double derating = 1.0;
};

/**
 * Beam facility configuration.
 */
struct BeamFacility
{
    /** Facility name: "LANSCE" or "ISIS". */
    std::string name = "LANSCE";
    /** Beam flux in n/(cm^2 s) (1e5 at ISIS to 2.5e6 at LANSCE). */
    double fluxPerCm2s = 1e6;
    /** Beam spot diameter in inches (2 in the paper). */
    double spotDiameterInch = 2.0;
    /** Boards irradiated in parallel. */
    std::vector<BoardPlacement> boards;

    /** @return acceleration factor over the terrestrial flux. */
    double accelerationFactor() const;

    /** @return beam spot area in cm^2. */
    double spotAreaCm2() const;
};

/** @return the standard two-K40 + two-Phi LANSCE setup of Fig. 1. */
BeamFacility makePaperSetup();

/**
 * Bookkeeping of one beam campaign: exposure, executions, errors.
 */
class BeamExposure
{
  public:
    /**
     * @param facility The facility configuration.
     * @param chip_cross_section_cm2 Sensitive chip area under beam.
     * @param run_seconds Wall time of one code execution.
     */
    BeamExposure(const BeamFacility &facility,
                 double chip_cross_section_cm2, double run_seconds);

    /**
     * Expected strikes (upsets anywhere in the chip) per execution,
     * given a device raw cross-section expressed as upsets per
     * n/cm^2 of fluence.
     */
    double expectedStrikesPerRun(double upsets_per_fluence) const;

    /**
     * Sample how many strikes one execution receives (Poisson).
     */
    uint64_t sampleStrikes(double upsets_per_fluence,
                           Rng &rng) const;

    /**
     * @return true when the configuration honours the paper's
     * single-strike tuning rule (observed error rate < 1e-3 per
     * execution).
     */
    bool honoursSingleStrikeRule(double upsets_per_fluence,
                                 double p_error_given_strike) const;

    /** Fluence accumulated over the given beam-hours, n/cm^2. */
    double fluence(double beam_hours) const;

    /**
     * Scale an error count observed under beam to FIT (failures per
     * 1e9 device-hours) at terrestrial flux.
     *
     * @param errors Observed errors.
     * @param beam_hours Beam time over which they were observed.
     */
    double fitAtSeaLevel(double errors, double beam_hours) const;

    /**
     * Natural-environment hours equivalent to the given beam hours
     * (the paper quotes >= 8e8 hours, about 91,000 years).
     */
    double equivalentNaturalHours(double beam_hours) const;

    /** @return per-run fluence, n/cm^2. */
    double runFluence() const;

  private:
    BeamFacility facility_;
    double chipCrossSectionCm2_;
    double runSeconds_;
};

} // namespace radcrit

#endif // RADCRIT_SIM_BEAM_HH
