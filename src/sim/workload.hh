/**
 * @file
 * Abstract workload interface implemented by the four kernels.
 *
 * A Workload is bound to one device model at construction (the paper
 * runs the same high-level code on both devices, but the post
 * compiler code, tiling and tuning differ — Section IV-B). It can
 * compute a golden output and replay an execution with one strike
 * applied, returning the mismatch log exactly like the paper's host
 * comparing against a pre-computed golden output (Section IV-D).
 */

#ifndef RADCRIT_SIM_WORKLOAD_HH
#define RADCRIT_SIM_WORKLOAD_HH

#include <memory>
#include <string>

#include "arch/device.hh"
#include "exec/launch.hh"
#include "metrics/sdcrecord.hh"
#include "sim/fault.hh"

namespace radcrit
{

class Rng;

/**
 * One benchmark bound to one device configuration.
 *
 * Threading contract: inject() is deterministic (a pure function of
 * the Strike) but may scribble on internal scratch buffers, so
 * concurrent inject() calls on the *same* instance are not allowed.
 * Parallel campaigns give every worker its own instance via
 * clone(); clones share immutable golden data where that is cheap
 * and are safe to use from different threads concurrently.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /**
     * @return an independent copy of this workload bound to the
     * same device and input: identical name/label/traits/golden
     * output, with private scratch state so the copy can run
     * inject() concurrently with the original. Large immutable
     * buffers (golden outputs, replay checkpoints) are shared
     * between clones.
     */
    virtual std::unique_ptr<Workload> clone() const = 0;

    /** @return workload name ("DGEMM", "LavaMD", ...). */
    virtual const std::string &name() const = 0;

    /** @return a human-readable input-size label ("2048x2048"). */
    virtual std::string inputLabel() const = 0;

    /** @return the static launch traits on the bound device. */
    virtual const WorkloadTraits &traits() const = 0;

    /**
     * Execute once with the strike applied and compare against the
     * golden output.
     *
     * @param strike The strike to apply.
     * @param rng Randomness source for strike-local choices.
     * @return the mismatch log; empty when the strike is masked by
     * the computation.
     */
    virtual SdcRecord inject(const Strike &strike, Rng &rng) = 0;

    /** Output geometry of the workload (dims and extents). */
    virtual SdcRecord emptyRecord() const = 0;
};

} // namespace radcrit

#endif // RADCRIT_SIM_WORKLOAD_HH
