/**
 * @file
 * Strike descriptors: what one neutron did to the device.
 *
 * Experiments are tuned so at most one neutron generates a failure
 * per execution (paper Section IV-D, error rate < 1e-3 per run), so
 * a faulty run is fully described by a single Strike.
 */

#ifndef RADCRIT_SIM_FAULT_HH
#define RADCRIT_SIM_FAULT_HH

#include <cstdint>

#include "arch/manifestation.hh"
#include "arch/resource.hh"

namespace radcrit
{

/**
 * One neutron strike surviving to program visibility.
 */
struct Strike
{
    /** Which architectural resource was upset. */
    ResourceKind resource = ResourceKind::RegisterFile;
    /** How the upset manifests to the kernel. */
    Manifestation manifestation = Manifestation::BitFlipValue;
    /** When during execution the strike lands, uniform in [0, 1). */
    double timeFraction = 0.0;
    /** Bits flipped by the (possibly multi-cell) upset. */
    uint32_t burstBits = 1;
    /** Seed for the kernel's strike-local random choices. */
    uint64_t entropy = 0;
};

/**
 * Program-level outcome classes (paper Section II-A), plus the two
 * infrastructure outcomes a beam campaign's own harness can
 * produce: a run whose execution machinery failed permanently
 * (infra_error) or overran its watchdog deadline on every attempt
 * (infra_timeout). Infra outcomes describe the harness, not the
 * device under test — they never appear without injected or real
 * infrastructure faults, and they are excluded from AVF.
 */
enum class Outcome : uint8_t
{
    /** No effect on the output. */
    Masked,
    /** Silent Data Corruption: wrong output, no indication. */
    Sdc,
    /** Application crash (detectable). */
    Crash,
    /** System hang; node reboot required (detectable). */
    Hang,
    /** Run quarantined: execution failed on every attempt. */
    InfraError,
    /** Run quarantined: soft deadline exceeded on every attempt. */
    InfraTimeout,

    NumOutcomes
};

/** Number of outcome classes for array sizing. */
constexpr size_t numOutcomes =
    static_cast<size_t>(Outcome::NumOutcomes);

/** @return a stable printable name of the outcome. */
const char *outcomeName(Outcome o);

} // namespace radcrit

#endif // RADCRIT_SIM_FAULT_HH
