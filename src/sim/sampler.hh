/**
 * @file
 * Area- and utilization-weighted strike sampling.
 *
 * The sampler turns a (device, launch) pair into a probability
 * distribution over strike targets: each resource's effective
 * sensitive area is
 *
 *   size_bits * sensitivity * ecc_survival * utilization
 *     * scheduler_strain   (Scheduler only)
 *     * register_exposure  (RegisterFile only, K40-style devices)
 *
 * The sum of these weights is the launch's total sensitive area in
 * arbitrary units; relative FIT values are proportional to it, which
 * is how input size moves the FIT series (paper Section V-A).
 */

#ifndef RADCRIT_SIM_SAMPLER_HH
#define RADCRIT_SIM_SAMPLER_HH

#include <array>

#include "arch/device.hh"
#include "exec/launch.hh"
#include "sim/fault.hh"

namespace radcrit
{

class Rng;

/**
 * Samples strikes and their program-level outcomes for one launch on
 * one device.
 */
class StrikeSampler
{
  public:
    /**
     * @param device The device model (must outlive the sampler).
     * @param launch The dynamic launch view on that device.
     */
    StrikeSampler(const DeviceModel &device,
                  const KernelLaunch &launch);

    /** @return effective sensitive weight of one resource (a.u.). */
    double weight(ResourceKind kind) const;

    /** @return total sensitive area over all resources (a.u.). */
    double totalWeight() const { return totalWeight_; }

    /** Sample the struck resource proportionally to the weights. */
    ResourceKind sampleResource(Rng &rng) const;

    /**
     * Sample a program-level outcome for a strike in the given
     * resource. Control-flow-heavy kernels turn more upsets into
     * crashes/hangs (paper Section V: "Observed differences may be
     * dependent on algorithm control-flow characteristics").
     */
    Outcome sampleOutcome(ResourceKind kind, Rng &rng) const;

    /** Sample a complete strike (resource, manifestation, timing). */
    Strike sampleStrike(Rng &rng) const;

    /** @return the device this sampler targets. */
    const DeviceModel &device() const { return device_; }

    /** @return the launch this sampler targets. */
    const KernelLaunch &launch() const { return launch_; }

  private:
    const DeviceModel &device_;
    KernelLaunch launch_;
    std::array<double, numResourceKinds> weights_{};
    double totalWeight_ = 0.0;
};

} // namespace radcrit

#endif // RADCRIT_SIM_SAMPLER_HH
