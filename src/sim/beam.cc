#include "sim/beam.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace radcrit
{

double
BeamFacility::accelerationFactor() const
{
    double flux_per_hour = fluxPerCm2s * 3600.0;
    return flux_per_hour / terrestrialFluxPerCm2Hour;
}

double
BeamFacility::spotAreaCm2() const
{
    double radius_cm = spotDiameterInch * 2.54 / 2.0;
    return M_PI * radius_cm * radius_cm;
}

BeamFacility
makePaperSetup()
{
    BeamFacility f;
    f.name = "LANSCE";
    f.fluxPerCm2s = 1e6;
    f.spotDiameterInch = 2.0;
    // Two K40s and two Xeon Phis in the beam line at increasing
    // distance; de-rating compensates distance attenuation (after
    // de-rating, sensitivity is position-independent, Section IV-D).
    f.boards = {
        {"K40 #1", 1.0, 1.00},
        {"K40 #2", 1.5, 0.82},
        {"XeonPhi #1", 2.0, 0.69},
        {"XeonPhi #2", 2.5, 0.58},
    };
    return f;
}

BeamExposure::BeamExposure(const BeamFacility &facility,
                           double chip_cross_section_cm2,
                           double run_seconds)
    : facility_(facility),
      chipCrossSectionCm2_(chip_cross_section_cm2),
      runSeconds_(run_seconds)
{
    if (chip_cross_section_cm2 <= 0.0)
        fatal("chip cross-section must be positive (got %g)",
              chip_cross_section_cm2);
    if (run_seconds <= 0.0)
        fatal("run time must be positive (got %g)", run_seconds);
}

double
BeamExposure::runFluence() const
{
    return facility_.fluxPerCm2s * runSeconds_;
}

double
BeamExposure::expectedStrikesPerRun(double upsets_per_fluence) const
{
    return runFluence() * upsets_per_fluence;
}

uint64_t
BeamExposure::sampleStrikes(double upsets_per_fluence,
                            Rng &rng) const
{
    return rng.poisson(expectedStrikesPerRun(upsets_per_fluence));
}

bool
BeamExposure::honoursSingleStrikeRule(
    double upsets_per_fluence, double p_error_given_strike) const
{
    double errors_per_run = expectedStrikesPerRun(upsets_per_fluence)
        * p_error_given_strike;
    return errors_per_run < 1e-3;
}

double
BeamExposure::fluence(double beam_hours) const
{
    return facility_.fluxPerCm2s * 3600.0 * beam_hours;
}

double
BeamExposure::fitAtSeaLevel(double errors, double beam_hours) const
{
    if (beam_hours <= 0.0)
        fatal("beam_hours must be positive (got %g)", beam_hours);
    // Errors per unit fluence times terrestrial flux gives errors
    // per hour in the natural environment; FIT is per 1e9 hours.
    double errors_per_fluence = errors / fluence(beam_hours);
    double errors_per_hour = errors_per_fluence *
        terrestrialFluxPerCm2Hour;
    return errors_per_hour * 1e9;
}

double
BeamExposure::equivalentNaturalHours(double beam_hours) const
{
    return beam_hours * facility_.accelerationFactor();
}

} // namespace radcrit
