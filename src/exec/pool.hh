/**
 * @file
 * Deterministic worker pool for embarrassingly parallel index
 * ranges.
 *
 * The pool partitions [0, count) into one contiguous chunk per
 * worker (static chunking, no work stealing), so the mapping from
 * item index to worker is a pure function of (count, jobs). Work
 * whose output depends only on the item index — like the campaign
 * engine's seed-split runs — therefore produces identical results
 * for any worker count. Used by the campaign runner, the suite
 * scheduler, and available to benches.
 *
 * Worker threads are persistent: they are spawned lazily on the
 * first parallel dispatch and then parked on a condition variable
 * between dispatches, so a pool reused across many campaigns (the
 * suite scheduler runs every distinct campaign of a whole
 * experiment suite on one pool) pays thread-creation cost once
 * instead of once per campaign. The serial path (jobs == 1, or a
 * single item) never spawns a thread at all.
 */

#ifndef RADCRIT_EXEC_POOL_HH
#define RADCRIT_EXEC_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace radcrit
{

/**
 * Utilization accounting of one forChunks() dispatch: how long the
 * dispatch took wall-clock, and how much of it each worker spent
 * inside the body versus idle (its chunk finished before the
 * slowest worker's). Filled by the pool itself so the numbers are
 * measured around exactly the code the pool ran; the campaign
 * runner publishes them into the stats registry under "pool.*".
 */
struct PoolRunStats
{
    /** Per-worker share of the dispatch. */
    struct Worker
    {
        /** Nanoseconds this worker spent inside the body. */
        uint64_t busyNs = 0;
        /** Items in this worker's chunk(s). */
        uint64_t items = 0;
        /**
         * Chunks this worker executed: always 1 for a static
         * forChunks() dispatch, the number of claimed grains for a
         * dynamic forDynamic() dispatch (the load-balance view: a
         * worker stuck on a slow item claims fewer chunks).
         */
        uint64_t chunks = 0;
    };

    /** Wall nanoseconds of the whole dispatch (dispatch to join). */
    uint64_t wallNs = 0;
    /** One entry per participating worker, indexed by worker id. */
    std::vector<Worker> workers;

    /** @return summed busy nanoseconds across workers. */
    uint64_t busyNs() const;

    /**
     * @return summed idle nanoseconds: wall time each worker was
     * alive but not executing its chunk (clamped at 0 per worker).
     */
    uint64_t idleNs() const;

    /**
     * @return busy / (workers * wall) in [0, 1]; 1.0 means every
     * worker computed for the full dispatch. 0 when no work ran.
     */
    double utilization() const;

    /**
     * Fold another dispatch's accounting into this one: wall time
     * adds up, and each worker's busy time and item count add up
     * by worker id. The streaming campaign runner dispatches once
     * per batch but publishes one pool.* record per campaign, so
     * single-batch and multi-batch campaigns report through the
     * same instruments.
     */
    void absorb(const PoolRunStats &other);
};

/**
 * Fixed-width thread pool over static contiguous chunks.
 *
 * Dispatches are issued from one thread at a time: forChunks() is
 * not reentrant and must not be called concurrently on the same
 * pool (each dispatch blocks its caller until the pool drains, so
 * sequential callers compose naturally).
 */
class WorkerPool
{
  public:
    /**
     * Body invoked once per non-empty chunk.
     *
     * @param worker Zero-based worker index (chunk index).
     * @param begin First item index of the chunk.
     * @param end One past the last item index of the chunk.
     */
    using ChunkBody =
        std::function<void(unsigned worker, uint64_t begin,
                           uint64_t end)>;

    /**
     * @param jobs Requested worker count; 0 selects
     * hardware_concurrency (resolved immediately, see jobs()).
     */
    explicit WorkerPool(unsigned jobs = 0);

    /** Parks, then joins any persistent worker threads. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** @return the resolved worker count (always >= 1). */
    unsigned jobs() const { return jobs_; }

    /**
     * @return dispatches served so far (telemetry: how much reuse a
     * shared pool saw).
     */
    uint64_t dispatches() const { return dispatches_; }

    /**
     * Partition [0, count) into at most jobs() contiguous chunks
     * and run `body` on each chunk concurrently. Worker 0 runs on
     * the calling thread; with a single worker (or a single item)
     * no thread is spawned at all, so the serial path is exactly a
     * plain loop. Blocks until every chunk completed. The first
     * exception thrown by a body is rethrown on the caller after
     * all workers drained.
     *
     * @param stats When non-null, overwritten with the dispatch's
     * utilization accounting (valid once forChunks returns; an
     * empty dispatch leaves it zeroed with no workers).
     */
    void forChunks(uint64_t count, const ChunkBody &body,
                   PoolRunStats *stats = nullptr);

    /**
     * Dynamically scheduled counterpart of forChunks(): workers
     * claim fixed-size grains of [0, count) from a shared atomic
     * cursor until the range is exhausted, so a worker stuck on a
     * slow item does not hold back the rest of the range. The body
     * contract is the same as forChunks() — each claimed
     * [begin, end) is contiguous and every index is delivered
     * exactly once — but the (index -> worker) mapping is now
     * timing-dependent, so callers needing deterministic output
     * must make the body's effect a pure function of the index
     * range, not of `worker`. Worker 0 runs on the calling thread;
     * blocks until the range drains; the first body exception stops
     * further claims and is rethrown on the caller.
     *
     * This is the multi-client scheduling substrate for the suite's
     * sharded campaign prepass: heterogeneous campaigns flattened
     * into one index space, grains claimed across campaign
     * boundaries so small campaigns pack alongside large ones.
     *
     * @param grain Items per claimed chunk (0 is treated as 1).
     * @param stats As with forChunks(); Worker::chunks counts the
     * grains each worker claimed.
     */
    void forDynamic(uint64_t count, uint64_t grain,
                    const ChunkBody &body,
                    PoolRunStats *stats = nullptr);

    /**
     * Resolve a requested job count: 0 becomes
     * std::thread::hardware_concurrency() (itself clamped to >= 1),
     * anything else passes through.
     */
    static unsigned resolveJobs(unsigned requested);

    /**
     * Job count requested via the RADCRIT_JOBS environment
     * variable, or `fallback` when unset or unparsable. A value of
     * 0 means "all hardware threads", as with --jobs.
     */
    static unsigned envJobs(unsigned fallback);

    /**
     * Chunk of worker `worker` when `count` items are split over
     * `workers` chunks: the first count % workers chunks get one
     * extra item.
     *
     * @return [begin, end) item range (empty when there is no work
     * left for this worker).
     */
    static std::pair<uint64_t, uint64_t>
    chunkBounds(uint64_t count, unsigned workers, unsigned worker);

  private:
    /** One parked dispatch, shared with the worker threads. */
    struct Dispatch
    {
        uint64_t count = 0;
        unsigned workers = 0;
        const ChunkBody *body = nullptr;
        PoolRunStats *stats = nullptr;
        /**
         * Non-null selects dynamic scheduling: workers claim
         * `grain`-sized chunks from this cursor instead of taking
         * one static chunkBounds() slice. Points at a stack local
         * of forDynamic(), which outlives the dispatch (it blocks
         * until the pool drains).
         */
        std::atomic<uint64_t> *cursor = nullptr;
        uint64_t grain = 0;
    };

    /** Spawn persistent helper threads up to `helpers` total. */
    void ensureThreads(unsigned helpers);

    /** Parked loop of helper thread `index` (worker id index+1). */
    void workerLoop(unsigned index, uint64_t seen_epoch);

    /** Run one worker's chunk, recording stats and first error. */
    void runChunk(unsigned worker, const Dispatch &dispatch);

    unsigned jobs_;
    uint64_t dispatches_ = 0;

    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /** Bumped (under mutex_) once per parallel dispatch. */
    uint64_t epoch_ = 0;
    /** Participating helpers that have not finished this epoch. */
    unsigned pending_ = 0;
    bool stop_ = false;
    Dispatch dispatch_;
    std::exception_ptr firstError_;
};

class StatsRegistry;

/**
 * Publish one pool dispatch's utilization accounting into a
 * registry under "pool.*". These are execution-shape telemetry
 * (they depend on the worker count and on timing), so they go to
 * the global registry only — never into a campaign's own stats
 * snapshot, which must stay identical across --jobs values. An
 * empty accounting (no workers, e.g. a dispatch that never ran)
 * publishes nothing, so the "pool.utilization" gauge is absent —
 * not NaN — when a pool saw no work.
 */
void publishPoolStats(const PoolRunStats &ps, StatsRegistry &reg);

/**
 * How a guarded work item may be retried. The executor treats an
 * attempt that throws as a transient infrastructure error and an
 * attempt that overruns softDeadlineNs as a timeout; either is
 * retried (with exponential backoff) until the attempt budget is
 * spent, at which point the item is quarantined with the status of
 * its last failure.
 */
struct RetryPolicy
{
    /** Total attempts per item (1 = no retry). */
    unsigned maxAttempts = 1;
    /**
     * Soft per-attempt deadline: an attempt measured longer than
     * this counts as a timeout even though it completed (the
     * harness cannot preempt a compute thread, so detection is
     * post-hoc; the watchdog provides the live view). 0 = no
     * deadline.
     */
    uint64_t softDeadlineNs = 0;
    /** Backoff before retry k is backoffBaseNs << (k - 1). */
    uint64_t backoffBaseNs = 1'000'000;
};

/** Terminal status of one guarded item. */
enum class GuardStatus : uint8_t
{
    /** An attempt completed within the deadline. */
    Ok,
    /** Every attempt threw; the item is quarantined. */
    Error,
    /** Every attempt missed the soft deadline; quarantined. */
    Timeout,
};

/** @return a stable printable name of the guard status. */
const char *guardStatusName(GuardStatus status);

/** What happened to one guarded item. */
struct GuardReport
{
    GuardStatus status = GuardStatus::Ok;
    /** Attempts actually made (>= 1). */
    unsigned attempts = 0;
    /** Attempts beyond the first (== attempts - 1). */
    unsigned retries() const { return attempts - 1; }
    /** what() of the last exception; empty unless status==Error. */
    std::string error;
};

/**
 * Run `body` under the retry policy. The body receives the 1-based
 * attempt number so deterministic fault injection can key on it.
 * Exceptions never escape: they are converted into the report.
 */
GuardReport runGuarded(const RetryPolicy &policy,
                       const std::function<void(unsigned attempt)>
                           &body);

/**
 * Liveness monitor for pool workers: each worker publishes the item
 * it is currently executing via beginItem()/endItem(), and a
 * background thread flags items that have been in flight longer
 * than the soft deadline — the live mirror of runGuarded()'s
 * post-hoc timeout classification, so a genuinely stuck run is
 * reported while it is stuck instead of never. Detection only
 * observes: the watchdog cannot preempt a worker, it warns and
 * counts ("resilience.watchdog.overdue" in the global registry).
 *
 * All slot traffic is lock-free atomics, so arming the watchdog
 * adds no synchronization to the run hot path.
 */
class Watchdog
{
  public:
    /**
     * @param workers Number of worker slots to monitor.
     * @param softDeadlineNs Deadline after which an in-flight item
     * is flagged (must be > 0).
     * @param pollIntervalNs Scan period of the monitor thread
     * (default: a quarter of the deadline, clamped to >= 1 ms).
     */
    Watchdog(unsigned workers, uint64_t softDeadlineNs,
             uint64_t pollIntervalNs = 0);

    /** Stops and joins the monitor thread. */
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Mark worker `worker` as executing item `item` from now. */
    void beginItem(unsigned worker, uint64_t item);

    /** Mark worker `worker` as idle. */
    void endItem(unsigned worker);

    /** @return items flagged overdue so far. */
    uint64_t overdue() const { return overdue_.load(); }

  private:
    /**
     * One worker's published state. `sequence` is even when idle
     * and odd when an item is in flight; it increments on every
     * transition, so the monitor can tell a new item from the one
     * it already flagged without locking.
     */
    struct Slot
    {
        std::atomic<uint64_t> sequence{0};
        std::atomic<uint64_t> item{0};
        std::atomic<uint64_t> startNs{0};
    };

    void monitorLoop();

    uint64_t softDeadlineNs_;
    uint64_t pollIntervalNs_;
    std::vector<Slot> slots_;
    /** Last sequence the monitor flagged, per slot. */
    std::vector<uint64_t> flagged_;
    std::atomic<uint64_t> overdue_{0};

    std::mutex mutex_;
    std::condition_variable stopCv_;
    bool stop_ = false;
    std::thread monitor_;
};

} // namespace radcrit

#endif // RADCRIT_EXEC_POOL_HH
