#include "exec/launch.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace radcrit
{

KernelLaunch
buildLaunch(const DeviceModel &device, const WorkloadTraits &traits)
{
    if (traits.totalThreads == 0)
        panic("workload %s launches zero threads",
              traits.name.c_str());
    if (traits.blockThreads == 0)
        panic("workload %s has zero threads per block",
              traits.name.c_str());

    KernelLaunch launch;
    launch.traits = traits;

    uint64_t capacity = device.maxResidentThreads();

    // Scratchpad-limited occupancy (K40 shared memory). A block
    // needs perBlockLocalBytes; each unit can host only as many
    // blocks as fit.
    if (device.sharedMemPerUnitBytes > 0 &&
        traits.perBlockLocalBytes > 0) {
        uint64_t blocks_per_unit = device.sharedMemPerUnitBytes /
            traits.perBlockLocalBytes;
        blocks_per_unit = std::max<uint64_t>(blocks_per_unit, 1);
        uint64_t per_unit = std::min<uint64_t>(
            blocks_per_unit * traits.blockThreads,
            device.maxThreadsPerUnit);
        capacity = std::min<uint64_t>(
            capacity,
            per_unit * device.computeUnits);
    }

    launch.residentThreads = std::min(traits.totalThreads, capacity);
    launch.occupancy = static_cast<double>(launch.residentThreads) /
        static_cast<double>(device.maxResidentThreads());
    launch.waves = static_cast<double>(traits.totalThreads) /
        static_cast<double>(launch.residentThreads);

    // Paper V-A reason (1): hardware schedulers strain with thread
    // count; OS scheduling barely does. Kernels that cannot fill the
    // device (low occupancy) put proportionally less pressure on the
    // scheduler, which is why LavaMD's K40 FIT grows much slower
    // with input than DGEMM's (Section V-B).
    double exponent = device.schedulerStrainExponent *
        (0.5 + 0.5 * std::min(1.0, launch.occupancy));
    double ratio = static_cast<double>(traits.totalThreads) /
        strainReferenceThreads;
    launch.schedulerStrain = std::pow(std::max(ratio, 1e-6),
                                      exponent);
    // Never let strain fall below a floor: even one block needs
    // scheduling machinery powered on.
    launch.schedulerStrain = std::max(launch.schedulerStrain, 0.25);

    // Paper V-A reason (2): on the K40, data of resident-but-waiting
    // threads sits in registers; more waves means longer exposure.
    // The effect saturates: queues and operand collectors have
    // bounded depth, so exposure grows like sqrt(waves) up to 9x.
    if (device.registerResidencyExposure) {
        launch.registerExposure =
            std::sqrt(std::min(std::max(1.0, launch.waves), 81.0));
    } else {
        launch.registerExposure = 1.0;
    }

    // Relative runtime: total arithmetic work divided by the
    // throughput the launch actually achieves (units busy fraction).
    double busy = std::max(launch.occupancy, 1.0 /
                           static_cast<double>(device.computeUnits));
    launch.durationAu = static_cast<double>(traits.totalThreads) *
        traits.flopsPerThread /
        (busy * static_cast<double>(device.maxResidentThreads()));

    return launch;
}

std::string
describeLaunch(const KernelLaunch &launch)
{
    return strprintf(
        "%s: %llu threads (%llu resident, occupancy %.2f, "
        "%.1f waves), scheduler strain %.2f, register exposure "
        "%.2f",
        launch.traits.name.c_str(),
        static_cast<unsigned long long>(launch.traits.totalThreads),
        static_cast<unsigned long long>(launch.residentThreads),
        launch.occupancy, launch.waves, launch.schedulerStrain,
        launch.registerExposure);
}

} // namespace radcrit
