/**
 * @file
 * Kernel launch descriptors and the parallel-execution models that
 * turn a workload's static traits into device-dependent dynamic
 * quantities: occupancy, scheduler strain and register exposure.
 *
 * These two effects are the paper's own explanation (Section V-A) of
 * why input size moves the K40's FIT but barely moves the Xeon
 * Phi's:
 *  (1) more parallel threads strain a *hardware* scheduler, whereas
 *      OS scheduling is largely insensitive to thread count;
 *  (2) the K40 parks waiting-but-resident threads' data in the
 *      register file, so more threads means longer exposure, while
 *      the Phi leaves waiting work in (non-irradiated) DRAM.
 */

#ifndef RADCRIT_EXEC_LAUNCH_HH
#define RADCRIT_EXEC_LAUNCH_HH

#include <array>
#include <cstdint>
#include <string>

#include "arch/device.hh"
#include "arch/resource.hh"

namespace radcrit
{

/**
 * Static, device-independent description of one workload
 * configuration, provided by each kernel implementation.
 */
struct WorkloadTraits
{
    /** Workload name, e.g. "DGEMM". */
    std::string name;
    /** Total parallel threads the launch instantiates. */
    uint64_t totalThreads = 0;
    /** Threads per block / chunk. */
    uint64_t blockThreads = 1;
    /** Scratchpad bytes per block (limits K40 occupancy). */
    uint64_t perBlockLocalBytes = 0;
    /** Architectural registers per thread (32-bit units). */
    uint32_t registersPerThread = 32;
    /** Arithmetic work per thread (flops), for duration estimates. */
    double flopsPerThread = 0.0;
    /**
     * Fraction of each resource holding live, consumable state
     * during execution (utilization x liveness). Indexed by
     * ResourceKind. Resources a kernel does not exercise must be 0.
     */
    std::array<double, numResourceKinds> utilization{};
    /** 0..1: how control-flow heavy the kernel is (CLAMR high). */
    double controlFlowIntensity = 0.0;
    /** 0..1: transcendental-unit usage (LavaMD high). */
    double sfuIntensity = 0.0;
    /** Number of kernel invocations per run (CLAMR: one per step). */
    uint64_t kernelInvocations = 1;
    /** True for double-precision dominated codes. */
    bool doublePrecision = true;
    /**
     * 0..1: how often a corrupted address/tag in storage escalates
     * to a crash/hang. Codes with a small resident footprint
     * (HotSpot) keep corrupted addresses inside mapped memory, so
     * storage strikes mostly stay silent data corruptions.
     */
    double crashExposure = 1.0;

    /** Access utilization by kind. */
    double util(ResourceKind kind) const
    {
        return utilization[static_cast<size_t>(kind)];
    }

    /** Set utilization by kind. */
    void setUtil(ResourceKind kind, double u)
    {
        utilization[static_cast<size_t>(kind)] = u;
    }
};

/**
 * Device-dependent dynamic view of one launch.
 */
struct KernelLaunch
{
    WorkloadTraits traits;
    /** Threads simultaneously resident on the device. */
    uint64_t residentThreads = 0;
    /** residentThreads / device capacity, in [0, 1]. */
    double occupancy = 0.0;
    /** totalThreads / residentThreads, >= 1. */
    double waves = 1.0;
    /** Multiplier on the scheduler's effective sensitive area. */
    double schedulerStrain = 1.0;
    /** Multiplier on the register file's effective exposure. */
    double registerExposure = 1.0;
    /** Relative execution time, arbitrary units. */
    double durationAu = 1.0;
};

/**
 * Build the dynamic launch view of a workload on a device.
 *
 * Occupancy is limited by the device thread capacity and, when the
 * device has a scratchpad (K40 shared memory), by per-block
 * scratchpad demand. Scheduler strain follows
 * (totalThreads / strainReferenceThreads)^(e_dev * (0.5 + 0.5*occ)),
 * so scratchpad-starved kernels (LavaMD) see muted strain growth, as
 * observed in the paper (Section V-B). Register exposure is
 * sqrt(waves) on devices with registerResidencyExposure.
 */
KernelLaunch buildLaunch(const DeviceModel &device,
                         const WorkloadTraits &traits);

/**
 * Reference thread count at which scheduler strain is 1.0. Chosen as
 * the scaled-default DGEMM base size (512^2/16 threads) so relative
 * FIT series match the paper's smallest-input normalization.
 */
constexpr double strainReferenceThreads = 16384.0;

/**
 * One-line human-readable summary of a launch (thread counts,
 * occupancy, waves, strain) for progress reporting and campaign
 * telemetry headers.
 */
std::string describeLaunch(const KernelLaunch &launch);

} // namespace radcrit

#endif // RADCRIT_EXEC_LAUNCH_HH
