/**
 * @file
 * Deterministic chaos injection for the campaign harness itself.
 *
 * The kernel injectors corrupt the *workload under test*; this
 * module is their mirror for the *execution infrastructure*: a
 * ChaosPlan — seeded from the repo Rng exactly like a campaign — is
 * a fixed list of harness faults that make individual run items
 * throw, stall past their watchdog deadline, or corrupt an on-disk
 * store/checkpoint write. The resilience layer (pool watchdog,
 * bounded retry, store quarantine) is then testable against the
 * same failure modes a beam campaign measures: transient faults
 * must be absorbed with bit-identical results, permanent ones must
 * quarantine as first-class infra outcomes.
 *
 * A plan is installed process-wide (like the flight recorder's
 * timeline) via setChaos(); with none installed every hook is a
 * no-op on the hot path. The CLI and suite enable it with
 * --chaos=<spec> or RADCRIT_CHAOS, where <spec> is a comma list of
 * key=value pairs:
 *
 *   seed=42,runs=300,throws=3,stalls=1,corrupts=1,
 *   attempts=2,stall-ms=50
 *
 * meaning: from Rng(42), pick 3 run items in [0, 300) that throw,
 * 1 that stalls 50 ms, and corrupt 1 store write; each run fault
 * fires on the first 2 attempts of its item and then stops
 * (attempts < the retry budget makes every fault transient).
 */

#ifndef RADCRIT_EXEC_CHAOS_HH
#define RADCRIT_EXEC_CHAOS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace radcrit
{

class Rng;

/** What one planned harness fault does when it fires. */
enum class ChaosFaultKind : uint8_t
{
    /** The run item's attempt throws a ChaosError. */
    Throw,
    /** The run item's attempt sleeps stallNs before executing. */
    Stall,
    /** The Nth guarded file write is torn after writing. */
    CorruptWrite,
};

/** @return a stable printable name of the fault kind. */
const char *chaosFaultKindName(ChaosFaultKind kind);

/**
 * One planned fault. For Throw/Stall faults `item` is the run index
 * the fault is bound to; for CorruptWrite it is the zero-based
 * ordinal of the guarded write (counted process-wide in the order
 * the writes happen).
 */
struct ChaosFault
{
    ChaosFaultKind kind = ChaosFaultKind::Throw;
    uint64_t item = 0;
    /**
     * The fault fires on the first `attempts` attempts of its item
     * and then succeeds, so attempts strictly below the executor's
     * retry budget makes the fault transient (absorbed with
     * bit-identical results) and attempts at or above it makes it
     * permanent (the item quarantines). Ignored for CorruptWrite.
     */
    unsigned attempts = 1;
    /** Stall duration; meaningful for Stall faults only. */
    uint64_t stallNs = 0;
};

/** Generation parameters of a seeded plan (the --chaos spec). */
struct ChaosPlanParams
{
    /** Seed of the plan's private Rng stream. */
    uint64_t seed = 1;
    /** Run-index domain faults are drawn from: [0, runs). */
    uint64_t runs = 100;
    /** Number of Throw faults to place on distinct items. */
    uint64_t throws = 0;
    /** Number of Stall faults to place on distinct items. */
    uint64_t stalls = 0;
    /** Number of CorruptWrite faults (write ordinals 0..n-1). */
    uint64_t corrupts = 0;
    /** Attempts each run fault fires for (transient if < budget). */
    unsigned attempts = 1;
    /** Stall duration of every Stall fault. */
    uint64_t stallNs = 50'000'000;
};

/**
 * A deterministic fault plan: the complete list of harness faults
 * one campaign (or process) will experience. Plans are plain data —
 * property tests build them directly; the CLI builds them from a
 * spec string via makeChaosPlan().
 */
struct ChaosPlan
{
    std::vector<ChaosFault> faults;

    /** @return faults of the given kind bound to `item`. */
    std::vector<ChaosFault> faultsFor(ChaosFaultKind kind,
                                      uint64_t item) const;

    /** @return a human-readable one-line description. */
    std::string describe() const;
};

/**
 * Expand generation parameters into a concrete plan with the
 * repo Rng: run faults land on distinct run indices (throws and
 * stalls never share an item, so each item's failure mode is
 * unambiguous), corrupt-write faults take the first `corrupts`
 * write ordinals. Identical params always yield the identical
 * plan.
 */
ChaosPlan makeChaosPlan(const ChaosPlanParams &params);

/**
 * Parse a --chaos / RADCRIT_CHAOS spec ("seed=42,throws=3,...",
 * keys as in ChaosPlanParams, unknown keys fatal). An empty spec
 * returns nullopt (chaos off).
 */
std::optional<ChaosPlanParams>
parseChaosSpec(const std::string &spec);

/** @return the canonical spec string of `params` (parse inverse). */
std::string chaosSpec(const ChaosPlanParams &params);

/** The exception injected Throw faults raise. */
struct ChaosError : std::runtime_error
{
    explicit ChaosError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Live injector over one plan: tracks write ordinals and fires the
 * planned faults when the harness reaches them. Thread-safe — run
 * hooks are called concurrently from pool workers, the write hook
 * from whichever thread saves store/checkpoint files.
 */
class ChaosEngine
{
  public:
    explicit ChaosEngine(ChaosPlan plan);

    /** @return the installed plan. */
    const ChaosPlan &plan() const { return plan_; }

    /**
     * Hook called at the start of attempt `attempt` (1-based) of
     * run item `item`: throws ChaosError for an active Throw fault,
     * sleeps for an active Stall fault, otherwise returns
     * immediately. Fault activity depends only on (item, attempt),
     * so the injected behavior is identical for any worker count.
     */
    void onRunAttempt(uint64_t item, unsigned attempt);

    /**
     * Hook called before a guarded file write (store entry,
     * checkpoint shard) is moved into place.
     *
     * @return true when this write (by process-wide ordinal) has a
     * planned CorruptWrite fault and must be torn by the caller.
     */
    bool shouldCorruptWrite(const char *what);

    /** @return Throw faults fired so far. */
    uint64_t thrown() const { return thrown_.load(); }

    /** @return Stall faults fired so far. */
    uint64_t stalled() const { return stalled_.load(); }

    /** @return CorruptWrite faults fired so far. */
    uint64_t corrupted() const { return corrupted_.load(); }

  private:
    ChaosPlan plan_;
    std::atomic<uint64_t> writeOrdinal_{0};
    std::atomic<uint64_t> thrown_{0};
    std::atomic<uint64_t> stalled_{0};
    std::atomic<uint64_t> corrupted_{0};
};

/**
 * Install (or clear, with nullptr) the process-wide chaos engine.
 *
 * @return the previously installed engine.
 */
ChaosEngine *setChaos(ChaosEngine *engine);

/** @return the installed chaos engine, or nullptr (chaos off). */
ChaosEngine *chaos();

/**
 * Build an engine from the RADCRIT_CHAOS environment variable, or
 * null when it is unset/empty. The caller owns the engine and is
 * responsible for installing it via setChaos().
 */
std::unique_ptr<ChaosEngine> chaosFromEnv();

} // namespace radcrit

#endif // RADCRIT_EXEC_CHAOS_HH
