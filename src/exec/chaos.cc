#include "exec/chaos.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <unordered_set>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/stats_registry.hh"

namespace radcrit
{

namespace
{

std::atomic<ChaosEngine *> globalChaos{nullptr};

/** Split "a=1,b=2" into (key, value) pairs; fatal on bad tokens. */
std::vector<std::pair<std::string, std::string>>
splitSpec(const std::string &spec)
{
    std::vector<std::pair<std::string, std::string>> out;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string token = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("malformed chaos spec token '%s' (expected "
                  "key=value)",
                  token.c_str());
        out.emplace_back(token.substr(0, eq),
                         token.substr(eq + 1));
    }
    return out;
}

uint64_t
specUint(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        fatal("chaos spec: '%s' is not a number for key '%s'",
              value.c_str(), key.c_str());
    return v;
}

} // anonymous namespace

const char *
chaosFaultKindName(ChaosFaultKind kind)
{
    switch (kind) {
      case ChaosFaultKind::Throw: return "throw";
      case ChaosFaultKind::Stall: return "stall";
      case ChaosFaultKind::CorruptWrite: return "corrupt-write";
      default:
        panic("chaosFaultKindName: invalid kind %d",
              static_cast<int>(kind));
    }
}

std::vector<ChaosFault>
ChaosPlan::faultsFor(ChaosFaultKind kind, uint64_t item) const
{
    std::vector<ChaosFault> out;
    for (const ChaosFault &fault : faults) {
        if (fault.kind == kind && fault.item == item)
            out.push_back(fault);
    }
    return out;
}

std::string
ChaosPlan::describe() const
{
    if (faults.empty())
        return "chaos plan: empty";
    std::string out = strprintf(
        "chaos plan: %zu fault(s):", faults.size());
    for (const ChaosFault &fault : faults) {
        out += strprintf(
            " %s@%llu", chaosFaultKindName(fault.kind),
            static_cast<unsigned long long>(fault.item));
        if (fault.kind != ChaosFaultKind::CorruptWrite)
            out += strprintf("x%u", fault.attempts);
    }
    return out;
}

ChaosPlan
makeChaosPlan(const ChaosPlanParams &params)
{
    ChaosPlan plan;
    uint64_t run_faults = params.throws + params.stalls;
    if (run_faults > params.runs)
        fatal("chaos plan wants %llu run faults but only %llu "
              "runs",
              static_cast<unsigned long long>(run_faults),
              static_cast<unsigned long long>(params.runs));

    // Draw distinct run items with the repo Rng: rejection-sample
    // so identical params yield the identical plan regardless of
    // how many collisions occur.
    Rng rng(params.seed);
    std::unordered_set<uint64_t> used;
    auto draw_item = [&] {
        for (;;) {
            uint64_t item = rng.uniformInt(params.runs);
            if (used.insert(item).second)
                return item;
        }
    };

    for (uint64_t i = 0; i < params.throws; ++i) {
        ChaosFault fault;
        fault.kind = ChaosFaultKind::Throw;
        fault.item = draw_item();
        fault.attempts = params.attempts;
        plan.faults.push_back(fault);
    }
    for (uint64_t i = 0; i < params.stalls; ++i) {
        ChaosFault fault;
        fault.kind = ChaosFaultKind::Stall;
        fault.item = draw_item();
        fault.attempts = params.attempts;
        fault.stallNs = params.stallNs;
        plan.faults.push_back(fault);
    }
    for (uint64_t i = 0; i < params.corrupts; ++i) {
        ChaosFault fault;
        fault.kind = ChaosFaultKind::CorruptWrite;
        fault.item = i;
        plan.faults.push_back(fault);
    }

    // Stable presentation: run faults sorted by item, so describe()
    // and tests read plans independent of draw order.
    std::stable_sort(plan.faults.begin(), plan.faults.end(),
                     [](const ChaosFault &a, const ChaosFault &b) {
                         if (a.kind != b.kind)
                             return static_cast<int>(a.kind) <
                                 static_cast<int>(b.kind);
                         return a.item < b.item;
                     });
    return plan;
}

std::optional<ChaosPlanParams>
parseChaosSpec(const std::string &spec)
{
    if (spec.empty())
        return std::nullopt;
    ChaosPlanParams params;
    for (const auto &[key, value] : splitSpec(spec)) {
        if (key == "seed")
            params.seed = specUint(key, value);
        else if (key == "runs")
            params.runs = specUint(key, value);
        else if (key == "throws")
            params.throws = specUint(key, value);
        else if (key == "stalls")
            params.stalls = specUint(key, value);
        else if (key == "corrupts")
            params.corrupts = specUint(key, value);
        else if (key == "attempts")
            params.attempts =
                static_cast<unsigned>(specUint(key, value));
        else if (key == "stall-ms")
            params.stallNs = specUint(key, value) * 1'000'000;
        else
            fatal("chaos spec: unknown key '%s' (seed, runs, "
                  "throws, stalls, corrupts, attempts, stall-ms)",
                  key.c_str());
    }
    return params;
}

std::string
chaosSpec(const ChaosPlanParams &params)
{
    return strprintf(
        "seed=%llu,runs=%llu,throws=%llu,stalls=%llu,"
        "corrupts=%llu,attempts=%u,stall-ms=%llu",
        static_cast<unsigned long long>(params.seed),
        static_cast<unsigned long long>(params.runs),
        static_cast<unsigned long long>(params.throws),
        static_cast<unsigned long long>(params.stalls),
        static_cast<unsigned long long>(params.corrupts),
        params.attempts,
        static_cast<unsigned long long>(params.stallNs /
                                        1'000'000));
}

ChaosEngine::ChaosEngine(ChaosPlan plan) : plan_(std::move(plan))
{
}

void
ChaosEngine::onRunAttempt(uint64_t item, unsigned attempt)
{
    for (const ChaosFault &fault : plan_.faults) {
        if (fault.item != item ||
            fault.kind == ChaosFaultKind::CorruptWrite ||
            attempt > fault.attempts)
            continue;
        if (fault.kind == ChaosFaultKind::Stall) {
            stalled_.fetch_add(1, std::memory_order_relaxed);
            StatsRegistry::global()
                .counter("resilience.chaos.stalls")
                .inc();
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(fault.stallNs));
        } else {
            thrown_.fetch_add(1, std::memory_order_relaxed);
            StatsRegistry::global()
                .counter("resilience.chaos.throws")
                .inc();
            throw ChaosError(strprintf(
                "chaos: injected infrastructure fault on run "
                "%llu attempt %u",
                static_cast<unsigned long long>(item), attempt));
        }
    }
}

bool
ChaosEngine::shouldCorruptWrite(const char *what)
{
    uint64_t ordinal =
        writeOrdinal_.fetch_add(1, std::memory_order_relaxed);
    for (const ChaosFault &fault : plan_.faults) {
        if (fault.kind != ChaosFaultKind::CorruptWrite ||
            fault.item != ordinal)
            continue;
        corrupted_.fetch_add(1, std::memory_order_relaxed);
        StatsRegistry::global()
            .counter("resilience.chaos.corrupt_writes")
            .inc();
        warn("chaos: tearing %s write (ordinal %llu)", what,
             static_cast<unsigned long long>(ordinal));
        return true;
    }
    return false;
}

ChaosEngine *
setChaos(ChaosEngine *engine)
{
    return globalChaos.exchange(engine);
}

ChaosEngine *
chaos()
{
    return globalChaos.load(std::memory_order_acquire);
}

std::unique_ptr<ChaosEngine>
chaosFromEnv()
{
    const char *spec = std::getenv("RADCRIT_CHAOS");
    if (!spec || !*spec)
        return nullptr;
    auto params = parseChaosSpec(spec);
    if (!params)
        return nullptr;
    return std::make_unique<ChaosEngine>(
        makeChaosPlan(*params));
}

} // namespace radcrit
