#include "exec/pool.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/logging.hh"
#include "obs/stats_registry.hh"

namespace radcrit
{

namespace
{

uint64_t
elapsedNs(std::chrono::steady_clock::time_point since)
{
    auto dt = std::chrono::steady_clock::now() - since;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
            .count());
}

} // anonymous namespace

uint64_t
PoolRunStats::busyNs() const
{
    uint64_t total = 0;
    for (const auto &worker : workers)
        total += worker.busyNs;
    return total;
}

uint64_t
PoolRunStats::idleNs() const
{
    uint64_t total = 0;
    for (const auto &worker : workers) {
        if (wallNs > worker.busyNs)
            total += wallNs - worker.busyNs;
    }
    return total;
}

double
PoolRunStats::utilization() const
{
    if (workers.empty() || wallNs == 0)
        return 0.0;
    double capacity = static_cast<double>(wallNs) *
        static_cast<double>(workers.size());
    return std::min(static_cast<double>(busyNs()) / capacity, 1.0);
}

void
PoolRunStats::absorb(const PoolRunStats &other)
{
    wallNs += other.wallNs;
    if (workers.size() < other.workers.size())
        workers.resize(other.workers.size());
    for (size_t w = 0; w < other.workers.size(); ++w) {
        workers[w].busyNs += other.workers[w].busyNs;
        workers[w].items += other.workers[w].items;
        workers[w].chunks += other.workers[w].chunks;
    }
}

void
publishPoolStats(const PoolRunStats &ps, StatsRegistry &reg)
{
    if (ps.workers.empty())
        return;
    reg.counter("pool.dispatches").inc();
    reg.counter("pool.busy.ns").inc(ps.busyNs());
    reg.counter("pool.idle.ns").inc(ps.idleNs());
    reg.counter("pool.wall.ns").inc(ps.wallNs);
    reg.gauge("pool.utilization").set(ps.utilization());
    LogHistogram &chunk_items = reg.histogram("pool.chunk_items");
    uint64_t chunks = 0;
    for (size_t w = 0; w < ps.workers.size(); ++w) {
        chunk_items.add(
            static_cast<double>(ps.workers[w].items));
        reg.counter("pool.worker." + std::to_string(w) + ".runs")
            .inc(ps.workers[w].items);
        chunks += ps.workers[w].chunks;
    }
    reg.counter("pool.chunks").inc(chunks);
}

WorkerPool::WorkerPool(unsigned jobs)
    : jobs_(resolveJobs(jobs))
{
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

unsigned
WorkerPool::resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return std::max(hw, 1u);
}

unsigned
WorkerPool::envJobs(unsigned fallback)
{
    const char *env = std::getenv("RADCRIT_JOBS");
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0') {
        warn("RADCRIT_JOBS '%s' is not a job count; using %u",
             env, fallback);
        return fallback;
    }
    return resolveJobs(static_cast<unsigned>(v));
}

std::pair<uint64_t, uint64_t>
WorkerPool::chunkBounds(uint64_t count, unsigned workers,
                        unsigned worker)
{
    if (workers == 0)
        panic("chunkBounds needs at least one worker");
    if (worker >= workers)
        return {count, count};
    uint64_t base = count / workers;
    uint64_t rem = count % workers;
    uint64_t begin = worker * base + std::min<uint64_t>(worker, rem);
    uint64_t end = begin + base + (worker < rem ? 1 : 0);
    return {begin, end};
}

void
WorkerPool::runChunk(unsigned worker, const Dispatch &dispatch)
{
    uint64_t items = 0;
    uint64_t chunks = 0;
    auto chunk_start = std::chrono::steady_clock::now();
    try {
        if (dispatch.cursor) {
            // Dynamic mode: claim grains until the range drains.
            for (;;) {
                uint64_t begin = dispatch.cursor->fetch_add(
                    dispatch.grain, std::memory_order_relaxed);
                if (begin >= dispatch.count)
                    break;
                uint64_t end = std::min(begin + dispatch.grain,
                                        dispatch.count);
                (*dispatch.body)(worker, begin, end);
                items += end - begin;
                ++chunks;
            }
        } else {
            auto [begin, end] = chunkBounds(dispatch.count,
                                            dispatch.workers,
                                            worker);
            items = end - begin;
            chunks = 1;
            (*dispatch.body)(worker, begin, end);
        }
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        // Fast-forward the cursor so the surviving workers stop
        // claiming fresh work for a dispatch that already failed.
        if (dispatch.cursor) {
            dispatch.cursor->store(dispatch.count,
                                   std::memory_order_relaxed);
        }
    }
    // Each worker writes only its own stats slot (the vector is
    // sized before the dispatch is published), so accounting needs
    // no lock.
    if (dispatch.stats) {
        dispatch.stats->workers[worker].busyNs =
            elapsedNs(chunk_start);
        dispatch.stats->workers[worker].items = items;
        dispatch.stats->workers[worker].chunks = chunks;
    }
}

void
WorkerPool::ensureThreads(unsigned helpers)
{
    while (threads_.size() < helpers) {
        // A thread spawned mid-lifetime must not mistake the
        // current epoch for a dispatch it missed, so it starts
        // already caught up. epoch_ is only written by the
        // dispatching thread — the one running right here — so the
        // unlocked read is race-free.
        threads_.emplace_back(&WorkerPool::workerLoop, this,
                              static_cast<unsigned>(
                                  threads_.size()),
                              epoch_);
    }
}

void
WorkerPool::workerLoop(unsigned index, uint64_t seen_epoch)
{
    for (;;) {
        Dispatch dispatch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || epoch_ != seen_epoch;
            });
            if (stop_)
                return;
            seen_epoch = epoch_;
            dispatch = dispatch_;
        }
        // Helpers beyond this dispatch's width (spawned for an
        // earlier, wider dispatch) just go back to sleep; they are
        // not counted in pending_.
        bool participating = index + 1 < dispatch.workers;
        if (participating)
            runChunk(index + 1, dispatch);
        if (participating) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                done_.notify_all();
        }
    }
}

void
WorkerPool::forChunks(uint64_t count, const ChunkBody &body,
                      PoolRunStats *stats)
{
    if (stats)
        *stats = PoolRunStats{};
    if (count == 0)
        return;
    ++dispatches_;
    unsigned workers = static_cast<unsigned>(
        std::min<uint64_t>(jobs_, count));
    if (stats)
        stats->workers.resize(workers);
    auto dispatch_start = std::chrono::steady_clock::now();

    if (workers == 1) {
        body(0, 0, count);
        if (stats) {
            stats->wallNs = elapsedNs(dispatch_start);
            stats->workers[0].busyNs = stats->wallNs;
            stats->workers[0].items = count;
        }
        return;
    }

    ensureThreads(workers - 1);
    Dispatch dispatch{count, workers, &body, stats};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        dispatch_ = dispatch;
        firstError_ = nullptr;
        pending_ = workers - 1;
        ++epoch_;
    }
    wake_.notify_all();

    // The dispatching thread is worker 0, exactly as when threads
    // were spawned per dispatch.
    runChunk(0, dispatch);

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return pending_ == 0; });
        error = firstError_;
        firstError_ = nullptr;
    }
    if (stats)
        stats->wallNs = elapsedNs(dispatch_start);
    if (error)
        std::rethrow_exception(error);
}

void
WorkerPool::forDynamic(uint64_t count, uint64_t grain,
                       const ChunkBody &body, PoolRunStats *stats)
{
    if (stats)
        *stats = PoolRunStats{};
    if (count == 0)
        return;
    if (grain == 0)
        grain = 1;
    ++dispatches_;
    uint64_t num_chunks = (count + grain - 1) / grain;
    unsigned workers = static_cast<unsigned>(
        std::min<uint64_t>(jobs_, num_chunks));
    if (stats)
        stats->workers.resize(workers);
    auto dispatch_start = std::chrono::steady_clock::now();

    std::atomic<uint64_t> cursor{0};
    Dispatch dispatch{count, workers, &body, stats, &cursor,
                      grain};

    if (workers == 1) {
        // Serial path: worker 0 claims every grain in order. Run
        // through runChunk so chunk accounting and error capture
        // match the parallel path.
        firstError_ = nullptr;
        runChunk(0, dispatch);
        std::exception_ptr error = firstError_;
        firstError_ = nullptr;
        if (stats)
            stats->wallNs = elapsedNs(dispatch_start);
        if (error)
            std::rethrow_exception(error);
        return;
    }

    ensureThreads(workers - 1);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        dispatch_ = dispatch;
        firstError_ = nullptr;
        pending_ = workers - 1;
        ++epoch_;
    }
    wake_.notify_all();

    runChunk(0, dispatch);

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return pending_ == 0; });
        error = firstError_;
        firstError_ = nullptr;
    }
    if (stats)
        stats->wallNs = elapsedNs(dispatch_start);
    if (error)
        std::rethrow_exception(error);
}

const char *
guardStatusName(GuardStatus status)
{
    switch (status) {
      case GuardStatus::Ok: return "ok";
      case GuardStatus::Error: return "error";
      case GuardStatus::Timeout: return "timeout";
      default:
        panic("guardStatusName: invalid status %d",
              static_cast<int>(status));
    }
}

GuardReport
runGuarded(const RetryPolicy &policy,
           const std::function<void(unsigned attempt)> &body)
{
    if (policy.maxAttempts == 0)
        panic("runGuarded needs at least one attempt");

    GuardReport report;
    for (unsigned attempt = 1; attempt <= policy.maxAttempts;
         ++attempt) {
        report.attempts = attempt;
        if (attempt > 1 && policy.backoffBaseNs > 0) {
            // Exponential backoff, capped at 1 s so a large
            // attempt budget cannot park a worker for minutes.
            uint64_t backoff = policy.backoffBaseNs
                << std::min(attempt - 2, 20u);
            std::this_thread::sleep_for(std::chrono::nanoseconds(
                std::min<uint64_t>(backoff, 1'000'000'000)));
        }
        auto start = std::chrono::steady_clock::now();
        try {
            body(attempt);
        } catch (const std::exception &e) {
            report.status = GuardStatus::Error;
            report.error = e.what();
            continue;
        } catch (...) {
            report.status = GuardStatus::Error;
            report.error = "unknown exception";
            continue;
        }
        if (policy.softDeadlineNs > 0 &&
            elapsedNs(start) > policy.softDeadlineNs) {
            report.status = GuardStatus::Timeout;
            report.error.clear();
            continue;
        }
        report.status = GuardStatus::Ok;
        report.error.clear();
        return report;
    }
    return report;
}

Watchdog::Watchdog(unsigned workers, uint64_t softDeadlineNs,
                   uint64_t pollIntervalNs)
    : softDeadlineNs_(softDeadlineNs),
      pollIntervalNs_(pollIntervalNs), slots_(workers),
      flagged_(workers, 0)
{
    if (softDeadlineNs_ == 0)
        panic("Watchdog needs a nonzero deadline");
    if (pollIntervalNs_ == 0) {
        pollIntervalNs_ = std::max<uint64_t>(
            softDeadlineNs_ / 4, 1'000'000);
    }
    monitor_ = std::thread(&Watchdog::monitorLoop, this);
}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    stopCv_.notify_all();
    monitor_.join();
}

namespace
{

uint64_t
steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // anonymous namespace

void
Watchdog::beginItem(unsigned worker, uint64_t item)
{
    if (worker >= slots_.size())
        panic("Watchdog::beginItem: worker %u of %zu", worker,
              slots_.size());
    Slot &slot = slots_[worker];
    slot.item.store(item, std::memory_order_relaxed);
    slot.startNs.store(steadyNowNs(), std::memory_order_relaxed);
    // Odd sequence = in flight. Release-publish so the monitor
    // observing the new sequence also observes item/startNs.
    slot.sequence.fetch_add(1, std::memory_order_release);
}

void
Watchdog::endItem(unsigned worker)
{
    if (worker >= slots_.size())
        panic("Watchdog::endItem: worker %u of %zu", worker,
              slots_.size());
    slots_[worker].sequence.fetch_add(1,
                                      std::memory_order_release);
}

void
Watchdog::monitorLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        if (stopCv_.wait_for(
                lock,
                std::chrono::nanoseconds(pollIntervalNs_),
                [&] { return stop_; }))
            return;
        uint64_t now = steadyNowNs();
        for (size_t w = 0; w < slots_.size(); ++w) {
            Slot &slot = slots_[w];
            uint64_t seq =
                slot.sequence.load(std::memory_order_acquire);
            if ((seq & 1) == 0 || flagged_[w] == seq)
                continue; // idle, or already flagged this item
            uint64_t start =
                slot.startNs.load(std::memory_order_relaxed);
            if (now - start <= softDeadlineNs_)
                continue;
            // Re-check the sequence: if the worker moved on while
            // we read, the stale start time belongs to a finished
            // item and must not be flagged.
            if (slot.sequence.load(std::memory_order_acquire) !=
                seq)
                continue;
            flagged_[w] = seq;
            overdue_.fetch_add(1, std::memory_order_relaxed);
            StatsRegistry::global()
                .counter("resilience.watchdog.overdue")
                .inc();
            warn("watchdog: worker %zu run %llu in flight for "
                 "%.1f ms (deadline %.1f ms)",
                 w,
                 static_cast<unsigned long long>(slot.item.load(
                     std::memory_order_relaxed)),
                 static_cast<double>(now - start) / 1e6,
                 static_cast<double>(softDeadlineNs_) / 1e6);
        }
    }
}

} // namespace radcrit
