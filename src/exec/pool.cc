#include "exec/pool.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace radcrit
{

namespace
{

uint64_t
elapsedNs(std::chrono::steady_clock::time_point since)
{
    auto dt = std::chrono::steady_clock::now() - since;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
            .count());
}

} // anonymous namespace

uint64_t
PoolRunStats::busyNs() const
{
    uint64_t total = 0;
    for (const auto &worker : workers)
        total += worker.busyNs;
    return total;
}

uint64_t
PoolRunStats::idleNs() const
{
    uint64_t total = 0;
    for (const auto &worker : workers) {
        if (wallNs > worker.busyNs)
            total += wallNs - worker.busyNs;
    }
    return total;
}

double
PoolRunStats::utilization() const
{
    if (workers.empty() || wallNs == 0)
        return 0.0;
    double capacity = static_cast<double>(wallNs) *
        static_cast<double>(workers.size());
    return std::min(static_cast<double>(busyNs()) / capacity, 1.0);
}

WorkerPool::WorkerPool(unsigned jobs)
    : jobs_(resolveJobs(jobs))
{
}

unsigned
WorkerPool::resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return std::max(hw, 1u);
}

unsigned
WorkerPool::envJobs(unsigned fallback)
{
    const char *env = std::getenv("RADCRIT_JOBS");
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0') {
        warn("RADCRIT_JOBS '%s' is not a job count; using %u",
             env, fallback);
        return fallback;
    }
    return resolveJobs(static_cast<unsigned>(v));
}

std::pair<uint64_t, uint64_t>
WorkerPool::chunkBounds(uint64_t count, unsigned workers,
                        unsigned worker)
{
    if (workers == 0)
        panic("chunkBounds needs at least one worker");
    if (worker >= workers)
        return {count, count};
    uint64_t base = count / workers;
    uint64_t rem = count % workers;
    uint64_t begin = worker * base + std::min<uint64_t>(worker, rem);
    uint64_t end = begin + base + (worker < rem ? 1 : 0);
    return {begin, end};
}

void
WorkerPool::forChunks(uint64_t count, const ChunkBody &body,
                      PoolRunStats *stats) const
{
    if (stats)
        *stats = PoolRunStats{};
    if (count == 0)
        return;
    unsigned workers = static_cast<unsigned>(
        std::min<uint64_t>(jobs_, count));
    if (stats)
        stats->workers.resize(workers);
    auto dispatch_start = std::chrono::steady_clock::now();

    if (workers == 1) {
        body(0, 0, count);
        if (stats) {
            stats->wallNs = elapsedNs(dispatch_start);
            stats->workers[0].busyNs = stats->wallNs;
            stats->workers[0].items = count;
        }
        return;
    }

    std::exception_ptr first_error;
    std::mutex error_mutex;
    // Each worker writes only its own stats slot (the vector is
    // sized before any thread starts), so accounting needs no lock.
    auto guarded = [&](unsigned worker) {
        auto [begin, end] = chunkBounds(count, workers, worker);
        auto chunk_start = std::chrono::steady_clock::now();
        try {
            body(worker, begin, end);
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error)
                first_error = std::current_exception();
        }
        if (stats) {
            stats->workers[worker].busyNs =
                elapsedNs(chunk_start);
            stats->workers[worker].items = end - begin;
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        threads.emplace_back(guarded, w);
    guarded(0);
    for (auto &t : threads)
        t.join();
    if (stats)
        stats->wallNs = elapsedNs(dispatch_start);

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace radcrit
