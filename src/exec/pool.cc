#include "exec/pool.hh"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace radcrit
{

WorkerPool::WorkerPool(unsigned jobs)
    : jobs_(resolveJobs(jobs))
{
}

unsigned
WorkerPool::resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return std::max(hw, 1u);
}

unsigned
WorkerPool::envJobs(unsigned fallback)
{
    const char *env = std::getenv("RADCRIT_JOBS");
    if (!env || !*env)
        return fallback;
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0') {
        warn("RADCRIT_JOBS '%s' is not a job count; using %u",
             env, fallback);
        return fallback;
    }
    return resolveJobs(static_cast<unsigned>(v));
}

std::pair<uint64_t, uint64_t>
WorkerPool::chunkBounds(uint64_t count, unsigned workers,
                        unsigned worker)
{
    if (workers == 0)
        panic("chunkBounds needs at least one worker");
    if (worker >= workers)
        return {count, count};
    uint64_t base = count / workers;
    uint64_t rem = count % workers;
    uint64_t begin = worker * base + std::min<uint64_t>(worker, rem);
    uint64_t end = begin + base + (worker < rem ? 1 : 0);
    return {begin, end};
}

void
WorkerPool::forChunks(uint64_t count, const ChunkBody &body) const
{
    if (count == 0)
        return;
    unsigned workers = static_cast<unsigned>(
        std::min<uint64_t>(jobs_, count));

    if (workers == 1) {
        body(0, 0, count);
        return;
    }

    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto guarded = [&](unsigned worker) {
        auto [begin, end] = chunkBounds(count, workers, worker);
        try {
            body(worker, begin, end);
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error)
                first_error = std::current_exception();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w)
        threads.emplace_back(guarded, w);
    guarded(0);
    for (auto &t : threads)
        t.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace radcrit
