/**
 * @file
 * SuiteContext: the explicit state threaded through experiments,
 * replacing the process-wide mutable singletons the old
 * bench_util.hh header kept (benchRecorder(), benchStore(), the
 * hard-coded bench_out directory).
 *
 * A context owns the output directory policy (--out /
 * RADCRIT_BENCH_OUT / bench_out), points at the campaign store
 * (null = cache off) and the shared WorkerPool, tracks work into a
 * BenchRecorder, and serves raw campaigns: from the scheduler's
 * dedup plan when the suite prepass ran, through the store-aware
 * simulateOrLoad() otherwise. One context serves a whole suite
 * invocation; the driver swaps the active recorder per experiment
 * so the suite JSON can attribute work.
 */

#ifndef RADCRIT_SUITE_CONTEXT_HH
#define RADCRIT_SUITE_CONTEXT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "campaign/runner.hh"
#include "campaign/store.hh"
#include "exec/pool.hh"

namespace radcrit
{

class CliParser;
class Experiment;

/**
 * Tally of campaign work done on behalf of one experiment (or one
 * whole shim process), feeding the machine-readable results
 * emitters.
 */
struct BenchRecorder
{
    uint64_t campaigns = 0;
    uint64_t runs = 0;
    uint64_t wallNs = 0;
    /** Worker threads per campaign (resolved, so never 0). */
    unsigned jobs = 1;
    /** Campaigns served from cache (store or suite plan). */
    uint64_t cacheHits = 0;
    /**
     * Campaigns simulated (cache off, entry absent, or mismatch);
     * cacheHits + cacheMisses == campaigns always.
     */
    uint64_t cacheMisses = 0;

    void
    addCampaign(uint64_t campaign_runs, uint64_t campaign_ns,
                bool cached)
    {
        ++campaigns;
        runs += campaign_runs;
        wallNs += campaign_ns;
        if (cached)
            ++cacheHits;
        else
            ++cacheMisses;
    }

    /** @return wall nanoseconds per simulated faulty run. */
    double
    nsPerOp() const
    {
        return runs == 0
            ? 0.0
            : static_cast<double>(wallNs) /
                static_cast<double>(runs);
    }

    /** @return simulated faulty runs per second. */
    double
    runsPerSecond() const
    {
        return wallNs == 0
            ? 0.0
            : static_cast<double>(runs) * 1e9 /
                static_cast<double>(wallNs);
    }
};

/**
 * Resolve the bench/suite output directory: an explicit CLI value
 * wins, then the RADCRIT_BENCH_OUT environment variable, then the
 * historical "bench_out" default.
 */
std::string resolveOutputDir(const std::string &cli_value);

/**
 * The explicit context one experiment invocation runs against.
 * Not copyable: it holds the authoritative work tallies.
 */
class SuiteContext
{
  public:
    struct Options
    {
        /** Output directory (resolveOutputDir() result). */
        std::string outDir = "bench_out";
        /** Resolved worker count (never 0). */
        unsigned jobs = 1;
        /** Write CSV side-outputs (false under --no-csv). */
        bool writeCsv = true;
        /** --runs override; < 0 = per-experiment default. */
        int64_t runsOverride = -1;
        /**
         * Simulate/persist campaigns through the streaming
         * pipeline (--stream). The suite's dedup plan still
         * materializes each distinct campaign once — experiments
         * consume CampaignRaw — but the engine retires batches of
         * batchRuns and the store saves/loads flow batch by batch.
         */
        bool stream = false;
        /** Streamed batch size; resolved to 4096 under --stream. */
        uint64_t batchRuns = 0;
        /**
         * Run the suite prepass sharded (--shard-campaigns):
         * distinct campaigns become dynamically-claimed work items
         * on the shared pool instead of executing one after the
         * other. Outputs stay byte-identical to the sequential
         * prepass at any --jobs.
         */
        bool shardCampaigns = false;
        /**
         * Background store-I/O threads (--io-threads); 0 = store
         * entries parse/serialize inline. Becomes
         * SimConfig::ioThreads on every campaign the context
         * drives.
         */
        unsigned ioThreads = 0;
        /** Report campaign-granular prepass progress
         * (--progress). */
        bool progress = false;
    };

    /**
     * @param options Invocation options.
     * @param store Campaign store, or null (cache off). Not owned.
     * @param pool Shared worker pool; outlives the context.
     */
    SuiteContext(const Options &options, CampaignStore *store,
                 WorkerPool &pool);

    SuiteContext(const SuiteContext &) = delete;
    SuiteContext &operator=(const SuiteContext &) = delete;

    /**
     * @return the output directory for CSV/JSON/PPM side files,
     * created on first use (a failure warns once and the callers'
     * file opens fail individually, as before).
     */
    const std::string &outputDir();

    /** @return resolved worker thread count. */
    unsigned jobs() const { return options_.jobs; }

    /** @return whether CSV side-outputs are wanted. */
    bool writeCsv() const { return options_.writeCsv; }

    /** @return whether campaigns run the streaming pipeline. */
    bool stream() const { return options_.stream; }

    /** @return the streamed batch size (0 = single batch). */
    uint64_t batchRuns() const { return options_.batchRuns; }

    /** @return whether the suite prepass runs sharded. */
    bool shardCampaigns() const
    {
        return options_.shardCampaigns;
    }

    /** @return background store-I/O threads (0 = inline). */
    unsigned ioThreads() const { return options_.ioThreads; }

    /** @return whether prepass progress lines are wanted. */
    bool progress() const { return options_.progress; }

    /** @return the run count for an experiment (--runs override
     * or the experiment's default). */
    uint64_t runsFor(const Experiment &experiment) const;

    /** @return the campaign store (null = cache off). */
    CampaignStore *store() const { return store_; }

    /** @return the shared worker pool. */
    WorkerPool &pool() { return pool_; }

    /** @return the recorder campaign work is tallied into. */
    BenchRecorder &recorder() { return *recorder_; }

    /**
     * Point work attribution at `recorder` (the suite driver's
     * per-experiment block), or back at the context's own recorder
     * when null.
     */
    void setRecorder(BenchRecorder *recorder);

    /** @return the active CLI (null when rawShimCli bypassed it). */
    const CliParser *cli() const { return cli_; }

    /** Install the parsed CLI for option access from run(). */
    void setCli(const CliParser *cli) { cli_ = cli; }

    /** @return raw shim argv (only for rawShimCli experiments). */
    const std::vector<std::string> &shimArgs() const
    {
        return shimArgs_;
    }

    /** Install raw shim argv. */
    void
    setShimArgs(std::vector<std::string> args)
    {
        shimArgs_ = std::move(args);
    }

    /**
     * The campaign front door for experiments: the raw canonical
     * campaign for (device, workload, runs) with the seed derived
     * from the labels. Served, in order of preference, from the
     * suite scheduler's plan (memory), the campaign store, or a
     * fresh simulation on the shared pool. Work and cache traffic
     * are tallied into the active recorder; a plan entry the
     * scheduler simulated charges its simulation cost to the first
     * consumer (reproducing standalone cache semantics).
     */
    CampaignRaw campaignRaw(const DeviceModel &device,
                            Workload &workload, uint64_t runs);

    /** campaignRaw() + analyzeCampaign() under default analysis. */
    CampaignResult campaignResult(const DeviceModel &device,
                                  Workload &workload,
                                  uint64_t runs);

    /** One pre-simulated campaign in the scheduler's plan. */
    struct PlannedCampaign
    {
        CampaignRaw raw;
        /** First experiment that declared it. */
        std::string owner;
        /** Wall ns of the prepass simulate-or-load. */
        uint64_t wallNs = 0;
        /** Simulated by the prepass (false = store hit). */
        bool simulated = false;
        /** Simulation cost already charged to a recorder. */
        bool charged = false;
        /**
         * Default-config analysis precomputed by the sharded
         * prepass on the worker that simulated the campaign (in
         * run order, so it is identical to a fresh
         * analyzeCampaign()). Absent when the prepass ran
         * sequentially or a trace/timeline side channel was
         * armed; campaignResult() then analyzes on demand.
         */
        std::optional<CampaignResult> defaultAnalysis;
    };

    /** @return whether a plan entry exists for the key. */
    bool planned(const std::string &key) const;

    /** Insert a plan entry (scheduler prepass only). */
    void addPlanned(const std::string &key, PlannedCampaign entry);

    /** @return campaigns served from the in-memory plan. */
    uint64_t memoryServes() const { return memoryServes_; }

    /** @return undeclared campaigns that had to simulate. */
    uint64_t unplannedMisses() const { return unplannedMisses_; }

    /** @return undeclared campaigns served by the store. */
    uint64_t unplannedHits() const { return unplannedHits_; }

  private:
    Options options_;
    CampaignStore *store_;
    WorkerPool &pool_;
    BenchRecorder ownRecorder_;
    BenchRecorder *recorder_;
    const CliParser *cli_ = nullptr;
    std::vector<std::string> shimArgs_;
    std::map<std::string, PlannedCampaign> plan_;
    uint64_t memoryServes_ = 0;
    uint64_t unplannedMisses_ = 0;
    uint64_t unplannedHits_ = 0;
    bool outDirReady_ = false;
};

} // namespace radcrit

#endif // RADCRIT_SUITE_CONTEXT_HH
