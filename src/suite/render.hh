/**
 * @file
 * Shared render steps for experiments: the paper's two figure
 * shapes (scatter + stacked locality bars) with CSV side-output,
 * and the schema-6 per-bench JSON document the standalone shims
 * emit. Ported from the old header-only bench_util.hh, with the
 * process-wide state replaced by the SuiteContext.
 */

#ifndef RADCRIT_SUITE_RENDER_HH
#define RADCRIT_SUITE_RENDER_HH

#include <string>
#include <vector>

#include "campaign/runner.hh"
#include "metrics/locality.hh"
#include "suite/context.hh"

namespace radcrit
{

/**
 * Render one scatter figure (mean relative error vs. number of
 * incorrect elements) from a set of campaigns, with the paper's
 * axis clamps, and dump per-run CSV when the context wants CSV.
 */
void renderScatterFigure(SuiteContext &ctx,
                         const std::string &title,
                         const std::vector<CampaignResult> &results,
                         double x_clamp, double y_clamp,
                         const std::string &csv_name);

/**
 * Render one locality/magnitude figure (stacked FIT bars, All and
 * >threshold) from a set of campaigns.
 */
void renderLocalityFigure(
    SuiteContext &ctx, const std::string &title,
    const std::vector<CampaignResult> &results,
    const std::vector<Pattern> &patterns,
    const std::string &csv_name);

/**
 * Emit one experiment's machine-readable results as
 * <outputDir>/<bench_name>.json (schema 8): campaign/run tallies
 * with worker count and cache traffic, ns-per-run and parallel
 * runs-per-second, the perf-trajectory "timings" block, the
 * scheduling/async-I/O "sharding" block, the
 * execution-resilience "resilience" block, the process "memory"
 * block, and the full global stats snapshot.
 * tools/check_bench_json.py validates the shape in CI.
 */
void writeBenchJson(SuiteContext &ctx,
                    const std::string &bench_name);

/**
 * Write the "resilience" JSON object from a stats snapshot:
 * retry/resume/quarantine tallies plus the chaos fault counters,
 * all zero on a clean run. Shared by the per-bench and suite
 * documents so both carry the identical shape.
 *
 * @param indent Indentation level handed to JsonObjectWriter.
 */
void writeResilienceJson(std::ostream &os,
                         const StatsSnapshot &snap, int indent);

/**
 * Write the "sharding" JSON object shared by the per-bench and
 * suite documents (schema 8): whether the campaign-sharded
 * prepass ran (always 0 for standalone benches, which have no
 * prepass), its concurrency high-water mark and overlap win, and
 * the async store-I/O telemetry from the stats snapshot
 * (store.io.async.* — zeros without --io-threads). Every field is
 * present even when the feature is off so consumers never need
 * existence checks.
 */
void writeShardingJson(std::ostream &os, const StatsSnapshot &snap,
                       int indent, bool enabled,
                       uint64_t concurrent_campaigns,
                       uint64_t overlap_ns,
                       uint64_t prepass_wall_ns,
                       unsigned io_threads);

/**
 * Write the schema-8 "memory" JSON object: a live
 * /proc/self/status RSS sample (peak_rss_bytes /
 * current_rss_bytes, 0 when /proc is unavailable) plus the
 * streaming pipeline's batch accounting from the stats snapshot
 * (stream_batches, batch_runs — 0 on a materialized run). Shared
 * by the per-bench and suite documents.
 */
void writeMemoryJson(std::ostream &os, const StatsSnapshot &snap,
                     int indent);

} // namespace radcrit

#endif // RADCRIT_SUITE_RENDER_HH
