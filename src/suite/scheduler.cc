#include "suite/scheduler.hh"

#include <chrono>

#include "campaign/stream.hh"
#include "common/logging.hh"
#include "suite/experiment.hh"
#include "suite/spec.hh"

namespace radcrit
{

ScheduleStats
scheduleCampaigns(const std::vector<Experiment *> &experiments,
                  SuiteContext &ctx)
{
    ScheduleStats stats;
    for (Experiment *exp : experiments) {
        uint64_t runs = ctx.runsFor(*exp);
        for (const CampaignRequest &req : exp->campaigns(runs)) {
            ++stats.requested;
            DeviceModel device = makeDevice(req.device);
            std::unique_ptr<Workload> workload =
                buildWorkload(device, req.workload);
            std::string key = campaignPlanKey(
                device.name, workload->name(),
                workload->inputLabel(), req.runs);
            if (ctx.planned(key))
                continue;
            ++stats.distinct;

            CampaignConfig cfg = defaultCampaign(
                req.runs, device.name, workload->name(),
                workload->inputLabel());
            cfg.sim.jobs = ctx.jobs();
            cfg.sim.batchRuns = ctx.batchRuns();
            uint64_t hits_before =
                ctx.store() ? ctx.store()->hits() : 0;
            auto start = std::chrono::steady_clock::now();
            CampaignRaw raw;
            if (ctx.stream()) {
                // Batched engine + streamed store I/O; the plan
                // entry itself stays materialized for reuse.
                CollectRawSink collect;
                simulateOrLoadStream(device, *workload, cfg.sim,
                                     ctx.store(), collect,
                                     &ctx.pool());
                raw = collect.take();
            } else {
                raw = simulateOrLoad(device, *workload, cfg.sim,
                                     ctx.store(), &ctx.pool());
            }
            auto wall_ns = static_cast<uint64_t>(
                std::chrono::duration_cast<
                    std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count());
            bool cached = ctx.store() &&
                ctx.store()->hits() > hits_before;
            if (cached)
                ++stats.storeHits;
            else
                ++stats.simulated;
            stats.wallNs += wall_ns;

            SuiteContext::PlannedCampaign entry;
            entry.raw = std::move(raw);
            entry.owner = exp->info().name;
            entry.wallNs = wall_ns;
            entry.simulated = !cached;
            ctx.addPlanned(key, std::move(entry));
        }
    }
    return stats;
}

} // namespace radcrit
