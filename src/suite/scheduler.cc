#include "suite/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "campaign/engine.hh"
#include "campaign/stream.hh"
#include "common/logging.hh"
#include "exec/chaos.hh"
#include "exec/launch.hh"
#include "obs/timeline.hh"
#include "obs/trace.hh"
#include "sim/sampler.hh"
#include "suite/experiment.hh"
#include "suite/spec.hh"

namespace radcrit
{

namespace
{

uint64_t
elapsedNs(std::chrono::steady_clock::time_point since)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - since)
            .count());
}

/**
 * One distinct campaign of the prepass: identity and the
 * everything needed to execute it, plus the results the plan entry
 * is assembled from after the dispatch.
 */
struct PrepassItem
{
    std::string key;
    /** First experiment that declared it. */
    std::string owner;
    DeviceModel device;
    std::unique_ptr<Workload> workload;
    CampaignConfig cfg;

    CampaignRaw raw;
    /** Precomputed default analysis (sharded prepass only). */
    std::optional<CampaignResult> analysis;
    uint64_t wallNs = 0;
    bool simulated = false;

    // Sharded-dispatch state: the strike sampler built once on the
    // caller-visible miss path (shared read-only by every worker),
    // and the claim/completion bookkeeping for a campaign whose
    // runs are spread over many workers.
    std::optional<StrikeSampler> sampler;
    std::atomic<uint64_t> runsDone{0};
    std::atomic<bool> claimed{false};
    /** Prepass-relative ns of the campaign's first claimed run. */
    uint64_t startNs = 0;
};

/**
 * Collect and dedup the campaigns the selected experiments
 * declare, in declaration order (which fixes owner attribution and
 * the sequential execution order, both identical to the historical
 * interleaved dedup-and-run loop).
 */
std::vector<std::unique_ptr<PrepassItem>>
collectItems(const std::vector<Experiment *> &experiments,
             SuiteContext &ctx, ScheduleStats &stats)
{
    std::vector<std::unique_ptr<PrepassItem>> items;
    std::set<std::string> seen;
    for (Experiment *exp : experiments) {
        uint64_t runs = ctx.runsFor(*exp);
        for (const CampaignRequest &req : exp->campaigns(runs)) {
            ++stats.requested;
            DeviceModel device = makeDevice(req.device);
            std::unique_ptr<Workload> workload =
                buildWorkload(device, req.workload);
            std::string key = campaignPlanKey(
                device.name, workload->name(),
                workload->inputLabel(), req.runs);
            if (ctx.planned(key) || !seen.insert(key).second)
                continue;
            ++stats.distinct;

            auto item = std::make_unique<PrepassItem>();
            item->key = std::move(key);
            item->owner = exp->info().name;
            item->device = std::move(device);
            item->cfg = defaultCampaign(req.runs, item->device.name,
                                        workload->name(),
                                        workload->inputLabel());
            item->cfg.sim.jobs = ctx.jobs();
            item->cfg.sim.batchRuns = ctx.batchRuns();
            item->cfg.sim.ioThreads = ctx.ioThreads();
            item->workload = std::move(workload);
            items.push_back(std::move(item));
        }
    }
    return items;
}

/** Emit the campaign-granular prepass progress line (--progress). */
void
progressLine(uint64_t done, uint64_t total,
             std::chrono::steady_clock::time_point prepass_start)
{
    double elapsed_s =
        static_cast<double>(elapsedNs(prepass_start)) / 1e9;
    double rate = elapsed_s > 0.0
        ? static_cast<double>(done) / elapsed_s
        : 0.0;
    double eta_s = rate > 0.0
        ? static_cast<double>(total - done) / rate
        : 0.0;
    inform("suite prepass: %llu/%llu distinct campaigns "
           "(%.2f campaigns/s, ETA %.1fs)",
           static_cast<unsigned long long>(done),
           static_cast<unsigned long long>(total), rate, eta_s);
}

/**
 * Sequential execution of one item: the full shared pool works on
 * this campaign alone, through the streaming runner when the
 * context streams. This is the historical prepass body.
 */
void
executeSequential(PrepassItem &item, SuiteContext &ctx)
{
    uint64_t hits_before = ctx.store() ? ctx.store()->hits() : 0;
    auto start = std::chrono::steady_clock::now();
    if (ctx.stream()) {
        // Batched engine + streamed store I/O; the plan entry
        // itself stays materialized for reuse.
        CollectRawSink collect;
        simulateOrLoadStream(item.device, *item.workload,
                             item.cfg.sim, ctx.store(), collect,
                             &ctx.pool());
        item.raw = collect.take();
    } else {
        item.raw = simulateOrLoad(item.device, *item.workload,
                                  item.cfg.sim, ctx.store(),
                                  &ctx.pool());
    }
    item.wallNs = elapsedNs(start);
    item.simulated =
        !(ctx.store() && ctx.store()->hits() > hits_before);
}

/**
 * Sharded phase A for one item, on the claiming worker thread: try
 * the store (materialized hit, same sim/launch/stats carry as
 * simulateOrLoad()), else prepare the campaign for the flattened
 * run dispatch — raw header, launch view, the shared read-only
 * strike sampler, and pre-sized run slots so phase B workers write
 * disjoint elements of a vector that never reallocates.
 *
 * @return true when the store served the campaign.
 */
bool
resolveStore(PrepassItem &item, SuiteContext &ctx)
{
    if (CampaignStore *store = ctx.store()) {
        CampaignKey key{item.device.name, item.workload->name(),
                        item.workload->inputLabel(),
                        item.cfg.sim};
        if (auto hit = store->load(key)) {
            item.raw = std::move(*hit);
            // jobs/ioThreads are execution details outside the
            // key; carry the caller's values (same as
            // simulateOrLoad()).
            item.raw.sim = item.cfg.sim;
            item.raw.launch =
                buildLaunch(item.device, item.workload->traits());
            item.raw.stats = rebuildSimStats(
                item.raw, StatsRegistry::global());
            return true;
        }
    }
    item.raw.deviceName = item.device.name;
    item.raw.workloadName = item.workload->name();
    item.raw.inputLabel = item.workload->inputLabel();
    item.raw.sim = item.cfg.sim;
    item.raw.launch =
        buildLaunch(item.device, item.workload->traits());
    item.sampler.emplace(item.device, item.raw.launch);
    item.raw.sensitiveAreaAu = item.sampler->totalWeight();
    item.raw.runs.resize(item.cfg.sim.faultyRuns);
    return false;
}

/**
 * Sharded phase B: simulate run `i` of `item` into its
 * pre-allocated slot. Run i draws from runRng(config, i) against a
 * pristine workload instance and a read-only sampler, so the raw
 * bytes are identical to the pool-parallel runner regardless of
 * which worker claims which run. Retry/quarantine policy matches
 * the runner: a run that exhausts its attempt budget stays in the
 * campaign as an infra outcome instead of killing its siblings.
 */
void
simulateShardedRun(PrepassItem &item, Workload &workload,
                   uint64_t i)
{
    const SimConfig &config = item.cfg.sim;
    const ResilienceConfig &rz = config.resilience;
    RetryPolicy policy{std::max(rz.maxAttempts, 1u),
                       rz.softDeadlineNs, rz.backoffBaseNs};
    auto run_start = std::chrono::steady_clock::now();
    RawRun run;
    GuardReport guard = runGuarded(policy, [&](unsigned attempt) {
        if (ChaosEngine *engine = chaos())
            engine->onRunAttempt(i, attempt);
        Rng rng = runRng(config, i);
        run = simulateRun(*item.sampler, workload, config, i, rng);
    });
    if (guard.status != GuardStatus::Ok) {
        run = RawRun{};
        run.index = i;
        run.outcome = guard.status == GuardStatus::Timeout
            ? Outcome::InfraTimeout
            : Outcome::InfraError;
        warn("campaign run %llu quarantined after %u "
             "attempt(s)%s%s",
             static_cast<unsigned long long>(i), guard.attempts,
             guard.error.empty() ? "" : ": ",
             guard.error.c_str());
    }
    run.wallNs = elapsedNs(run_start);
    if (guard.retries() > 0) {
        StatsRegistry::global()
            .counter("resilience.retries")
            .inc(guard.retries());
    }
    item.raw.runs[i] = std::move(run);
}

/**
 * Sharded phase C for one missed item: rebuild the simulation
 * counters in store-hit shape (per-phase timers are execution
 * telemetry the flattened dispatch does not reconstruct), persist
 * the entry (serialized on a background I/O thread behind the
 * global gate when the context runs --io-threads), and fold the
 * default analysis — in run order, so the result is identical to a
 * later analyzeCampaign(). Analysis is skipped when a trace sink
 * or timeline is armed: both are single-writer side channels the
 * concurrent prepass must not drive from worker threads.
 */
void
finalizeSharded(PrepassItem &item, SuiteContext &ctx)
{
    item.raw.stats =
        rebuildSimStats(item.raw, StatsRegistry::global());
    if (CampaignStore *store = ctx.store()) {
        if (item.cfg.sim.ioThreads > 0) {
            std::unique_ptr<RawSink> save = store->saveSink();
            AsyncSaveSink async(*save, &IoThreadGate::global());
            CampaignRawSource source(item.raw,
                                     item.cfg.sim.batchRuns);
            pumpRaw(source, async);
        } else {
            store->save(item.raw);
        }
    }
    if (!traceSink() && !timeline())
        item.analysis =
            analyzeCampaign(item.raw, item.cfg.analysis);
}

} // anonymous namespace

ScheduleStats
scheduleCampaigns(const std::vector<Experiment *> &experiments,
                  SuiteContext &ctx)
{
    ScheduleStats stats;
    stats.sharded = ctx.shardCampaigns();

    std::vector<std::unique_ptr<PrepassItem>> items =
        collectItems(experiments, ctx, stats);
    auto prepass_start = std::chrono::steady_clock::now();

    if (stats.sharded && !items.empty()) {
        std::atomic<uint64_t> done{0};
        std::atomic<uint64_t> inflight{0};
        std::atomic<uint64_t> peak{0};
        Timeline *tl = timeline();
        auto enter = [&] {
            uint64_t now_in =
                inflight.fetch_add(1,
                                   std::memory_order_relaxed) +
                1;
            uint64_t prev = peak.load(std::memory_order_relaxed);
            while (now_in > prev &&
                   !peak.compare_exchange_weak(
                       prev, now_in, std::memory_order_relaxed)) {
            }
        };
        auto leave = [&] {
            inflight.fetch_sub(1, std::memory_order_relaxed);
        };
        auto lane = [&](unsigned worker) -> TimelineLane & {
            return tl->lane(worker + 1,
                            "worker " + std::to_string(worker));
        };
        PoolRunStats poolStats;
        PoolRunStats phaseStats;

        // Phase A — store resolution: hits load (and precompute
        // their analysis) concurrently; misses build their raw
        // header, sampler, and run slots for the flattened
        // dispatch below.
        ctx.pool().forDynamic(
            items.size(), 1,
            [&](unsigned worker, uint64_t begin, uint64_t end) {
                for (uint64_t idx = begin; idx < end; ++idx) {
                    PrepassItem &item = *items[idx];
                    enter();
                    uint64_t span_begin = tl ? tl->nowNs() : 0;
                    auto start = std::chrono::steady_clock::now();
                    item.simulated = !resolveStore(item, ctx);
                    if (!item.simulated && !traceSink() && !tl)
                        item.analysis = analyzeCampaign(
                            item.raw, item.cfg.analysis);
                    item.wallNs = elapsedNs(start);
                    if (tl && !item.simulated) {
                        lane(worker).span(
                            item.key, "prepass", span_begin,
                            tl->nowNs() - span_begin,
                            {{"campaign", item.key},
                             {"source", "store"}});
                    }
                    leave();
                    if (!item.simulated) {
                        uint64_t d =
                            done.fetch_add(
                                1, std::memory_order_relaxed) +
                            1;
                        if (ctx.progress())
                            progressLine(d, items.size(),
                                         prepass_start);
                    }
                }
            },
            &phaseStats);
        poolStats.absorb(phaseStats);

        // Phase B — flattened simulation: every missed campaign's
        // runs in one global index space, claimed run by run so
        // grains cross campaign boundaries and one expensive
        // campaign cannot serialize the tail. Each worker replays
        // on private lazily-taken workload clones; the sources
        // stay pristine (no worker ever injects on them), so
        // concurrent clone() calls are plain const reads.
        std::vector<PrepassItem *> misses;
        for (auto &item : items)
            if (item->simulated)
                misses.push_back(item.get());
        std::vector<uint64_t> offsets;
        offsets.reserve(misses.size() + 1);
        offsets.push_back(0);
        for (PrepassItem *item : misses)
            offsets.push_back(offsets.back() +
                              item->cfg.sim.faultyRuns);
        uint64_t total_runs = offsets.back();
        std::vector<std::vector<std::unique_ptr<Workload>>>
            clones(ctx.pool().jobs());
        for (auto &per_worker : clones)
            per_worker.resize(misses.size());

        phaseStats = PoolRunStats{};
        ctx.pool().forDynamic(
            total_runs, 1,
            [&](unsigned worker, uint64_t begin, uint64_t end) {
                for (uint64_t g = begin; g < end; ++g) {
                    size_t k = static_cast<size_t>(
                        std::upper_bound(offsets.begin(),
                                         offsets.end(), g) -
                        offsets.begin() - 1);
                    PrepassItem &item = *misses[k];
                    uint64_t i = g - offsets[k];
                    if (!item.claimed.exchange(
                            true, std::memory_order_relaxed)) {
                        item.startNs = elapsedNs(prepass_start);
                        enter();
                    }
                    auto &clone = clones[worker][k];
                    if (!clone)
                        clone = item.workload->clone();

                    uint64_t span_begin = tl ? tl->nowNs() : 0;
                    simulateShardedRun(item, *clone, i);
                    if (tl) {
                        lane(worker).span(
                            item.key, "prepass", span_begin,
                            tl->nowNs() - span_begin,
                            {{"campaign", item.key},
                             {"run", std::to_string(i)},
                             {"source", "simulated"}});
                    }

                    uint64_t fin =
                        item.runsDone.fetch_add(
                            1, std::memory_order_relaxed) +
                        1;
                    if (fin == item.cfg.sim.faultyRuns) {
                        item.wallNs =
                            elapsedNs(prepass_start) -
                            item.startNs;
                        leave();
                    }
                }
            },
            &phaseStats);
        poolStats.absorb(phaseStats);

        // Phase C — per-campaign finalization of the misses:
        // stats rebuild, store save (async behind the I/O gate),
        // and the precomputed default analysis, all folded across
        // the workers.
        phaseStats = PoolRunStats{};
        ctx.pool().forDynamic(
            misses.size(), 1,
            [&](unsigned worker, uint64_t begin, uint64_t end) {
                (void)worker;
                for (uint64_t idx = begin; idx < end; ++idx) {
                    PrepassItem &item = *misses[idx];
                    enter();
                    auto start = std::chrono::steady_clock::now();
                    finalizeSharded(item, ctx);
                    item.wallNs += elapsedNs(start);
                    leave();
                    uint64_t d =
                        done.fetch_add(
                            1, std::memory_order_relaxed) +
                        1;
                    if (ctx.progress())
                        progressLine(d, items.size(),
                                     prepass_start);
                }
            },
            &phaseStats);
        poolStats.absorb(phaseStats);

        publishPoolStats(poolStats, StatsRegistry::global());
        stats.concurrentPeak = peak.load();
    } else {
        for (size_t idx = 0; idx < items.size(); ++idx) {
            executeSequential(*items[idx], ctx);
            if (ctx.progress())
                progressLine(idx + 1, items.size(),
                             prepass_start);
        }
        stats.concurrentPeak = items.empty() ? 0 : 1;
    }
    stats.prepassWallNs = elapsedNs(prepass_start);

    // Plan insertion happens after the dispatch, on the caller
    // thread, in declaration order: addPlanned() is not
    // thread-safe and panics on duplicates, which the dedup above
    // guarantees cannot happen.
    for (auto &item : items) {
        stats.wallNs += item->wallNs;
        if (item->simulated)
            ++stats.simulated;
        else
            ++stats.storeHits;

        SuiteContext::PlannedCampaign entry;
        entry.raw = std::move(item->raw);
        entry.owner = std::move(item->owner);
        entry.wallNs = item->wallNs;
        entry.simulated = item->simulated;
        entry.defaultAnalysis = std::move(item->analysis);
        ctx.addPlanned(item->key, std::move(entry));
    }
    if (stats.wallNs > stats.prepassWallNs)
        stats.overlapNs = stats.wallNs - stats.prepassWallNs;
    return stats;
}

} // namespace radcrit
