/**
 * @file
 * Suite scheduler: the campaign-dedup prepass.
 *
 * Collects every campaign the selected experiments declare,
 * deduplicates them by (device, workload, input, seed, runs)
 * identity, and simulates each distinct campaign exactly once
 * (through the campaign store when one is armed). The raw results
 * land in the context's plan, from which the experiments' pure
 * analyze/render phases are served from memory.
 *
 * Two execution shapes produce byte-identical plans:
 *
 *  - sequential (default): distinct campaigns run one after the
 *    other, each parallel across the full shared WorkerPool via
 *    the streaming runner — the deterministic chunking makes
 *    results identical to any other execution shape;
 *  - sharded (--shard-campaigns): every missed campaign's runs are
 *    flattened into one global index space and claimed run by run
 *    from the shared pool (WorkerPool::forDynamic()), so grains
 *    cross campaign boundaries and small campaigns pack alongside
 *    large ones instead of draining the pool between them — one
 *    expensive campaign no longer serializes the prepass tail.
 *    Run k of a campaign still draws from runRng(config, k)
 *    against a pristine per-worker workload clone, so the raw
 *    bytes match the sequential prepass at any --jobs. Store
 *    loads, saves, and each campaign's default analysis are folded
 *    across the workers too (saves behind the --io-threads gate),
 *    taking both I/O and analysis off the suite's serial render
 *    phase.
 */

#ifndef RADCRIT_SUITE_SCHEDULER_HH
#define RADCRIT_SUITE_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "suite/context.hh"

namespace radcrit
{

class Experiment;

/** What the dedup prepass did. */
struct ScheduleStats
{
    /** Campaign declarations across all selected experiments. */
    uint64_t requested = 0;
    /** Distinct campaigns after dedup. */
    uint64_t distinct = 0;
    /** Distinct campaigns the prepass had to simulate. */
    uint64_t simulated = 0;
    /** Distinct campaigns served by the campaign store. */
    uint64_t storeHits = 0;
    /**
     * Summed per-campaign wall nanoseconds of the prepass
     * simulate/load work (what the campaigns cost individually).
     */
    uint64_t wallNs = 0;
    /** Whether the prepass ran sharded (--shard-campaigns). */
    bool sharded = false;
    /**
     * Peak number of distinct campaigns in flight at once: 1 for
     * a non-empty sequential prepass, up to min(jobs, distinct)
     * when sharded.
     */
    uint64_t concurrentPeak = 0;
    /** Wall-clock nanoseconds of the whole prepass. */
    uint64_t prepassWallNs = 0;
    /**
     * Wall nanoseconds won back by overlapping campaigns:
     * max(0, wallNs - prepassWallNs). 0 when sequential.
     */
    uint64_t overlapNs = 0;
};

/**
 * Run the dedup prepass for `experiments` (each at its
 * context-resolved run count) and fill the context's plan. The
 * execution shape follows SuiteContext::shardCampaigns(); with
 * SuiteContext::progress() the prepass reports campaign-granular
 * progress ("k/N distinct campaigns" with an ETA).
 */
ScheduleStats
scheduleCampaigns(const std::vector<Experiment *> &experiments,
                  SuiteContext &ctx);

} // namespace radcrit

#endif // RADCRIT_SUITE_SCHEDULER_HH
