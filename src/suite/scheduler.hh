/**
 * @file
 * Suite scheduler: the campaign-dedup prepass.
 *
 * Collects every campaign the selected experiments declare,
 * deduplicates them by (device, workload, input, seed, runs)
 * identity, and simulates each distinct campaign exactly once on
 * the context's shared WorkerPool (through the campaign store when
 * one is armed). The raw results land in the context's plan, from
 * which the experiments' pure analyze/render phases are served
 * from memory.
 */

#ifndef RADCRIT_SUITE_SCHEDULER_HH
#define RADCRIT_SUITE_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "suite/context.hh"

namespace radcrit
{

class Experiment;

/** What the dedup prepass did. */
struct ScheduleStats
{
    /** Campaign declarations across all selected experiments. */
    uint64_t requested = 0;
    /** Distinct campaigns after dedup. */
    uint64_t distinct = 0;
    /** Distinct campaigns the prepass had to simulate. */
    uint64_t simulated = 0;
    /** Distinct campaigns served by the campaign store. */
    uint64_t storeHits = 0;
    /** Wall nanoseconds spent simulating/loading in the prepass. */
    uint64_t wallNs = 0;
};

/**
 * Run the dedup prepass for `experiments` (each at its
 * context-resolved run count) and fill the context's plan.
 * Campaigns are simulated sequentially, each parallel across the
 * full shared pool — the deterministic chunking makes results
 * identical to any other execution shape.
 */
ScheduleStats
scheduleCampaigns(const std::vector<Experiment *> &experiments,
                  SuiteContext &ctx);

} // namespace radcrit

#endif // RADCRIT_SUITE_SCHEDULER_HH
