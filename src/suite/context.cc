#include "suite/context.hh"

#include <chrono>
#include <cstdlib>
#include <filesystem>

#include "campaign/stream.hh"
#include "common/logging.hh"
#include "suite/experiment.hh"
#include "suite/spec.hh"

namespace radcrit
{

namespace
{

uint64_t
elapsedNs(std::chrono::steady_clock::time_point since)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - since)
            .count());
}

} // anonymous namespace

std::string
resolveOutputDir(const std::string &cli_value)
{
    if (!cli_value.empty())
        return cli_value;
    const char *env = std::getenv("RADCRIT_BENCH_OUT");
    if (env && *env)
        return env;
    return "bench_out";
}

SuiteContext::SuiteContext(const Options &options,
                           CampaignStore *store, WorkerPool &pool)
    : options_(options), store_(store), pool_(pool),
      recorder_(&ownRecorder_)
{
    ownRecorder_.jobs = options_.jobs;
}

const std::string &
SuiteContext::outputDir()
{
    if (!outDirReady_) {
        outDirReady_ = true;
        std::error_code ec;
        std::filesystem::create_directories(options_.outDir, ec);
        if (ec) {
            warn("cannot create output directory '%s': %s",
                 options_.outDir.c_str(), ec.message().c_str());
        }
    }
    return options_.outDir;
}

uint64_t
SuiteContext::runsFor(const Experiment &experiment) const
{
    if (options_.runsOverride >= 0)
        return static_cast<uint64_t>(options_.runsOverride);
    return experiment.info().defaultRuns;
}

void
SuiteContext::setRecorder(BenchRecorder *recorder)
{
    recorder_ = recorder ? recorder : &ownRecorder_;
    recorder_->jobs = options_.jobs;
}

CampaignRaw
SuiteContext::campaignRaw(const DeviceModel &device,
                          Workload &workload, uint64_t runs)
{
    std::string key = campaignPlanKey(device.name, workload.name(),
                                      workload.inputLabel(), runs);
    auto start = std::chrono::steady_clock::now();

    auto it = plan_.find(key);
    if (it != plan_.end()) {
        PlannedCampaign &entry = it->second;
        ++memoryServes_;
        // The prepass simulation is charged to the first consumer
        // as a cache miss (with the real simulation wall time), so
        // per-experiment tallies keep the standalone-bench
        // semantics: every simulated campaign is some experiment's
        // miss, every re-use a hit.
        bool charge = entry.simulated && !entry.charged;
        if (charge)
            entry.charged = true;
        recorder_->addCampaign(entry.raw.runs.size(),
                               charge ? entry.wallNs
                                      : elapsedNs(start),
                               !charge);
        return entry.raw;
    }

    // Not in the plan: an undeclared campaign (shim mode, or an
    // ad-hoc device variant). Same path a standalone bench took.
    CampaignConfig cfg = defaultCampaign(runs, device.name,
                                         workload.name(),
                                         workload.inputLabel());
    cfg.sim.jobs = options_.jobs;
    cfg.sim.batchRuns = options_.batchRuns;
    cfg.sim.ioThreads = options_.ioThreads;
    uint64_t hits_before = store_ ? store_->hits() : 0;
    CampaignRaw raw;
    if (options_.stream) {
        // Streamed engine and store I/O; the collect sink
        // materializes the result the experiments consume.
        CollectRawSink collect;
        simulateOrLoadStream(device, workload, cfg.sim, store_,
                             collect, &pool_);
        raw = collect.take();
    } else {
        raw = simulateOrLoad(device, workload, cfg.sim, store_,
                             &pool_);
    }
    bool cached = store_ && store_->hits() > hits_before;
    if (cached)
        ++unplannedHits_;
    else
        ++unplannedMisses_;
    recorder_->addCampaign(raw.runs.size(), elapsedNs(start),
                           cached);
    return raw;
}

CampaignResult
SuiteContext::campaignResult(const DeviceModel &device,
                             Workload &workload, uint64_t runs)
{
    std::string key = campaignPlanKey(device.name, workload.name(),
                                      workload.inputLabel(), runs);
    auto start = std::chrono::steady_clock::now();
    auto it = plan_.find(key);
    if (it != plan_.end() && it->second.defaultAnalysis) {
        // The sharded prepass already folded the default analysis
        // on the worker that simulated this campaign; serve it
        // with exactly the bookkeeping campaignRaw() would have
        // done (first consumer gets charged the simulation cost).
        PlannedCampaign &entry = it->second;
        ++memoryServes_;
        bool charge = entry.simulated && !entry.charged;
        if (charge)
            entry.charged = true;
        recorder_->addCampaign(entry.raw.runs.size(),
                               charge ? entry.wallNs
                                      : elapsedNs(start),
                               !charge);
        return *entry.defaultAnalysis;
    }

    CampaignConfig cfg = defaultCampaign(runs, device.name,
                                         workload.name(),
                                         workload.inputLabel());
    CampaignRaw raw = campaignRaw(device, workload, runs);
    return analyzeCampaign(raw, cfg.analysis);
}

bool
SuiteContext::planned(const std::string &key) const
{
    return plan_.count(key) != 0;
}

void
SuiteContext::addPlanned(const std::string &key,
                         PlannedCampaign entry)
{
    if (planned(key))
        panic("campaign '%s' planned twice", key.c_str());
    plan_.emplace(key, std::move(entry));
}

} // namespace radcrit
