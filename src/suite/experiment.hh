/**
 * @file
 * Experiment interface and self-registration registry.
 *
 * Every paper figure, table, and ablation is an Experiment: a
 * named unit that declares the campaigns it needs (for the suite
 * scheduler's cross-experiment dedup) and renders its output from
 * a SuiteContext. Experiments register themselves at static-init
 * time via RADCRIT_REGISTER_EXPERIMENT, so the one radcrit_suite
 * driver — and the thin per-figure shim executables — discover
 * them by name without a central list.
 */

#ifndef RADCRIT_SUITE_EXPERIMENT_HH
#define RADCRIT_SUITE_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "suite/spec.hh"

namespace radcrit
{

class CliParser;
class SuiteContext;

/** Static description of one experiment. */
struct ExperimentInfo
{
    /** Registry name ("fig2_dgemm_scatter"); globally unique. */
    std::string name;
    /** Paper artifact tag ("Fig. 2", "Table I", "Ablation 3"). */
    std::string tag;
    /** One-line summary for `list`. */
    std::string summary;
    /** Sort key for `run all` (ties broken by name). */
    int order = 0;
    /** Default --runs when the user gives none. */
    uint64_t defaultRuns = 200;
    /**
     * Emits bench_out/bench_<name>.json (schema 6) when run as a
     * standalone shim. The suite driver instead folds every
     * experiment into the one schema-6 suite document.
     */
    bool benchJson = false;
    /**
     * The shim passes raw argv through to run() (via
     * SuiteContext::shimArgs()) instead of parsing the standard
     * option set — for experiments wrapping an external harness
     * with its own flags (google-benchmark).
     */
    bool rawShimCli = false;
};

/**
 * One registered experiment. Implementations are stateless between
 * runs: everything an invocation needs arrives via the
 * SuiteContext.
 */
class Experiment
{
  public:
    virtual ~Experiment() = default;

    /** @return the static description. */
    virtual const ExperimentInfo &info() const = 0;

    /**
     * Register extra CLI options (beyond the standard
     * runs/jobs/cache/out/no-csv set). Option names must be unique
     * across all experiments: the suite driver exposes the union
     * on one command line.
     */
    virtual void
    addOptions(CliParser &cli) const
    {
        (void)cli;
    }

    /**
     * Declare the campaigns this experiment will consume at the
     * given run count, for the scheduler's dedup prepass.
     * Campaigns on ad-hoc device variants cannot be declared (the
     * request names devices by id) and are simulated lazily when
     * run() asks for them.
     */
    virtual std::vector<CampaignRequest>
    campaigns(uint64_t runs) const
    {
        (void)runs;
        return {};
    }

    /** Produce the experiment's output (render + CSV side files). */
    virtual void run(SuiteContext &ctx) = 0;
};

/**
 * Process-wide experiment registry, populated by static
 * registrars. Lookup is by exact name or by glob ("fig*", "?vf*":
 * '*' matches any run, '?' one character).
 */
class ExperimentRegistry
{
  public:
    /** @return the singleton registry. */
    static ExperimentRegistry &instance();

    /**
     * Register an experiment; a duplicate name is a panic() (two
     * registrars claiming one name is a programming error).
     */
    void add(std::unique_ptr<Experiment> experiment);

    /** @return all experiments, sorted by (order, name). */
    std::vector<Experiment *> all() const;

    /** @return experiments whose name matches the glob, sorted. */
    std::vector<Experiment *> match(const std::string &glob) const;

    /** @return the experiment with this exact name, or null. */
    Experiment *find(const std::string &name) const;

  private:
    std::vector<std::unique_ptr<Experiment>> experiments_;
};

/** @return true when glob `pattern` ('*', '?') matches `text`. */
bool globMatch(const std::string &pattern, const std::string &text);

/**
 * Define the static registrar for an experiment class. Use at
 * namespace scope in the experiment's .cc file.
 */
#define RADCRIT_REGISTER_EXPERIMENT(cls)                           \
    namespace                                                      \
    {                                                              \
    const bool cls##_registered = [] {                             \
        ExperimentRegistry::instance().add(                        \
            std::make_unique<cls>());                              \
        return true;                                               \
    }();                                                           \
    }

} // namespace radcrit

#endif // RADCRIT_SUITE_EXPERIMENT_HH
