#include "suite/render.hh"

#include <cstdio>
#include <fstream>
#include <iostream>

#include "campaign/series.hh"
#include "common/csv.hh"
#include "common/figure.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "obs/json.hh"
#include "obs/procmem.hh"
#include "obs/stats_registry.hh"

namespace radcrit
{

void
renderScatterFigure(SuiteContext &ctx, const std::string &title,
                    const std::vector<CampaignResult> &results,
                    double x_clamp, double y_clamp,
                    const std::string &csv_name)
{
    ScatterPlot plot(title, "Number of Incorrect Elements",
                     "Average Relative Error (%)");
    if (x_clamp > 0.0)
        plot.setXClamp(x_clamp);
    if (y_clamp > 0.0)
        plot.setYClamp(y_clamp);
    for (const auto &res : results)
        plot.addSeries(scatterSeries(res));
    plot.render(std::cout);

    if (ctx.writeCsv()) {
        std::string path = ctx.outputDir() + "/" + csv_name;
        CsvWriter csv(path);
        csv.writeRow({"device", "input", "numIncorrect",
                      "meanRelErrPct"});
        for (const auto &res : results) {
            ScatterSeries s = scatterSeries(res);
            for (size_t i = 0; i < s.xs.size(); ++i) {
                csv.writeRow({res.deviceName, res.inputLabel,
                              TextTable::num(s.xs[i], 0),
                              TextTable::num(s.ys[i], 4)});
            }
        }
        std::printf("[csv] %s\n", path.c_str());
    }
}

void
renderLocalityFigure(SuiteContext &ctx, const std::string &title,
                     const std::vector<CampaignResult> &results,
                     const std::vector<Pattern> &patterns,
                     const std::string &csv_name)
{
    std::vector<std::string> names;
    for (Pattern p : patterns)
        names.push_back(patternName(p));
    StackedBarChart chart(title, names);
    for (const auto &res : results) {
        LocalityBars bars = localityBars(res, patterns);
        for (auto &bar : bars.bars)
            chart.addBar(std::move(bar));
    }
    chart.render(std::cout);

    if (ctx.writeCsv()) {
        std::string path = ctx.outputDir() + "/" + csv_name;
        CsvWriter csv(path);
        std::vector<std::string> header{"device", "input",
                                        "filtered"};
        for (const auto &n : names)
            header.push_back(n);
        header.push_back("total");
        csv.writeRow(header);
        for (const auto &res : results) {
            for (bool filtered : {false, true}) {
                FitBreakdown bd = res.fitByPattern(filtered);
                std::vector<std::string> row{
                    res.deviceName, res.inputLabel,
                    filtered ? "yes" : "no"};
                for (Pattern p : patterns)
                    row.push_back(TextTable::num(bd.of(p), 4));
                row.push_back(TextTable::num(bd.total(), 4));
                csv.writeRow(row);
            }
        }
        std::printf("[csv] %s\n", path.c_str());
    }
}

void
writeResilienceJson(std::ostream &os, const StatsSnapshot &snap,
                    int indent)
{
    JsonObjectWriter rz(os, indent);
    for (const char *name :
         {"retries", "resumed_runs", "watchdog_overdue",
          "checkpoint_torn_records", "store_quarantined",
          "chaos_throws", "chaos_stalls",
          "chaos_corrupt_writes"}) {
        // The JSON keys are the counter names with their registry
        // prefixes folded away; every field is present even when
        // zero so consumers never need existence checks.
        std::string counter;
        if (std::string(name) == "store_quarantined")
            counter = "campaign.store.quarantined";
        else if (std::string(name) == "watchdog_overdue")
            counter = "resilience.watchdog.overdue";
        else if (std::string(name) == "checkpoint_torn_records")
            counter = "resilience.checkpoint.torn_records";
        else if (std::string(name, 0, 6) == "chaos_")
            counter = std::string("resilience.chaos.") +
                (name + 6);
        else
            counter = std::string("resilience.") + name;
        rz.field(name,
                 static_cast<uint64_t>(snap.value(counter)));
    }
}

void
writeShardingJson(std::ostream &os, const StatsSnapshot &snap,
                  int indent, bool enabled,
                  uint64_t concurrent_campaigns,
                  uint64_t overlap_ns, uint64_t prepass_wall_ns,
                  unsigned io_threads)
{
    JsonObjectWriter sh(os, indent);
    sh.field("enabled", static_cast<uint64_t>(enabled ? 1 : 0));
    sh.field("concurrent_campaigns", concurrent_campaigns);
    sh.field("overlap_ns", overlap_ns);
    sh.field("prepass_wall_ns", prepass_wall_ns);
    sh.field("io_threads", static_cast<uint64_t>(io_threads));
    sh.field("io_batches", static_cast<uint64_t>(
        snap.value("store.io.async.batches")));
    sh.field("io_busy_ns", static_cast<uint64_t>(
        snap.value("store.io.async.busy_ns")));
    sh.field("io_queue_peak", static_cast<uint64_t>(
        snap.value("store.io.async.queue_peak")));
}

void
writeMemoryJson(std::ostream &os, const StatsSnapshot &snap,
                int indent)
{
    ProcMemSample mem = readProcMem();
    JsonObjectWriter m(os, indent);
    // Invalid samples (no /proc) report zeros rather than dropping
    // the fields; consumers never need existence checks.
    m.field("peak_rss_bytes", mem.peakRssBytes);
    m.field("current_rss_bytes", mem.currentRssBytes);
    m.field("stream_batches",
            static_cast<uint64_t>(snap.value("stream.batches")));
    m.field("batch_runs",
            static_cast<uint64_t>(snap.value("stream.batch_runs")));
}

void
writeBenchJson(SuiteContext &ctx, const std::string &bench_name)
{
    const BenchRecorder &rec = ctx.recorder();
    std::string path = ctx.outputDir() + "/" + bench_name +
        ".json";
    std::ofstream out(path);
    if (!out) {
        warn("cannot open bench results file '%s'", path.c_str());
        return;
    }
    StatsSnapshot snap = StatsRegistry::global().snapshot();
    {
        JsonObjectWriter obj(out);
        obj.field("schema", uint64_t{8});
        obj.field("bench", bench_name);
        obj.field("campaigns", rec.campaigns);
        obj.field("jobs", static_cast<uint64_t>(rec.jobs));
        obj.field("runs", rec.runs);
        obj.field("wall_ns", rec.wallNs);
        obj.field("cache_hits", rec.cacheHits);
        obj.field("cache_misses", rec.cacheMisses);
        obj.field("ns_per_op", rec.nsPerOp());
        obj.field("runs_per_s", rec.runsPerSecond());
        obj.beginRawField("timings");
        {
            // The perf trajectory: wall clock, throughput, where
            // the time went (phase timers), and how well the worker
            // pool was used. All-cache-hit runs legitimately report
            // zero phase time: no simulation happened.
            JsonObjectWriter timings(out, 4);
            timings.field("wall_ns", rec.wallNs);
            timings.field("runs_per_s", rec.runsPerSecond());
            timings.field("pool_busy_ns", static_cast<uint64_t>(
                snap.value("pool.busy.ns")));
            timings.field("pool_idle_ns", static_cast<uint64_t>(
                snap.value("pool.idle.ns")));
            timings.field("pool_utilization",
                          snap.value("pool.utilization"));
            timings.beginRawField("phase_ns");
            {
                JsonObjectWriter phases(out, 6);
                for (const char *phase :
                     {"sample", "classify", "replay", "metrics"}) {
                    phases.field(
                        phase,
                        static_cast<uint64_t>(snap.value(
                            std::string("campaign.phase.") +
                            phase + ".ns")));
                }
                phases.field("total", static_cast<uint64_t>(
                    snap.value("campaign.total.ns")));
            }
        }
        obj.beginRawField("sharding");
        writeShardingJson(out, snap, 4, false, 0, 0, 0,
                          ctx.ioThreads());
        obj.beginRawField("resilience");
        writeResilienceJson(out, snap, 4);
        obj.beginRawField("memory");
        writeMemoryJson(out, snap, 4);
        obj.beginRawField("stats");
        snap.writeJson(out, 2);
        obj.close();
    }
    out << "\n";
    std::printf("[json] %s\n", path.c_str());
}

} // namespace radcrit
