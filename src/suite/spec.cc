#include "suite/spec.hh"

#include "common/logging.hh"

namespace radcrit
{

const char *
workloadKindName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Dgemm:
        return "DGEMM";
      case WorkloadKind::LavaMd:
        return "LavaMD";
      case WorkloadKind::HotSpot:
        return "HotSpot";
      case WorkloadKind::Clamr:
        return "CLAMR";
    }
    panic("bad WorkloadKind %d", static_cast<int>(kind));
}

WorkloadSpec
dgemmSpec(int64_t scaled_side)
{
    return {WorkloadKind::Dgemm, scaled_side, 0};
}

WorkloadSpec
lavamdSpec(const LavaMdSize &size)
{
    return {WorkloadKind::LavaMd, size.scaledBoxes,
            size.paperBoxes};
}

WorkloadSpec
hotspotSpec()
{
    return {WorkloadKind::HotSpot, 0, 0};
}

WorkloadSpec
clamrSpec()
{
    return {WorkloadKind::Clamr, 0, 0};
}

std::unique_ptr<Workload>
buildWorkload(const DeviceModel &device, const WorkloadSpec &spec)
{
    switch (spec.kind) {
      case WorkloadKind::Dgemm:
        return makeDgemmWorkload(device, spec.param0);
      case WorkloadKind::LavaMd:
        return makeLavamdWorkload(
            device, LavaMdSize{spec.param0, spec.param1});
      case WorkloadKind::HotSpot:
        return makeHotspotWorkload(device);
      case WorkloadKind::Clamr:
        return makeClamrWorkload(device);
    }
    panic("bad WorkloadKind %d", static_cast<int>(spec.kind));
}

std::string
campaignPlanKey(const std::string &device_name,
                const std::string &workload_name,
                const std::string &input_label, uint64_t runs)
{
    // '\x1f' (unit separator) cannot appear in the labels, so the
    // concatenation is injective.
    return device_name + '\x1f' + workload_name + '\x1f' +
        input_label + '\x1f' + std::to_string(runs);
}

std::vector<CampaignRequest>
dgemmRequests(uint64_t runs)
{
    std::vector<CampaignRequest> reqs;
    for (DeviceId id : allDevices()) {
        for (int64_t side : dgemmScaledSides(id))
            reqs.push_back({id, dgemmSpec(side), runs});
    }
    return reqs;
}

std::vector<CampaignRequest>
lavamdRequests(uint64_t runs)
{
    std::vector<CampaignRequest> reqs;
    for (DeviceId id : allDevices()) {
        for (const auto &size : lavamdScaledSizes(id))
            reqs.push_back({id, lavamdSpec(size), runs});
    }
    return reqs;
}

std::vector<CampaignRequest>
hotspotRequests(uint64_t runs)
{
    std::vector<CampaignRequest> reqs;
    for (DeviceId id : allDevices())
        reqs.push_back({id, hotspotSpec(), runs});
    return reqs;
}

std::vector<CampaignRequest>
clamrRequests(uint64_t runs)
{
    // The paper has no K40 CLAMR data (LANL proprietary workload
    // targeted at Xeon-Phi-based Trinity).
    return {{DeviceId::XeonPhi, clamrSpec(), runs}};
}

} // namespace radcrit
