/**
 * @file
 * Paper Section V opening measurements: SDC : (crash + hang)
 * ratios per device, code and input size. Paper values for
 * comparison: DGEMM K40 1.1-4x (falling with input), Phi ~4x
 * flat; LavaMD K40 ~3x, Phi 3-12x (rising with input); HotSpot
 * K40 ~7x, Phi ~3x.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/csv.hh"
#include "common/table.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

/** SDC:(crash+hang) ratio cell; "n/a" when undefined. */
std::string
ratioCell(const CampaignResult &res, int digits)
{
    double ratio = res.sdcOverDetectable();
    return std::isnan(ratio) ? "n/a"
                             : TextTable::num(ratio, digits);
}

void
addRow(TextTable &table, const CampaignResult &res,
       const std::string &paper_band)
{
    table.addRow({res.deviceName, res.workloadName,
                  res.inputLabel,
                  TextTable::num(res.count(Outcome::Sdc)),
                  TextTable::num(res.count(Outcome::Crash)),
                  TextTable::num(res.count(Outcome::Hang)),
                  ratioCell(res, 2),
                  paper_band});
}

class SdcCrashRatios : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "sdc_crash_ratios",
            .tag = "Sec. V",
            .summary = "SDC : (crash+hang) ratios per device, "
                       "workload and input vs. paper bands",
            .order = 30,
            .defaultRuns = 300,
            .benchJson = true};
        return info;
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        std::vector<CampaignRequest> reqs = dgemmRequests(runs);
        for (const auto &req : lavamdRequests(runs))
            reqs.push_back(req);
        for (const auto &req : hotspotRequests(runs))
            reqs.push_back(req);
        return reqs;
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);

        TextTable table("SDC : (crash + hang) ratios "
                        "(paper Section V)");
        table.setHeader({"device", "workload", "input", "SDC",
                         "crash", "hang", "SDC:det",
                         "paper band"});

        std::vector<CampaignResult> all;
        for (DeviceId id : allDevices()) {
            DeviceModel device = makeDevice(id);
            bool k40 = id == DeviceId::K40;
            for (int64_t side : dgemmScaledSides(id)) {
                auto w = makeDgemmWorkload(device, side);
                auto res = ctx.campaignResult(device, *w, runs);
                addRow(table, res,
                       k40 ? "1.1-4x, falls w/ input"
                           : "~4x flat");
                all.push_back(std::move(res));
            }
            for (const auto &size : lavamdScaledSizes(id)) {
                auto w = makeLavamdWorkload(device, size);
                auto res = ctx.campaignResult(device, *w, runs);
                addRow(table, res,
                       k40 ? "~3x" : "3-12x, rises w/ input");
                all.push_back(std::move(res));
            }
            {
                auto w = makeHotspotWorkload(device);
                auto res = ctx.campaignResult(device, *w, runs);
                addRow(table, res, k40 ? "~7x" : "~3x");
                all.push_back(std::move(res));
            }
            table.addSeparator();
        }
        table.render(std::cout);

        if (ctx.writeCsv()) {
            std::string path = ctx.outputDir() +
                "/sdc_crash_ratios.csv";
            CsvWriter w(path);
            w.writeRow({"device", "workload", "input", "sdc",
                        "crash", "hang", "masked", "ratio"});
            for (const auto &res : all) {
                w.writeRow({res.deviceName, res.workloadName,
                            res.inputLabel,
                            TextTable::num(
                                res.count(Outcome::Sdc)),
                            TextTable::num(
                                res.count(Outcome::Crash)),
                            TextTable::num(
                                res.count(Outcome::Hang)),
                            TextTable::num(
                                res.count(Outcome::Masked)),
                            ratioCell(res, 3)});
            }
            std::printf("[csv] %s\n", path.c_str());
        }
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(SdcCrashRatios)

} // namespace radcrit
