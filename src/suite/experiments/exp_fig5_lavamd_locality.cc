/**
 * @file
 * Paper Fig. 5: LavaMD spatial locality and magnitude — relative
 * FIT per pattern (cubic/square/line/single/random), All vs > 2%.
 */

#include <cstdio>

#include "campaign/series.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

class Fig5LavamdLocality : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "fig5_lavamd_locality",
            .tag = "Fig. 5",
            .summary = "LavaMD spatial locality and magnitude "
                       "(relative FIT per 3D error pattern)",
            .order = 23,
            .benchJson = true};
        return info;
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        return lavamdRequests(runs);
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);
        for (DeviceId id : allDevices()) {
            DeviceModel device = makeDevice(id);
            std::vector<CampaignResult> results;
            for (const auto &size : lavamdScaledSizes(id)) {
                auto w = makeLavamdWorkload(device, size);
                results.push_back(
                    ctx.campaignResult(device, *w, runs));
            }
            std::string panel = id == DeviceId::K40
                ? "(a) K40"
                : "(b) Xeon Phi";
            renderLocalityFigure(
                ctx,
                "Fig. 5" + panel +
                    ": LavaMD spatial locality and magnitude "
                    "[FIT a.u.]",
                results, patterns3d(),
                std::string("fig5_lavamd_locality_") + device.name +
                    ".csv");
            std::printf("\n");
        }
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(Fig5LavamdLocality)

} // namespace radcrit
