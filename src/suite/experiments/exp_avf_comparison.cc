/**
 * @file
 * Beam-vs-fault-injection comparison (paper Section IV-D): per-
 * resource AVFs from the campaigns, and the coverage a
 * SASSIFI/NVBitFI-style software injector (registers + memories
 * only) would achieve relative to the beam — quantifying why the
 * paper "take[s] advantage of the controlled neutron beam to
 * perform the error criticality analysis".
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "avf/avf.hh"
#include "common/table.hh"
#include "kernels/dgemm.hh"
#include "kernels/hotspot.hh"
#include "kernels/lavamd.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

void
avfTable(const CampaignResult &res)
{
    TextTable table("Per-resource vulnerability factors: " +
                    res.deviceName + " / " + res.workloadName +
                    " " + res.inputLabel);
    table.setHeader({"resource", "injector?", "strikes",
                     "AVF(any)", "AVF(SDC)", "AVF(critical)"});
    for (const auto &r : computeAvf(res)) {
        table.addRow({resourceKindName(r.resource),
                      injectorAccessible(r.resource) ? "yes"
                                                     : "NO",
                      TextTable::num(r.strikes),
                      TextTable::num(r.avfAny, 2),
                      TextTable::num(r.avfSdc, 2),
                      TextTable::num(r.avfCritical, 2)});
    }
    table.render(std::cout);
}

class AvfComparison : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "avf_comparison",
            .tag = "Sec. IV-D",
            .summary = "per-resource AVFs and software-injector "
                       "coverage of the beam behaviour",
            .order = 43,
            .defaultRuns = 400};
        return info;
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        std::vector<CampaignRequest> reqs;
        for (DeviceId id : allDevices()) {
            reqs.push_back({id, dgemmSpec(256), runs});
            reqs.push_back(
                {id, lavamdSpec(LavaMdSize{7, 15}), runs});
            reqs.push_back({id, hotspotSpec(), runs});
        }
        return reqs;
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);

        TextTable coverage("Software-injector coverage of the "
                           "beam-observed behaviour (paper IV-D)");
        coverage.setHeader({"device", "workload", "strike cov.",
                            "SDC cov.", "critical cov.",
                            "crash/hang cov."});

        for (DeviceId id : allDevices()) {
            DeviceModel device = makeDevice(id);
            std::vector<std::unique_ptr<Workload>> workloads;
            workloads.push_back(makeDgemmWorkload(device, 256));
            workloads.push_back(makeLavamdWorkload(
                device, LavaMdSize{7, 15}));
            workloads.push_back(makeHotspotWorkload(device));
            for (auto &w : workloads) {
                CampaignResult res =
                    ctx.campaignResult(device, *w, runs);
                avfTable(res);
                std::printf("\n");
                InjectorCoverage cov = injectorCoverage(res);
                auto pct = [](double f) {
                    return TextTable::num(100.0 * f, 0) + "%";
                };
                coverage.addRow({device.name, w->name(),
                                 pct(cov.strikeCoverage),
                                 pct(cov.sdcCoverage),
                                 pct(cov.criticalFitCoverage),
                                 pct(cov.detectableCoverage)});
            }
            coverage.addSeparator();
        }
        coverage.render(std::cout);
        std::printf("\nResources marked 'NO' (schedulers, "
                    "dispatchers, execution-unit logic, control, "
                    "interconnect) are invisible to software fault "
                    "injectors — the coverage gaps above are the "
                    "paper's argument for beam testing.\n");
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(AvfComparison)

} // namespace radcrit
