/**
 * @file
 * System-scale projection (paper Section I): scale the campaign
 * failure rates to a Titan-class machine (18,688 accelerators),
 * check the "dozens of hours" MTBF the paper quotes, and compute
 * the Young/Daly checkpoint interval and resulting machine
 * efficiency — why criticality-aware tolerance matters at scale.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/cli.hh"
#include "common/table.hh"
#include "mtbf/projection.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

class MtbfProjection : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "mtbf_projection",
            .tag = "Sec. I",
            .summary = "Titan-scale MTBF/MTBS projection with "
                       "Young/Daly checkpoint efficiency",
            .order = 44,
            .defaultRuns = 300};
        return info;
    }

    void
    addOptions(CliParser &cli) const override
    {
        cli.addInt("devices", 18688,
                   "accelerators in the machine (Titan: 18688)");
        cli.addDouble("fit-per-au", 25.0,
                      "absolute FIT per relative-FIT a.u. "
                      "(anchor)");
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        std::vector<CampaignRequest> reqs;
        for (DeviceId id : allDevices()) {
            reqs.push_back({id, dgemmSpec(256), runs});
            reqs.push_back(
                {id, lavamdSpec(LavaMdSize{7, 15}), runs});
            reqs.push_back({id, hotspotSpec(), runs});
        }
        return reqs;
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);

        SystemConfig system;
        system.devices = ctx.cli()
            ? static_cast<uint64_t>(ctx.cli()->getInt("devices"))
            : 18688;
        system.fitPerAu =
            ctx.cli() ? ctx.cli()->getDouble("fit-per-au") : 25.0;

        TextTable table("System projection: " +
                        TextTable::num(static_cast<uint64_t>(
                            system.devices)) +
                        " devices, anchor " +
                        TextTable::num(system.fitPerAu, 1) +
                        " FIT/a.u.");
        table.setHeader({"device", "workload", "MTBF det. [h]",
                         "MTBS SDC [h]", "MTBS crit. [h]",
                         "Daly ckpt [h]", "efficiency"});

        for (DeviceId id : allDevices()) {
            DeviceModel device = makeDevice(id);
            std::vector<std::unique_ptr<Workload>> workloads;
            workloads.push_back(makeDgemmWorkload(device, 256));
            workloads.push_back(makeLavamdWorkload(
                device, LavaMdSize{7, 15}));
            workloads.push_back(makeHotspotWorkload(device));
            for (auto &w : workloads) {
                CampaignResult res =
                    ctx.campaignResult(device, *w, runs);
                SystemProjection p = projectToSystem(res, system);
                table.addRow({device.name, w->name(),
                              TextTable::num(
                                  p.mtbfDetectableHours, 1),
                              TextTable::num(p.mtbsSdcHours, 1),
                              TextTable::num(p.mtbsCriticalHours,
                                             1),
                              TextTable::num(p.dalyIntervalHours,
                                             2),
                              TextTable::num(100.0 * p.efficiency,
                                             1) + "%"});
            }
            table.addSeparator();
        }
        table.render(std::cout);
        std::printf("\nMTBS = mean time between (critical) silent "
                    "corruptions. Checkpointing only recovers the "
                    "detectable failures; SDCs silently corrupt "
                    "science, and the 'critical' column shows how "
                    "much breathing room an application tolerance "
                    "buys (paper Sections I-II).\n");
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(MtbfProjection)

} // namespace radcrit
