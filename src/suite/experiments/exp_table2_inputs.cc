/**
 * @file
 * Paper Table II: parallel kernels' details — domain, input sizes
 * and thread counts, computed from the launch descriptors of the
 * actual implementations on both devices.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/table.hh"
#include "exec/launch.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"

namespace radcrit
{
namespace
{

void
addRows(TextTable &table, const DeviceModel &device)
{
    DeviceId id = device.name == "K40" ? DeviceId::K40
                                       : DeviceId::XeonPhi;
    for (int64_t side : dgemmScaledSides(id)) {
        auto w = makeDgemmWorkload(device, side);
        KernelLaunch l = buildLaunch(device, w->traits());
        table.addRow({device.name, "DGEMM", "Linear algebra",
                      w->inputLabel(),
                      TextTable::num(w->traits().totalThreads),
                      TextTable::num(l.residentThreads),
                      TextTable::num(l.occupancy, 2),
                      TextTable::num(l.schedulerStrain, 2)});
    }
    for (const auto &size : lavamdScaledSizes(id)) {
        auto w = makeLavamdWorkload(device, size);
        KernelLaunch l = buildLaunch(device, w->traits());
        table.addRow({device.name, "LavaMD",
                      "Molecular dynamics", w->inputLabel(),
                      TextTable::num(w->traits().totalThreads),
                      TextTable::num(l.residentThreads),
                      TextTable::num(l.occupancy, 2),
                      TextTable::num(l.schedulerStrain, 2)});
    }
    {
        auto w = makeHotspotWorkload(device);
        KernelLaunch l = buildLaunch(device, w->traits());
        table.addRow({device.name, "HotSpot",
                      "Physics simulation", w->inputLabel(),
                      TextTable::num(w->traits().totalThreads),
                      TextTable::num(l.residentThreads),
                      TextTable::num(l.occupancy, 2),
                      TextTable::num(l.schedulerStrain, 2)});
    }
    {
        auto w = makeClamrWorkload(device);
        KernelLaunch l = buildLaunch(device, w->traits());
        table.addRow({device.name, "CLAMR", "Fluid dynamics",
                      w->inputLabel() + " (+AMR)",
                      TextTable::num(w->traits().totalThreads),
                      TextTable::num(l.residentThreads),
                      TextTable::num(l.occupancy, 2),
                      TextTable::num(l.schedulerStrain, 2)});
    }
    table.addSeparator();
}

class Table2Inputs : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "table2_inputs",
            .tag = "Table II",
            .summary = "kernel details: inputs, threads, and "
                       "launch view on both devices",
            .order = 12};
        return info;
    }

    void
    run(SuiteContext &ctx) override
    {
        (void)ctx;
        TextTable table("Table II: Parallel kernels' details "
                        "(paper-equivalent launch view)");
        table.setHeader({"Device", "Kernel", "Domain",
                         "Input size", "#Threads", "resident",
                         "occupancy", "sched strain"});
        for (DeviceId id : allDevices())
            addRows(table, makeDevice(id));
        table.render(std::cout);
        std::printf("\nLavaMD particles/box: 192 on K40, 100 on "
                    "Xeon Phi (paper IV-C, scaled /4 "
                    "internally)\n");
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(Table2Inputs)

} // namespace radcrit
