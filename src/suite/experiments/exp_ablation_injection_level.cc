/**
 * @file
 * Ablation 1 (DESIGN.md Section 6): architectural injection vs.
 * naive output-level injection. Flipping a bit of one random
 * output element — the classic fault-injection shortcut — makes
 * every SDC a Single-pattern error and misses the entire spatial-
 * locality phenomenology the paper measures under beam.
 */

#include <array>
#include <cstdio>
#include <iostream>

#include "common/rng.hh"
#include "common/table.hh"
#include "kernels/dgemm.hh"
#include "kernels/inject_util.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

/** Naive injector: flip one bit of one output element. */
SdcRecord
naiveOutputInjection(const Dgemm &dgemm, Rng &rng)
{
    SdcRecord rec = dgemm.emptyRecord();
    int64_t n = dgemm.n();
    int64_t i = rng.uniformRange(0, n - 1);
    int64_t j = rng.uniformRange(0, n - 1);
    double golden = dgemm.goldenC()[i * n + j];
    double bad = flipBits(golden, 1, rng);
    if (bad != golden)
        rec.elements.push_back({{i, j, 0}, bad, golden});
    return rec;
}

class AblationInjectionLevel : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "ablation_injection_level",
            .tag = "Ablation 1",
            .summary = "architectural vs. naive output-level "
                       "injection (DGEMM error patterns)",
            .order = 60,
            .defaultRuns = 300};
        return info;
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        return {{DeviceId::K40, dgemmSpec(256), runs}};
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);

        DeviceModel device = makeDevice(DeviceId::K40);
        Dgemm dgemm(device, 256);

        // Architectural campaign.
        CampaignResult arch =
            ctx.campaignResult(device, dgemm, runs);
        std::array<uint64_t, numPatterns> arch_pat{};
        uint64_t arch_sdc = 0;
        for (const auto &run : arch.runs) {
            if (run.outcome != Outcome::Sdc)
                continue;
            ++arch_sdc;
            arch_pat[static_cast<size_t>(run.crit.pattern)]++;
        }

        // Naive output-level campaign.
        Rng rng(7);
        std::array<uint64_t, numPatterns> naive_pat{};
        uint64_t naive_sdc = 0;
        for (uint64_t i = 0; i < runs; ++i) {
            SdcRecord rec = naiveOutputInjection(dgemm, rng);
            if (rec.empty())
                continue;
            ++naive_sdc;
            naive_pat[static_cast<size_t>(
                classifyLocality(rec))]++;
        }

        TextTable table("Ablation: architectural vs naive output "
                        "injection (DGEMM on K40)");
        table.setHeader({"pattern", "architectural", "naive"});
        for (size_t p = 0; p < numPatterns; ++p) {
            auto pattern = static_cast<Pattern>(p);
            if (pattern == Pattern::None)
                continue;
            auto pct = [](uint64_t n, uint64_t total) {
                return total ? TextTable::num(
                    100.0 * static_cast<double>(n) /
                    static_cast<double>(total), 0) + "%"
                             : std::string("-");
            };
            table.addRow({patternName(pattern),
                          pct(arch_pat[p], arch_sdc),
                          pct(naive_pat[p], naive_sdc)});
        }
        table.render(std::cout);
        std::printf("\nNaive injection collapses every error to "
                    "Single: no line/square/random patterns, no "
                    "multi-element propagation — the beam-observed "
                    "criticality phenomenology disappears.\n");
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(AblationInjectionLevel)

} // namespace radcrit
