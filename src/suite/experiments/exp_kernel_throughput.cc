/**
 * @file
 * google-benchmark microbenches of the kernel substrates: golden
 * computation throughput and injection-replay latency. These are
 * the sanity checks that the simulator can sustain the campaign
 * sizes used by the figure harnesses.
 *
 * As an experiment this wraps the google-benchmark runner: the
 * standalone shim passes its raw argv straight through
 * (rawShimCli), while the suite driver assembles the harness
 * arguments from --gbench-filter / --gbench-min-time.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "campaign/paperconfigs.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "kernels/clamr.hh"
#include "kernels/dgemm.hh"
#include "kernels/hotspot.hh"
#include "kernels/lavamd.hh"
#include "sim/sampler.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"

namespace radcrit
{
namespace
{

void
BM_DgemmGolden(benchmark::State &state)
{
    DeviceModel device = makeK40();
    auto n = static_cast<int64_t>(state.range(0));
    for (auto _ : state) {
        Dgemm dgemm(device, n, 42);
        benchmark::DoNotOptimize(dgemm.goldenC().data());
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_DgemmGolden)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void
BM_DgemmInject(benchmark::State &state)
{
    DeviceModel device = makeK40();
    Dgemm dgemm(device, 256, 42);
    KernelLaunch launch = buildLaunch(device, dgemm.traits());
    StrikeSampler sampler(device, launch);
    Rng rng(1);
    for (auto _ : state) {
        Strike s = sampler.sampleStrike(rng);
        benchmark::DoNotOptimize(dgemm.inject(s, rng));
    }
}
BENCHMARK(BM_DgemmInject)->Unit(benchmark::kMicrosecond);

void
BM_LavaMdGolden(benchmark::State &state)
{
    DeviceModel device = makeK40();
    auto nb = static_cast<int64_t>(state.range(0));
    for (auto _ : state) {
        LavaMd lava(device, nb, 42);
        benchmark::DoNotOptimize(lava.goldenForce().data());
    }
}
BENCHMARK(BM_LavaMdGolden)->Arg(5)->Arg(7)
    ->Unit(benchmark::kMillisecond);

void
BM_LavaMdInject(benchmark::State &state)
{
    DeviceModel device = makeXeonPhi();
    LavaMd lava(device, 7, 42, 2, 4, 15);
    KernelLaunch launch = buildLaunch(device, lava.traits());
    StrikeSampler sampler(device, launch);
    Rng rng(2);
    for (auto _ : state) {
        Strike s = sampler.sampleStrike(rng);
        benchmark::DoNotOptimize(lava.inject(s, rng));
    }
}
BENCHMARK(BM_LavaMdInject)->Unit(benchmark::kMicrosecond);

void
BM_HotSpotStep(benchmark::State &state)
{
    DeviceModel device = makeK40();
    auto n = static_cast<int64_t>(state.range(0));
    HotSpot hotspot(device, n, 16, 42);
    std::vector<float> src = hotspot.goldenTemp();
    std::vector<float> dst(src.size());
    for (auto _ : state) {
        hotspot.step(src, dst);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_HotSpotStep)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void
BM_HotSpotInject(benchmark::State &state)
{
    DeviceModel device = makeK40();
    HotSpot hotspot(device, 256, 192, 42);
    KernelLaunch launch = buildLaunch(device, hotspot.traits());
    StrikeSampler sampler(device, launch);
    Rng rng(3);
    for (auto _ : state) {
        Strike s = sampler.sampleStrike(rng);
        benchmark::DoNotOptimize(hotspot.inject(s, rng));
    }
}
BENCHMARK(BM_HotSpotInject)->Unit(benchmark::kMillisecond);

void
BM_ClamrStep(benchmark::State &state)
{
    DeviceModel device = makeXeonPhi();
    auto n = static_cast<int64_t>(state.range(0));
    Clamr clamr(device, n, 16, 42);
    SweState src;
    src.resize(static_cast<size_t>(n) * n);
    for (auto &h : src.h)
        h = 1.0;
    SweState dst;
    dst.resize(src.h.size());
    for (auto _ : state) {
        clamr.step(src, dst);
        benchmark::DoNotOptimize(dst.h.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_ClamrStep)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void
BM_ClamrInject(benchmark::State &state)
{
    DeviceModel device = makeXeonPhi();
    Clamr clamr(device, 128, 256, 42);
    KernelLaunch launch = buildLaunch(device, clamr.traits());
    StrikeSampler sampler(device, launch);
    Rng rng(4);
    for (auto _ : state) {
        Strike s = sampler.sampleStrike(rng);
        benchmark::DoNotOptimize(clamr.inject(s, rng));
    }
}
BENCHMARK(BM_ClamrInject)->Unit(benchmark::kMillisecond);

void
BM_StrikeSampling(benchmark::State &state)
{
    DeviceModel device = makeK40();
    Dgemm dgemm(device, 128, 42);
    KernelLaunch launch = buildLaunch(device, dgemm.traits());
    StrikeSampler sampler(device, launch);
    Rng rng(5);
    for (auto _ : state) {
        Strike s = sampler.sampleStrike(rng);
        benchmark::DoNotOptimize(s);
    }
}
BENCHMARK(BM_StrikeSampling);

class KernelThroughput : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "kernel_throughput",
            .tag = "perf",
            .summary = "google-benchmark microbenches of kernel "
                       "golden compute and injection replay",
            .order = 70,
            .rawShimCli = true};
        return info;
    }

    void
    addOptions(CliParser &cli) const override
    {
        cli.addString("gbench-filter", "",
                      "google-benchmark filter regex (suite mode)");
        cli.addString("gbench-min-time", "0.05",
                      "google-benchmark min time per bench "
                      "(suite mode)");
    }

    void
    run(SuiteContext &ctx) override
    {
        std::vector<std::string> args;
        if (!ctx.shimArgs().empty()) {
            args = ctx.shimArgs();
        } else {
            args.push_back("radcrit_suite");
            std::string filter = ctx.cli()
                ? ctx.cli()->getString("gbench-filter")
                : "";
            std::string min_time = ctx.cli()
                ? ctx.cli()->getString("gbench-min-time")
                : "0.05";
            if (!filter.empty())
                args.push_back("--benchmark_filter=" + filter);
            args.push_back("--benchmark_min_time=" + min_time);
        }
        std::vector<char *> argv;
        argv.reserve(args.size());
        for (auto &arg : args)
            argv.push_back(arg.data());
        int argc = static_cast<int>(argv.size());
        benchmark::Initialize(&argc, argv.data());
        if (benchmark::ReportUnrecognizedArguments(argc,
                                                   argv.data()))
            fatal("unrecognized google-benchmark arguments");
        benchmark::RunSpecifiedBenchmarks();
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(KernelThroughput)

} // namespace radcrit
