/**
 * @file
 * Paper Fig. 2: DGEMM mean relative error vs. number of incorrect
 * elements per faulty execution, one panel per device, one series
 * per input size. Relative errors >= 100% plot at 100% as in the
 * paper ("we assign a 100% relative error to all those errors with
 * a relative error higher or equal to 100%").
 */

#include <cstdio>

#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

class Fig2DgemmScatter : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "fig2_dgemm_scatter",
            .tag = "Fig. 2",
            .summary = "DGEMM mean relative error vs. incorrect "
                       "elements, per device and input",
            .order = 20,
            .benchJson = true};
        return info;
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        return dgemmRequests(runs);
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);
        for (DeviceId id : allDevices()) {
            DeviceModel device = makeDevice(id);
            std::vector<CampaignResult> results;
            for (int64_t side : dgemmScaledSides(id)) {
                auto w = makeDgemmWorkload(device, side);
                results.push_back(
                    ctx.campaignResult(device, *w, runs));
            }
            std::string panel = id == DeviceId::K40
                ? "(a) K40"
                : "(b) Xeon Phi";
            renderScatterFigure(
                ctx,
                "Fig. 2" + panel +
                    ": DGEMM Mean relative error and Incorrect "
                    "Elements",
                results, 20000.0, 100.0,
                std::string("fig2_dgemm_scatter_") + device.name +
                    ".csv");
            std::printf("\n");
        }
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(Fig2DgemmScatter)

} // namespace radcrit
