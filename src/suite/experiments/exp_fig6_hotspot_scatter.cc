/**
 * @file
 * Paper Fig. 6: HotSpot mean relative error vs. incorrect
 * elements. Counts >= 50,000 plot at 50,000 (scaled: the clamp
 * scales with the grid) and the mean relative error stays below
 * 25% — the stencil-dissipation signature.
 */

#include <cstdio>

#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

class Fig6HotspotScatter : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "fig6_hotspot_scatter",
            .tag = "Fig. 6",
            .summary = "HotSpot mean relative error vs. incorrect "
                       "elements, per device",
            .order = 24,
            .benchJson = true};
        return info;
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        return hotspotRequests(runs);
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);

        // Paper clamps at 50k elements of a 1024^2 grid; the scaled
        // clamp keeps the same fraction of our 256^2 grid.
        double count_clamp = 50000.0 / 16.0;

        for (DeviceId id : allDevices()) {
            DeviceModel device = makeDevice(id);
            auto w = makeHotspotWorkload(device);
            std::vector<CampaignResult> results;
            results.push_back(
                ctx.campaignResult(device, *w, runs));
            std::string panel = id == DeviceId::K40
                ? "(a) K40"
                : "(b) Xeon Phi";
            renderScatterFigure(
                ctx,
                "Fig. 6" + panel +
                    ": HotSpot Mean relative error and Incorrect "
                    "Elements",
                results, count_clamp, 25.0,
                std::string("fig6_hotspot_scatter_") + device.name +
                    ".csv");
            std::printf("\n");
        }
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(Fig6HotspotScatter)

} // namespace radcrit
