/**
 * @file
 * Paper Fig. 3: DGEMM spatial locality and magnitude — relative
 * FIT broken down by error pattern, per input size, All vs > 2%.
 * The paper notes the Phi shows no sub-2% errors, so its filtered
 * bars coincide with the All bars.
 */

#include <cstdio>

#include "campaign/series.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

class Fig3DgemmLocality : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "fig3_dgemm_locality",
            .tag = "Fig. 3",
            .summary = "DGEMM spatial locality and magnitude "
                       "(relative FIT per error pattern)",
            .order = 21,
            .benchJson = true};
        return info;
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        return dgemmRequests(runs);
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);
        for (DeviceId id : allDevices()) {
            DeviceModel device = makeDevice(id);
            std::vector<CampaignResult> results;
            for (int64_t side : dgemmScaledSides(id)) {
                auto w = makeDgemmWorkload(device, side);
                results.push_back(
                    ctx.campaignResult(device, *w, runs));
            }
            std::string panel = id == DeviceId::K40
                ? "(a) K40"
                : "(b) Xeon Phi";
            renderLocalityFigure(
                ctx,
                "Fig. 3" + panel +
                    ": DGEMM spatial locality and magnitude "
                    "[FIT a.u.]",
                results, patterns2d(),
                std::string("fig3_dgemm_locality_") + device.name +
                    ".csv");
            std::printf("\n");
        }
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(Fig3DgemmLocality)

} // namespace radcrit
