/**
 * @file
 * Paper Fig. 7: HotSpot spatial locality and magnitude. Both
 * architectures present only square and line errors, and 80-95% of
 * faulty executions fall under the 2% filter.
 */

#include <cstdio>

#include "campaign/series.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

class Fig7HotspotLocality : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "fig7_hotspot_locality",
            .tag = "Fig. 7",
            .summary = "HotSpot spatial locality and magnitude "
                       "(relative FIT per error pattern)",
            .order = 25,
            .benchJson = true};
        return info;
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        return hotspotRequests(runs);
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);
        for (DeviceId id : allDevices()) {
            DeviceModel device = makeDevice(id);
            auto w = makeHotspotWorkload(device);
            std::vector<CampaignResult> results;
            results.push_back(
                ctx.campaignResult(device, *w, runs));
            std::string panel = id == DeviceId::K40
                ? "(a) K40"
                : "(b) Xeon Phi";
            renderLocalityFigure(
                ctx,
                "Fig. 7" + panel +
                    ": HotSpot spatial locality and magnitude "
                    "[FIT a.u.]",
                results, patterns2d(),
                std::string("fig7_hotspot_locality_") +
                    device.name + ".csv");
            std::printf("filtered executions: %.0f%%\n\n",
                        100.0 * results[0].filteredOutFraction());
        }
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(Fig7HotspotLocality)

} // namespace radcrit
