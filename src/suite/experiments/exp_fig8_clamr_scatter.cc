/**
 * @file
 * Paper Fig. 8: CLAMR mean relative error and incorrect elements
 * on the Xeon Phi (the paper has no K40 data: CLAMR is a LANL
 * proprietary workload targeted at Xeon-Phi-based Trinity).
 */

#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

class Fig8ClamrScatter : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "fig8_clamr_scatter",
            .tag = "Fig. 8",
            .summary = "CLAMR mean relative error vs. incorrect "
                       "elements (Xeon Phi only)",
            .order = 26,
            .defaultRuns = 150,
            .benchJson = true};
        return info;
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        return clamrRequests(runs);
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);
        DeviceModel device = makeDevice(DeviceId::XeonPhi);
        auto w = makeClamrWorkload(device);
        std::vector<CampaignResult> results;
        results.push_back(ctx.campaignResult(device, *w, runs));
        renderScatterFigure(
            ctx,
            "Fig. 8: CLAMR Mean relative error and Incorrect "
            "Elements (Xeon Phi)",
            results, 0.0, 100.0, "fig8_clamr_scatter.csv");
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(Fig8ClamrScatter)

} // namespace radcrit
