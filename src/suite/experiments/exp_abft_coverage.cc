/**
 * @file
 * Paper Section V-A ABFT study: with Huang-Abraham checksums,
 * single and line errors are corrected in linear time; square and
 * random errors are only detected. The paper estimates DGEMM would
 * remain affected by 20-40% of all errors on the K40 and 60-80% on
 * the Xeon Phi. This experiment replays every SDC of a DGEMM
 * campaign through the real ABFT checker and reports the residual.
 */

#include <cstdio>
#include <iostream>

#include "abft/abft_dgemm.hh"
#include "common/csv.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "kernels/dgemm.hh"
#include "sim/sampler.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

class AbftCoverage : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "abft_coverage",
            .tag = "Sec. V-A",
            .summary = "residual DGEMM error rate under "
                       "Huang-Abraham ABFT checksums",
            .order = 40,
            .defaultRuns = 250};
        return info;
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        return dgemmRequests(runs);
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);

        TextTable table("ABFT DGEMM coverage (paper Section V-A)");
        table.setHeader({"device", "input", "SDC", "corrected",
                         "detected", "missed", "residual%",
                         "paper residual"});

        std::vector<std::vector<std::string>> csv_rows;
        for (DeviceId id : allDevices()) {
            DeviceModel device = makeDevice(id);
            for (int64_t side : dgemmScaledSides(id)) {
                Dgemm dgemm(device, side);
                AbftDgemm abft(dgemm.a(), dgemm.b(), side);
                CampaignConfig cfg = defaultCampaign(
                    runs, device.name, dgemm.name(),
                    dgemm.inputLabel());
                CampaignResult res =
                    ctx.campaignResult(device, dgemm, runs);

                uint64_t sdc = 0, corrected = 0, detected = 0,
                    missed = 0;
                Rng rng(cfg.sim.seed);
                for (const auto &run : res.runs) {
                    if (run.outcome != Outcome::Sdc)
                        continue;
                    ++sdc;
                    // Replay the strike to materialize the
                    // corrupted output, then run the checker.
                    SdcRecord rec = dgemm.inject(run.strike, rng);
                    auto c = dgemm.materializeOutput(rec);
                    auto verdict = abft.checkAndCorrect(c);
                    switch (verdict.status) {
                      case AbftDgemm::Status::Corrected:
                        ++corrected;
                        break;
                      case AbftDgemm::Status::
                          DetectedUncorrectable:
                        ++detected;
                        break;
                      case AbftDgemm::Status::Clean:
                        ++missed; // below checksum tolerance
                        break;
                    }
                }
                // Residual = errors ABFT cannot transparently
                // absorb (detected-but-uncorrectable;
                // sub-tolerance misses are by definition
                // insignificant corruption).
                double residual = sdc
                    ? 100.0 * static_cast<double>(detected) /
                        static_cast<double>(sdc)
                    : 0.0;
                table.addRow({device.name, dgemm.inputLabel(),
                              TextTable::num(sdc),
                              TextTable::num(corrected),
                              TextTable::num(detected),
                              TextTable::num(missed),
                              TextTable::num(residual, 0) + "%",
                              id == DeviceId::K40 ? "20-40%"
                                                  : "60-80%"});
                csv_rows.push_back({device.name,
                                    dgemm.inputLabel(),
                                    TextTable::num(sdc),
                                    TextTable::num(corrected),
                                    TextTable::num(detected),
                                    TextTable::num(missed),
                                    TextTable::num(residual, 2)});
            }
            table.addSeparator();
        }
        table.render(std::cout);
        std::printf("\nNote: with ABFT applied to both devices, "
                    "the residual error rates become comparable "
                    "(paper V-A).\n");

        if (ctx.writeCsv()) {
            std::string path = ctx.outputDir() +
                "/abft_coverage.csv";
            CsvWriter w(path);
            w.writeRow({"device", "input", "sdc", "corrected",
                        "detected", "missed", "residualPct"});
            for (const auto &row : csv_rows)
                w.writeRow(row);
            std::printf("[csv] %s\n", path.c_str());
        }
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(AbftCoverage)

} // namespace radcrit
