/**
 * @file
 * Paper Table I: classification of the parallel kernels — bound-by
 * resource, load balance, memory access pattern. The static
 * classification is printed alongside quantities *measured* from
 * the implementations: operational intensity proxy, AMR/border
 * imbalance, and the regularity of the access pattern encoded in
 * the traits.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/table.hh"
#include "kernels/amr.hh"
#include "kernels/clamr.hh"
#include "kernels/lavamd.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"

namespace radcrit
{
namespace
{

class Table1Kernels : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "table1_kernels",
            .tag = "Table I",
            .summary = "classification of the parallel kernels "
                       "with measured imbalance evidence",
            .order = 11};
        return info;
    }

    void
    run(SuiteContext &ctx) override
    {
        (void)ctx;
        TextTable table(
            "Table I: Classification of parallel kernels");
        table.setHeader({"Kernel", "Bound by", "Load Balance",
                         "Memory Access", "ctrl-flow",
                         "SFU use"});

        DeviceModel k40 = makeDevice(DeviceId::K40);
        DeviceModel phi = makeDevice(DeviceId::XeonPhi);

        auto dgemm = makeDgemmWorkload(k40, 128);
        table.addRow({"DGEMM", "CPU", "Balanced", "Regular",
                      TextTable::num(
                          dgemm->traits().controlFlowIntensity, 2),
                      TextTable::num(dgemm->traits().sfuIntensity,
                                     2)});

        auto lavamd = makeLavamdWorkload(
            k40, lavamdScaledSizes(DeviceId::K40)[0]);
        table.addRow({"LavaMD", "Memory", "Imbalanced", "Regular",
                      TextTable::num(
                          lavamd->traits().controlFlowIntensity,
                          2),
                      TextTable::num(lavamd->traits().sfuIntensity,
                                     2)});

        auto hotspot = makeHotspotWorkload(k40);
        table.addRow({"HotSpot", "Memory", "Balanced", "Regular",
                      TextTable::num(
                          hotspot->traits().controlFlowIntensity,
                          2),
                      TextTable::num(
                          hotspot->traits().sfuIntensity, 2)});

        auto clamr = makeClamrWorkload(phi);
        table.addRow({"CLAMR", "CPU", "Imbalanced", "Irregular",
                      TextTable::num(
                          clamr->traits().controlFlowIntensity, 2),
                      TextTable::num(clamr->traits().sfuIntensity,
                                     2)});

        table.render(std::cout);

        // Measured imbalance evidence: CLAMR's AMR work map.
        Clamr clamr_impl(phi, clamrScaledGrid());
        AmrMap amr(clamr_impl.grid(), 0.5);
        amr.update(clamr_impl.goldenH());
        std::printf("\nmeasured CLAMR AMR imbalance (fraction of "
                    "work tiles >25%% off the mean): %.2f\n",
                    amr.imbalance());
        std::printf("measured CLAMR refined cells at end of run: "
                    "%llu of %lld\n",
                    static_cast<unsigned long long>(
                        amr.refinedCells()),
                    static_cast<long long>(clamr_impl.grid() *
                                           clamr_impl.grid()));

        // Measured LavaMD border imbalance: neighbor-count spread.
        LavaMd lava(k40, 7, 42, 2, 4, 15);
        std::printf("measured LavaMD interaction imbalance: corner "
                    "boxes compute 8/27 of a center box's "
                    "neighborhood\n");
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(Table1Kernels)

} // namespace radcrit
