/**
 * @file
 * Paper Fig. 9: CLAMR error locality map — the output as a 2D
 * matrix with corrupted elements marked, showing the wave of
 * incorrect elements propagating from the strike site. Renders in
 * ASCII and writes a full-resolution PPM (red dots, as in the
 * paper's figure).
 */

#include <cstdio>
#include <iostream>

#include "common/cli.hh"
#include "common/rng.hh"
#include "kernels/clamr.hh"
#include "metrics/locality_map.hh"
#include "sim/sampler.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

class Fig9ClamrMap : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "fig9_clamr_map",
            .tag = "Fig. 9",
            .summary = "CLAMR error locality map (ASCII + PPM) of "
                       "one representative faulty run",
            .order = 27,
            .benchJson = true};
        return info;
    }

    void
    addOptions(CliParser &cli) const override
    {
        cli.addInt("seed", 2017, "strike selection seed");
        cli.addDouble("time", 0.78,
                      "strike time as a fraction of the run");
    }

    void
    run(SuiteContext &ctx) override
    {
        DeviceModel device = makeDevice(DeviceId::XeonPhi);
        Clamr clamr(device, clamrScaledGrid());

        // One representative faulty run: a garbled update chunk in
        // the middle of the simulation, as in the paper's example
        // map.
        Strike strike;
        strike.resource = ResourceKind::Fpu;
        strike.manifestation = Manifestation::WrongOperation;
        strike.timeFraction =
            ctx.cli() ? ctx.cli()->getDouble("time") : 0.78;
        strike.entropy = ctx.cli()
            ? static_cast<uint64_t>(ctx.cli()->getInt("seed"))
            : 2017;
        Rng rng(strike.entropy);
        SdcRecord rec = clamr.inject(strike, rng);

        std::printf("Fig. 9: CLAMR Error Locality Map "
                    "(%zu incorrect elements, pattern %s)\n",
                    rec.numIncorrect(),
                    patternName(classifyLocality(rec)));
        LocalityMap map(rec);
        map.renderAscii(std::cout, 64);
        std::string ppm = ctx.outputDir() + "/fig9_clamr_map.ppm";
        map.writePpm(ppm);
        std::printf("[ppm] %s\n", ppm.c_str());
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(Fig9ClamrMap)

} // namespace radcrit
