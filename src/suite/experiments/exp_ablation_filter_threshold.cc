/**
 * @file
 * Ablation 3 (DESIGN.md Section 6): sensitivity of the reliability
 * conclusions to the relative-error tolerance. The paper uses 2%
 * "being conservative" and publishes raw logs so users can apply
 * their own filters; this sweep regenerates the K40-vs-Phi DGEMM
 * comparison under thresholds from 0% to 50%.
 *
 * The sweep is the poster child of the simulate/analyze split: each
 * device's campaign is simulated (or loaded from the store) exactly
 * once, and every threshold is a pure analyzeCampaign() pass over
 * the same raw records — zero kernel re-executions.
 */

#include <cstdio>
#include <iostream>

#include "common/csv.hh"
#include "common/table.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

class AblationFilterThreshold : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "ablation_filter_threshold",
            .tag = "Ablation 3",
            .summary = "relative-error tolerance sweep over the "
                       "K40-vs-Phi DGEMM comparison",
            .order = 62,
            .defaultRuns = 400,
            .benchJson = true};
        return info;
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        std::vector<CampaignRequest> reqs;
        for (DeviceId id : allDevices())
            reqs.push_back({id, dgemmSpec(256), runs});
        return reqs;
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);

        TextTable table("Ablation: relative-error tolerance sweep "
                        "(DGEMM, paper side 2048)");
        table.setHeader({"threshold%", "K40 FIT", "K40 removed",
                         "Phi FIT", "Phi removed"});

        std::vector<CampaignRaw> raws;
        for (DeviceId id : allDevices()) {
            DeviceModel device = makeDevice(id);
            auto w = makeDgemmWorkload(device, 256);
            raws.push_back(ctx.campaignRaw(device, *w, runs));
        }

        std::vector<double> thresholds{0.0, 0.5, 1.0, 2.0, 4.0,
                                       10.0, 50.0};
        std::vector<std::vector<std::string>> csv_rows;
        for (double threshold : thresholds) {
            std::vector<std::string> row{
                TextTable::num(threshold, 1)};
            for (const CampaignRaw &raw : raws) {
                AnalysisConfig acfg;
                acfg.filterThresholdPct = threshold;
                CampaignResult res = analyzeCampaign(raw, acfg);
                row.push_back(TextTable::num(res.fitTotalAu(true),
                                             1));
                row.push_back(TextTable::num(
                    100.0 * res.filteredOutFraction(), 0) + "%");
            }
            table.addRow(row);
            csv_rows.push_back(row);
        }
        table.render(std::cout);
        std::printf("\nThe K40's apparent reliability improves "
                    "steeply with tolerance (its errors are "
                    "small); the Phi's barely moves (its errors "
                    "are gross) — the paper's central "
                    "imprecise-computing observation.\n");

        if (ctx.writeCsv()) {
            std::string path = ctx.outputDir() +
                "/ablation_filter_threshold.csv";
            CsvWriter w(path);
            w.writeRow({"thresholdPct", "k40Fit", "k40Removed",
                        "phiFit", "phiRemoved"});
            for (const auto &row : csv_rows)
                w.writeRow(row);
            std::printf("[csv] %s\n", path.c_str());
        }
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(AblationFilterThreshold)

} // namespace radcrit
