/**
 * @file
 * Selective-hardening study (paper Section VI future work): rank
 * each device/workload's resources by critical-FIT contribution,
 * then run the greedy advisor under an area budget and report how
 * much critical FIT targeted hardening removes.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/cli.hh"
#include "common/table.hh"
#include "harden/advisor.hh"
#include "harden/attribution.hh"
#include "kernels/dgemm.hh"
#include "kernels/lavamd.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

void
attributionTable(SuiteContext &ctx, const DeviceModel &device,
                 Workload &workload, uint64_t runs)
{
    CampaignResult res =
        ctx.campaignResult(device, workload, runs);
    auto attribution = attributeCriticality(res);
    TextTable table("Criticality attribution: " + device.name +
                    " / " + workload.name() + " " +
                    workload.inputLabel());
    table.setHeader({"resource", "weight%", "strikes", "SDC",
                     "critical", "crash+hang", "criticalFIT"});
    for (const auto &r : attribution) {
        table.addRow({resourceKindName(r.resource),
                      TextTable::num(100.0 * r.weightShare, 1),
                      TextTable::num(r.strikes),
                      TextTable::num(r.sdcRuns),
                      TextTable::num(r.criticalRuns),
                      TextTable::num(r.detectableRuns),
                      TextTable::num(r.criticalFitAu, 2)});
    }
    table.render(std::cout);
    std::printf("\n");
}

void
advisorStudy(const DeviceModel &device, double budget,
             uint64_t runs)
{
    WorkloadFactory factory = [](const DeviceModel &d) {
        return std::make_unique<Dgemm>(d, 256, 42);
    };
    auto plan = advise(device, factory, budget, runs, 77);
    TextTable table("Greedy hardening plan: " + device.name +
                    " / DGEMM, budget " +
                    TextTable::num(budget, 0) + "% area");
    table.setHeader({"step", "technique", "cost%", "cum%",
                     "criticalFIT before", "after", "gain"});
    int step_no = 1;
    for (const auto &step : plan) {
        table.addRow({
            TextTable::num(static_cast<int64_t>(step_no++)),
            step.option.technique,
            TextTable::num(step.option.areaCostPct, 1),
            TextTable::num(step.cumulativeCostPct, 1),
            TextTable::num(step.fitBefore, 2),
            TextTable::num(step.fitAfter, 2),
            TextTable::num(100.0 * (1.0 - step.fitAfter /
                                    step.fitBefore), 0) + "%"});
    }
    table.render(std::cout);
    if (!plan.empty()) {
        std::printf("total: %.1f%% area removes %.0f%% of "
                    "critical FIT\n\n",
                    plan.back().cumulativeCostPct,
                    100.0 * (1.0 - plan.back().fitAfter /
                             plan.front().fitBefore));
    }
}

class Hardening : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "hardening",
            .tag = "Sec. VI",
            .summary = "criticality attribution and greedy "
                       "selective-hardening advisor",
            .order = 42,
            .defaultRuns = 300};
        return info;
    }

    void
    addOptions(CliParser &cli) const override
    {
        cli.addDouble("budget", 12.0, "area budget in percent");
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        // The advisor's internal campaigns use a dedicated seed
        // and stay outside the plan; only the attribution tables'
        // canonical campaigns are declarable.
        std::vector<CampaignRequest> reqs;
        for (DeviceId id : allDevices()) {
            reqs.push_back({id, dgemmSpec(256), runs});
            reqs.push_back(
                {id, lavamdSpec(LavaMdSize{7, 15}), runs});
        }
        return reqs;
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);
        double budget =
            ctx.cli() ? ctx.cli()->getDouble("budget") : 12.0;

        for (DeviceId id : allDevices()) {
            DeviceModel device = makeDevice(id);
            Dgemm dgemm(device, 256, 42);
            attributionTable(ctx, device, dgemm, runs);
            LavaMd lavamd(device, 7, 42, 2, 4, 15);
            attributionTable(ctx, device, lavamd, runs);
        }
        for (DeviceId id : allDevices())
            advisorStudy(makeDevice(id), budget, runs);
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(Hardening)

} // namespace radcrit
