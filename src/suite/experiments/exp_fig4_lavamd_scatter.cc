/**
 * @file
 * Paper Fig. 4: LavaMD mean relative error vs. incorrect elements.
 * Mean relative errors >= 20,000% plot at 20,000% as in the paper.
 */

#include <cstdio>

#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

class Fig4LavamdScatter : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "fig4_lavamd_scatter",
            .tag = "Fig. 4",
            .summary = "LavaMD mean relative error vs. incorrect "
                       "elements, per device and input",
            .order = 22,
            .benchJson = true};
        return info;
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        return lavamdRequests(runs);
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);
        for (DeviceId id : allDevices()) {
            DeviceModel device = makeDevice(id);
            std::vector<CampaignResult> results;
            for (const auto &size : lavamdScaledSizes(id)) {
                auto w = makeLavamdWorkload(device, size);
                results.push_back(
                    ctx.campaignResult(device, *w, runs));
            }
            std::string panel = id == DeviceId::K40
                ? "(a) K40"
                : "(b) Xeon Phi";
            renderScatterFigure(
                ctx,
                "Fig. 4" + panel +
                    ": LavaMD Mean relative error and Incorrect "
                    "Elements",
                results, 5000.0, 20000.0,
                std::string("fig4_lavamd_scatter_") + device.name +
                    ".csv");
            std::printf("\n");
        }
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(Fig4LavamdScatter)

} // namespace radcrit
