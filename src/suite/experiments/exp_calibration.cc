/**
 * @file
 * Calibration harness: prints every paper-band quantity the model
 * must reproduce, per (device, workload, input):
 *
 *  - outcome mix and the SDC : (crash + hang) ratio (paper V intro)
 *  - fraction of SDC runs fully removed by the 2% filter
 *  - mean-relative-error quartiles
 *  - spatial-pattern shares (All and filtered)
 *  - total relative FIT (All and filtered)
 *
 * Not one of the paper's figures itself; this is the tuning loop
 * for the device-model constants (see DESIGN.md Section 6).
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/cli.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "sim/sampler.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

void
summarize(const CampaignResult &res, TextTable &table)
{
    uint64_t sdc = res.count(Outcome::Sdc);
    std::vector<double> errs;
    std::array<uint64_t, numPatterns> pat{};
    std::array<uint64_t, numPatterns> patf{};
    RunningStat incorrect;
    for (const auto &run : res.runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        errs.push_back(run.crit.meanRelErrPct);
        pat[static_cast<size_t>(run.crit.pattern)]++;
        if (!run.crit.executionFiltered)
            patf[static_cast<size_t>(run.crit.patternFiltered)]++;
        incorrect.add(static_cast<double>(run.crit.numIncorrect));
    }
    auto pct = [&](uint64_t n) {
        return sdc ? 100.0 * static_cast<double>(n) /
            static_cast<double>(sdc) : 0.0;
    };
    std::string pat_str;
    for (size_t i = 0; i < numPatterns; ++i) {
        if (pat[i] == 0)
            continue;
        pat_str += std::string(patternName(
            static_cast<Pattern>(i))) + ":" +
            TextTable::num(pct(pat[i]), 0) + "% ";
    }
    table.addRow({
        res.deviceName, res.workloadName, res.inputLabel,
        TextTable::num(sdc),
        TextTable::num(res.count(Outcome::Crash)),
        TextTable::num(res.count(Outcome::Hang)),
        TextTable::num(res.count(Outcome::Masked)),
        std::isnan(res.sdcOverDetectable())
            ? "n/a"
            : TextTable::num(res.sdcOverDetectable(), 2),
        TextTable::num(100.0 * res.filteredOutFraction(), 0) +
            "%",
        errs.empty() ? "-" : TextTable::num(quantile(errs, 0.5),
                                            1),
        TextTable::num(incorrect.mean(), 0),
        TextTable::num(res.fitTotalAu(false), 1),
        TextTable::num(res.fitTotalAu(true), 1),
        pat_str,
    });
}

/** Per-resource breakdown: strikes, outcome mix, filtered share. */
void
detail(const CampaignResult &res)
{
    std::printf("--- %s %s %s: per-resource detail ---\n",
                res.deviceName.c_str(), res.workloadName.c_str(),
                res.inputLabel.c_str());
    StrikeSampler sampler(makeDevice(
        res.deviceName == "K40" ? DeviceId::K40
                                : DeviceId::XeonPhi), res.launch);
    TextTable t;
    t.setHeader({"resource", "weight%", "strikes", "sdc", "crash",
                 "hang", "masked", "filtered%", "medRelErr%"});
    for (size_t i = 0; i < numResourceKinds; ++i) {
        auto kind = static_cast<ResourceKind>(i);
        uint64_t strikes = 0;
        std::array<uint64_t, numOutcomes> mix{};
        uint64_t filt = 0, sdc = 0;
        std::vector<double> errs;
        for (const auto &run : res.runs) {
            if (run.strike.resource != kind)
                continue;
            ++strikes;
            mix[static_cast<size_t>(run.outcome)]++;
            if (run.outcome == Outcome::Sdc) {
                ++sdc;
                errs.push_back(run.crit.meanRelErrPct);
                if (run.crit.executionFiltered)
                    ++filt;
            }
        }
        if (!strikes)
            continue;
        t.addRow({resourceKindName(kind),
                  TextTable::num(100.0 * sampler.weight(kind) /
                                 sampler.totalWeight(), 1),
                  TextTable::num(strikes),
                  TextTable::num(mix[1]), TextTable::num(mix[2]),
                  TextTable::num(mix[3]), TextTable::num(mix[0]),
                  sdc ? TextTable::num(
                            100.0 * static_cast<double>(filt) /
                            static_cast<double>(sdc), 0)
                      : "-",
                  errs.empty() ? "-"
                               : TextTable::num(
                                     quantile(errs, 0.5), 2)});
    }
    std::fputs(t.toString().c_str(), stdout);
}

class Calibration : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "calibration",
            .tag = "tuning",
            .summary = "paper-band calibration summary across all "
                       "devices, workloads and inputs",
            .order = 50,
            .defaultRuns = 400};
        return info;
    }

    void
    addOptions(CliParser &cli) const override
    {
        cli.addString("only", "", "restrict to one workload name");
        cli.addFlag("detail", "print per-resource breakdowns");
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        // Declares the full canonical set; a shim-level --only
        // restriction never reaches the suite scheduler.
        std::vector<CampaignRequest> reqs = dgemmRequests(runs);
        for (const auto &req : lavamdRequests(runs))
            reqs.push_back(req);
        for (const auto &req : hotspotRequests(runs))
            reqs.push_back(req);
        for (const auto &req : clamrRequests(runs))
            reqs.push_back(req);
        return reqs;
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);
        std::string only =
            ctx.cli() ? ctx.cli()->getString("only") : "";
        bool want_detail =
            ctx.cli() ? ctx.cli()->getFlag("detail") : false;

        TextTable table("=== radcrit calibration summary ===");
        table.setHeader({"device", "workload", "input", "SDC",
                         "crash", "hang", "masked", "SDC:det",
                         "filtered", "medianRelErr%",
                         "meanIncorrect", "FITall", "FIT>2%",
                         "patterns"});

        for (DeviceId id : allDevices()) {
            DeviceModel device = makeDevice(id);

            if (only.empty() || only == "DGEMM") {
                for (int64_t side : dgemmScaledSides(id)) {
                    auto w = makeDgemmWorkload(device, side);
                    auto res =
                        ctx.campaignResult(device, *w, runs);
                    if (want_detail)
                        detail(res);
                    summarize(res, table);
                }
                table.addSeparator();
            }
            if (only.empty() || only == "LavaMD") {
                for (const auto &size : lavamdScaledSizes(id)) {
                    auto w = makeLavamdWorkload(device, size);
                    auto res =
                        ctx.campaignResult(device, *w, runs);
                    if (want_detail)
                        detail(res);
                    summarize(res, table);
                }
                table.addSeparator();
            }
            if (only.empty() || only == "HotSpot") {
                auto w = makeHotspotWorkload(device);
                auto res = ctx.campaignResult(device, *w, runs);
                if (want_detail)
                    detail(res);
                summarize(res, table);
                table.addSeparator();
            }
            if ((only.empty() || only == "CLAMR") &&
                id == DeviceId::XeonPhi) {
                auto w = makeClamrWorkload(device);
                auto res = ctx.campaignResult(device, *w, runs);
                if (want_detail)
                    detail(res);
                summarize(res, table);
            }
        }
        std::fputs(table.toString().c_str(), stdout);
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(Calibration)

} // namespace radcrit
