/**
 * @file
 * Paper Fig. 1 stand-in: the experimental setup at LANSCE cannot
 * be reproduced as a photograph, so this experiment dumps the
 * modelled campaign configuration — boards in the beam line with
 * distances and de-rating, flux, spot, acceleration factor, the
 * single-strike tuning check, and the natural-time equivalence the
 * paper quotes (>= 8e8 hours, about 91,000 years).
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "sim/beam.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"

namespace radcrit
{
namespace
{

class Fig1Setup : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "fig1_setup",
            .tag = "Fig. 1",
            .summary = "beam campaign configuration (flux, boards, "
                       "acceleration, single-strike check)",
            .order = 10};
        return info;
    }

    void
    run(SuiteContext &ctx) override
    {
        (void)ctx;
        BeamFacility f = makePaperSetup();
        std::printf("Fig. 1 (substituted): beam campaign "
                    "configuration at %s\n\n", f.name.c_str());
        std::printf("flux: %.2e n/(cm^2 s)  (terrestrial "
                    "reference: %.0f n/(cm^2 h))\n", f.fluxPerCm2s,
                    terrestrialFluxPerCm2Hour);
        std::printf("acceleration factor: %.2e x natural\n",
                    f.accelerationFactor());
        std::printf("beam spot: %.1f inch diameter = %.2f cm^2 "
                    "(chip-only: DRAM outside the spot)\n",
                    f.spotDiameterInch, f.spotAreaCm2());

        TextTable table("\nBoards in the beam line");
        table.setHeader({"board", "distance [m]", "de-rating"});
        for (const auto &b : f.boards) {
            table.addRow({b.label, TextTable::num(b.distanceM, 1),
                          TextTable::num(b.derating, 2)});
        }
        table.render(std::cout);

        BeamExposure exposure(f, 1.5, 30.0);
        double sigma = 1e-11; // upsets per unit fluence (a.u.)
        std::printf("\nsingle-strike tuning: expected strikes/run "
                    "= %.2e -> rule %s\n",
                    exposure.expectedStrikesPerRun(sigma),
                    exposure.honoursSingleStrikeRule(sigma, 1.0)
                        ? "HONOURED (< 1e-3 errors/execution)"
                        : "VIOLATED");
        std::printf("800 h of effective beam per architecture = "
                    "%.2e natural hours (%.0f years)\n",
                    exposure.equivalentNaturalHours(800.0),
                    exposure.equivalentNaturalHours(800.0) /
                        8760.0);
        std::printf("FIT scaling example: 100 errors in 400 h of "
                    "beam -> %.3f FIT at sea level\n",
                    exposure.fitAtSeaLevel(100.0, 400.0));
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(Fig1Setup)

} // namespace radcrit
