/**
 * @file
 * Paper Sections V-C / V-D detector studies:
 *  - HotSpot entropy check: widespread low-magnitude stencil
 *    corruption is hard to spot element-wise; distribution entropy
 *    drift flags it at a checkpoint.
 *  - CLAMR mass-conservation check: total mass is invariant, so a
 *    final-sum check detects most strikes (ref. [4] reports 82%
 *    fault coverage; momentum-only corruption escapes).
 */

#include <cstdio>
#include <vector>

#include "abft/detectors.hh"
#include "common/rng.hh"
#include "kernels/clamr.hh"
#include "kernels/hotspot.hh"
#include "sim/sampler.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"

namespace radcrit
{
namespace
{

void
clamrMassStudy(uint64_t runs)
{
    DeviceModel device = makeDevice(DeviceId::XeonPhi);
    Clamr clamr(device, clamrScaledGrid());
    MassChecker checker(clamr.goldenMass(), 1e-9);

    CampaignConfig cfg = defaultCampaign(runs, device.name,
                                         clamr.name(),
                                         clamr.inputLabel());
    KernelLaunch launch = buildLaunch(device, clamr.traits());
    StrikeSampler sampler(device, launch);
    Rng rng(cfg.sim.seed);

    uint64_t sdc = 0, detected = 0;
    for (uint64_t i = 0; i < cfg.sim.faultyRuns; ++i) {
        Strike strike = sampler.sampleStrike(rng);
        if (sampler.sampleOutcome(strike.resource, rng) !=
            Outcome::Sdc) {
            continue;
        }
        SdcRecord rec = clamr.inject(strike, rng);
        if (rec.empty())
            continue;
        ++sdc;
        detected += checker.detect(clamr.lastInjectedMass());
    }
    double coverage = sdc ? 100.0 * static_cast<double>(detected) /
        static_cast<double>(sdc) : 0.0;
    std::printf("CLAMR mass-conservation check: %llu/%llu SDCs "
                "detected = %.0f%% coverage "
                "(paper ref. [4]: 82%%)\n",
                static_cast<unsigned long long>(detected),
                static_cast<unsigned long long>(sdc), coverage);
}

void
hotspotEntropyStudy(uint64_t runs)
{
    DeviceModel device = makeDevice(DeviceId::K40);
    HotSpot hotspot(device, hotspotScaledGrid());
    EntropyDetector detector(hotspot.goldenTemp(), 64, 0.005);

    CampaignConfig cfg = defaultCampaign(runs, device.name,
                                         hotspot.name(),
                                         hotspot.inputLabel());
    KernelLaunch launch = buildLaunch(device, hotspot.traits());
    StrikeSampler sampler(device, launch);
    Rng rng(cfg.sim.seed);

    uint64_t sdc = 0, detected = 0, meaningful = 0,
        meaningful_detected = 0;
    for (uint64_t i = 0; i < cfg.sim.faultyRuns; ++i) {
        Strike strike = sampler.sampleStrike(rng);
        if (sampler.sampleOutcome(strike.resource, rng) !=
            Outcome::Sdc) {
            continue;
        }
        SdcRecord rec = hotspot.inject(strike, rng);
        if (rec.empty())
            continue;
        ++sdc;
        // Rebuild the corrupted field from the record.
        std::vector<float> field = hotspot.goldenTemp();
        for (const auto &e : rec.elements) {
            field[e.coord[0] * hotspot.grid() + e.coord[1]] =
                static_cast<float>(e.read);
        }
        bool hit = detector.detect(field);
        detected += hit;
        RelativeErrorFilter filter(2.0);
        if (!filter.removesExecution(rec)) {
            ++meaningful;
            meaningful_detected += hit;
        }
    }
    std::printf("HotSpot entropy check: %llu/%llu of all SDCs "
                "flagged; %llu/%llu of >2%% SDCs flagged\n",
                static_cast<unsigned long long>(detected),
                static_cast<unsigned long long>(sdc),
                static_cast<unsigned long long>(
                    meaningful_detected),
                static_cast<unsigned long long>(meaningful));
    std::printf("  (the check trades coverage against how often "
                "it runs; here: once on the final state)\n");
}

class Detectors : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "detectors",
            .tag = "Sec. V-C/D",
            .summary = "application-level SDC detectors: CLAMR "
                       "mass check and HotSpot entropy check",
            .order = 41};
        return info;
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);
        std::printf("=== Application-level SDC detectors "
                    "(paper V-C / V-D) ===\n\n");
        clamrMassStudy(runs);
        std::printf("\n");
        hotspotEntropyStudy(runs);
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(Detectors)

} // namespace radcrit
