/**
 * @file
 * Ablation 2 (DESIGN.md Section 6): scheduler philosophy. Swapping
 * the K40's hardware-scheduler strain growth for OS-style (and
 * vice versa) flips the input-size FIT trends of Section V-A —
 * showing that the trend really is carried by the parallelism-
 * management model, not by the kernels.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "kernels/dgemm.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"

namespace radcrit
{
namespace
{

double
fitGrowth(SuiteContext &ctx, const DeviceModel &device,
          uint64_t runs)
{
    auto small = makeDgemmWorkload(device, 128);
    auto big = makeDgemmWorkload(device, 512);
    double lo = ctx.campaignResult(device, *small, runs)
        .fitTotalAu(false);
    double hi = ctx.campaignResult(device, *big, runs)
        .fitTotalAu(false);
    return hi / lo;
}

class AblationScheduler : public Experiment
{
  public:
    const ExperimentInfo &
    info() const override
    {
        static const ExperimentInfo info{
            .name = "ablation_scheduler",
            .tag = "Ablation 2",
            .summary = "scheduler-philosophy swap vs. DGEMM FIT "
                       "growth with input size",
            .order = 61,
            .defaultRuns = 300};
        return info;
    }

    std::vector<CampaignRequest>
    campaigns(uint64_t runs) const override
    {
        // Only the stock-device campaigns are declarable; the
        // OS/HW scheduler variants are ad-hoc device models and
        // simulate lazily through the context.
        std::vector<CampaignRequest> reqs;
        for (DeviceId id : allDevices()) {
            reqs.push_back({id, dgemmSpec(128), runs});
            reqs.push_back({id, dgemmSpec(512), runs});
        }
        return reqs;
    }

    void
    run(SuiteContext &ctx) override
    {
        uint64_t runs = ctx.runsFor(*this);

        TextTable table("Ablation: scheduler philosophy vs DGEMM "
                        "FIT growth (1024 -> 4096 paper sides)");
        table.setHeader({"device variant", "strain exp",
                         "reg exposure", "FIT growth"});

        DeviceModel k40 = makeDevice(DeviceId::K40);
        table.addRow({"K40 (hardware sched)",
                      TextTable::num(k40.schedulerStrainExponent,
                                     2),
                      "yes",
                      TextTable::num(fitGrowth(ctx, k40, runs),
                                     2) + "x"});

        DeviceModel k40_os = k40;
        k40_os.name = "K40+OS-sched";
        k40_os.schedulerStrainExponent = 0.14;
        k40_os.registerResidencyExposure = false;
        table.addRow({"K40 with OS-style scheduling",
                      TextTable::num(
                          k40_os.schedulerStrainExponent, 2),
                      "no",
                      TextTable::num(fitGrowth(ctx, k40_os, runs),
                                     2) + "x"});

        DeviceModel phi = makeDevice(DeviceId::XeonPhi);
        table.addRow({"XeonPhi (OS sched)",
                      TextTable::num(phi.schedulerStrainExponent,
                                     2),
                      "no",
                      TextTable::num(fitGrowth(ctx, phi, runs),
                                     2) + "x"});

        DeviceModel phi_hw = phi;
        phi_hw.name = "XeonPhi+HW-sched";
        phi_hw.schedulerStrainExponent = 0.85;
        phi_hw.registerResidencyExposure = true;
        table.addRow({"XeonPhi with HW-style scheduling",
                      TextTable::num(
                          phi_hw.schedulerStrainExponent, 2),
                      "yes",
                      TextTable::num(fitGrowth(ctx, phi_hw, runs),
                                     2) + "x"});

        table.render(std::cout);
        std::printf("\nPaper V-A: the K40's FIT rises strongly "
                    "with input (hardware scheduler strain + "
                    "register exposure) while the Phi's is nearly "
                    "flat. Removing the K40's hardware-scheduler "
                    "model collapses its growth to ~1x; giving "
                    "the Phi an HW-style strain law barely moves "
                    "it because its scheduling state is software "
                    "(tiny silicon cross-section) and its FIT is "
                    "storage-dominated.\n");
    }
};

} // anonymous namespace

RADCRIT_REGISTER_EXPERIMENT(AblationScheduler)

} // namespace radcrit
