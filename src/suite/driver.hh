/**
 * @file
 * Entry points of the experiment suite.
 *
 * suiteMain() implements the radcrit_suite command:
 *
 *   radcrit_suite list [--json]
 *   radcrit_suite run <glob>... [--runs N] [--jobs N]
 *       [--cache DIR] [--out DIR] [--no-csv] [--json PATH]
 *       [experiment-specific options]
 *
 * `run all` (or any glob) selects experiments from the registry,
 * runs the scheduler's campaign-dedup prepass on one shared
 * WorkerPool, then each experiment's pure analyze/render phase,
 * and emits one schema-6 suite JSON with per-experiment blocks,
 * suite totals and dedup/cache traffic.
 *
 * experimentShimMain() is the whole body of a per-figure shim
 * executable: it resolves one experiment by name, parses the
 * standard bench CLI (plus the experiment's extra options), and
 * reproduces the standalone bench behavior — including the
 * schema-6 bench JSON — on top of the same registry.
 *
 * printCatalog() renders the `list` output (devices, workloads,
 * experiments) and is shared with radcrit_cli.
 */

#ifndef RADCRIT_SUITE_DRIVER_HH
#define RADCRIT_SUITE_DRIVER_HH

#include <iosfwd>
#include <string>

namespace radcrit
{

/** radcrit_suite main. @return process exit code. */
int suiteMain(int argc, char **argv);

/**
 * Body of a per-figure compatibility shim.
 *
 * @param name Experiment registry name (no "bench_" prefix).
 * @return process exit code.
 */
int experimentShimMain(const std::string &name, int argc,
                       char **argv);

/**
 * Render the known devices, workloads, and experiments to `os`,
 * human-readable or as one JSON document.
 */
void printCatalog(std::ostream &os, bool json);

} // namespace radcrit

#endif // RADCRIT_SUITE_DRIVER_HH
