/**
 * @file
 * Declarative campaign specs for the experiment suite.
 *
 * Experiments declare the campaigns they need as CampaignRequest
 * values — (device, workload spec, runs) — instead of constructing
 * workloads eagerly, so the suite scheduler can compare requests
 * across experiments and simulate each distinct campaign exactly
 * once. A WorkloadSpec names one of the paper's four kernels plus
 * its size parameters; buildWorkload() materializes it through the
 * canonical campaign/paperconfigs factories, so a spec always
 * denotes the same workload a standalone bench would have built.
 */

#ifndef RADCRIT_SUITE_SPEC_HH
#define RADCRIT_SUITE_SPEC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "campaign/paperconfigs.hh"
#include "sim/workload.hh"

namespace radcrit
{

/** The paper's four kernels. */
enum class WorkloadKind : uint8_t { Dgemm, LavaMd, HotSpot, Clamr };

/** Number of workload kinds (for iteration). */
inline constexpr size_t numWorkloadKinds = 4;

/** @return printable workload name ("DGEMM", "LavaMD", ...). */
const char *workloadKindName(WorkloadKind kind);

/**
 * One workload instance, by kind and size parameters:
 *
 *   Dgemm:   param0 = scaled matrix side
 *   LavaMd:  param0 = scaled boxes/dim, param1 = paper boxes/dim
 *   HotSpot: no parameters (canonical scaled grid)
 *   Clamr:   no parameters (canonical scaled grid)
 */
struct WorkloadSpec
{
    WorkloadKind kind = WorkloadKind::Dgemm;
    int64_t param0 = 0;
    int64_t param1 = 0;
};

/** Spec builders for the four kernels. */
WorkloadSpec dgemmSpec(int64_t scaled_side);
WorkloadSpec lavamdSpec(const LavaMdSize &size);
WorkloadSpec hotspotSpec();
WorkloadSpec clamrSpec();

/** Materialize a spec on a device via the canonical factories. */
std::unique_ptr<Workload>
buildWorkload(const DeviceModel &device, const WorkloadSpec &spec);

/**
 * One campaign an experiment needs: device, workload, run count.
 * The seed is not a member — it derives from the labels through
 * defaultCampaign(), exactly as the standalone benches derive it.
 */
struct CampaignRequest
{
    DeviceId device = DeviceId::K40;
    WorkloadSpec workload;
    uint64_t runs = 0;
};

/**
 * @return the scheduler's dedup key for one concrete campaign:
 * two campaigns with equal keys produce bit-identical raw results,
 * so only one of them is ever simulated. Matches the identity the
 * CampaignStore hashes (labels + runs; the seed is derived from
 * the labels).
 */
std::string campaignPlanKey(const std::string &device_name,
                            const std::string &workload_name,
                            const std::string &input_label,
                            uint64_t runs);

/**
 * Helpers enumerating the canonical request sets the paper
 * experiments share (both devices unless the paper restricts one).
 */
std::vector<CampaignRequest> dgemmRequests(uint64_t runs);
std::vector<CampaignRequest> lavamdRequests(uint64_t runs);
std::vector<CampaignRequest> hotspotRequests(uint64_t runs);
std::vector<CampaignRequest> clamrRequests(uint64_t runs);

} // namespace radcrit

#endif // RADCRIT_SUITE_SPEC_HH
