#include "suite/experiment.hh"

#include <algorithm>

#include "common/logging.hh"

namespace radcrit
{

ExperimentRegistry &
ExperimentRegistry::instance()
{
    static ExperimentRegistry registry;
    return registry;
}

void
ExperimentRegistry::add(std::unique_ptr<Experiment> experiment)
{
    const std::string &name = experiment->info().name;
    if (name.empty())
        panic("experiment registered with an empty name");
    if (find(name))
        panic("duplicate experiment registration '%s'",
              name.c_str());
    experiments_.push_back(std::move(experiment));
}

namespace
{

bool
orderBefore(const Experiment *a, const Experiment *b)
{
    if (a->info().order != b->info().order)
        return a->info().order < b->info().order;
    return a->info().name < b->info().name;
}

} // anonymous namespace

std::vector<Experiment *>
ExperimentRegistry::all() const
{
    std::vector<Experiment *> out;
    for (const auto &e : experiments_)
        out.push_back(e.get());
    std::sort(out.begin(), out.end(), orderBefore);
    return out;
}

std::vector<Experiment *>
ExperimentRegistry::match(const std::string &glob) const
{
    std::vector<Experiment *> out;
    for (const auto &e : experiments_) {
        if (globMatch(glob, e->info().name))
            out.push_back(e.get());
    }
    std::sort(out.begin(), out.end(), orderBefore);
    return out;
}

Experiment *
ExperimentRegistry::find(const std::string &name) const
{
    for (const auto &e : experiments_) {
        if (e->info().name == name)
            return e.get();
    }
    return nullptr;
}

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Iterative glob with single-star backtracking: on mismatch,
    // rewind to one past the last '*' anchor and let it absorb one
    // more character.
    size_t p = 0, t = 0;
    size_t star = std::string::npos, anchor = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            anchor = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++anchor;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

} // namespace radcrit
