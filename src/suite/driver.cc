#include "suite/driver.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "campaign/paperconfigs.hh"
#include "campaign/store.hh"
#include "campaign/stream.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "exec/chaos.hh"
#include "exec/pool.hh"
#include "obs/json.hh"
#include "obs/stats_registry.hh"
#include "obs/timeline.hh"
#include "suite/context.hh"
#include "suite/experiment.hh"
#include "suite/render.hh"
#include "suite/scheduler.hh"

namespace radcrit
{

namespace
{

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::string
envOr(const char *name, const std::string &fallback)
{
    const char *value = std::getenv(name);
    return value ? value : fallback;
}

/** Register the standard option set shared by suite and shims. */
void
addStandardOptions(CliParser &cli, int64_t default_runs)
{
    cli.addInt("runs", default_runs,
               "faulty runs per campaign"
               " (-1 = per-experiment default)");
    cli.addInt("jobs",
               static_cast<int64_t>(WorkerPool::envJobs(1)),
               "worker threads (0 = all hardware threads)");
    cli.addString("cache", envOr("RADCRIT_CAMPAIGN_CACHE", ""),
                  "campaign cache directory (empty = cache off)");
    cli.addString("out", "",
                  "output directory (default: $RADCRIT_BENCH_OUT "
                  "or bench_out)");
    cli.addFlag("no-csv", "skip CSV side-output files");
    cli.addFlag("stream",
                "simulate and persist campaigns through the "
                "bounded-memory streaming pipeline (results are "
                "byte-identical to the materialized default)");
    cli.addInt("batch-runs", 0,
               "runs per streamed batch (0 = 4096 with --stream)");
    cli.addFlag("shard-campaigns",
                "schedule distinct campaigns as concurrent work "
                "items on the shared pool instead of one after "
                "the other (byte-identical results at any "
                "--jobs)");
    cli.addInt("io-threads", 0,
               "background store-I/O operations allowed at once "
               "(0 = parse/serialize cache entries inline)");
    cli.addFlag("progress",
                "report campaign-granular prepass progress "
                "with an ETA");
    cli.addString("chaos", envOr("RADCRIT_CHAOS", ""),
                  "deterministic harness-fault injection spec "
                  "(e.g. seed=42,runs=300,throws=3,attempts=2; "
                  "default from RADCRIT_CHAOS; empty = off)");
}

/** Resolve --stream/--batch-runs into the context options. */
void
resolveStreamOptions(const CliParser &cli,
                     SuiteContext::Options &options)
{
    if (cli.getInt("batch-runs") < 0)
        fatal("--batch-runs must be >= 0 (got %lld)",
              static_cast<long long>(cli.getInt("batch-runs")));
    options.stream = cli.getFlag("stream");
    options.batchRuns =
        static_cast<uint64_t>(cli.getInt("batch-runs"));
    if (options.stream && options.batchRuns == 0)
        options.batchRuns = 4096;
    if (cli.getInt("io-threads") < 0)
        fatal("--io-threads must be >= 0 (got %lld)",
              static_cast<long long>(cli.getInt("io-threads")));
    options.shardCampaigns = cli.getFlag("shard-campaigns");
    options.ioThreads =
        static_cast<unsigned>(cli.getInt("io-threads"));
    options.progress = cli.getFlag("progress");
    // The gate is process-wide: every async adapter leases from
    // it, so one knob bounds concurrent background store I/O no
    // matter how many campaigns are in flight.
    IoThreadGate::global().configure(options.ioThreads);
}

/**
 * Build and install the chaos engine requested by --chaos /
 * RADCRIT_CHAOS. The returned engine owns the plan and must stay
 * alive for the whole run; null when chaos is off.
 */
std::unique_ptr<ChaosEngine>
installChaosOption(const CliParser &cli)
{
    if (cli.getString("chaos").empty())
        return nullptr;
    auto params = parseChaosSpec(cli.getString("chaos"));
    if (!params)
        return nullptr;
    auto engine =
        std::make_unique<ChaosEngine>(makeChaosPlan(*params));
    inform("%s", engine->plan().describe().c_str());
    setChaos(engine.get());
    return engine;
}

/** Resolve --jobs (fatal on negative, 0 = hardware threads). */
unsigned
resolveJobsOption(const CliParser &cli)
{
    int64_t jobs = cli.getInt("jobs");
    if (jobs < 0)
        fatal("--jobs must be >= 0 (got %lld)",
              static_cast<long long>(jobs));
    return WorkerPool::resolveJobs(static_cast<unsigned>(jobs));
}

void
writeCatalogHuman(std::ostream &os)
{
    os << "Devices:\n";
    for (DeviceId id : allDevices()) {
        DeviceModel device = makeDevice(id);
        os << "  " << deviceIdName(id) << " (" << device.name
           << ")\n";
    }

    os << "\nWorkloads:\n";
    for (DeviceId id : allDevices()) {
        os << "  " << deviceIdName(id) << ":\n";
        os << "    DGEMM    scaled sides:";
        for (int64_t side : dgemmScaledSides(id))
            os << " " << side;
        os << "\n    LavaMD   scaled boxes:";
        for (const LavaMdSize &size : lavamdScaledSizes(id))
            os << " " << size.scaledBoxes << " (paper "
               << size.paperBoxes << ")";
        os << "\n    HotSpot  scaled grid: " << hotspotScaledGrid()
           << "\n";
        if (id == DeviceId::XeonPhi)
            os << "    CLAMR    scaled grid: " << clamrScaledGrid()
               << "\n";
    }

    os << "\nExperiments:\n";
    for (const Experiment *exp :
         ExperimentRegistry::instance().all()) {
        const ExperimentInfo &info = exp->info();
        char line[256];
        std::snprintf(line, sizeof(line),
                      "  %-26s %-10s runs=%-5llu %s\n",
                      info.name.c_str(), info.tag.c_str(),
                      static_cast<unsigned long long>(
                          info.defaultRuns),
                      info.summary.c_str());
        os << line;
    }
}

void
writeCatalogJson(std::ostream &os)
{
    JsonObjectWriter obj(os);
    obj.field("schema", uint64_t{1});

    obj.beginRawField("devices");
    os << "[";
    bool first = true;
    for (DeviceId id : allDevices()) {
        DeviceModel device = makeDevice(id);
        os << (first ? "" : ", ") << "{\"id\": \""
           << jsonEscape(deviceIdName(id)) << "\", \"name\": \""
           << jsonEscape(device.name) << "\"}";
        first = false;
    }
    os << "]";

    obj.beginRawField("workloads");
    os << "[";
    first = true;
    for (DeviceId id : allDevices()) {
        const char *dev = deviceIdName(id);
        for (int64_t side : dgemmScaledSides(id)) {
            os << (first ? "" : ", ")
               << "{\"device\": \"" << dev
               << "\", \"kind\": \"DGEMM\", \"scaled_side\": "
               << side << "}";
            first = false;
        }
        for (const LavaMdSize &size : lavamdScaledSizes(id)) {
            os << ", {\"device\": \"" << dev
               << "\", \"kind\": \"LavaMD\", \"scaled_boxes\": "
               << size.scaledBoxes << ", \"paper_boxes\": "
               << size.paperBoxes << "}";
        }
        os << ", {\"device\": \"" << dev
           << "\", \"kind\": \"HotSpot\", \"scaled_grid\": "
           << hotspotScaledGrid() << "}";
        if (id == DeviceId::XeonPhi)
            os << ", {\"device\": \"" << dev
               << "\", \"kind\": \"CLAMR\", \"scaled_grid\": "
               << clamrScaledGrid() << "}";
    }
    os << "]";

    obj.beginRawField("experiments");
    os << "[";
    first = true;
    for (const Experiment *exp :
         ExperimentRegistry::instance().all()) {
        const ExperimentInfo &info = exp->info();
        os << (first ? "" : ", ") << "{\"name\": \""
           << jsonEscape(info.name) << "\", \"tag\": \""
           << jsonEscape(info.tag) << "\", \"default_runs\": "
           << info.defaultRuns << ", \"summary\": \""
           << jsonEscape(info.summary) << "\"}";
        first = false;
    }
    os << "]";
    obj.close();
}

/** Per-experiment tallies gathered by the suite run loop. */
struct ExperimentBlock
{
    const Experiment *exp = nullptr;
    BenchRecorder rec;
    uint64_t wallNs = 0;
};

void
writeSuiteJson(SuiteContext &ctx, const std::string &path,
               const std::vector<ExperimentBlock> &blocks,
               const ScheduleStats &sched, uint64_t suite_wall_ns)
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot open suite results file '%s'", path.c_str());
        return;
    }

    BenchRecorder totals;
    totals.jobs = ctx.jobs();
    for (const ExperimentBlock &block : blocks) {
        totals.campaigns += block.rec.campaigns;
        totals.runs += block.rec.runs;
        totals.wallNs += block.rec.wallNs;
        totals.cacheHits += block.rec.cacheHits;
        totals.cacheMisses += block.rec.cacheMisses;
    }

    StatsSnapshot snap = StatsRegistry::global().snapshot();
    {
        JsonObjectWriter obj(out);
        obj.field("schema", uint64_t{8});
        obj.field("suite", "radcrit_suite");
        obj.field("jobs", static_cast<uint64_t>(ctx.jobs()));
        obj.field("experiments_run",
                  static_cast<uint64_t>(blocks.size()));
        obj.field("wall_ns", suite_wall_ns);

        obj.beginRawField("campaigns");
        {
            // The dedup ledger: how many campaign declarations the
            // selected experiments made, how many survived dedup,
            // and where each distinct campaign came from. Campaigns
            // on ad-hoc device variants bypass the plan and show up
            // as unplanned traffic.
            JsonObjectWriter ded(out, 4);
            ded.field("requested", sched.requested);
            ded.field("distinct", sched.distinct);
            ded.field("simulated", sched.simulated);
            ded.field("store_hits", sched.storeHits);
            ded.field("memory_serves", ctx.memoryServes());
            ded.field("unplanned_misses", ctx.unplannedMisses());
            ded.field("unplanned_hits", ctx.unplannedHits());
            ded.field("prepass_wall_ns", sched.wallNs);
        }

        obj.beginRawField("totals");
        {
            JsonObjectWriter tot(out, 4);
            tot.field("campaigns", totals.campaigns);
            tot.field("runs", totals.runs);
            tot.field("wall_ns", totals.wallNs);
            tot.field("cache_hits", totals.cacheHits);
            tot.field("cache_misses", totals.cacheMisses);
            tot.field("ns_per_op", totals.nsPerOp());
            tot.field("runs_per_s", totals.runsPerSecond());
        }

        obj.beginRawField("pool");
        {
            JsonObjectWriter pool(out, 4);
            pool.field("jobs",
                       static_cast<uint64_t>(ctx.pool().jobs()));
            pool.field("dispatches", ctx.pool().dispatches());
        }

        obj.beginRawField("sharding");
        writeShardingJson(out, snap, 4, sched.sharded,
                          sched.concurrentPeak, sched.overlapNs,
                          sched.prepassWallNs, ctx.ioThreads());

        obj.beginRawField("resilience");
        writeResilienceJson(out, snap, 4);

        obj.beginRawField("memory");
        writeMemoryJson(out, snap, 4);

        obj.beginRawField("experiments");
        {
            JsonObjectWriter exps(out, 4);
            for (const ExperimentBlock &block : blocks) {
                const ExperimentInfo &info = block.exp->info();
                exps.beginRawField(info.name);
                JsonObjectWriter one(out, 6);
                one.field("tag", info.tag);
                one.field("campaigns", block.rec.campaigns);
                one.field("runs", block.rec.runs);
                one.field("wall_ns", block.wallNs);
                one.field("cache_hits", block.rec.cacheHits);
                one.field("cache_misses", block.rec.cacheMisses);
            }
        }

        obj.beginRawField("stats");
        snap.writeJson(out, 2);
        obj.close();
    }
    out << "\n";
    std::printf("[json] %s\n", path.c_str());
}

int
runSuite(int argc, char **argv)
{
    ExperimentRegistry &registry = ExperimentRegistry::instance();

    CliParser cli("radcrit_suite");
    addStandardOptions(cli, -1);
    cli.addString("json", "",
                  "suite JSON path (default: "
                  "<out>/radcrit_suite.json)");
    cli.addString("timeline", "",
                  "write a Chrome trace-event JSON of the prepass "
                  "(worker lanes; sharded mode records one span "
                  "per run plus store-hit spans)");
    for (Experiment *exp : registry.all())
        exp->addOptions(cli);
    cli.parse(argc, argv);

    // positional[0] is the "run" subcommand itself.
    std::vector<std::string> globs(cli.positional().begin() + 1,
                                   cli.positional().end());
    if (globs.empty())
        fatal("radcrit_suite run: no experiment globs given "
              "(try 'run all' or see 'radcrit_suite list')");

    std::map<std::string, Experiment *> picked;
    for (const std::string &glob : globs) {
        std::string pattern = glob == "all" ? "*" : glob;
        std::vector<Experiment *> matches =
            registry.match(pattern);
        if (matches.empty())
            fatal("no experiment matches '%s' "
                  "(see 'radcrit_suite list')",
                  glob.c_str());
        for (Experiment *exp : matches)
            picked.emplace(exp->info().name, exp);
    }
    std::vector<Experiment *> selected;
    for (Experiment *exp : registry.all())
        if (picked.count(exp->info().name))
            selected.push_back(exp);

    unsigned jobs = resolveJobsOption(cli);
    std::unique_ptr<ChaosEngine> chaos_engine =
        installChaosOption(cli);
    std::unique_ptr<CampaignStore> store;
    std::string cache_dir = cli.getString("cache");
    if (!cache_dir.empty())
        store = CampaignStore::open(cache_dir);

    WorkerPool pool(jobs);
    SuiteContext::Options options;
    options.outDir = resolveOutputDir(cli.getString("out"));
    options.jobs = jobs;
    options.writeCsv = !cli.getFlag("no-csv");
    options.runsOverride = cli.getInt("runs");
    resolveStreamOptions(cli, options);
    SuiteContext ctx(options, store.get(), pool);
    ctx.setCli(&cli);

    std::printf("radcrit_suite: %zu experiment(s), jobs=%u, "
                "cache=%s%s%s",
                selected.size(), jobs,
                store ? cache_dir.c_str() : "off",
                options.stream ? ", stream" : "",
                options.shardCampaigns ? ", sharded" : "");
    if (options.ioThreads > 0)
        std::printf(", io-threads=%u", options.ioThreads);
    std::printf("\n");

    // The prepass flight recorder: per-run worker-lane spans in
    // both shapes (sharded mode adds store-hit resolution spans);
    // campaign/run/source land in the span args.
    std::unique_ptr<Timeline> tl;
    if (!cli.getString("timeline").empty()) {
        tl = std::make_unique<Timeline>();
        setTimeline(tl.get());
    }

    uint64_t suite_start = nowNs();
    ScheduleStats sched = scheduleCampaigns(selected, ctx);
    std::printf("[suite] campaigns: %llu requested, %llu distinct, "
                "%llu simulated, %llu from store (%.2f s)\n",
                static_cast<unsigned long long>(sched.requested),
                static_cast<unsigned long long>(sched.distinct),
                static_cast<unsigned long long>(sched.simulated),
                static_cast<unsigned long long>(sched.storeHits),
                static_cast<double>(sched.wallNs) / 1e9);
    if (sched.sharded) {
        std::printf("[suite] sharded prepass: peak %llu "
                    "concurrent campaign(s), %.2f s wall, "
                    "%.2f s overlapped\n",
                    static_cast<unsigned long long>(
                        sched.concurrentPeak),
                    static_cast<double>(sched.prepassWallNs) /
                        1e9,
                    static_cast<double>(sched.overlapNs) / 1e9);
    }
    if (tl) {
        setTimeline(nullptr);
        tl->writeJsonFile(cli.getString("timeline"));
        std::printf("[timeline] %s\n",
                    cli.getString("timeline").c_str());
    }

    std::vector<ExperimentBlock> blocks;
    blocks.reserve(selected.size());
    for (Experiment *exp : selected) {
        const ExperimentInfo &info = exp->info();
        std::printf("\n=== %s [%s] ===\n", info.name.c_str(),
                    info.tag.c_str());
        ExperimentBlock block;
        block.exp = exp;
        ctx.setRecorder(&block.rec);
        uint64_t start = nowNs();
        exp->run(ctx);
        block.wallNs = nowNs() - start;
        ctx.setRecorder(nullptr);
        blocks.push_back(std::move(block));
    }
    uint64_t suite_wall_ns = nowNs() - suite_start;

    std::string json_path = cli.getString("json");
    if (json_path.empty())
        json_path = ctx.outputDir() + "/radcrit_suite.json";
    std::printf("\n");
    writeSuiteJson(ctx, json_path, blocks, sched, suite_wall_ns);
    if (chaos_engine)
        setChaos(nullptr);
    return 0;
}

} // namespace

void
printCatalog(std::ostream &os, bool json)
{
    if (json)
        writeCatalogJson(os);
    else
        writeCatalogHuman(os);
    os << "\n";
}

int
suiteMain(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: radcrit_suite list [--json]\n"
                     "       radcrit_suite run <glob>... "
                     "[options]  (try 'run all --help')\n");
        return 1;
    }
    std::string command = argv[1];
    if (command == "list") {
        bool json = false;
        for (int i = 2; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--json"))
                json = true;
            else
                fatal("radcrit_suite list: unknown argument '%s'",
                      argv[i]);
        }
        printCatalog(std::cout, json);
        return 0;
    }
    if (command == "run")
        return runSuite(argc, argv);
    fatal("radcrit_suite: unknown command '%s' "
          "(expected 'list' or 'run')",
          command.c_str());
    return 1;
}

int
experimentShimMain(const std::string &name, int argc, char **argv)
{
    Experiment *exp = ExperimentRegistry::instance().find(name);
    if (!exp)
        panic("shim references unregistered experiment '%s'",
              name.c_str());
    const ExperimentInfo &info = exp->info();
    std::string prog = "bench_" + name;

    if (info.rawShimCli) {
        // The experiment wraps an external harness with its own
        // flag namespace: hand argv through untouched.
        WorkerPool pool(1);
        SuiteContext::Options options;
        options.outDir = resolveOutputDir("");
        SuiteContext ctx(options, nullptr, pool);
        ctx.setShimArgs(
            std::vector<std::string>(argv, argv + argc));
        exp->run(ctx);
        return 0;
    }

    CliParser cli(prog);
    addStandardOptions(cli,
                       static_cast<int64_t>(info.defaultRuns));
    exp->addOptions(cli);
    cli.parse(argc, argv);

    unsigned jobs = resolveJobsOption(cli);
    std::unique_ptr<ChaosEngine> chaos_engine =
        installChaosOption(cli);
    std::unique_ptr<CampaignStore> store;
    std::string cache_dir = cli.getString("cache");
    if (!cache_dir.empty())
        store = CampaignStore::open(cache_dir);

    WorkerPool pool(jobs);
    SuiteContext::Options options;
    options.outDir = resolveOutputDir(cli.getString("out"));
    options.jobs = jobs;
    options.writeCsv = !cli.getFlag("no-csv");
    options.runsOverride = cli.getInt("runs");
    resolveStreamOptions(cli, options);
    SuiteContext ctx(options, store.get(), pool);
    ctx.setCli(&cli);

    exp->run(ctx);
    if (info.benchJson)
        writeBenchJson(ctx, prog);
    if (chaos_engine)
        setChaos(nullptr);
    return 0;
}

} // namespace radcrit
