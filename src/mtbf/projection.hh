/**
 * @file
 * System-level reliability projection.
 *
 * The paper's introduction motivates error criticality with
 * system-scale numbers: Titan's >18,000 Kepler GPUs have a
 * radiation-induced MTBF "in the order of dozens of hours"
 * (refs. [18], [41]), and crashes/hangs "lead to performance
 * penalties and eventual data loss if a checkpoint was not
 * performed". This module closes that loop: it scales per-device
 * failure rates (from campaigns, anchored to an absolute-FIT
 * assumption the user provides, since the paper's absolute FIT is
 * business-sensitive) to a full machine, and computes the optimal
 * checkpoint interval (Young/Daly) and the resulting machine
 * efficiency — quantifying why SDC criticality matters at exascale
 * (Section I).
 */

#ifndef RADCRIT_MTBF_PROJECTION_HH
#define RADCRIT_MTBF_PROJECTION_HH

#include <cstdint>

namespace radcrit
{

struct CampaignResult;

/** A machine built from many accelerators. */
struct SystemConfig
{
    /** Accelerators in the machine (Titan: 18,688). */
    uint64_t devices = 18688;
    /**
     * Anchor: absolute device FIT (failures per 1e9 device-hours)
     * corresponding to one relative-FIT arbitrary unit. The paper
     * withholds absolute FIT; pick the anchor to explore
     * scenarios. The default of 25 puts a Titan-scale machine in
     * the "dozens of hours" MTBF band the paper quotes.
     */
    double fitPerAu = 25.0;
    /** Time to write one checkpoint, hours. */
    double checkpointWriteHours = 0.1;
    /** Time to restart from a checkpoint, hours. */
    double restartHours = 0.15;
};

/** System-level projection of one campaign's rates. */
struct SystemProjection
{
    /** Absolute per-device FIT for detectable failures. */
    double deviceDetectableFit = 0.0;
    /** Absolute per-device FIT for SDCs (all mismatches). */
    double deviceSdcFit = 0.0;
    /** Absolute per-device FIT for critical (filtered) SDCs. */
    double deviceCriticalFit = 0.0;

    /** Machine MTBF for detectable failures, hours. */
    double mtbfDetectableHours = 0.0;
    /** Machine mean time between SDCs, hours. */
    double mtbsSdcHours = 0.0;
    /** Machine mean time between critical SDCs, hours. */
    double mtbsCriticalHours = 0.0;

    /** Young/Daly optimal checkpoint interval, hours. */
    double dalyIntervalHours = 0.0;
    /**
     * Machine efficiency under optimal checkpointing: useful work
     * divided by wall time, accounting for checkpoint writes and
     * rework/restart after detectable failures.
     */
    double efficiency = 0.0;
};

/**
 * Project a campaign to machine scale.
 *
 * Detectable failures (crash + hang) drive checkpoint/restart
 * overheads; SDC rates are reported both raw and after the
 * campaign's tolerance filter (critical), since only detectable
 * failures trigger recovery — SDCs silently corrupt results, which
 * is the paper's core concern.
 */
SystemProjection
projectToSystem(const CampaignResult &result,
                const SystemConfig &config);

/**
 * Young/Daly first-order optimal checkpoint interval:
 * sqrt(2 * write_cost * MTBF).
 *
 * @param checkpoint_write_hours Checkpoint write cost, hours.
 * @param mtbf_hours System MTBF for detectable failures, hours.
 */
double dalyInterval(double checkpoint_write_hours,
                    double mtbf_hours);

/**
 * Machine efficiency for a given checkpoint interval: fraction of
 * wall time spent on useful forward progress, with checkpoint
 * overhead, expected rework of half an interval per failure, and
 * restart cost.
 */
double checkpointEfficiency(double interval_hours,
                            double checkpoint_write_hours,
                            double restart_hours,
                            double mtbf_hours);

} // namespace radcrit

#endif // RADCRIT_MTBF_PROJECTION_HH
