#include "mtbf/projection.hh"

#include <cmath>

#include "campaign/runner.hh"
#include "common/logging.hh"

namespace radcrit
{

double
dalyInterval(double checkpoint_write_hours, double mtbf_hours)
{
    if (checkpoint_write_hours <= 0.0 || mtbf_hours <= 0.0)
        fatal("Daly interval needs positive write cost and MTBF");
    return std::sqrt(2.0 * checkpoint_write_hours * mtbf_hours);
}

double
checkpointEfficiency(double interval_hours,
                     double checkpoint_write_hours,
                     double restart_hours, double mtbf_hours)
{
    if (interval_hours <= 0.0 || mtbf_hours <= 0.0)
        fatal("efficiency needs positive interval and MTBF");
    // Per segment of useful work T: wall time T + C. Failures
    // arrive at rate 1/MTBF; each failure wastes on average half a
    // segment of rework plus the restart time.
    double segment_wall = interval_hours +
        checkpoint_write_hours;
    double failure_overhead_rate =
        (0.5 * segment_wall + restart_hours) / mtbf_hours;
    double eff = (interval_hours / segment_wall) *
        (1.0 - failure_overhead_rate);
    return std::max(0.0, eff);
}

SystemProjection
projectToSystem(const CampaignResult &result,
                const SystemConfig &config)
{
    if (config.devices == 0)
        fatal("system needs at least one device");
    if (config.fitPerAu <= 0.0)
        fatal("fitPerAu anchor must be positive");

    SystemProjection proj;

    // Relative FIT for each event class, converted through the
    // absolute anchor.
    uint64_t detectable = result.count(Outcome::Crash) +
        result.count(Outcome::Hang);
    proj.deviceDetectableFit =
        result.fitAu(detectable) * config.fitPerAu;
    proj.deviceSdcFit =
        result.fitTotalAu(false) * config.fitPerAu;
    proj.deviceCriticalFit =
        result.fitTotalAu(true) * config.fitPerAu;

    auto mtbf = [&](double device_fit) {
        if (device_fit <= 0.0)
            return 0.0;
        double failures_per_hour = device_fit * 1e-9 *
            static_cast<double>(config.devices);
        return 1.0 / failures_per_hour;
    };
    proj.mtbfDetectableHours = mtbf(proj.deviceDetectableFit);
    proj.mtbsSdcHours = mtbf(proj.deviceSdcFit);
    proj.mtbsCriticalHours = mtbf(proj.deviceCriticalFit);

    if (proj.mtbfDetectableHours > 0.0) {
        proj.dalyIntervalHours = dalyInterval(
            config.checkpointWriteHours,
            proj.mtbfDetectableHours);
        proj.efficiency = checkpointEfficiency(
            proj.dalyIntervalHours, config.checkpointWriteHours,
            config.restartHours, proj.mtbfDetectableHours);
    } else {
        proj.efficiency = 1.0;
    }
    return proj;
}

} // namespace radcrit
