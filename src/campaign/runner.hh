/**
 * @file
 * Campaign runner: the Monte-Carlo stand-in for a beam test
 * campaign, split along the paper's simulate/analyze seam.
 *
 * simulateCampaign() samples strikes over a (device, workload)
 * pair, classifies the program-level outcome of each, and replays
 * the faulty executions through the real kernel, producing a
 * CampaignRaw — strikes, outcomes, and raw mismatch records, the
 * in-memory form of a beam log. analyzeCampaign() is the pure
 * second half: it recomputes the paper's criticality metrics,
 * tolerance filter, locality classes, and relative-FIT breakdowns
 * from the records alone, so re-analysis under a new threshold
 * never touches a kernel. runCampaign() is the composition for
 * callers that want both in one step.
 */

#ifndef RADCRIT_CAMPAIGN_RUNNER_HH
#define RADCRIT_CAMPAIGN_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/config.hh"
#include "campaign/raw.hh"
#include "campaign/stream.hh"
#include "exec/launch.hh"
#include "exec/pool.hh"
#include "metrics/criticality.hh"
#include "obs/stats_registry.hh"
#include "sim/fault.hh"
#include "sim/workload.hh"

namespace radcrit
{

/**
 * One simulated strike and its analyzed consequences.
 */
struct RunRecord
{
    /** Index of this run within its campaign. */
    uint64_t index = 0;
    Strike strike;
    Outcome outcome = Outcome::Masked;
    /** Metrics; meaningful only when outcome == Sdc. */
    CriticalityReport crit;
};

/**
 * Aggregated results of one campaign.
 */
struct CampaignResult
{
    std::string deviceName;
    std::string workloadName;
    std::string inputLabel;
    CampaignConfig config;
    KernelLaunch launch;
    /** Total sensitive area of the launch (a.u.). */
    double sensitiveAreaAu = 0.0;
    std::vector<RunRecord> runs;
    /**
     * Telemetry recorded for this campaign: the outcome counters
     * under "campaign.<device>.<workload>.*" plus the phase timers
     * ("campaign.phase.{sample,classify,replay,metrics}") and
     * kernel timers that advanced while it ran (a diff of the
     * global registry, so concurrent campaigns in one process stay
     * separable). When the raw campaign came from the store instead
     * of a simulation, the sim-side share is the rebuilt counters
     * (see rebuildSimStats()).
     */
    StatsSnapshot stats;

    /** @return number of runs with the given outcome. */
    uint64_t count(Outcome outcome) const;

    /**
     * @return SDC : (crash + hang) ratio (paper Section V), or NaN
     * when no crash or hang was observed (the ratio is undefined;
     * tables render it as "n/a").
     */
    double sdcOverDetectable() const;

    /**
     * Relative FIT (a.u.) for a class of events observed
     * event_count times out of faultyRuns strikes.
     */
    double fitAu(uint64_t event_count) const;

    /** @return total SDC FIT; filtered drops sub-threshold runs. */
    double fitTotalAu(bool filtered) const;

    /**
     * FIT broken down by spatial pattern. When filtered is true,
     * patterns are re-classified on surviving elements and fully
     * filtered executions are dropped (paper Figs. 3, 5, 7).
     */
    FitBreakdown fitByPattern(bool filtered) const;

    /** @return fraction of SDC runs removed by the filter. */
    double filteredOutFraction() const;
};

/**
 * Simulate one campaign as a stream: the core engine. Executes
 * every strike (kernel replays included) and delivers the raw
 * records to `sink` in contiguous, index-ordered batches of
 * config.batchRuns runs (0 = one batch spanning the campaign), so
 * a streaming sink bounds peak memory at one batch while analysis
 * and persistence overlap the remaining simulation. Checkpoint,
 * resume, retry, watchdog, chaos, and progress behave exactly as
 * in the materialized path — for any batch size and job count the
 * delivered runs, telemetry snapshot, and informs are
 * bit-identical.
 */
void simulateCampaignStream(const DeviceModel &device,
                            Workload &workload,
                            const SimConfig &config,
                            RawSink &sink);

/**
 * Overload running on a caller-supplied pool (config.jobs is
 * ignored; the pool's resolved worker count applies).
 */
void simulateCampaignStream(const DeviceModel &device,
                            Workload &workload,
                            const SimConfig &config,
                            WorkerPool &pool, RawSink &sink);

/**
 * Simulate one campaign materialized: the expensive half. A thin
 * adapter over simulateCampaignStream() into a CollectRawSink —
 * executes every strike (kernel replays included) and returns the
 * raw records with no analysis applied.
 *
 * @param device Device model.
 * @param workload Workload bound to the same device.
 * @param config Simulation parameters.
 */
CampaignRaw simulateCampaign(const DeviceModel &device,
                             Workload &workload,
                             const SimConfig &config);

/**
 * Overload running the campaign's strikes on a caller-supplied
 * pool instead of constructing one per campaign, so a sequence of
 * campaigns (the suite scheduler) reuses one set of persistent
 * worker threads. config.jobs is ignored; the pool's resolved
 * worker count applies. Results are bit-identical to the
 * own-pool overload at the same effective job count.
 */
CampaignRaw simulateCampaign(const DeviceModel &device,
                             Workload &workload,
                             const SimConfig &config,
                             WorkerPool &pool);

/**
 * Analyze a raw campaign: the cheap, re-runnable half. Pure in its
 * result — the returned CampaignResult depends only on (raw,
 * config), never on execution order or prior analyses — though it
 * does publish telemetry (the "campaign.phase.metrics" timer and
 * the ".filtered" counter) and, when a trace sink is installed,
 * emits one strike-trace record per run in index order.
 */
CampaignResult analyzeCampaign(const CampaignRaw &raw,
                               const AnalysisConfig &config);

/**
 * Run one campaign end to end:
 * analyzeCampaign(simulateCampaign(device, workload, config.sim),
 * config.analysis).
 */
CampaignResult runCampaign(const DeviceModel &device,
                           Workload &workload,
                           const CampaignConfig &config);

} // namespace radcrit

#endif // RADCRIT_CAMPAIGN_RUNNER_HH
