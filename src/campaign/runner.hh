/**
 * @file
 * Campaign runner: the Monte-Carlo stand-in for a beam test
 * campaign. It samples strikes over a (device, workload) pair,
 * classifies the program-level outcome of each, replays the faulty
 * executions through the real kernel, and aggregates the paper's
 * criticality metrics and relative-FIT breakdowns.
 */

#ifndef RADCRIT_CAMPAIGN_RUNNER_HH
#define RADCRIT_CAMPAIGN_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exec/launch.hh"
#include "metrics/criticality.hh"
#include "obs/stats_registry.hh"
#include "sim/fault.hh"
#include "sim/workload.hh"

namespace radcrit
{

/**
 * Campaign parameters.
 */
struct CampaignConfig
{
    /** Strikes to simulate (each is one potentially-faulty run). */
    uint64_t faultyRuns = 200;
    /** Master seed; identical configs reproduce identically. */
    uint64_t seed = 12345;
    /** Relative-error filter threshold in percent (paper: 2). */
    double filterThresholdPct = 2.0;
    /** Locality-classifier thresholds. */
    LocalityParams locality;
    /**
     * Conversion from sensitive-area-weighted event rates to
     * relative FIT in arbitrary units. The same constant is used
     * for every device and code, preserving cross comparisons as in
     * the paper (Section V).
     */
    double fitScaleAu = 5e-6;
    /**
     * Emit an inform() progress line every this many runs (0 =
     * silent). Long campaigns pair this with radcrit_cli
     * --progress.
     */
    uint64_t progressEvery = 0;
    /**
     * Worker threads executing runs (radcrit_cli --jobs /
     * RADCRIT_JOBS). 1 = serial (default), 0 = one per hardware
     * thread, N = exactly N workers. Results are bit-identical for
     * every value: run k always draws from Rng(seed).split(k) and
     * runs land in the result by index (see campaign/engine.hh).
     */
    unsigned jobs = 1;
};

/**
 * One simulated strike and its consequences.
 */
struct RunRecord
{
    /** Index of this run within its campaign. */
    uint64_t index = 0;
    Strike strike;
    Outcome outcome = Outcome::Masked;
    /** Metrics; meaningful only when outcome == Sdc. */
    CriticalityReport crit;
};

/**
 * Aggregated results of one campaign.
 */
struct CampaignResult
{
    std::string deviceName;
    std::string workloadName;
    std::string inputLabel;
    CampaignConfig config;
    KernelLaunch launch;
    /** Total sensitive area of the launch (a.u.). */
    double sensitiveAreaAu = 0.0;
    std::vector<RunRecord> runs;
    /**
     * Telemetry recorded during this campaign: the outcome
     * counters under "campaign.<device>.<workload>.*" plus the
     * phase timers ("campaign.phase.{sample,classify,replay,
     * metrics}") and kernel timers that advanced while it ran (a
     * diff of the global registry, so concurrent campaigns in one
     * process stay separable).
     */
    StatsSnapshot stats;

    /** @return number of runs with the given outcome. */
    uint64_t count(Outcome outcome) const;

    /**
     * @return SDC : (crash + hang) ratio (paper Section V), or NaN
     * when no crash or hang was observed (the ratio is undefined;
     * tables render it as "n/a").
     */
    double sdcOverDetectable() const;

    /**
     * Relative FIT (a.u.) for a class of events observed
     * event_count times out of faultyRuns strikes.
     */
    double fitAu(uint64_t event_count) const;

    /** @return total SDC FIT; filtered drops sub-threshold runs. */
    double fitTotalAu(bool filtered) const;

    /**
     * FIT broken down by spatial pattern. When filtered is true,
     * patterns are re-classified on surviving elements and fully
     * filtered executions are dropped (paper Figs. 3, 5, 7).
     */
    FitBreakdown fitByPattern(bool filtered) const;

    /** @return fraction of SDC runs removed by the filter. */
    double filteredOutFraction() const;
};

/**
 * Run one campaign.
 *
 * @param device Device model.
 * @param workload Workload bound to the same device.
 * @param config Campaign parameters.
 */
CampaignResult runCampaign(const DeviceModel &device,
                           Workload &workload,
                           const CampaignConfig &config);

} // namespace radcrit

#endif // RADCRIT_CAMPAIGN_RUNNER_HH
