#include "campaign/report.hh"

#include <cmath>
#include <fstream>
#include <ostream>

#include "common/logging.hh"
#include "obs/report.hh"
#include "obs/stats_registry.hh"

namespace radcrit
{

namespace
{

std::string
fmtCount(uint64_t v)
{
    return strprintf("%llu", static_cast<unsigned long long>(v));
}

std::string
fmtPct(double v)
{
    return std::isfinite(v) ? strprintf("%.1f%%", v) : "n/a";
}

std::string
fmtFit(double v)
{
    return strprintf("%.3f", v);
}

void
campaignSection(HtmlReport &report, const CampaignResult &res)
{
    report.section("Campaign");
    report.keyValues({
        {"device", res.deviceName},
        {"workload", res.workloadName},
        {"input", res.inputLabel},
        {"faulty runs", fmtCount(res.runs.size())},
        {"seed", fmtCount(res.config.sim.seed)},
        {"workers", fmtCount(res.config.sim.jobs)},
        {"sensitive area [a.u.]",
         strprintf("%.4f", res.sensitiveAreaAu)},
        {"occupancy", strprintf("%.3f", res.launch.occupancy)},
        {"tolerance filter",
         strprintf("%.2f%%",
                   res.config.analysis.filterThresholdPct)},
    });
}

void
outcomeSection(HtmlReport &report, const CampaignResult &res)
{
    report.section("Outcome breakdown");
    double runs = static_cast<double>(res.runs.size());
    std::vector<std::vector<std::string>> rows;
    std::vector<std::pair<std::string, double>> bars;
    for (size_t o = 0; o < numOutcomes; ++o) {
        Outcome outcome = static_cast<Outcome>(o);
        uint64_t n = res.count(outcome);
        rows.push_back(
            {outcomeName(outcome), fmtCount(n),
             fmtPct(runs > 0.0 ? 100.0 * static_cast<double>(n) /
                        runs : 0.0)});
        bars.emplace_back(outcomeName(outcome),
                          static_cast<double>(n));
    }
    report.table({"outcome", "runs", "fraction"}, rows);
    report.barChart("runs per outcome", bars);

    double ratio = res.sdcOverDetectable();
    report.keyValues(
        {{"SDC : (crash + hang)",
          std::isnan(ratio) ? "n/a" : strprintf("%.2f", ratio)}});
}

void
criticalitySection(HtmlReport &report, const CampaignResult &res)
{
    report.section("Criticality and FIT");
    report.keyValues({
        {"FIT all [a.u.]", fmtFit(res.fitTotalAu(false))},
        {strprintf("FIT > %.1f%% [a.u.]",
                   res.config.analysis.filterThresholdPct),
         fmtFit(res.fitTotalAu(true))},
        {"executions under tolerance",
         fmtPct(100.0 * res.filteredOutFraction())},
    });

    FitBreakdown all = res.fitByPattern(false);
    FitBreakdown filtered = res.fitByPattern(true);
    std::vector<std::vector<std::string>> rows;
    for (size_t p = 0; p < numPatterns; ++p) {
        Pattern pattern = static_cast<Pattern>(p);
        if (pattern == Pattern::None)
            continue;
        if (all.of(pattern) == 0.0 && filtered.of(pattern) == 0.0)
            continue;
        rows.push_back({patternName(pattern),
                        fmtFit(all.of(pattern)),
                        fmtFit(filtered.of(pattern))});
    }
    rows.push_back({"total", fmtFit(all.total()),
                    fmtFit(filtered.total())});
    report.table({"pattern", "FIT all [a.u.]",
                  "FIT filtered [a.u.]"},
                 rows);
}

void
resilienceSection(HtmlReport &report, const CampaignResult &res)
{
    uint64_t infra_error = res.count(Outcome::InfraError);
    uint64_t infra_timeout = res.count(Outcome::InfraTimeout);
    double retries = res.stats.value("resilience.retries");
    double resumed = res.stats.value("resilience.resumed_runs");
    // A clean campaign (the overwhelmingly common case) has
    // nothing to say here; only render the section when the
    // harness actually absorbed or quarantined something.
    if (infra_error == 0 && infra_timeout == 0 &&
        retries == 0.0 && resumed == 0.0)
        return;
    report.section("Resilience");
    report.keyValues({
        {"run attempts retried", fmtCount(static_cast<uint64_t>(
                                     retries))},
        {"runs resumed from checkpoint",
         fmtCount(static_cast<uint64_t>(resumed))},
        {"runs quarantined (error)", fmtCount(infra_error)},
        {"runs quarantined (timeout)", fmtCount(infra_timeout)},
    });
}

void
storeIoSection(HtmlReport &report)
{
    // Async store I/O is process-shaped telemetry (it depends on
    // --io-threads, never on results), so it lives in the global
    // registry, not in the campaign's own stats snapshot. Only
    // render the section when background I/O actually ran.
    StatsSnapshot snap = StatsRegistry::global().snapshot();
    uint64_t batches = static_cast<uint64_t>(
        snap.value("store.io.async.batches"));
    if (batches == 0)
        return;
    report.section("Async store I/O");
    report.keyValues({
        {"batches moved on the I/O thread", fmtCount(batches)},
        {"I/O thread busy [ms]",
         strprintf("%.3f",
                   snap.value("store.io.async.busy_ns") / 1e6)},
        {"queue depth high-water",
         fmtCount(static_cast<uint64_t>(
             snap.value("store.io.async.queue_peak")))},
    });
}

void
wallClockSection(HtmlReport &report, const CampaignResult &res,
                 const ProcMemSample *mem)
{
    report.section("Wall-clock attribution");
    report.phaseAttribution(res.stats,
                            {"campaign.phase.sample",
                             "campaign.phase.classify",
                             "campaign.phase.replay",
                             "campaign.phase.metrics"});
    std::vector<std::pair<std::string, std::string>> values;
    double total = res.stats.value("campaign.total.ns");
    values.emplace_back("campaign total [ms]",
                        strprintf("%.3f", total / 1e6));
    if (mem && mem->valid) {
        values.emplace_back(
            "peak RSS (VmHWM) [MiB]",
            strprintf("%.1f", static_cast<double>(
                                  mem->peakRssBytes) /
                                  (1024.0 * 1024.0)));
        values.emplace_back(
            "current RSS (VmRSS) [MiB]",
            strprintf("%.1f", static_cast<double>(
                                  mem->currentRssBytes) /
                                  (1024.0 * 1024.0)));
    }
    report.keyValues(values);
}

void
histogramSection(HtmlReport &report, const CampaignResult &res)
{
    report.section("Distributions");
    bool any = false;
    for (const auto &entry : res.stats.entries) {
        if (entry.kind != StatKind::Histogram)
            continue;
        any = true;
        report.logHistogram(entry.name, entry);
    }
    if (!any)
        report.paragraph("No histograms were recorded for this "
                         "campaign.");
}

void
workerSection(HtmlReport &report, const Timeline &timeline)
{
    report.section("Workers");
    std::vector<std::vector<std::string>> rows;
    std::vector<std::pair<std::string, double>> bars;
    for (const TimelineLane *lane : timeline.lanes()) {
        rows.push_back(
            {lane->label(), fmtCount(lane->events().size()),
             strprintf("%.3f",
                       static_cast<double>(lane->busyNs()) /
                           1e6)});
        bars.emplace_back(lane->label(),
                          static_cast<double>(lane->busyNs()) /
                              1e6);
    }
    report.table({"lane", "events", "busy [ms]"}, rows);
    report.barChart("busy wall-clock per lane [ms]", bars);
}

} // anonymous namespace

void
writeCampaignReport(std::ostream &os, const CampaignResult &result,
                    const Timeline *timeline,
                    const ProcMemSample *mem)
{
    HtmlReport report("radcrit campaign report: " +
                      result.deviceName + " / " +
                      result.workloadName + " " +
                      result.inputLabel);
    campaignSection(report, result);
    outcomeSection(report, result);
    resilienceSection(report, result);
    criticalitySection(report, result);
    storeIoSection(report);
    wallClockSection(report, result, mem);
    histogramSection(report, result);
    if (timeline)
        workerSection(report, *timeline);
    report.render(os);
}

void
writeCampaignReportFile(const CampaignResult &result,
                        const std::string &path,
                        const Timeline *timeline,
                        const ProcMemSample *mem)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open report file '%s'", path.c_str());
    writeCampaignReport(out, result, timeline, mem);
}

} // namespace radcrit
