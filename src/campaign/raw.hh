/**
 * @file
 * CampaignRaw: the un-analyzed product of a simulation campaign —
 * the in-memory form of a beam log. It records, per run, the
 * sampled strike, the program-level outcome, and (for SDCs) the
 * complete output-mismatch record, with no tolerance filter or
 * locality judgement applied. Everything the paper's criticality
 * metrics need is derivable from it, which is what makes "run once,
 * analyze many" possible: simulateCampaign() produces a
 * CampaignRaw, logs/beamlog (de)serializes it, campaign/store
 * caches it on disk, and analyzeCampaign() turns it into a
 * CampaignResult under any AnalysisConfig.
 */

#ifndef RADCRIT_CAMPAIGN_RAW_HH
#define RADCRIT_CAMPAIGN_RAW_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/config.hh"
#include "exec/launch.hh"
#include "metrics/sdcrecord.hh"
#include "obs/stats_registry.hh"
#include "sim/fault.hh"

namespace radcrit
{

/**
 * One simulated strike before analysis.
 */
struct RawRun
{
    /** Index of this run within its campaign. */
    uint64_t index = 0;
    Strike strike;
    Outcome outcome = Outcome::Masked;
    /** Output-mismatch log; empty unless outcome == Sdc. */
    SdcRecord record;
    /**
     * Wall time the simulation of this run took. Telemetry only
     * (fed to strike traces), not serialized: a run reloaded from a
     * beam log carries 0 here.
     */
    uint64_t wallNs = 0;
};

/**
 * The raw material of one campaign.
 */
struct CampaignRaw
{
    std::string deviceName;
    std::string workloadName;
    std::string inputLabel;
    /** The simulation parameters that produced the runs. */
    SimConfig sim;
    /**
     * Launch geometry of the campaign. Derived from (device,
     * workload), so it is not serialized into beam logs; the store
     * rebuilds it on load, and a log parsed standalone carries a
     * default-constructed launch.
     */
    KernelLaunch launch;
    /** Total sensitive area of the launch (a.u.). */
    double sensitiveAreaAu = 0.0;
    std::vector<RawRun> runs;
    /**
     * Simulation-side telemetry: outcome counters and run tally
     * under "campaign.<device>.<workload>.*", the
     * incorrect-elements histogram, phase timers
     * ("campaign.phase.{sample,classify,replay}", "campaign.total")
     * and the kernel timers that advanced while simulating.
     * Rebuilt (counters and histogram only, no timers) when the
     * campaign is loaded from the store instead of simulated.
     */
    StatsSnapshot stats;

    /** @return number of runs with the given outcome. */
    uint64_t count(Outcome outcome) const;
};

/**
 * The stats-registry prefix of a campaign's own instruments:
 * "campaign.<device-token>.<workload-token>".
 */
std::string campaignStatsPrefix(const std::string &device_name,
                                const std::string &workload_name);

/**
 * Incremental reconstruction of the simulation-side counters of a
 * campaign that was loaded rather than simulated — run tally,
 * outcome counters, incorrect-elements histogram, sensitive-area
 * and occupancy gauges. Streaming store loads fold() each record
 * as it passes through instead of holding the whole campaign;
 * rebuildSimStats() is the materialized convenience on top. Phase
 * timers are not reconstructed: no simulation happened.
 */
class SimStatsRebuilder
{
  public:
    SimStatsRebuilder(const std::string &device_name,
                      const std::string &workload_name,
                      double sensitive_area_au, double occupancy);

    SimStatsRebuilder(const SimStatsRebuilder &) = delete;
    SimStatsRebuilder &operator=(const SimStatsRebuilder &) =
        delete;

    /** Count one run. */
    void fold(const RawRun &run);

    /**
     * @return a snapshot of the reconstructed instruments,
     * suitable for CampaignRaw::stats, after merging it into
     * `into` (typically the global registry, so process-wide
     * tallies include cache hits).
     */
    StatsSnapshot finish(StatsRegistry &into);

  private:
    StatsRegistry reg_;
    Counter *runs_ = nullptr;
    LogHistogram *incorrect_ = nullptr;
    std::array<Counter *, numOutcomes> outcome_{};
};

/**
 * Reconstruct the simulation-side counters of a raw campaign that
 * was loaded rather than simulated (see SimStatsRebuilder).
 *
 * @return a snapshot of just the reconstructed instruments,
 * suitable for CampaignRaw::stats.
 */
StatsSnapshot rebuildSimStats(const CampaignRaw &raw,
                              StatsRegistry &into);

} // namespace radcrit

#endif // RADCRIT_CAMPAIGN_RAW_HH
