#include "campaign/analysis.hh"

#include <utility>

#include "common/logging.hh"
#include "obs/timeline.hh"
#include "obs/trace.hh"

namespace radcrit
{

AnalysisAccumulator::AnalysisAccumulator(
    const CampaignMeta &meta, const AnalysisConfig &config)
    : filteredCount_(&reg_.counter(
          campaignStatsPrefix(meta.deviceName, meta.workloadName) +
          ".filtered")),
      metricsTimer_(reg_, "campaign.phase.metrics"),
      filter_(config.filterThresholdPct), sink_(traceSink()),
      tl_(timeline())
{
    result_.deviceName = meta.deviceName;
    result_.workloadName = meta.workloadName;
    result_.inputLabel = meta.inputLabel;
    result_.config.sim = meta.sim;
    result_.config.analysis = config;
    result_.launch = meta.launch;
    result_.sensitiveAreaAu = meta.sensitiveAreaAu;
    analyzeBegin_ = tl_ ? tl_->nowNs() : 0;
}

void
AnalysisAccumulator::fold(const RawRun &in)
{
    result_.runs.emplace_back();
    RunRecord &out = result_.runs.back();
    out.index = in.index;
    out.strike = in.strike;
    out.outcome = in.outcome;
    if (in.outcome == Outcome::Sdc) {
        ScopedTick tick(metricsTimer_);
        out.crit = analyzeCriticality(
            in.record, filter_, result_.config.analysis.locality);
        if (out.crit.executionFiltered)
            filteredCount_->inc();
    }

    if (sink_) {
        StrikeTraceRecord rec;
        rec.run = in.index;
        rec.device = result_.deviceName;
        rec.workload = result_.workloadName;
        rec.input = result_.inputLabel;
        rec.resource = in.strike.resource;
        rec.manifestation = in.strike.manifestation;
        rec.timeFraction = in.strike.timeFraction;
        rec.burstBits = in.strike.burstBits;
        rec.outcome = in.outcome;
        rec.numIncorrect = out.crit.numIncorrect;
        rec.meanRelErrPct = out.crit.meanRelErrPct;
        rec.pattern = out.crit.pattern;
        rec.executionFiltered = out.crit.executionFiltered;
        rec.wallNs = in.wallNs;
        sink_->strike(rec);
    }
}

void
AnalysisAccumulator::merge(AnalysisAccumulator &&other)
{
    result_.runs.insert(
        result_.runs.end(),
        std::make_move_iterator(other.result_.runs.begin()),
        std::make_move_iterator(other.result_.runs.end()));
    reg_.merge(other.reg_.snapshot());
}

CampaignResult
AnalysisAccumulator::finish(const StatsSnapshot &simStats)
{
    if (tl_) {
        tl_->lane(0, "campaign")
            .span("analyze", "campaign", analyzeBegin_,
                  tl_->nowNs() - analyzeBegin_,
                  {{"device", result_.deviceName},
                   {"workload", result_.workloadName},
                   {"runs",
                    std::to_string(result_.runs.size())}});
    }

    // result.stats is the union of the simulation-side telemetry
    // and this analysis pass; the analysis share is also published
    // globally so process-wide tallies stay whole.
    StatsSnapshot analysisSnap = reg_.snapshot();
    StatsRegistry::global().merge(analysisSnap);
    StatsRegistry combined;
    combined.merge(simStats);
    combined.merge(analysisSnap);
    result_.stats = combined.snapshot();
    return std::move(result_);
}

AnalyzeSink::AnalyzeSink(const AnalysisConfig &config,
                         uint64_t progressEvery)
    : config_(config), progressEvery_(progressEvery)
{
}

void
AnalyzeSink::begin(const CampaignMeta &meta)
{
    total_ = meta.sim.faultyRuns;
    deviceName_ = meta.deviceName;
    workloadName_ = meta.workloadName;
    inputLabel_ = meta.inputLabel;
    start_ = std::chrono::steady_clock::now();
    acc_ = std::make_unique<AnalysisAccumulator>(meta, config_);
    result_.reset();
}

void
AnalyzeSink::consume(RunBatch &&batch)
{
    for (const RawRun &run : batch.runs) {
        acc_->fold(run);
        uint64_t done = acc_->folded();
        if (progressEvery_ > 0 &&
            (done % progressEvery_ == 0 || done == total_)) {
            double elapsed_s =
                std::chrono::duration_cast<
                    std::chrono::duration<double>>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
            double rate = elapsed_s > 0.0
                ? static_cast<double>(done) / elapsed_s
                : 0.0;
            inform("analyze %s/%s %s: %llu/%llu records "
                   "(%.1f records/s)",
                   deviceName_.c_str(), workloadName_.c_str(),
                   inputLabel_.c_str(),
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(total_), rate);
        }
    }
}

void
AnalyzeSink::end(const StatsSnapshot &simStats)
{
    result_ = acc_->finish(simStats);
    acc_.reset();
}

CampaignResult
AnalyzeSink::take()
{
    if (!result_)
        fatal("AnalyzeSink::take() before the stream ended");
    CampaignResult out = std::move(*result_);
    result_.reset();
    return out;
}

CampaignResult
analyzeCampaignStream(RawSource &source,
                      const AnalysisConfig &config,
                      uint64_t progressEvery)
{
    AnalyzeSink sink(config, progressEvery);
    pumpRaw(source, sink);
    return sink.take();
}

} // namespace radcrit
