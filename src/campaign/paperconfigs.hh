/**
 * @file
 * Canonical experiment configurations for every paper table and
 * figure, shared by bench/, examples/ and the integration tests.
 *
 * Paper sizes and their scaled stand-ins (scale factors documented
 * per kernel; EXPERIMENTS.md records the mapping):
 *
 *   DGEMM   paper sides 1024..8192   -> scaled 128..1024 (/8)
 *   LavaMD  paper boxes 13,15,19,23  -> scaled 6,7,9,11  (/~2)
 *   HotSpot paper grid 1024^2        -> scaled 256^2     (/4)
 *   CLAMR   paper grid 512^2         -> scaled 128^2     (/4)
 */

#ifndef RADCRIT_CAMPAIGN_PAPERCONFIGS_HH
#define RADCRIT_CAMPAIGN_PAPERCONFIGS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/device.hh"
#include "campaign/runner.hh"
#include "sim/workload.hh"

namespace radcrit
{

/** The two devices of the paper. */
enum class DeviceId : uint8_t { K40, XeonPhi };

/** @return the device model for an id. */
DeviceModel makeDevice(DeviceId id);

/** @return both device ids. */
std::vector<DeviceId> allDevices();

/** @return printable device name. */
const char *deviceIdName(DeviceId id);

/**
 * Scaled DGEMM sides for the device (paper Fig. 2: the Phi was also
 * tested at 8192^2).
 */
std::vector<int64_t> dgemmScaledSides(DeviceId id);

/**
 * Scaled LavaMD boxes-per-dimension (paper Fig. 4: 15/19/23 on the
 * K40, 13/15/19/23 on the Phi) plus the paper size label for each.
 */
struct LavaMdSize
{
    int64_t scaledBoxes;
    int64_t paperBoxes;
};
std::vector<LavaMdSize> lavamdScaledSizes(DeviceId id);

/** Scaled HotSpot grid side (paper: 1024). */
int64_t hotspotScaledGrid();

/** Scaled CLAMR grid side (paper: 512). */
int64_t clamrScaledGrid();

/** Workload factories bound to a device. */
std::unique_ptr<Workload>
makeDgemmWorkload(const DeviceModel &device, int64_t scaled_side);
std::unique_ptr<Workload>
makeLavamdWorkload(const DeviceModel &device,
                   const LavaMdSize &size);
std::unique_ptr<Workload>
makeHotspotWorkload(const DeviceModel &device);
std::unique_ptr<Workload>
makeClamrWorkload(const DeviceModel &device);

/**
 * @return a campaign config with the given number of faulty runs
 * and a seed derived from device/workload labels so every
 * (device, workload, size) pair gets an independent stream.
 */
CampaignConfig
defaultCampaign(uint64_t runs, const std::string &device_name,
                const std::string &workload_name,
                const std::string &input_label);

} // namespace radcrit

#endif // RADCRIT_CAMPAIGN_PAPERCONFIGS_HH
