/**
 * @file
 * Campaign configuration, split along the simulate/analyze seam.
 *
 * A campaign has two independent parameter sets. SimConfig decides
 * what the "beam" does: how many strikes, from which seed, on how
 * many workers. AnalysisConfig decides how the recorded corruption
 * is judged: tolerance filter, locality thresholds, FIT scaling.
 * Everything downstream of simulateCampaign() depends only on
 * AnalysisConfig, so a stored CampaignRaw can be re-analyzed under
 * arbitrary filters without touching a kernel (the paper's "raw
 * beam logs published for third-party re-analysis").
 */

#ifndef RADCRIT_CAMPAIGN_CONFIG_HH
#define RADCRIT_CAMPAIGN_CONFIG_HH

#include <cstdint>
#include <string>

#include "metrics/locality.hh"

namespace radcrit
{

/**
 * Execution-resilience parameters: how the runner reacts to the
 * harness itself failing (a run attempt throwing, overrunning its
 * soft deadline, or the whole process dying mid-campaign). None of
 * these are part of the store cache key: like `jobs`, they change
 * how runs are executed and recovered, never what a successful run
 * computes — a campaign that survives retries or a resume is
 * bit-identical to one that ran clean.
 */
struct ResilienceConfig
{
    /**
     * Total attempts per run before it is quarantined with an
     * infra outcome (1 = fail fast, no retry).
     */
    unsigned maxAttempts = 3;
    /**
     * Soft per-run deadline in nanoseconds; an attempt measured
     * longer counts as a timeout and is retried, and the pool
     * watchdog warns live about runs stuck past it. 0 disables
     * both.
     */
    uint64_t softDeadlineNs = 0;
    /** Backoff before retry k is backoffBaseNs << (k - 1). */
    uint64_t backoffBaseNs = 1'000'000;
    /**
     * Append completed runs to the checkpoint shard after every
     * this many finished runs (1 = every run). Only meaningful
     * when checkpointPath is set.
     */
    uint64_t checkpointEvery = 1;
    /**
     * Path of the checkpoint shard file runs are appended to as
     * they complete. Empty = checkpointing off.
     */
    std::string checkpointPath;
    /**
     * Replay complete runs found in checkpointPath instead of
     * re-simulating them (radcrit_cli --resume). Requires
     * checkpointPath.
     */
    bool resume = false;
};

/**
 * Simulation-side parameters: these (plus device and workload)
 * fully determine the raw campaign, and they are the inputs to the
 * campaign store's cache key.
 */
struct SimConfig
{
    /** Strikes to simulate (each is one potentially-faulty run). */
    uint64_t faultyRuns = 200;
    /** Master seed; identical configs reproduce identically. */
    uint64_t seed = 12345;
    /**
     * Emit an inform() progress line every this many runs (0 =
     * silent). Long campaigns pair this with radcrit_cli
     * --progress. Not part of the cache key: it changes logging,
     * never results.
     */
    uint64_t progressEvery = 0;
    /**
     * Worker threads executing runs (radcrit_cli --jobs /
     * RADCRIT_JOBS). 1 = serial (default), 0 = one per hardware
     * thread, N = exactly N workers. Results are bit-identical for
     * every value: run k always draws from Rng(seed).split(k) and
     * runs land in the result by index (see campaign/engine.hh).
     * Not part of the cache key for the same reason.
     */
    unsigned jobs = 1;
    /**
     * Runs per streamed batch handed to the campaign's RawSink
     * (radcrit_cli --batch-runs). 0 = deliver the whole campaign
     * as one batch, which is exactly the legacy materialized
     * behavior. Like jobs, this shapes execution and memory, never
     * results — streamed and single-batch campaigns are
     * bit-identical — so it is not part of the cache key.
     */
    uint64_t batchRuns = 0;
    /**
     * Background store-I/O threads (radcrit_cli/radcrit_suite
     * --io-threads). 0 = store entries are parsed/serialized
     * inline on the caller thread (legacy behavior); N >= 1 wraps
     * store saves in an AsyncSaveSink so entry serialization
     * overlaps simulation, with at most N concurrent background
     * I/O operations process-wide (IoThreadGate). Like jobs and
     * batchRuns this shapes execution only — saved entries and
     * campaign results are bit-identical either way — so it is
     * not part of the cache key (campaignKeyHash hashes explicit
     * fields, never this struct wholesale).
     */
    unsigned ioThreads = 0;
    /**
     * Harness failure handling; not part of the cache key (see
     * ResilienceConfig).
     */
    ResilienceConfig resilience;
};

/**
 * Analysis-side parameters: how raw mismatch records are turned
 * into the paper's criticality metrics. Changing any of these only
 * requires re-running analyzeCampaign() over a stored CampaignRaw.
 */
struct AnalysisConfig
{
    /** Relative-error filter threshold in percent (paper: 2). */
    double filterThresholdPct = 2.0;
    /** Locality-classifier thresholds. */
    LocalityParams locality;
    /**
     * Conversion from sensitive-area-weighted event rates to
     * relative FIT in arbitrary units. The same constant is used
     * for every device and code, preserving cross comparisons as in
     * the paper (Section V).
     */
    double fitScaleAu = 5e-6;
};

/**
 * Full campaign parameters: the composition callers hand to
 * runCampaign(), which is simulateCampaign(sim) followed by
 * analyzeCampaign(analysis).
 */
struct CampaignConfig
{
    SimConfig sim;
    AnalysisConfig analysis;
};

} // namespace radcrit

#endif // RADCRIT_CAMPAIGN_CONFIG_HH
