#include "campaign/runner.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>

#include "campaign/engine.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "exec/chaos.hh"
#include "exec/pool.hh"
#include "logs/beamlog.hh"
#include "metrics/relative_error.hh"
#include "obs/timeline.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"
#include "sim/sampler.hh"

namespace radcrit
{

namespace
{

/**
 * Publish one pool dispatch's utilization accounting into a
 * registry under "pool.*". These are execution-shape telemetry
 * (they depend on the worker count and on timing), so they go to
 * the global registry only — never into a campaign's own stats
 * snapshot, which must stay identical across --jobs values.
 */
void
publishPoolStats(const PoolRunStats &ps, StatsRegistry &reg)
{
    reg.counter("pool.dispatches").inc();
    reg.counter("pool.busy.ns").inc(ps.busyNs());
    reg.counter("pool.idle.ns").inc(ps.idleNs());
    reg.counter("pool.wall.ns").inc(ps.wallNs);
    reg.gauge("pool.utilization").set(ps.utilization());
    LogHistogram &chunk_items = reg.histogram("pool.chunk_items");
    for (size_t w = 0; w < ps.workers.size(); ++w) {
        chunk_items.add(
            static_cast<double>(ps.workers[w].items));
        reg.counter("pool.worker." + std::to_string(w) + ".runs")
            .inc(ps.workers[w].items);
    }
}

/**
 * Per-worker telemetry shard: a private registry plus cached
 * instrument handles, so workers never contend on the campaign
 * counters. Shards are merged into the campaign registry in worker
 * order after the pool drains, which keeps the aggregate independent
 * of execution interleaving.
 */
struct StatsShard
{
    StatsShard(const std::string &prefix)
    {
        for (size_t o = 0; o < numOutcomes; ++o) {
            outcome[o] = &reg.counter(
                prefix + "." +
                statToken(outcomeName(static_cast<Outcome>(o))));
        }
        runs = &reg.counter(prefix + ".runs");
        incorrect = &reg.histogram(prefix + ".incorrect_elements");
    }

    StatsRegistry reg;
    std::array<Counter *, numOutcomes> outcome{};
    Counter *runs = nullptr;
    LogHistogram *incorrect = nullptr;
    PhaseTimer sample{reg, "campaign.phase.sample"};
    PhaseTimer classify{reg, "campaign.phase.classify"};
    PhaseTimer replay{reg, "campaign.phase.replay"};
};

} // anonymous namespace

uint64_t
CampaignResult::count(Outcome outcome) const
{
    uint64_t n = 0;
    for (const auto &run : runs) {
        if (run.outcome == outcome)
            ++n;
    }
    return n;
}

double
CampaignResult::sdcOverDetectable() const
{
    uint64_t detectable = count(Outcome::Crash) +
        count(Outcome::Hang);
    if (detectable == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return static_cast<double>(count(Outcome::Sdc)) /
        static_cast<double>(detectable);
}

double
CampaignResult::fitAu(uint64_t event_count) const
{
    if (runs.empty())
        return 0.0;
    double rate = static_cast<double>(event_count) /
        static_cast<double>(runs.size());
    return sensitiveAreaAu * config.analysis.fitScaleAu * rate;
}

double
CampaignResult::fitTotalAu(bool filtered) const
{
    uint64_t events = 0;
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        if (filtered && run.crit.executionFiltered)
            continue;
        ++events;
    }
    return fitAu(events);
}

FitBreakdown
CampaignResult::fitByPattern(bool filtered) const
{
    FitBreakdown bd;
    double per_run = fitAu(1);
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        if (filtered) {
            if (run.crit.executionFiltered)
                continue;
            bd.add(run.crit.patternFiltered, per_run);
        } else {
            bd.add(run.crit.pattern, per_run);
        }
    }
    return bd;
}

double
CampaignResult::filteredOutFraction() const
{
    uint64_t sdc = 0;
    uint64_t removed = 0;
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        ++sdc;
        if (run.crit.executionFiltered)
            ++removed;
    }
    if (sdc == 0)
        return 0.0;
    return static_cast<double>(removed) /
        static_cast<double>(sdc);
}

CampaignRaw
simulateCampaign(const DeviceModel &device, Workload &workload,
                 const SimConfig &config)
{
    WorkerPool pool(config.jobs);
    return simulateCampaign(device, workload, config, pool);
}

CampaignRaw
simulateCampaign(const DeviceModel &device, Workload &workload,
                 const SimConfig &config, WorkerPool &pool)
{
    if (config.faultyRuns == 0)
        fatal("campaign needs at least one run");

    CampaignRaw raw;
    raw.deviceName = device.name;
    raw.workloadName = workload.name();
    raw.inputLabel = workload.inputLabel();
    raw.sim = config;
    raw.launch = buildLaunch(device, workload.traits());

    StrikeSampler sampler(device, raw.launch);
    raw.sensitiveAreaAu = sampler.totalWeight();

    // --- Resume. Complete records recovered from the checkpoint
    // shard are placed by index and never re-simulated; everything
    // else (including a torn trailing record) is simulated as
    // usual. Because run i is always derived from runRng(config, i)
    // and serialized with %.17g, the resumed campaign is
    // bit-identical to an uninterrupted one.
    const ResilienceConfig &rz = config.resilience;
    if (rz.resume && rz.checkpointPath.empty())
        fatal("resume needs a checkpoint path");

    raw.runs.resize(config.faultyRuns);
    std::vector<char> prefilled(config.faultyRuns, 0);
    uint64_t resumed = 0;
    CheckpointRecovery recovery;
    if (rz.resume) {
        recovery = readCheckpointShards(rz.checkpointPath, raw);
        for (RawRun &run : recovery.runs) {
            if (run.index >= config.faultyRuns ||
                prefilled[run.index])
                continue;
            prefilled[run.index] = 1;
            raw.runs[run.index] = std::move(run);
            ++resumed;
        }
        if (recovery.found)
            inform("campaign %s/%s %s: resumed %llu/%llu run(s) "
                   "from '%s'",
                   raw.deviceName.c_str(),
                   raw.workloadName.c_str(),
                   raw.inputLabel.c_str(),
                   static_cast<unsigned long long>(resumed),
                   static_cast<unsigned long long>(
                       config.faultyRuns),
                   rz.checkpointPath.c_str());
    }

    std::vector<uint64_t> pending;
    pending.reserve(config.faultyRuns - resumed);
    for (uint64_t i = 0; i < config.faultyRuns; ++i) {
        if (!prefilled[i])
            pending.push_back(i);
    }

    // --- Telemetry. Workers write campaign counters into private
    // shards; kernel instruments (PhaseTimer members of workloads
    // and their clones) land directly in the global registry, whose
    // instruments are thread-safe. The shards plus the global
    // kernel-side diff are folded into a campaign-local registry, so
    // raw.stats carries the same content the old fused runner did
    // for the simulation phases.
    StatsRegistry &global = StatsRegistry::global();
    StatsSnapshot globalBefore = global.snapshot();
    StatsRegistry campaignReg;
    std::string prefix =
        campaignStatsPrefix(device.name, workload.name());
    campaignReg.gauge(prefix + ".sensitive_area_au")
        .set(raw.sensitiveAreaAu);
    campaignReg.gauge(prefix + ".occupancy")
        .set(raw.launch.occupancy);
    PhaseTimer campaignTimer(campaignReg, "campaign.total");
    auto campaign_start = std::chrono::steady_clock::now();

    if (resumed > 0) {
        // The killed process's shards counted the resumed runs
        // before it died; rebuild their share here (index order)
        // so the final snapshot matches an uninterrupted
        // campaign's, and record the resume itself.
        Counter &runsCounter = campaignReg.counter(prefix +
                                                   ".runs");
        LogHistogram &incorrect =
            campaignReg.histogram(prefix + ".incorrect_elements");
        for (uint64_t i = 0; i < config.faultyRuns; ++i) {
            if (!prefilled[i])
                continue;
            const RawRun &run = raw.runs[i];
            runsCounter.inc();
            campaignReg
                .counter(prefix + "." +
                         statToken(outcomeName(run.outcome)))
                .inc();
            if (run.outcome == Outcome::Sdc) {
                incorrect.add(static_cast<double>(
                    run.record.numIncorrect()));
            }
        }
        campaignReg.counter("resilience.resumed_runs")
            .inc(resumed);
    }

    unsigned workers = static_cast<unsigned>(std::min<uint64_t>(
        pool.jobs(), pending.size()));

    if (config.progressEvery > 0)
        inform("campaign %s: %s (%u worker%s)",
               device.name.c_str(),
               describeLaunch(raw.launch).c_str(), workers,
               workers == 1 ? "" : "s");

    std::vector<std::unique_ptr<StatsShard>> shards;
    shards.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        shards.push_back(std::make_unique<StatsShard>(prefix));

    std::atomic<uint64_t> completed{resumed};

    // --- Resilience plumbing. A run attempt that throws (only
    // harness faults do: workloads replay strikes and restore) or
    // overruns the soft deadline is retried with backoff; a run
    // that fails every attempt is quarantined as a first-class
    // infra outcome instead of killing the campaign. The watchdog
    // warns live about runs stuck past the deadline, and the
    // checkpoint writer appends each completed run so a killed
    // campaign can resume.
    RetryPolicy retryPolicy;
    retryPolicy.maxAttempts = std::max(rz.maxAttempts, 1u);
    retryPolicy.softDeadlineNs = rz.softDeadlineNs;
    retryPolicy.backoffBaseNs = rz.backoffBaseNs;

    std::optional<Watchdog> watchdog;
    if (rz.softDeadlineNs > 0 && workers > 0)
        watchdog.emplace(workers, rz.softDeadlineNs);

    std::optional<CheckpointWriter> checkpoint;
    if (!rz.checkpointPath.empty())
        checkpoint.emplace(rz.checkpointPath, raw,
                           rz.resume ? recovery.validBytes : 0,
                           rz.checkpointEvery);

    // Flight recorder: the control flow records on lane 0, worker w
    // on lane w+1. Recording only observes — with the recorder
    // detached nothing below changes, and runs/CSV/stats stay
    // bit-identical either way.
    Timeline *tl = timeline();
    uint64_t simulate_begin = tl ? tl->nowNs() : 0;

    PoolRunStats poolStats;
    pool.forChunks(pending.size(), [&](unsigned worker,
                                       uint64_t begin,
                                       uint64_t end) {
        StatsShard &shard = *shards[worker];
        RunPhaseTimers timers;
        timers.sample = &shard.sample;
        timers.classify = &shard.classify;
        timers.replay = &shard.replay;

        TimelineLane *lane = tl
            ? &tl->lane(worker + 1,
                        "worker " + std::to_string(worker))
            : nullptr;

        // Worker 0 runs on the caller thread and reuses the caller's
        // workload; the others replay strikes on private clones.
        std::unique_ptr<Workload> local;
        if (worker != 0)
            local = workload.clone();
        Workload &wl = local ? *local : workload;

        for (uint64_t p = begin; p < end; ++p) {
            uint64_t i = pending[p];
            uint64_t span_begin = lane ? tl->nowNs() : 0;
            auto run_start = std::chrono::steady_clock::now();
            RawRun run;
            if (watchdog)
                watchdog->beginItem(worker, i);
            GuardReport guard = runGuarded(
                retryPolicy, [&](unsigned attempt) {
                    if (ChaosEngine *engine = chaos())
                        engine->onRunAttempt(i, attempt);
                    Rng rng = runRng(config, i);
                    run = simulateRun(sampler, wl, config, i, rng,
                                      timers);
                });
            if (watchdog)
                watchdog->endItem(worker);
            if (guard.status != GuardStatus::Ok) {
                // Quarantine: the run failed its whole attempt
                // budget. It stays in the campaign as an infra
                // outcome (excluded from AVF, visible in every
                // report) instead of killing the other runs.
                run = RawRun{};
                run.index = i;
                run.outcome =
                    guard.status == GuardStatus::Timeout
                    ? Outcome::InfraTimeout
                    : Outcome::InfraError;
                warn("campaign run %llu quarantined after %u "
                     "attempt(s)%s%s",
                     static_cast<unsigned long long>(i),
                     guard.attempts,
                     guard.error.empty() ? "" : ": ",
                     guard.error.c_str());
            }
            run.wallNs = static_cast<uint64_t>(
                std::chrono::duration_cast<
                    std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - run_start)
                    .count());
            if (guard.retries() > 0) {
                shard.reg.counter("resilience.retries")
                    .inc(guard.retries());
            }

            shard.runs->inc();
            shard.outcome[static_cast<size_t>(run.outcome)]->inc();
            if (run.outcome == Outcome::Sdc) {
                shard.incorrect->add(static_cast<double>(
                    run.record.numIncorrect()));
            }

            if (lane) {
                lane->span(
                    "run " + std::to_string(i), "run", span_begin,
                    tl->nowNs() - span_begin,
                    {{"run", std::to_string(i)},
                     {"worker", std::to_string(worker)},
                     {"kernel", raw.workloadName},
                     {"outcome", outcomeName(run.outcome)},
                     {"attempts",
                      std::to_string(guard.attempts)}});
            }

            if (checkpoint)
                checkpoint->append(run);
            raw.runs[i] = std::move(run);

            uint64_t done =
                completed.fetch_add(1, std::memory_order_relaxed) +
                1;
            if (config.progressEvery > 0 &&
                (done % config.progressEvery == 0 ||
                 done == config.faultyRuns)) {
                // Throughput and ETA from the same monotonic clock
                // the campaign timer uses; progress formatting
                // never feeds results or the store's cache key.
                double elapsed_s =
                    std::chrono::duration_cast<
                        std::chrono::duration<double>>(
                        std::chrono::steady_clock::now() -
                        campaign_start)
                        .count();
                double rate = elapsed_s > 0.0
                    ? static_cast<double>(done) / elapsed_s
                    : 0.0;
                double eta_s = rate > 0.0
                    ? static_cast<double>(
                          config.faultyRuns - done) / rate
                    : 0.0;
                inform("campaign %s/%s %s: %llu/%llu runs "
                       "(%.1f runs/s, ETA %.1fs)",
                       raw.deviceName.c_str(),
                       raw.workloadName.c_str(),
                       raw.inputLabel.c_str(),
                       static_cast<unsigned long long>(done),
                       static_cast<unsigned long long>(
                           config.faultyRuns),
                       rate, eta_s);
            }
        }
    }, &poolStats);

    campaignTimer.recordNs(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - campaign_start)
            .count()));

    if (tl) {
        tl->lane(0, "campaign")
            .span("simulate", "campaign", simulate_begin,
                  tl->nowNs() - simulate_begin,
                  {{"device", raw.deviceName},
                   {"workload", raw.workloadName},
                   {"input", raw.inputLabel},
                   {"runs",
                    std::to_string(config.faultyRuns)},
                   {"workers", std::to_string(workers)}});
    }

    // Fold the shards (worker order, so the aggregate is
    // deterministic up to timing values), pick up the kernel-side
    // instruments that advanced in the global registry, and publish
    // the campaign's own contribution back into the global registry
    // so process-wide tallies stay whole. Pool utilization is
    // published after the kernel diff is taken: it describes the
    // execution shape (worker count, chunking), which must never
    // leak into the campaign's own jobs-independent snapshot.
    for (auto &shard : shards)
        campaignReg.merge(shard->reg.snapshot());
    StatsSnapshot kernelDiff =
        global.snapshot().since(globalBefore);
    // Gauges always survive a snapshot diff, so an earlier
    // campaign's "pool.*" telemetry would ride the kernel diff into
    // this campaign's snapshot; strip it — pool accounting is
    // global-only by design. The same goes for the global
    // "resilience.*" telemetry (watchdog flags, chaos fault
    // tallies): it is timing- and process-shaped, while the
    // campaign's own resilience counters (retries, resumed runs)
    // are merged via the shards above and stay deterministic.
    kernelDiff.entries.erase(
        std::remove_if(kernelDiff.entries.begin(),
                       kernelDiff.entries.end(),
                       [](const StatsSnapshot::Entry &e) {
                           return e.name.rfind("pool.", 0) == 0 ||
                               e.name.rfind("resilience.", 0) ==
                                   0;
                       }),
        kernelDiff.entries.end());
    global.merge(campaignReg.snapshot());
    campaignReg.merge(kernelDiff);
    raw.stats = campaignReg.snapshot();
    publishPoolStats(poolStats, global);
    return raw;
}

CampaignResult
analyzeCampaign(const CampaignRaw &raw,
                const AnalysisConfig &config)
{
    CampaignResult result;
    result.deviceName = raw.deviceName;
    result.workloadName = raw.workloadName;
    result.inputLabel = raw.inputLabel;
    result.config.sim = raw.sim;
    result.config.analysis = config;
    result.launch = raw.launch;
    result.sensitiveAreaAu = raw.sensitiveAreaAu;

    std::string prefix =
        campaignStatsPrefix(raw.deviceName, raw.workloadName);
    StatsRegistry analysisReg;
    Counter &filteredCount =
        analysisReg.counter(prefix + ".filtered");
    PhaseTimer metricsTimer(analysisReg,
                            "campaign.phase.metrics");

    TraceSink *sink = traceSink();
    RelativeErrorFilter filter(config.filterThresholdPct);

    Timeline *tl = timeline();
    uint64_t analyze_begin = tl ? tl->nowNs() : 0;

    result.runs.resize(raw.runs.size());
    for (size_t i = 0; i < raw.runs.size(); ++i) {
        const RawRun &in = raw.runs[i];
        RunRecord &out = result.runs[i];
        out.index = in.index;
        out.strike = in.strike;
        out.outcome = in.outcome;
        if (in.outcome == Outcome::Sdc) {
            ScopedTick tick(metricsTimer);
            out.crit = analyzeCriticality(in.record, filter,
                                          config.locality);
            if (out.crit.executionFiltered)
                filteredCount.inc();
        }

        if (sink) {
            StrikeTraceRecord rec;
            rec.run = in.index;
            rec.device = result.deviceName;
            rec.workload = result.workloadName;
            rec.input = result.inputLabel;
            rec.resource = in.strike.resource;
            rec.manifestation = in.strike.manifestation;
            rec.timeFraction = in.strike.timeFraction;
            rec.burstBits = in.strike.burstBits;
            rec.outcome = in.outcome;
            rec.numIncorrect = out.crit.numIncorrect;
            rec.meanRelErrPct = out.crit.meanRelErrPct;
            rec.pattern = out.crit.pattern;
            rec.executionFiltered = out.crit.executionFiltered;
            rec.wallNs = in.wallNs;
            sink->strike(rec);
        }
    }

    if (tl) {
        tl->lane(0, "campaign")
            .span("analyze", "campaign", analyze_begin,
                  tl->nowNs() - analyze_begin,
                  {{"device", result.deviceName},
                   {"workload", result.workloadName},
                   {"runs",
                    std::to_string(result.runs.size())}});
    }

    // result.stats is the union of the simulation-side telemetry
    // carried by the raw campaign and this analysis pass; the
    // analysis share is also published globally so process-wide
    // tallies stay whole.
    StatsSnapshot analysisSnap = analysisReg.snapshot();
    StatsRegistry::global().merge(analysisSnap);
    StatsRegistry combined;
    combined.merge(raw.stats);
    combined.merge(analysisSnap);
    result.stats = combined.snapshot();
    return result;
}

CampaignResult
runCampaign(const DeviceModel &device, Workload &workload,
            const CampaignConfig &config)
{
    CampaignRaw raw = simulateCampaign(device, workload,
                                       config.sim);
    return analyzeCampaign(raw, config.analysis);
}

} // namespace radcrit
