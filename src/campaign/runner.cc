#include "campaign/runner.hh"

#include <array>
#include <cctype>
#include <chrono>

#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"
#include "sim/sampler.hh"

namespace radcrit
{

namespace
{

/** Lowercase a label for use in a hierarchical stat name. */
std::string
statToken(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (char c : label)
        out += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // anonymous namespace

uint64_t
CampaignResult::count(Outcome outcome) const
{
    uint64_t n = 0;
    for (const auto &run : runs) {
        if (run.outcome == outcome)
            ++n;
    }
    return n;
}

double
CampaignResult::sdcOverDetectable() const
{
    uint64_t detectable = count(Outcome::Crash) +
        count(Outcome::Hang);
    if (detectable == 0)
        return static_cast<double>(count(Outcome::Sdc));
    return static_cast<double>(count(Outcome::Sdc)) /
        static_cast<double>(detectable);
}

double
CampaignResult::fitAu(uint64_t event_count) const
{
    if (runs.empty())
        return 0.0;
    double rate = static_cast<double>(event_count) /
        static_cast<double>(runs.size());
    return sensitiveAreaAu * config.fitScaleAu * rate;
}

double
CampaignResult::fitTotalAu(bool filtered) const
{
    uint64_t events = 0;
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        if (filtered && run.crit.executionFiltered)
            continue;
        ++events;
    }
    return fitAu(events);
}

FitBreakdown
CampaignResult::fitByPattern(bool filtered) const
{
    FitBreakdown bd;
    double per_run = fitAu(1);
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        if (filtered) {
            if (run.crit.executionFiltered)
                continue;
            bd.add(run.crit.patternFiltered, per_run);
        } else {
            bd.add(run.crit.pattern, per_run);
        }
    }
    return bd;
}

double
CampaignResult::filteredOutFraction() const
{
    uint64_t sdc = 0;
    uint64_t removed = 0;
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        ++sdc;
        if (run.crit.executionFiltered)
            ++removed;
    }
    if (sdc == 0)
        return 0.0;
    return static_cast<double>(removed) /
        static_cast<double>(sdc);
}

CampaignResult
runCampaign(const DeviceModel &device, Workload &workload,
            const CampaignConfig &config)
{
    if (config.faultyRuns == 0)
        fatal("campaign needs at least one run");

    CampaignResult result;
    result.deviceName = device.name;
    result.workloadName = workload.name();
    result.inputLabel = workload.inputLabel();
    result.config = config;
    result.launch = buildLaunch(device, workload.traits());

    StrikeSampler sampler(device, result.launch);
    result.sensitiveAreaAu = sampler.totalWeight();

    // --- Telemetry: counters under campaign.<device>.<workload>,
    // shared phase timers, and the optional per-strike trace. The
    // campaign's own contribution is separated out at the end by
    // diffing the registry against this snapshot.
    StatsRegistry &reg = StatsRegistry::global();
    StatsSnapshot before = reg.snapshot();
    std::string prefix = "campaign." + statToken(device.name) +
        "." + statToken(workload.name());
    std::array<Counter *, numOutcomes> outcomeCounters{};
    for (size_t o = 0; o < numOutcomes; ++o) {
        outcomeCounters[o] = &reg.counter(
            prefix + "." +
            statToken(outcomeName(static_cast<Outcome>(o))));
    }
    Counter &runsCounter = reg.counter(prefix + ".runs");
    Counter &filteredCounter = reg.counter(prefix + ".filtered");
    reg.gauge(prefix + ".sensitive_area_au")
        .set(result.sensitiveAreaAu);
    reg.gauge(prefix + ".occupancy").set(result.launch.occupancy);
    LogHistogram &incorrectHist =
        reg.histogram(prefix + ".incorrect_elements");
    PhaseTimer sampleTimer(reg, "campaign.phase.sample");
    PhaseTimer classifyTimer(reg, "campaign.phase.classify");
    PhaseTimer replayTimer(reg, "campaign.phase.replay");
    PhaseTimer metricsTimer(reg, "campaign.phase.metrics");
    PhaseTimer campaignTimer(reg, "campaign.total");
    auto campaign_start = std::chrono::steady_clock::now();
    TraceSink *sink = traceSink();

    if (config.progressEvery > 0)
        inform("campaign %s: %s", device.name.c_str(),
               describeLaunch(result.launch).c_str());

    RelativeErrorFilter filter(config.filterThresholdPct);
    Rng rng(config.seed);
    result.runs.reserve(config.faultyRuns);

    for (uint64_t i = 0; i < config.faultyRuns; ++i) {
        auto run_start = std::chrono::steady_clock::now();
        RunRecord run;
        {
            ScopedTick tick(sampleTimer);
            run.strike = sampler.sampleStrike(rng);
        }
        {
            ScopedTick tick(classifyTimer);
            run.outcome =
                sampler.sampleOutcome(run.strike.resource, rng);
        }
        if (run.outcome == Outcome::Sdc) {
            SdcRecord record;
            {
                ScopedTick tick(replayTimer);
                record = workload.inject(run.strike, rng);
            }
            if (record.empty()) {
                // The corruption was digested without an output
                // mismatch: architecturally masked.
                run.outcome = Outcome::Masked;
            } else {
                ScopedTick tick(metricsTimer);
                run.crit = analyzeCriticality(record, filter,
                                              config.locality);
            }
        }

        runsCounter.inc();
        outcomeCounters[static_cast<size_t>(run.outcome)]->inc();
        if (run.outcome == Outcome::Sdc) {
            incorrectHist.add(
                static_cast<double>(run.crit.numIncorrect));
            if (run.crit.executionFiltered)
                filteredCounter.inc();
        }

        if (sink) {
            StrikeTraceRecord rec;
            rec.run = i;
            rec.device = result.deviceName;
            rec.workload = result.workloadName;
            rec.input = result.inputLabel;
            rec.resource = run.strike.resource;
            rec.manifestation = run.strike.manifestation;
            rec.timeFraction = run.strike.timeFraction;
            rec.burstBits = run.strike.burstBits;
            rec.outcome = run.outcome;
            rec.numIncorrect = run.crit.numIncorrect;
            rec.meanRelErrPct = run.crit.meanRelErrPct;
            rec.pattern = run.crit.pattern;
            rec.executionFiltered = run.crit.executionFiltered;
            rec.wallNs = static_cast<uint64_t>(
                std::chrono::duration_cast<
                    std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - run_start)
                    .count());
            sink->strike(rec);
        }

        if (config.progressEvery > 0 &&
            ((i + 1) % config.progressEvery == 0 ||
             i + 1 == config.faultyRuns)) {
            inform("campaign %s/%s %s: %llu/%llu runs",
                   result.deviceName.c_str(),
                   result.workloadName.c_str(),
                   result.inputLabel.c_str(),
                   static_cast<unsigned long long>(i + 1),
                   static_cast<unsigned long long>(
                       config.faultyRuns));
        }

        result.runs.push_back(std::move(run));
    }
    campaignTimer.recordNs(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - campaign_start)
            .count()));
    result.stats = reg.snapshot().since(before);
    return result;
}

} // namespace radcrit
