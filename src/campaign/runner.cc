#include "campaign/runner.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/sampler.hh"

namespace radcrit
{

uint64_t
CampaignResult::count(Outcome outcome) const
{
    uint64_t n = 0;
    for (const auto &run : runs) {
        if (run.outcome == outcome)
            ++n;
    }
    return n;
}

double
CampaignResult::sdcOverDetectable() const
{
    uint64_t detectable = count(Outcome::Crash) +
        count(Outcome::Hang);
    if (detectable == 0)
        return static_cast<double>(count(Outcome::Sdc));
    return static_cast<double>(count(Outcome::Sdc)) /
        static_cast<double>(detectable);
}

double
CampaignResult::fitAu(uint64_t event_count) const
{
    if (runs.empty())
        return 0.0;
    double rate = static_cast<double>(event_count) /
        static_cast<double>(runs.size());
    return sensitiveAreaAu * config.fitScaleAu * rate;
}

double
CampaignResult::fitTotalAu(bool filtered) const
{
    uint64_t events = 0;
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        if (filtered && run.crit.executionFiltered)
            continue;
        ++events;
    }
    return fitAu(events);
}

FitBreakdown
CampaignResult::fitByPattern(bool filtered) const
{
    FitBreakdown bd;
    double per_run = fitAu(1);
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        if (filtered) {
            if (run.crit.executionFiltered)
                continue;
            bd.add(run.crit.patternFiltered, per_run);
        } else {
            bd.add(run.crit.pattern, per_run);
        }
    }
    return bd;
}

double
CampaignResult::filteredOutFraction() const
{
    uint64_t sdc = 0;
    uint64_t removed = 0;
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        ++sdc;
        if (run.crit.executionFiltered)
            ++removed;
    }
    if (sdc == 0)
        return 0.0;
    return static_cast<double>(removed) /
        static_cast<double>(sdc);
}

CampaignResult
runCampaign(const DeviceModel &device, Workload &workload,
            const CampaignConfig &config)
{
    if (config.faultyRuns == 0)
        fatal("campaign needs at least one run");

    CampaignResult result;
    result.deviceName = device.name;
    result.workloadName = workload.name();
    result.inputLabel = workload.inputLabel();
    result.config = config;
    result.launch = buildLaunch(device, workload.traits());

    StrikeSampler sampler(device, result.launch);
    result.sensitiveAreaAu = sampler.totalWeight();

    RelativeErrorFilter filter(config.filterThresholdPct);
    Rng rng(config.seed);
    result.runs.reserve(config.faultyRuns);

    for (uint64_t i = 0; i < config.faultyRuns; ++i) {
        RunRecord run;
        run.strike = sampler.sampleStrike(rng);
        run.outcome = sampler.sampleOutcome(run.strike.resource,
                                            rng);
        if (run.outcome == Outcome::Sdc) {
            SdcRecord record = workload.inject(run.strike, rng);
            if (record.empty()) {
                // The corruption was digested without an output
                // mismatch: architecturally masked.
                run.outcome = Outcome::Masked;
            } else {
                run.crit = analyzeCriticality(record, filter,
                                              config.locality);
            }
        }
        result.runs.push_back(std::move(run));
    }
    return result;
}

} // namespace radcrit
