#include "campaign/runner.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <optional>

#include "campaign/analysis.hh"
#include "campaign/engine.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "exec/chaos.hh"
#include "exec/pool.hh"
#include "logs/beamlog.hh"
#include "metrics/relative_error.hh"
#include "obs/procmem.hh"
#include "obs/timeline.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"
#include "sim/sampler.hh"

namespace radcrit
{

namespace
{

/**
 * Per-worker telemetry shard: a private registry plus cached
 * instrument handles, so workers never contend on the campaign
 * counters. Shards are merged into the campaign registry in worker
 * order after the pool drains, which keeps the aggregate independent
 * of execution interleaving.
 */
struct StatsShard
{
    StatsShard(const std::string &prefix)
    {
        for (size_t o = 0; o < numOutcomes; ++o) {
            outcome[o] = &reg.counter(
                prefix + "." +
                statToken(outcomeName(static_cast<Outcome>(o))));
        }
        runs = &reg.counter(prefix + ".runs");
        incorrect = &reg.histogram(prefix + ".incorrect_elements");
    }

    StatsRegistry reg;
    std::array<Counter *, numOutcomes> outcome{};
    Counter *runs = nullptr;
    LogHistogram *incorrect = nullptr;
    PhaseTimer sample{reg, "campaign.phase.sample"};
    PhaseTimer classify{reg, "campaign.phase.classify"};
    PhaseTimer replay{reg, "campaign.phase.replay"};
};

/** CampaignRaw shell carrying only a campaign's identity, for the
 * checkpoint header/recovery machinery (which never reads runs). */
CampaignRaw
identityShell(const CampaignMeta &meta)
{
    CampaignRaw ident;
    ident.deviceName = meta.deviceName;
    ident.workloadName = meta.workloadName;
    ident.inputLabel = meta.inputLabel;
    ident.sim = meta.sim;
    ident.launch = meta.launch;
    ident.sensitiveAreaAu = meta.sensitiveAreaAu;
    return ident;
}

} // anonymous namespace

uint64_t
CampaignResult::count(Outcome outcome) const
{
    uint64_t n = 0;
    for (const auto &run : runs) {
        if (run.outcome == outcome)
            ++n;
    }
    return n;
}

double
CampaignResult::sdcOverDetectable() const
{
    uint64_t detectable = count(Outcome::Crash) +
        count(Outcome::Hang);
    if (detectable == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return static_cast<double>(count(Outcome::Sdc)) /
        static_cast<double>(detectable);
}

double
CampaignResult::fitAu(uint64_t event_count) const
{
    if (runs.empty())
        return 0.0;
    double rate = static_cast<double>(event_count) /
        static_cast<double>(runs.size());
    return sensitiveAreaAu * config.analysis.fitScaleAu * rate;
}

double
CampaignResult::fitTotalAu(bool filtered) const
{
    uint64_t events = 0;
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        if (filtered && run.crit.executionFiltered)
            continue;
        ++events;
    }
    return fitAu(events);
}

FitBreakdown
CampaignResult::fitByPattern(bool filtered) const
{
    FitBreakdown bd;
    double per_run = fitAu(1);
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        if (filtered) {
            if (run.crit.executionFiltered)
                continue;
            bd.add(run.crit.patternFiltered, per_run);
        } else {
            bd.add(run.crit.pattern, per_run);
        }
    }
    return bd;
}

double
CampaignResult::filteredOutFraction() const
{
    uint64_t sdc = 0;
    uint64_t removed = 0;
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        ++sdc;
        if (run.crit.executionFiltered)
            ++removed;
    }
    if (sdc == 0)
        return 0.0;
    return static_cast<double>(removed) /
        static_cast<double>(sdc);
}

void
simulateCampaignStream(const DeviceModel &device,
                       Workload &workload,
                       const SimConfig &config, RawSink &sink)
{
    WorkerPool pool(config.jobs);
    simulateCampaignStream(device, workload, config, pool, sink);
}

void
simulateCampaignStream(const DeviceModel &device,
                       Workload &workload,
                       const SimConfig &config, WorkerPool &pool,
                       RawSink &sink)
{
    if (config.faultyRuns == 0)
        fatal("campaign needs at least one run");

    CampaignMeta meta;
    meta.deviceName = device.name;
    meta.workloadName = workload.name();
    meta.inputLabel = workload.inputLabel();
    meta.sim = config;
    meta.launch = buildLaunch(device, workload.traits());

    StrikeSampler sampler(device, meta.launch);
    meta.sensitiveAreaAu = sampler.totalWeight();

    // --- Resume. Complete records recovered from the checkpoint
    // shard are held by index and replayed into their batch instead
    // of re-simulated; everything else (including a torn trailing
    // record) is simulated as usual. Because run i is always derived
    // from runRng(config, i) and serialized with %.17g, the resumed
    // campaign is bit-identical to an uninterrupted one.
    const ResilienceConfig &rz = config.resilience;
    if (rz.resume && rz.checkpointPath.empty())
        fatal("resume needs a checkpoint path");

    CampaignRaw ident = identityShell(meta);
    std::map<uint64_t, RawRun> recovered;
    uint64_t resumed = 0;
    CheckpointRecovery recovery;
    if (rz.resume) {
        recovery = readCheckpointShards(rz.checkpointPath, ident);
        for (RawRun &run : recovery.runs) {
            if (run.index >= config.faultyRuns ||
                recovered.count(run.index))
                continue;
            recovered.emplace(run.index, std::move(run));
            ++resumed;
        }
        if (recovery.found)
            inform("campaign %s/%s %s: resumed %llu/%llu run(s) "
                   "from '%s'",
                   meta.deviceName.c_str(),
                   meta.workloadName.c_str(),
                   meta.inputLabel.c_str(),
                   static_cast<unsigned long long>(resumed),
                   static_cast<unsigned long long>(
                       config.faultyRuns),
                   rz.checkpointPath.c_str());
    }

    uint64_t totalPending = config.faultyRuns - resumed;

    sink.begin(meta);

    // --- Telemetry. Workers write campaign counters into private
    // shards; kernel instruments (PhaseTimer members of workloads
    // and their clones) land directly in the global registry, whose
    // instruments are thread-safe. The shards plus the global
    // kernel-side diff are folded into a campaign-local registry, so
    // the snapshot handed to sink.end() carries the same content the
    // old fused runner did for the simulation phases.
    StatsRegistry &global = StatsRegistry::global();
    StatsSnapshot globalBefore = global.snapshot();
    StatsRegistry campaignReg;
    std::string prefix =
        campaignStatsPrefix(device.name, workload.name());
    campaignReg.gauge(prefix + ".sensitive_area_au")
        .set(meta.sensitiveAreaAu);
    campaignReg.gauge(prefix + ".occupancy")
        .set(meta.launch.occupancy);
    PhaseTimer campaignTimer(campaignReg, "campaign.total");
    auto campaign_start = std::chrono::steady_clock::now();

    if (resumed > 0) {
        // The killed process's shards counted the resumed runs
        // before it died; rebuild their share here (index order)
        // so the final snapshot matches an uninterrupted
        // campaign's, and record the resume itself.
        Counter &runsCounter = campaignReg.counter(prefix +
                                                   ".runs");
        LogHistogram &incorrect =
            campaignReg.histogram(prefix + ".incorrect_elements");
        for (const auto &entry : recovered) {
            const RawRun &run = entry.second;
            runsCounter.inc();
            campaignReg
                .counter(prefix + "." +
                         statToken(outcomeName(run.outcome)))
                .inc();
            if (run.outcome == Outcome::Sdc) {
                incorrect.add(static_cast<double>(
                    run.record.numIncorrect()));
            }
        }
        campaignReg.counter("resilience.resumed_runs")
            .inc(resumed);
    }

    unsigned workers = static_cast<unsigned>(std::min<uint64_t>(
        pool.jobs(), totalPending));

    if (config.progressEvery > 0)
        inform("campaign %s: %s (%u worker%s)",
               device.name.c_str(),
               describeLaunch(meta.launch).c_str(), workers,
               workers == 1 ? "" : "s");

    std::vector<std::unique_ptr<StatsShard>> shards;
    shards.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        shards.push_back(std::make_unique<StatsShard>(prefix));

    // Per-worker workload clones, taken here on the caller thread
    // while nothing is replaying: cloning inside the worker body
    // races against worker 0, which replays strikes on (and
    // temporarily corrupts) the caller's workload that the clone
    // copies from. Worker 0 keeps the caller's instance; cloning
    // once per campaign also keeps small streamed batches from
    // paying a clone per batch.
    std::vector<std::unique_ptr<Workload>> clones(workers);
    for (unsigned w = 1; w < workers; ++w)
        clones[w] = workload.clone();

    std::atomic<uint64_t> completed{resumed};

    // --- Resilience plumbing. A run attempt that throws (only
    // harness faults do: workloads replay strikes and restore) or
    // overruns the soft deadline is retried with backoff; a run
    // that fails every attempt is quarantined as a first-class
    // infra outcome instead of killing the campaign. The watchdog
    // warns live about runs stuck past the deadline, and the
    // checkpoint writer appends each completed run so a killed
    // campaign can resume.
    RetryPolicy retryPolicy;
    retryPolicy.maxAttempts = std::max(rz.maxAttempts, 1u);
    retryPolicy.softDeadlineNs = rz.softDeadlineNs;
    retryPolicy.backoffBaseNs = rz.backoffBaseNs;

    std::optional<Watchdog> watchdog;
    if (rz.softDeadlineNs > 0 && workers > 0)
        watchdog.emplace(workers, rz.softDeadlineNs);

    std::optional<CheckpointWriter> checkpoint;
    if (!rz.checkpointPath.empty())
        checkpoint.emplace(rz.checkpointPath, ident,
                           rz.resume ? recovery.validBytes : 0,
                           rz.checkpointEvery);

    // Flight recorder: the control flow records on lane 0, worker w
    // on lane w+1. Recording only observes — with the recorder
    // detached nothing below changes, and runs/CSV/stats stay
    // bit-identical either way.
    Timeline *tl = timeline();
    uint64_t simulate_begin = tl ? tl->nowNs() : 0;

    // --- Batched dispatch. Each batch covers a contiguous index
    // slice; within it, runs not replayed from the checkpoint are
    // dispatched over the pool, and the completed batch is handed
    // to the sink before the next one starts, so a streaming sink
    // overlaps analysis/persistence with the rest of the
    // simulation. batchRuns == 0 delivers the campaign as one
    // batch — the exact legacy dispatch shape.
    uint64_t batchRuns = config.batchRuns == 0
        ? config.faultyRuns
        : std::min(config.batchRuns, config.faultyRuns);
    PoolRunStats poolStats;
    uint64_t batches = 0;
    for (uint64_t first = 0; first < config.faultyRuns;
         first += batchRuns) {
        uint64_t count =
            std::min(batchRuns, config.faultyRuns - first);
        RunBatch batch;
        batch.firstIndex = first;
        batch.runs.resize(count);

        std::vector<uint64_t> pending;
        pending.reserve(count);
        for (uint64_t i = first; i < first + count; ++i) {
            auto it = recovered.find(i);
            if (it != recovered.end()) {
                batch.runs[i - first] = std::move(it->second);
                recovered.erase(it);
            } else {
                pending.push_back(i);
            }
        }

        PoolRunStats batchStats;
        pool.forChunks(pending.size(), [&](unsigned worker,
                                           uint64_t begin,
                                           uint64_t end) {
            StatsShard &shard = *shards[worker];
            RunPhaseTimers timers;
            timers.sample = &shard.sample;
            timers.classify = &shard.classify;
            timers.replay = &shard.replay;

            TimelineLane *lane = tl
                ? &tl->lane(worker + 1,
                            "worker " + std::to_string(worker))
                : nullptr;

            // Worker 0 runs on the caller thread and reuses the
            // caller's workload; the others replay strikes on the
            // private clones taken before dispatch.
            Workload &wl =
                worker == 0 ? workload : *clones[worker];

            for (uint64_t p = begin; p < end; ++p) {
                uint64_t i = pending[p];
                uint64_t span_begin = lane ? tl->nowNs() : 0;
                auto run_start = std::chrono::steady_clock::now();
                RawRun run;
                if (watchdog)
                    watchdog->beginItem(worker, i);
                GuardReport guard = runGuarded(
                    retryPolicy, [&](unsigned attempt) {
                        if (ChaosEngine *engine = chaos())
                            engine->onRunAttempt(i, attempt);
                        Rng rng = runRng(config, i);
                        run = simulateRun(sampler, wl, config, i,
                                          rng, timers);
                    });
                if (watchdog)
                    watchdog->endItem(worker);
                if (guard.status != GuardStatus::Ok) {
                    // Quarantine: the run failed its whole attempt
                    // budget. It stays in the campaign as an infra
                    // outcome (excluded from AVF, visible in every
                    // report) instead of killing the other runs.
                    run = RawRun{};
                    run.index = i;
                    run.outcome =
                        guard.status == GuardStatus::Timeout
                        ? Outcome::InfraTimeout
                        : Outcome::InfraError;
                    warn("campaign run %llu quarantined after %u "
                         "attempt(s)%s%s",
                         static_cast<unsigned long long>(i),
                         guard.attempts,
                         guard.error.empty() ? "" : ": ",
                         guard.error.c_str());
                }
                run.wallNs = static_cast<uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() -
                        run_start)
                        .count());
                if (guard.retries() > 0) {
                    shard.reg.counter("resilience.retries")
                        .inc(guard.retries());
                }

                shard.runs->inc();
                shard.outcome[static_cast<size_t>(run.outcome)]
                    ->inc();
                if (run.outcome == Outcome::Sdc) {
                    shard.incorrect->add(static_cast<double>(
                        run.record.numIncorrect()));
                }

                if (lane) {
                    lane->span(
                        "run " + std::to_string(i), "run",
                        span_begin, tl->nowNs() - span_begin,
                        {{"run", std::to_string(i)},
                         {"worker", std::to_string(worker)},
                         {"kernel", meta.workloadName},
                         {"outcome", outcomeName(run.outcome)},
                         {"attempts",
                          std::to_string(guard.attempts)}});
                }

                if (checkpoint)
                    checkpoint->append(run);
                batch.runs[i - first] = std::move(run);

                uint64_t done =
                    completed.fetch_add(
                        1, std::memory_order_relaxed) +
                    1;
                if (config.progressEvery > 0 &&
                    (done % config.progressEvery == 0 ||
                     done == config.faultyRuns)) {
                    // Throughput and ETA from the same monotonic
                    // clock the campaign timer uses; progress
                    // formatting never feeds results or the
                    // store's cache key.
                    double elapsed_s =
                        std::chrono::duration_cast<
                            std::chrono::duration<double>>(
                            std::chrono::steady_clock::now() -
                            campaign_start)
                            .count();
                    double rate = elapsed_s > 0.0
                        ? static_cast<double>(done) / elapsed_s
                        : 0.0;
                    double eta_s = rate > 0.0
                        ? static_cast<double>(
                              config.faultyRuns - done) / rate
                        : 0.0;
                    inform("campaign %s/%s %s: %llu/%llu runs "
                           "(%.1f runs/s, ETA %.1fs)",
                           meta.deviceName.c_str(),
                           meta.workloadName.c_str(),
                           meta.inputLabel.c_str(),
                           static_cast<unsigned long long>(done),
                           static_cast<unsigned long long>(
                               config.faultyRuns),
                           rate, eta_s);
                }
            }
        }, &batchStats);
        poolStats.absorb(batchStats);
        ++batches;
        sink.consume(std::move(batch));
    }

    campaignTimer.recordNs(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - campaign_start)
            .count()));

    if (tl) {
        tl->lane(0, "campaign")
            .span("simulate", "campaign", simulate_begin,
                  tl->nowNs() - simulate_begin,
                  {{"device", meta.deviceName},
                   {"workload", meta.workloadName},
                   {"input", meta.inputLabel},
                   {"runs",
                    std::to_string(config.faultyRuns)},
                   {"workers", std::to_string(workers)}});
    }

    // Fold the shards (worker order, so the aggregate is
    // deterministic up to timing values), pick up the kernel-side
    // instruments that advanced in the global registry, and publish
    // the campaign's own contribution back into the global registry
    // so process-wide tallies stay whole. Pool utilization is
    // published after the kernel diff is taken: it describes the
    // execution shape (worker count, chunking), which must never
    // leak into the campaign's own jobs-independent snapshot.
    for (auto &shard : shards)
        campaignReg.merge(shard->reg.snapshot());
    StatsSnapshot kernelDiff =
        global.snapshot().since(globalBefore);
    // Gauges always survive a snapshot diff, so an earlier
    // campaign's "pool.*" telemetry would ride the kernel diff into
    // this campaign's snapshot; strip it — pool accounting is
    // global-only by design. The same goes for the global
    // "resilience.*" telemetry (watchdog flags, chaos fault
    // tallies), the "stream.*" batch accounting below, and the
    // "proc.mem.*" RSS gauges: all timing- and process-shaped,
    // while the campaign's own resilience counters (retries,
    // resumed runs) are merged via the shards above and stay
    // deterministic.
    kernelDiff.entries.erase(
        std::remove_if(kernelDiff.entries.begin(),
                       kernelDiff.entries.end(),
                       [](const StatsSnapshot::Entry &e) {
                           return e.name.rfind("pool.", 0) == 0 ||
                               e.name.rfind("resilience.", 0) ==
                                   0 ||
                               e.name.rfind("stream.", 0) == 0 ||
                               e.name.rfind("store.io.", 0) ==
                                   0 ||
                               e.name.rfind("proc.", 0) == 0;
                       }),
        kernelDiff.entries.end());
    global.merge(campaignReg.snapshot());
    campaignReg.merge(kernelDiff);
    StatsSnapshot simStats = campaignReg.snapshot();
    publishPoolStats(poolStats, global);
    // Batch-shape accounting: global-only, like pool.* — streamed
    // and single-batch campaigns must produce identical campaign
    // snapshots.
    global.counter("stream.batches").inc(batches);
    global.gauge("stream.batch_runs")
        .set(static_cast<double>(batchRuns));
    // Sample RSS at campaign end — the high-water mark is what the
    // streaming pipeline exists to bound. Global-only, like the
    // batch accounting above.
    publishProcMem(global);
    sink.end(simStats);
}

CampaignRaw
simulateCampaign(const DeviceModel &device, Workload &workload,
                 const SimConfig &config)
{
    WorkerPool pool(config.jobs);
    return simulateCampaign(device, workload, config, pool);
}

CampaignRaw
simulateCampaign(const DeviceModel &device, Workload &workload,
                 const SimConfig &config, WorkerPool &pool)
{
    CollectRawSink sink;
    simulateCampaignStream(device, workload, config, pool, sink);
    return sink.take();
}

CampaignResult
analyzeCampaign(const CampaignRaw &raw,
                const AnalysisConfig &config)
{
    AnalysisAccumulator acc(campaignMeta(raw), config);
    for (const RawRun &run : raw.runs)
        acc.fold(run);
    return acc.finish(raw.stats);
}

CampaignResult
runCampaign(const DeviceModel &device, Workload &workload,
            const CampaignConfig &config)
{
    CampaignRaw raw = simulateCampaign(device, workload,
                                       config.sim);
    return analyzeCampaign(raw, config.analysis);
}

} // namespace radcrit
