#include "campaign/runner.hh"

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "campaign/engine.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "exec/pool.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"
#include "sim/sampler.hh"

namespace radcrit
{

namespace
{

/**
 * Per-worker telemetry shard: a private registry plus cached
 * instrument handles, so workers never contend on the campaign
 * counters. Shards are merged into the campaign registry in worker
 * order after the pool drains, which keeps the aggregate independent
 * of execution interleaving.
 */
struct StatsShard
{
    StatsShard(const std::string &prefix)
    {
        for (size_t o = 0; o < numOutcomes; ++o) {
            outcome[o] = &reg.counter(
                prefix + "." +
                statToken(outcomeName(static_cast<Outcome>(o))));
        }
        runs = &reg.counter(prefix + ".runs");
        filtered = &reg.counter(prefix + ".filtered");
        incorrect = &reg.histogram(prefix + ".incorrect_elements");
    }

    StatsRegistry reg;
    std::array<Counter *, numOutcomes> outcome{};
    Counter *runs = nullptr;
    Counter *filtered = nullptr;
    LogHistogram *incorrect = nullptr;
    PhaseTimer sample{reg, "campaign.phase.sample"};
    PhaseTimer classify{reg, "campaign.phase.classify"};
    PhaseTimer replay{reg, "campaign.phase.replay"};
    PhaseTimer metrics{reg, "campaign.phase.metrics"};
};

} // anonymous namespace

uint64_t
CampaignResult::count(Outcome outcome) const
{
    uint64_t n = 0;
    for (const auto &run : runs) {
        if (run.outcome == outcome)
            ++n;
    }
    return n;
}

double
CampaignResult::sdcOverDetectable() const
{
    uint64_t detectable = count(Outcome::Crash) +
        count(Outcome::Hang);
    if (detectable == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return static_cast<double>(count(Outcome::Sdc)) /
        static_cast<double>(detectable);
}

double
CampaignResult::fitAu(uint64_t event_count) const
{
    if (runs.empty())
        return 0.0;
    double rate = static_cast<double>(event_count) /
        static_cast<double>(runs.size());
    return sensitiveAreaAu * config.fitScaleAu * rate;
}

double
CampaignResult::fitTotalAu(bool filtered) const
{
    uint64_t events = 0;
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        if (filtered && run.crit.executionFiltered)
            continue;
        ++events;
    }
    return fitAu(events);
}

FitBreakdown
CampaignResult::fitByPattern(bool filtered) const
{
    FitBreakdown bd;
    double per_run = fitAu(1);
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        if (filtered) {
            if (run.crit.executionFiltered)
                continue;
            bd.add(run.crit.patternFiltered, per_run);
        } else {
            bd.add(run.crit.pattern, per_run);
        }
    }
    return bd;
}

double
CampaignResult::filteredOutFraction() const
{
    uint64_t sdc = 0;
    uint64_t removed = 0;
    for (const auto &run : runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        ++sdc;
        if (run.crit.executionFiltered)
            ++removed;
    }
    if (sdc == 0)
        return 0.0;
    return static_cast<double>(removed) /
        static_cast<double>(sdc);
}

CampaignResult
runCampaign(const DeviceModel &device, Workload &workload,
            const CampaignConfig &config)
{
    if (config.faultyRuns == 0)
        fatal("campaign needs at least one run");

    CampaignResult result;
    result.deviceName = device.name;
    result.workloadName = workload.name();
    result.inputLabel = workload.inputLabel();
    result.config = config;
    result.launch = buildLaunch(device, workload.traits());

    StrikeSampler sampler(device, result.launch);
    result.sensitiveAreaAu = sampler.totalWeight();

    // --- Telemetry. Workers write campaign counters into private
    // shards; kernel instruments (PhaseTimer members of workloads
    // and their clones) land directly in the global registry, whose
    // instruments are thread-safe. The shards plus the global
    // kernel-side diff are folded into a campaign-local registry, so
    // result.stats carries the same content the old serial diff did.
    StatsRegistry &global = StatsRegistry::global();
    StatsSnapshot globalBefore = global.snapshot();
    StatsRegistry campaignReg;
    std::string prefix = "campaign." + statToken(device.name) +
        "." + statToken(workload.name());
    campaignReg.gauge(prefix + ".sensitive_area_au")
        .set(result.sensitiveAreaAu);
    campaignReg.gauge(prefix + ".occupancy")
        .set(result.launch.occupancy);
    PhaseTimer campaignTimer(campaignReg, "campaign.total");
    auto campaign_start = std::chrono::steady_clock::now();

    WorkerPool pool(config.jobs);
    unsigned workers = static_cast<unsigned>(std::min<uint64_t>(
        pool.jobs(), config.faultyRuns));

    if (config.progressEvery > 0)
        inform("campaign %s: %s (%u worker%s)",
               device.name.c_str(),
               describeLaunch(result.launch).c_str(), workers,
               workers == 1 ? "" : "s");

    std::vector<std::unique_ptr<StatsShard>> shards;
    shards.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        shards.push_back(std::make_unique<StatsShard>(prefix));

    // Strike-trace records are produced out of order by the
    // workers; the ordered sink re-serializes them by run index.
    TraceSink *rawSink = traceSink();
    OrderedTraceSink orderedSink(rawSink);
    TraceSink *sink = rawSink ? &orderedSink : nullptr;

    RelativeErrorFilter filter(config.filterThresholdPct);
    result.runs.resize(config.faultyRuns);
    std::atomic<uint64_t> completed{0};

    pool.forChunks(config.faultyRuns, [&](unsigned worker,
                                          uint64_t begin,
                                          uint64_t end) {
        StatsShard &shard = *shards[worker];
        RunPhaseTimers timers;
        timers.sample = &shard.sample;
        timers.classify = &shard.classify;
        timers.replay = &shard.replay;
        timers.metrics = &shard.metrics;

        // Worker 0 runs on the caller thread and reuses the caller's
        // workload; the others replay strikes on private clones.
        std::unique_ptr<Workload> local;
        if (worker != 0)
            local = workload.clone();
        Workload &wl = local ? *local : workload;

        for (uint64_t i = begin; i < end; ++i) {
            auto run_start = std::chrono::steady_clock::now();
            Rng rng = runRng(config, i);
            RunRecord run = simulateRun(sampler, wl, filter,
                                        config, i, rng, timers);

            shard.runs->inc();
            shard.outcome[static_cast<size_t>(run.outcome)]->inc();
            if (run.outcome == Outcome::Sdc) {
                shard.incorrect->add(
                    static_cast<double>(run.crit.numIncorrect));
                if (run.crit.executionFiltered)
                    shard.filtered->inc();
            }

            if (sink) {
                StrikeTraceRecord rec;
                rec.run = i;
                rec.device = result.deviceName;
                rec.workload = result.workloadName;
                rec.input = result.inputLabel;
                rec.resource = run.strike.resource;
                rec.manifestation = run.strike.manifestation;
                rec.timeFraction = run.strike.timeFraction;
                rec.burstBits = run.strike.burstBits;
                rec.outcome = run.outcome;
                rec.numIncorrect = run.crit.numIncorrect;
                rec.meanRelErrPct = run.crit.meanRelErrPct;
                rec.pattern = run.crit.pattern;
                rec.executionFiltered = run.crit.executionFiltered;
                rec.wallNs = static_cast<uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() -
                        run_start)
                        .count());
                sink->strike(rec);
            }

            result.runs[i] = std::move(run);

            uint64_t done =
                completed.fetch_add(1, std::memory_order_relaxed) +
                1;
            if (config.progressEvery > 0 &&
                (done % config.progressEvery == 0 ||
                 done == config.faultyRuns)) {
                inform("campaign %s/%s %s: %llu/%llu runs",
                       result.deviceName.c_str(),
                       result.workloadName.c_str(),
                       result.inputLabel.c_str(),
                       static_cast<unsigned long long>(done),
                       static_cast<unsigned long long>(
                           config.faultyRuns));
            }
        }
    });
    orderedSink.drain();

    campaignTimer.recordNs(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - campaign_start)
            .count()));

    // Fold the shards (worker order, so the aggregate is
    // deterministic up to timing values), pick up the kernel-side
    // instruments that advanced in the global registry, and publish
    // the campaign's own contribution back into the global registry
    // so process-wide tallies stay whole.
    for (auto &shard : shards)
        campaignReg.merge(shard->reg.snapshot());
    StatsSnapshot kernelDiff =
        global.snapshot().since(globalBefore);
    global.merge(campaignReg.snapshot());
    campaignReg.merge(kernelDiff);
    result.stats = campaignReg.snapshot();
    return result;
}

} // namespace radcrit
