#include "campaign/paperconfigs.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "kernels/clamr.hh"
#include "kernels/dgemm.hh"
#include "kernels/hotspot.hh"
#include "kernels/lavamd.hh"

namespace radcrit
{

DeviceModel
makeDevice(DeviceId id)
{
    switch (id) {
      case DeviceId::K40:
        return makeK40();
      case DeviceId::XeonPhi:
        return makeXeonPhi();
      default:
        panic("makeDevice: invalid id %d", static_cast<int>(id));
    }
}

std::vector<DeviceId>
allDevices()
{
    return {DeviceId::K40, DeviceId::XeonPhi};
}

const char *
deviceIdName(DeviceId id)
{
    switch (id) {
      case DeviceId::K40: return "K40";
      case DeviceId::XeonPhi: return "XeonPhi";
      default:
        panic("deviceIdName: invalid id %d", static_cast<int>(id));
    }
}

std::vector<int64_t>
dgemmScaledSides(DeviceId id)
{
    // Paper sides 1024/2048/4096 (+8192 on the Phi), scale 1/8.
    if (id == DeviceId::XeonPhi)
        return {128, 256, 512, 1024};
    return {128, 256, 512};
}

std::vector<LavaMdSize>
lavamdScaledSizes(DeviceId id)
{
    // Paper boxes/dim 15/19/23 (K40) and 13/15/19/23 (Phi),
    // scale ~1/2.
    if (id == DeviceId::XeonPhi)
        return {{6, 13}, {7, 15}, {9, 19}, {11, 23}};
    return {{7, 15}, {9, 19}, {11, 23}};
}

int64_t
hotspotScaledGrid()
{
    return 256; // paper: 1024
}

int64_t
clamrScaledGrid()
{
    return 128; // paper: 512
}

std::unique_ptr<Workload>
makeDgemmWorkload(const DeviceModel &device, int64_t scaled_side)
{
    return std::make_unique<Dgemm>(device, scaled_side);
}

std::unique_ptr<Workload>
makeLavamdWorkload(const DeviceModel &device, const LavaMdSize &size)
{
    return std::make_unique<LavaMd>(device, size.scaledBoxes, 42, 2,
                                    4, size.paperBoxes);
}

std::unique_ptr<Workload>
makeHotspotWorkload(const DeviceModel &device)
{
    return std::make_unique<HotSpot>(device, hotspotScaledGrid());
}

std::unique_ptr<Workload>
makeClamrWorkload(const DeviceModel &device)
{
    return std::make_unique<Clamr>(device, clamrScaledGrid());
}

CampaignConfig
defaultCampaign(uint64_t runs, const std::string &device_name,
                const std::string &workload_name,
                const std::string &input_label)
{
    CampaignConfig cfg;
    cfg.sim.faultyRuns = runs;
    uint64_t h = 0x52414443'52495421ULL; // "RADCRIT!"
    for (char c : device_name)
        h = Rng::hashCombine(h, static_cast<uint64_t>(c));
    for (char c : workload_name)
        h = Rng::hashCombine(h, static_cast<uint64_t>(c));
    for (char c : input_label)
        h = Rng::hashCombine(h, static_cast<uint64_t>(c));
    cfg.sim.seed = h;
    return cfg;
}

} // namespace radcrit
