/**
 * @file
 * Figure-series builders: turn campaign results into the exact data
 * series the paper's figures plot.
 */

#ifndef RADCRIT_CAMPAIGN_SERIES_HH
#define RADCRIT_CAMPAIGN_SERIES_HH

#include <string>
#include <vector>

#include "campaign/runner.hh"
#include "common/figure.hh"

namespace radcrit
{

/**
 * Scatter series of one campaign: x = number of incorrect elements,
 * y = mean relative error [%] per faulty execution (Figs. 2, 4, 6,
 * 8).
 */
ScatterSeries scatterSeries(const CampaignResult &result);

/**
 * Stacked locality/magnitude bars of one campaign (Figs. 3, 5, 7):
 * one "All" bar and, when any run survives differently, one "> t%"
 * bar, each broken down by spatial pattern in the given order.
 */
struct LocalityBars
{
    /** Pattern names in stacking order. */
    std::vector<std::string> segmentNames;
    /** One or two bars labelled "<input> All" / "<input> >t%". */
    std::vector<StackedBar> bars;
};

/**
 * @param result Campaign to summarize.
 * @param patterns Patterns in stacking order (paper uses
 * Square/Line/Single/Random, plus Cubic for LavaMD).
 */
LocalityBars localityBars(const CampaignResult &result,
                          const std::vector<Pattern> &patterns);

/** Patterns stacked in the 2D figures (Figs. 3, 7). */
std::vector<Pattern> patterns2d();

/** Patterns stacked in the 3D figure (Fig. 5). */
std::vector<Pattern> patterns3d();

/**
 * CSV-ready rows of per-run metrics: run index, outcome, resource,
 * incorrect elements, mean relative error, patterns before/after
 * filter. Rows appear in run-index order for any jobs count.
 */
std::vector<std::vector<std::string>>
runRows(const CampaignResult &result);

/** Header matching runRows(). */
std::vector<std::string> runRowsHeader();

} // namespace radcrit

#endif // RADCRIT_CAMPAIGN_SERIES_HH
