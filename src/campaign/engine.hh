/**
 * @file
 * Campaign engine: the pure per-strike simulation step. A campaign
 * is a deterministic map over independent runs — run k depends only
 * on (device, workload, sim config, k), never on runs before it —
 * which is what lets the runner execute runs on any number of
 * workers and still produce bit-identical results (see
 * exec/pool.hh).
 *
 * The engine stops at the raw record: it samples a strike,
 * classifies the program-level outcome, and for SDCs replays the
 * corruption through the kernel to capture the output-mismatch log.
 * No tolerance filter or locality judgement happens here — that is
 * analyzeCampaign()'s job, so stored campaigns can be re-analyzed
 * without re-executing kernels.
 */

#ifndef RADCRIT_CAMPAIGN_ENGINE_HH
#define RADCRIT_CAMPAIGN_ENGINE_HH

#include <cstdint>

#include "campaign/config.hh"
#include "campaign/raw.hh"
#include "common/rng.hh"
#include "obs/timer.hh"
#include "sim/sampler.hh"
#include "sim/workload.hh"

namespace radcrit
{

/**
 * The RNG stream of one run: the master seed split by the run
 * index, so run k draws the same numbers whether it executes
 * serially, on worker 3 of 8, or alone in a replay.
 *
 * Note this is a different stream layout than the pre-parallel
 * runner, which threaded one sequential Rng through the whole
 * campaign — a given seed produces different (equally valid)
 * campaigns across that boundary.
 */
Rng runRng(const SimConfig &config, uint64_t run_index);

/**
 * Optional per-phase latency timers for simulateRun. Null entries
 * are skipped; the runner wires these to per-worker shards.
 */
struct RunPhaseTimers
{
    PhaseTimer *sample = nullptr;
    PhaseTimer *classify = nullptr;
    PhaseTimer *replay = nullptr;
};

/**
 * Simulate one strike: sample it, classify the program-level
 * outcome, and, for SDC outcomes, replay the corruption through the
 * workload and capture the raw mismatch record. A corruption the
 * kernel digests without an output mismatch is reclassified as
 * Masked, so a RawRun with outcome Sdc always carries a non-empty
 * record.
 *
 * Pure with respect to campaign state: touches nothing but the
 * passed-in workload's scratch buffers and `rng`, so concurrent
 * calls on distinct workload clones are safe (see
 * Workload::clone()).
 *
 * @param sampler Strike sampler for the (device, launch) pair.
 * @param workload Workload replaying SDC strikes (mutated scratch).
 * @param config Simulation parameters.
 * @param run_index Index of this run within the campaign.
 * @param rng This run's private stream (runRng(config, run_index)).
 * @param timers Optional phase-latency telemetry.
 */
RawRun simulateRun(const StrikeSampler &sampler,
                   Workload &workload, const SimConfig &config,
                   uint64_t run_index, Rng &rng,
                   const RunPhaseTimers &timers = {});

} // namespace radcrit

#endif // RADCRIT_CAMPAIGN_ENGINE_HH
