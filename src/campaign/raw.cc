#include "campaign/raw.hh"

#include <array>

namespace radcrit
{

uint64_t
CampaignRaw::count(Outcome outcome) const
{
    uint64_t n = 0;
    for (const auto &run : runs)
        n += run.outcome == outcome;
    return n;
}

std::string
campaignStatsPrefix(const std::string &device_name,
                    const std::string &workload_name)
{
    return "campaign." + statToken(device_name) + "." +
        statToken(workload_name);
}

StatsSnapshot
rebuildSimStats(const CampaignRaw &raw, StatsRegistry &into)
{
    StatsRegistry reg;
    std::string prefix =
        campaignStatsPrefix(raw.deviceName, raw.workloadName);
    reg.gauge(prefix + ".sensitive_area_au")
        .set(raw.sensitiveAreaAu);
    reg.gauge(prefix + ".occupancy").set(raw.launch.occupancy);
    Counter &runs = reg.counter(prefix + ".runs");
    LogHistogram &incorrect =
        reg.histogram(prefix + ".incorrect_elements");
    std::array<Counter *, numOutcomes> outcome{};
    for (size_t o = 0; o < numOutcomes; ++o) {
        outcome[o] = &reg.counter(
            prefix + "." +
            statToken(outcomeName(static_cast<Outcome>(o))));
    }
    for (const auto &run : raw.runs) {
        runs.inc();
        outcome[static_cast<size_t>(run.outcome)]->inc();
        if (run.outcome == Outcome::Sdc) {
            incorrect.add(static_cast<double>(
                run.record.numIncorrect()));
        }
    }
    StatsSnapshot snap = reg.snapshot();
    into.merge(snap);
    return snap;
}

} // namespace radcrit
