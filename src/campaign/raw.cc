#include "campaign/raw.hh"

#include <array>

namespace radcrit
{

uint64_t
CampaignRaw::count(Outcome outcome) const
{
    uint64_t n = 0;
    for (const auto &run : runs)
        n += run.outcome == outcome;
    return n;
}

std::string
campaignStatsPrefix(const std::string &device_name,
                    const std::string &workload_name)
{
    return "campaign." + statToken(device_name) + "." +
        statToken(workload_name);
}

SimStatsRebuilder::SimStatsRebuilder(
    const std::string &device_name,
    const std::string &workload_name, double sensitive_area_au,
    double occupancy)
{
    std::string prefix =
        campaignStatsPrefix(device_name, workload_name);
    reg_.gauge(prefix + ".sensitive_area_au")
        .set(sensitive_area_au);
    reg_.gauge(prefix + ".occupancy").set(occupancy);
    runs_ = &reg_.counter(prefix + ".runs");
    incorrect_ = &reg_.histogram(prefix + ".incorrect_elements");
    for (size_t o = 0; o < numOutcomes; ++o) {
        outcome_[o] = &reg_.counter(
            prefix + "." +
            statToken(outcomeName(static_cast<Outcome>(o))));
    }
}

void
SimStatsRebuilder::fold(const RawRun &run)
{
    runs_->inc();
    outcome_[static_cast<size_t>(run.outcome)]->inc();
    if (run.outcome == Outcome::Sdc) {
        incorrect_->add(
            static_cast<double>(run.record.numIncorrect()));
    }
}

StatsSnapshot
SimStatsRebuilder::finish(StatsRegistry &into)
{
    StatsSnapshot snap = reg_.snapshot();
    into.merge(snap);
    return snap;
}

StatsSnapshot
rebuildSimStats(const CampaignRaw &raw, StatsRegistry &into)
{
    SimStatsRebuilder rebuilder(raw.deviceName, raw.workloadName,
                                raw.sensitiveAreaAu,
                                raw.launch.occupancy);
    for (const auto &run : raw.runs)
        rebuilder.fold(run);
    return rebuilder.finish(into);
}

} // namespace radcrit
