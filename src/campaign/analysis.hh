/**
 * @file
 * Single-pass, mergeable campaign analysis.
 *
 * AnalysisAccumulator is the streaming core of analyzeCampaign():
 * it folds raw runs one at a time — criticality metrics, tolerance
 * filter, trace emission, telemetry — and produces the same
 * CampaignResult the materialized loop did, byte for byte.
 * Accumulators merge in run order under the same discipline as
 * StatsRegistry::merge, so per-worker shards can fold disjoint
 * index ranges and be combined deterministically.
 *
 * AnalyzeSink adapts the accumulator to the RawSink interface so
 * analysis can ride directly behind a streaming producer (the
 * engine, a beam-log reader, a store load) and never hold more
 * than one batch of raw records; analyzeCampaignStream() is the
 * pull-side convenience over a RawSource.
 */

#ifndef RADCRIT_CAMPAIGN_ANALYSIS_HH
#define RADCRIT_CAMPAIGN_ANALYSIS_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>

#include "campaign/runner.hh"
#include "campaign/stream.hh"
#include "metrics/relative_error.hh"
#include "obs/timer.hh"

namespace radcrit
{

class TraceSink;
class Timeline;

/**
 * Fold-style analysis of one campaign. Construction snapshots the
 * campaign identity; fold() consumes runs in index order; finish()
 * seals the result. Pure in its result exactly like
 * analyzeCampaign(): (meta, config, runs) fully determine the
 * returned CampaignResult.
 *
 * Telemetry: the "campaign.phase.metrics" timer and the
 * "<prefix>.filtered" counter accumulate in a private registry and
 * are published globally by finish(). When a trace sink is
 * installed, fold() emits one strike-trace record per run at fold
 * time — so when shards are folded in parallel, trace ordering is
 * only preserved if each shard covers a disjoint ascending range
 * and shards are folded serially or traces are disabled.
 */
class AnalysisAccumulator
{
  public:
    AnalysisAccumulator(const CampaignMeta &meta,
                        const AnalysisConfig &config);

    AnalysisAccumulator(const AnalysisAccumulator &) = delete;
    AnalysisAccumulator &operator=(const AnalysisAccumulator &) =
        delete;

    /** Analyze one raw run and append its RunRecord. */
    void fold(const RawRun &run);

    /**
     * Append another accumulator's records after this one's and
     * absorb its telemetry (StatsRegistry::merge discipline).
     * `other` must have folded the index range following this
     * accumulator's, and must not be used afterwards.
     */
    void merge(AnalysisAccumulator &&other);

    /** @return records folded so far. */
    uint64_t folded() const { return result_.runs.size(); }

    /**
     * Seal the result: emit the timeline span, publish the
     * analysis telemetry globally, and combine it with the
     * simulation-side share.
     *
     * @param simStats the campaign's simulation-side telemetry
     * (CampaignRaw::stats; empty for a standalone beam-log read).
     */
    CampaignResult finish(const StatsSnapshot &simStats);

  private:
    CampaignResult result_;
    StatsRegistry reg_;
    Counter *filteredCount_ = nullptr;
    PhaseTimer metricsTimer_;
    RelativeErrorFilter filter_;
    TraceSink *sink_ = nullptr;
    Timeline *tl_ = nullptr;
    uint64_t analyzeBegin_ = 0;
};

/**
 * RawSink running an AnalysisAccumulator over the stream. With
 * progressEvery > 0 an inform() line with records-analyzed/s is
 * emitted every that many records (radcrit_cli analyze
 * --progress).
 */
class AnalyzeSink : public RawSink
{
  public:
    explicit AnalyzeSink(const AnalysisConfig &config,
                         uint64_t progressEvery = 0);

    void begin(const CampaignMeta &meta) override;
    void consume(RunBatch &&batch) override;
    void end(const StatsSnapshot &simStats) override;

    /** @return the sealed result (call after end()). */
    CampaignResult take();

  private:
    AnalysisConfig config_;
    uint64_t progressEvery_ = 0;
    uint64_t total_ = 0;
    std::string deviceName_;
    std::string workloadName_;
    std::string inputLabel_;
    std::chrono::steady_clock::time_point start_;
    std::unique_ptr<AnalysisAccumulator> acc_;
    std::optional<CampaignResult> result_;
};

/**
 * Analyze a streamed campaign: drive `source` through an
 * AnalyzeSink batch by batch, never holding more than one batch of
 * raw records. For a CampaignRawSource over a materialized
 * campaign this returns exactly analyzeCampaign()'s result.
 */
CampaignResult analyzeCampaignStream(RawSource &source,
                                     const AnalysisConfig &config,
                                     uint64_t progressEvery = 0);

} // namespace radcrit

#endif // RADCRIT_CAMPAIGN_ANALYSIS_HH
