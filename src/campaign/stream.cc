#include "campaign/stream.hh"

#include <algorithm>
#include <chrono>
#include <utility>

namespace radcrit
{

namespace
{

uint64_t
elapsedNs(std::chrono::steady_clock::time_point since)
{
    auto dt = std::chrono::steady_clock::now() - since;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
            .count());
}

} // anonymous namespace

CampaignMeta
campaignMeta(const CampaignRaw &raw)
{
    CampaignMeta meta;
    meta.deviceName = raw.deviceName;
    meta.workloadName = raw.workloadName;
    meta.inputLabel = raw.inputLabel;
    meta.sim = raw.sim;
    meta.launch = raw.launch;
    meta.sensitiveAreaAu = raw.sensitiveAreaAu;
    return meta;
}

void
CollectRawSink::begin(const CampaignMeta &meta)
{
    raw_ = CampaignRaw{};
    raw_.deviceName = meta.deviceName;
    raw_.workloadName = meta.workloadName;
    raw_.inputLabel = meta.inputLabel;
    raw_.sim = meta.sim;
    raw_.launch = meta.launch;
    raw_.sensitiveAreaAu = meta.sensitiveAreaAu;
    raw_.runs.reserve(meta.sim.faultyRuns);
}

void
CollectRawSink::consume(RunBatch &&batch)
{
    raw_.runs.insert(raw_.runs.end(),
                     std::make_move_iterator(batch.runs.begin()),
                     std::make_move_iterator(batch.runs.end()));
}

void
CollectRawSink::end(const StatsSnapshot &simStats)
{
    raw_.stats = simStats;
}

CampaignRawSource::CampaignRawSource(const CampaignRaw &raw,
                                     uint64_t batchRuns)
    : raw_(&raw), meta_(campaignMeta(raw)),
      batchRuns_(batchRuns == 0 ? raw.runs.size() : batchRuns)
{
}

bool
CampaignRawSource::next(RunBatch &batch)
{
    if (nextIndex_ >= raw_->runs.size())
        return false;
    uint64_t count = std::min<uint64_t>(
        batchRuns_, raw_->runs.size() - nextIndex_);
    batch.firstIndex = nextIndex_;
    batch.runs.assign(raw_->runs.begin() + nextIndex_,
                      raw_->runs.begin() + nextIndex_ + count);
    nextIndex_ += count;
    return true;
}

TeeRawSink::TeeRawSink(std::vector<RawSink *> sinks)
    : sinks_(std::move(sinks))
{
}

void
TeeRawSink::begin(const CampaignMeta &meta)
{
    for (RawSink *sink : sinks_)
        sink->begin(meta);
}

void
TeeRawSink::consume(RunBatch &&batch)
{
    for (size_t i = 0; i + 1 < sinks_.size(); ++i) {
        RunBatch copy = batch;
        sinks_[i]->consume(std::move(copy));
    }
    if (!sinks_.empty())
        sinks_.back()->consume(std::move(batch));
}

void
TeeRawSink::end(const StatsSnapshot &simStats)
{
    for (RawSink *sink : sinks_)
        sink->end(simStats);
}

uint64_t
pumpRaw(RawSource &source, RawSink &sink)
{
    sink.begin(source.meta());
    uint64_t pumped = 0;
    RunBatch batch;
    while (source.next(batch)) {
        pumped += batch.runs.size();
        sink.consume(std::move(batch));
        batch = RunBatch{};
    }
    sink.end(source.simStats());
    return pumped;
}

IoThreadGate::IoThreadGate(unsigned slots)
    : slots_(slots)
{
}

void
IoThreadGate::configure(unsigned slots)
{
    std::lock_guard<std::mutex> lock(mutex_);
    slots_ = slots;
    freed_.notify_all();
}

unsigned
IoThreadGate::slots() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_;
}

void
IoThreadGate::acquire()
{
    std::unique_lock<std::mutex> lock(mutex_);
    freed_.wait(lock,
                [&] { return slots_ == 0 || inUse_ < slots_; });
    ++inUse_;
}

void
IoThreadGate::release()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --inUse_;
    }
    freed_.notify_one();
}

IoThreadGate &
IoThreadGate::global()
{
    static IoThreadGate gate;
    return gate;
}

AsyncSaveSink::AsyncSaveSink(RawSink &inner, IoThreadGate *gate,
                             size_t queueCapacity)
    : inner_(inner), gate_(gate),
      capacity_(std::max<size_t>(queueCapacity, 1))
{
    io_ = std::thread(&AsyncSaveSink::ioLoop, this);
}

AsyncSaveSink::~AsyncSaveSink()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    opQueued_.notify_all();
    if (io_.joinable())
        io_.join();
}

void
AsyncSaveSink::rethrowPending()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (error_)
        std::rethrow_exception(error_);
}

void
AsyncSaveSink::push(Op &&op)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        spaceFreed_.wait(lock, [&] {
            return queue_.size() < capacity_ || failed_;
        });
        // A failed inner sink stops accepting work; the error
        // surfaces on the producer via rethrowPending().
        if (failed_ && op.kind != Op::Kind::End)
            return;
        queue_.push_back(std::move(op));
        queuePeak_ =
            std::max<uint64_t>(queuePeak_, queue_.size());
    }
    opQueued_.notify_one();
}

void
AsyncSaveSink::begin(const CampaignMeta &meta)
{
    Op op;
    op.kind = Op::Kind::Begin;
    op.meta = meta;
    push(std::move(op));
}

void
AsyncSaveSink::consume(RunBatch &&batch)
{
    rethrowPending();
    Op op;
    op.kind = Op::Kind::Batch;
    op.batch = std::move(batch);
    push(std::move(op));
}

void
AsyncSaveSink::end(const StatsSnapshot &simStats)
{
    Op op;
    op.kind = Op::Kind::End;
    op.stats = simStats;
    push(std::move(op));
    uint64_t batches;
    uint64_t busy_ns;
    uint64_t peak;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        drained_.wait(lock, [&] { return done_; });
        if (error_)
            std::rethrow_exception(error_);
        batches = batches_;
        busy_ns = ioBusyNs_;
        peak = queuePeak_;
    }
    // Global-only telemetry, like "pool.*": the campaign runner
    // strips the "store.io." prefix from per-campaign snapshots so
    // async I/O shape never leaks into jobs-independent output.
    StatsRegistry &global = StatsRegistry::global();
    global.counter("store.io.async.batches").inc(batches);
    global.counter("store.io.async.busy_ns").inc(busy_ns);
    global.gauge("store.io.async.queue_peak")
        .set(static_cast<double>(peak));
}

uint64_t
AsyncSaveSink::batches() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return batches_;
}

uint64_t
AsyncSaveSink::queuePeak() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queuePeak_;
}

uint64_t
AsyncSaveSink::ioBusyNs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ioBusyNs_;
}

void
AsyncSaveSink::ioLoop()
{
    for (;;) {
        Op op;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            opQueued_.wait(lock, [&] {
                return !queue_.empty() || stop_;
            });
            if (queue_.empty())
                return; // stopped without end(): abandon
            op = std::move(queue_.front());
            queue_.pop_front();
        }
        spaceFreed_.notify_one();

        bool forward;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            forward = !failed_;
        }
        if (forward) {
            auto start = std::chrono::steady_clock::now();
            try {
                IoThreadGate::Lease lease(gate_);
                switch (op.kind) {
                  case Op::Kind::Begin:
                    inner_.begin(op.meta);
                    break;
                  case Op::Kind::Batch:
                    inner_.consume(std::move(op.batch));
                    break;
                  case Op::Kind::End:
                    inner_.end(op.stats);
                    break;
                }
                std::lock_guard<std::mutex> lock(mutex_);
                ioBusyNs_ += elapsedNs(start);
                if (op.kind == Op::Kind::Batch)
                    ++batches_;
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                failed_ = true;
                if (!error_)
                    error_ = std::current_exception();
            }
        }
        if (op.kind == Op::Kind::End) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                done_ = true;
            }
            drained_.notify_all();
            return;
        }
    }
}

AsyncRawSource::AsyncRawSource(RawSource &inner,
                               IoThreadGate *gate,
                               size_t queueCapacity)
    : inner_(inner), gate_(gate),
      capacity_(std::max<size_t>(queueCapacity, 1)),
      meta_(inner.meta())
{
    io_ = std::thread(&AsyncRawSource::ioLoop, this);
}

AsyncRawSource::~AsyncRawSource()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    spaceFreed_.notify_all();
    if (io_.joinable())
        io_.join();
}

bool
AsyncRawSource::next(RunBatch &batch)
{
    std::unique_lock<std::mutex> lock(mutex_);
    batchReady_.wait(lock, [&] {
        return !queue_.empty() || exhausted_;
    });
    if (!queue_.empty()) {
        batch = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        spaceFreed_.notify_one();
        return true;
    }
    if (error_)
        std::rethrow_exception(error_);
    return false;
}

StatsSnapshot
AsyncRawSource::simStats()
{
    std::unique_lock<std::mutex> lock(mutex_);
    batchReady_.wait(lock, [&] { return exhausted_; });
    if (error_)
        std::rethrow_exception(error_);
    return simStats_;
}

uint64_t
AsyncRawSource::queuePeak() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queuePeak_;
}

uint64_t
AsyncRawSource::ioBusyNs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ioBusyNs_;
}

void
AsyncRawSource::ioLoop()
{
    for (;;) {
        RunBatch batch;
        bool have;
        auto start = std::chrono::steady_clock::now();
        try {
            IoThreadGate::Lease lease(gate_);
            have = inner_.next(batch);
            if (!have)
                simStats_ = inner_.simStats();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            error_ = std::current_exception();
            exhausted_ = true;
            ioBusyNs_ += elapsedNs(start);
            batchReady_.notify_all();
            return;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        ioBusyNs_ += elapsedNs(start);
        if (!have) {
            exhausted_ = true;
            batchReady_.notify_all();
            return;
        }
        spaceFreed_.wait(lock, [&] {
            return queue_.size() < capacity_ || stop_;
        });
        if (stop_)
            return;
        queue_.push_back(std::move(batch));
        queuePeak_ =
            std::max<uint64_t>(queuePeak_, queue_.size());
        lock.unlock();
        batchReady_.notify_one();
    }
}

} // namespace radcrit
