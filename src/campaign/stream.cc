#include "campaign/stream.hh"

#include <algorithm>
#include <utility>

namespace radcrit
{

CampaignMeta
campaignMeta(const CampaignRaw &raw)
{
    CampaignMeta meta;
    meta.deviceName = raw.deviceName;
    meta.workloadName = raw.workloadName;
    meta.inputLabel = raw.inputLabel;
    meta.sim = raw.sim;
    meta.launch = raw.launch;
    meta.sensitiveAreaAu = raw.sensitiveAreaAu;
    return meta;
}

void
CollectRawSink::begin(const CampaignMeta &meta)
{
    raw_ = CampaignRaw{};
    raw_.deviceName = meta.deviceName;
    raw_.workloadName = meta.workloadName;
    raw_.inputLabel = meta.inputLabel;
    raw_.sim = meta.sim;
    raw_.launch = meta.launch;
    raw_.sensitiveAreaAu = meta.sensitiveAreaAu;
    raw_.runs.reserve(meta.sim.faultyRuns);
}

void
CollectRawSink::consume(RunBatch &&batch)
{
    raw_.runs.insert(raw_.runs.end(),
                     std::make_move_iterator(batch.runs.begin()),
                     std::make_move_iterator(batch.runs.end()));
}

void
CollectRawSink::end(const StatsSnapshot &simStats)
{
    raw_.stats = simStats;
}

CampaignRawSource::CampaignRawSource(const CampaignRaw &raw,
                                     uint64_t batchRuns)
    : raw_(&raw), meta_(campaignMeta(raw)),
      batchRuns_(batchRuns == 0 ? raw.runs.size() : batchRuns)
{
}

bool
CampaignRawSource::next(RunBatch &batch)
{
    if (nextIndex_ >= raw_->runs.size())
        return false;
    uint64_t count = std::min<uint64_t>(
        batchRuns_, raw_->runs.size() - nextIndex_);
    batch.firstIndex = nextIndex_;
    batch.runs.assign(raw_->runs.begin() + nextIndex_,
                      raw_->runs.begin() + nextIndex_ + count);
    nextIndex_ += count;
    return true;
}

TeeRawSink::TeeRawSink(std::vector<RawSink *> sinks)
    : sinks_(std::move(sinks))
{
}

void
TeeRawSink::begin(const CampaignMeta &meta)
{
    for (RawSink *sink : sinks_)
        sink->begin(meta);
}

void
TeeRawSink::consume(RunBatch &&batch)
{
    for (size_t i = 0; i + 1 < sinks_.size(); ++i) {
        RunBatch copy = batch;
        sinks_[i]->consume(std::move(copy));
    }
    if (!sinks_.empty())
        sinks_.back()->consume(std::move(batch));
}

void
TeeRawSink::end(const StatsSnapshot &simStats)
{
    for (RawSink *sink : sinks_)
        sink->end(simStats);
}

uint64_t
pumpRaw(RawSource &source, RawSink &sink)
{
    sink.begin(source.meta());
    uint64_t pumped = 0;
    RunBatch batch;
    while (source.next(batch)) {
        pumped += batch.runs.size();
        sink.consume(std::move(batch));
        batch = RunBatch{};
    }
    sink.end(source.simStats());
    return pumped;
}

} // namespace radcrit
