/**
 * @file
 * Content-addressed on-disk cache of raw campaigns: "run once,
 * analyze many" across processes.
 *
 * A simulated campaign is fully determined by (device name,
 * workload name + input label, SimConfig seed + faultyRuns) plus
 * the beam-log format version — jobs and progressEvery change how a
 * campaign executes, never what it produces, so they are excluded
 * from the key. The store hashes that tuple into a stable 64-bit
 * key and lays entries out flat as
 *
 *   <dir>/<device>-<workload>-<input>-<hex key>.beamlog
 *
 * where the name prefix is a human-readable statToken'd convenience
 * and the hex key is the address. Entries are ordinary beam logs
 * (logs/beamlog.hh), so anything the store wrote can also be fed to
 * `radcrit_cli analyze` directly.
 *
 * The cache is off by default; benches and the CLI enable it with
 * `--cache <dir>` or the RADCRIT_CAMPAIGN_CACHE environment
 * variable. Hits and misses are counted in the global stats
 * registry under "campaign.store.{hit,miss}".
 */

#ifndef RADCRIT_CAMPAIGN_STORE_HH
#define RADCRIT_CAMPAIGN_STORE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "campaign/config.hh"
#include "campaign/raw.hh"
#include "campaign/stream.hh"
#include "exec/pool.hh"
#include "sim/workload.hh"

namespace radcrit
{

/**
 * Identity of one simulated campaign — everything that decides the
 * bits of its CampaignRaw.
 */
struct CampaignKey
{
    std::string device;
    std::string workload;
    std::string input;
    SimConfig sim;
};

/** @return the key of the campaign `raw` came from. */
CampaignKey campaignKey(const CampaignRaw &raw);

/**
 * @return the stable 64-bit content address of a key: a hash chain
 * over the identity strings, seed, run count, and the beam-log
 * format version (so a format bump invalidates every old entry).
 */
uint64_t campaignKeyHash(const CampaignKey &key);

/** @return the cache file name ("k40-dgemm-256x256-<hex>.beamlog"). */
std::string campaignKeyFileName(const CampaignKey &key);

/**
 * One cache directory. Construction creates the directory (fatal
 * if that fails: a cache the user asked for that cannot store
 * anything is a configuration error, not a soft miss).
 */
class CampaignStore
{
  public:
    explicit CampaignStore(const std::string &dir);

    /**
     * Validating front door for user-supplied cache paths (--cache,
     * RADCRIT_CAMPAIGN_CACHE): when `dir` names an existing
     * regular file, or the directory cannot be created, warn once
     * and return null — the caller runs uncached instead of
     * missing (and then failing to save) forever. Use the
     * constructor directly when a broken cache should be fatal.
     */
    static std::unique_ptr<CampaignStore>
    open(const std::string &dir);

    /** @return the cache directory. */
    const std::string &dir() const { return dir_; }

    /** @return the entry path a key maps to. */
    std::string pathFor(const CampaignKey &key) const;

    /**
     * Look a campaign up. A missing entry, or an entry whose header
     * does not match the key (hash collision, hand-edited file), is
     * a miss; a present-but-unparseable entry is fatal like any
     * malformed beam log. Loaded campaigns carry no launch and no
     * stats — use simulateOrLoad() to get those rebuilt.
     */
    std::optional<CampaignRaw> load(const CampaignKey &key);

    /** Write a campaign under its key (atomic rename into place). */
    void save(const CampaignRaw &raw);

    /**
     * Streaming lookup: feed the cached campaign to `sink` in
     * batches of batchRuns runs (0 = one batch) without ever
     * materializing it. The entry is fully validated record by
     * record *before* the sink sees anything (a corrupt tail must
     * not poison a sink that already consumed batches); validation
     * failures follow the same retry-then-quarantine policy as
     * load(). The sink receives meta with the caller's sim config
     * and `launch` (execution details outside the key), and
     * end() gets the rebuilt simulation counters — matching what
     * simulateOrLoad() puts in a materialized hit.
     *
     * Entries no larger than singlePassCap() runs are validated
     * *while* parsing into a buffered prefix and delivered from
     * that buffer — one parse total, which is what makes a warm
     * streamed hit cheaper than re-simulating. Larger entries keep
     * the legacy bounded-memory two-pass shape (validate pass,
     * then stream pass) so a huge campaign never materializes;
     * with ioThreads > 0 that second parse runs on a background
     * I/O thread (AsyncRawSource) and overlaps the sink's work.
     *
     * @return true on a hit (the sink consumed the campaign),
     * false on a miss (the sink was not touched).
     */
    bool loadStream(const CampaignKey &key,
                    const KernelLaunch &launch, RawSink &sink,
                    uint64_t batchRuns, unsigned ioThreads = 0);

    /**
     * Largest entry (in runs) the single-pass buffered-validate
     * hit path may hold in memory; bigger entries take the
     * bounded-memory two-pass path. Tunable so tests can force
     * either path with small campaigns.
     */
    uint64_t singlePassCap() const { return singlePassCap_.load(); }

    /** Set the single-pass buffering cap (0 = always two-pass). */
    void setSinglePassCap(uint64_t runs)
    {
        singlePassCap_.store(runs);
    }

    /**
     * @return a sink that persists the stream it is fed under the
     * key derived from its meta: staged to a tmp file as batches
     * arrive, atomically renamed into place at end(). The bytes
     * are identical to save() over the materialized campaign.
     */
    std::unique_ptr<RawSink> saveSink();

    /** @return hits recorded by this store instance. */
    uint64_t hits() const { return hits_.load(); }

    /** @return misses recorded by this store instance. */
    uint64_t misses() const { return misses_.load(); }

    /**
     * @return entries quarantined by this store instance: cache
     * files that were corrupt after a retry, or whose content
     * contradicted their key. Each is also a miss (the invariant
     * hits + misses == campaigns holds), renamed aside to
     * "<entry>.quarantined" so the bad bytes are kept for autopsy
     * but never re-read.
     */
    uint64_t quarantined() const { return quarantined_.load(); }

  private:
    /** Move a bad entry aside and count it (see quarantined()). */
    void quarantine(const std::string &path, const char *why);

    std::string dir_;
    // Atomic so a store shared across threads (the suite's single
    // store serving shim-compatible per-experiment lookups) tallies
    // correctly without external locking.
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> quarantined_{0};
    /** Default: 32768 runs (a few tens of MB at worst). */
    std::atomic<uint64_t> singlePassCap_{32768};
};

/**
 * @return a store on $RADCRIT_CAMPAIGN_CACHE, or null when the
 * variable is unset or empty (cache off, the default) or names an
 * unusable path (warned and disabled, see CampaignStore::open()).
 */
std::unique_ptr<CampaignStore> storeFromEnv();

/**
 * The store-aware front door to simulation: return the cached raw
 * campaign if `store` is non-null and has it (with launch and
 * counters rebuilt, see rebuildSimStats()), otherwise simulate and
 * — when a store is present — save the result. With store == null
 * this is exactly simulateCampaign(). When `pool` is non-null a
 * cache miss simulates on that shared pool instead of a
 * per-campaign one (config.jobs is then ignored).
 */
CampaignRaw simulateOrLoad(const DeviceModel &device,
                           Workload &workload,
                           const SimConfig &config,
                           CampaignStore *store,
                           WorkerPool *pool = nullptr);

/**
 * Streaming counterpart of simulateOrLoad(): the campaign flows
 * into `sink` batch by batch — from the cache on a hit
 * (CampaignStore::loadStream()), otherwise from the engine with a
 * tee into the store's saveSink() — so neither path materializes
 * the raw campaign. With store == null this is exactly
 * simulateCampaignStream(). Batch size comes from
 * config.batchRuns; the sink observes identical batches on the
 * hit and miss paths.
 */
void simulateOrLoadStream(const DeviceModel &device,
                          Workload &workload,
                          const SimConfig &config,
                          CampaignStore *store, RawSink &sink,
                          WorkerPool *pool = nullptr);

} // namespace radcrit

#endif // RADCRIT_CAMPAIGN_STORE_HH
