#include "campaign/engine.hh"

namespace radcrit
{

namespace
{

/** Run `fn` under a ScopedTick when `timer` is non-null. */
template <typename Fn>
void
timed(PhaseTimer *timer, Fn &&fn)
{
    if (timer) {
        ScopedTick tick(*timer);
        fn();
    } else {
        fn();
    }
}

} // anonymous namespace

Rng
runRng(const CampaignConfig &config, uint64_t run_index)
{
    return Rng(config.seed).split(run_index);
}

RunRecord
simulateRun(const StrikeSampler &sampler, Workload &workload,
            const RelativeErrorFilter &filter,
            const CampaignConfig &config, uint64_t run_index,
            Rng &rng, const RunPhaseTimers &timers)
{
    RunRecord run;
    run.index = run_index;
    timed(timers.sample,
          [&] { run.strike = sampler.sampleStrike(rng); });
    timed(timers.classify, [&] {
        run.outcome = sampler.sampleOutcome(run.strike.resource,
                                            rng);
    });
    if (run.outcome == Outcome::Sdc) {
        SdcRecord record;
        timed(timers.replay,
              [&] { record = workload.inject(run.strike, rng); });
        if (record.empty()) {
            // The corruption was digested without an output
            // mismatch: architecturally masked.
            run.outcome = Outcome::Masked;
        } else {
            timed(timers.metrics, [&] {
                run.crit = analyzeCriticality(record, filter,
                                              config.locality);
            });
        }
    }
    return run;
}

} // namespace radcrit
