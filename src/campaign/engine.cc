#include "campaign/engine.hh"

namespace radcrit
{

namespace
{

/** Run `fn` under a ScopedTick when `timer` is non-null. */
template <typename Fn>
void
timed(PhaseTimer *timer, Fn &&fn)
{
    if (timer) {
        ScopedTick tick(*timer);
        fn();
    } else {
        fn();
    }
}

} // anonymous namespace

Rng
runRng(const SimConfig &config, uint64_t run_index)
{
    return Rng(config.seed).split(run_index);
}

RawRun
simulateRun(const StrikeSampler &sampler, Workload &workload,
            const SimConfig &config, uint64_t run_index, Rng &rng,
            const RunPhaseTimers &timers)
{
    (void)config;
    RawRun run;
    run.index = run_index;
    timed(timers.sample,
          [&] { run.strike = sampler.sampleStrike(rng); });
    timed(timers.classify, [&] {
        run.outcome = sampler.sampleOutcome(run.strike.resource,
                                            rng);
    });
    if (run.outcome == Outcome::Sdc) {
        timed(timers.replay, [&] {
            run.record = workload.inject(run.strike, rng);
        });
        if (run.record.empty()) {
            // The corruption was digested without an output
            // mismatch: architecturally masked.
            run.outcome = Outcome::Masked;
            run.record = SdcRecord{};
        }
    }
    return run;
}

} // namespace radcrit
