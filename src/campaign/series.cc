#include "campaign/series.hh"

#include "common/table.hh"

namespace radcrit
{

ScatterSeries
scatterSeries(const CampaignResult &result)
{
    ScatterSeries s;
    s.label = result.inputLabel;
    for (const auto &run : result.runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        s.xs.push_back(static_cast<double>(run.crit.numIncorrect));
        s.ys.push_back(run.crit.meanRelErrPct);
    }
    return s;
}

LocalityBars
localityBars(const CampaignResult &result,
             const std::vector<Pattern> &patterns)
{
    LocalityBars out;
    for (Pattern p : patterns)
        out.segmentNames.push_back(patternName(p));

    FitBreakdown all = result.fitByPattern(false);
    FitBreakdown filtered = result.fitByPattern(true);

    StackedBar all_bar;
    all_bar.label = result.inputLabel + " All";
    for (Pattern p : patterns)
        all_bar.segments.push_back(all.of(p));
    out.bars.push_back(std::move(all_bar));

    // The paper shows a separate filtered bar only when the filter
    // changes anything (for the Phi DGEMM it does not).
    if (result.filteredOutFraction() > 0.0 ||
        filtered.total() != all.total()) {
        StackedBar f_bar;
        f_bar.label = result.inputLabel + " >" +
            TextTable::num(result.config.analysis.filterThresholdPct, 0) +
            "%";
        for (Pattern p : patterns)
            f_bar.segments.push_back(filtered.of(p));
        out.bars.push_back(std::move(f_bar));
    }
    return out;
}

std::vector<Pattern>
patterns2d()
{
    return {Pattern::Square, Pattern::Line, Pattern::Single,
            Pattern::Random};
}

std::vector<Pattern>
patterns3d()
{
    return {Pattern::Cubic, Pattern::Square, Pattern::Line,
            Pattern::Single, Pattern::Random};
}

std::vector<std::string>
runRowsHeader()
{
    return {"run", "outcome", "resource", "manifestation",
            "timeFraction",
            "numIncorrect", "meanRelErrPct", "pattern",
            "numIncorrectFiltered", "meanRelErrFilteredPct",
            "patternFiltered", "executionFiltered"};
}

std::vector<std::vector<std::string>>
runRows(const CampaignResult &result)
{
    std::vector<std::vector<std::string>> rows;
    rows.reserve(result.runs.size());
    for (const auto &run : result.runs) {
        std::vector<std::string> row;
        row.push_back(TextTable::num(run.index));
        row.push_back(outcomeName(run.outcome));
        row.push_back(resourceKindName(run.strike.resource));
        row.push_back(manifestationName(run.strike.manifestation));
        row.push_back(TextTable::num(run.strike.timeFraction, 3));
        if (run.outcome == Outcome::Sdc) {
            row.push_back(TextTable::num(
                static_cast<uint64_t>(run.crit.numIncorrect)));
            row.push_back(TextTable::num(run.crit.meanRelErrPct,
                                         3));
            row.push_back(patternName(run.crit.pattern));
            row.push_back(TextTable::num(static_cast<uint64_t>(
                run.crit.numIncorrectFiltered)));
            row.push_back(TextTable::num(
                run.crit.meanRelErrFilteredPct, 3));
            row.push_back(patternName(run.crit.patternFiltered));
            row.push_back(run.crit.executionFiltered ? "yes"
                                                     : "no");
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace radcrit
