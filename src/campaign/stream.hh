/**
 * @file
 * Streaming campaign pipeline: batched dataflow between the
 * simulate, persist, and analyze stages.
 *
 * The materialized spine (simulateCampaign() returning one big
 * CampaignRaw, analyzeCampaign() walking it after the join) caps
 * campaign size at available RAM and serializes the phases. This
 * module is the seam that removes both limits: producers push
 * contiguous, index-ordered RunBatch slices into a RawSink as
 * workers retire them, and consumers pull the same batches from a
 * RawSource, so no stage ever needs to hold more than one batch of
 * raw records. The materialized API survives unchanged as a thin
 * adapter — simulateCampaign() is simulateCampaignStream() into a
 * CollectRawSink — which is what lets the goldens and property
 * tests pin stream == materialized byte for byte.
 *
 * Delivery contract (every producer in the repo obeys it):
 *  - begin(meta) first, exactly once, before any batch;
 *  - batches are contiguous and in index order: the first batch
 *    starts at run 0 and each next batch starts where the previous
 *    one ended;
 *  - end(simStats) last, exactly once, after the final batch, with
 *    the campaign's simulation-side telemetry snapshot (empty when
 *    the producer has none, e.g. a standalone beam-log read).
 */

#ifndef RADCRIT_CAMPAIGN_STREAM_HH
#define RADCRIT_CAMPAIGN_STREAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/config.hh"
#include "campaign/raw.hh"
#include "exec/launch.hh"
#include "obs/stats_registry.hh"

namespace radcrit
{

/**
 * Everything that identifies a campaign except its runs: the
 * header of a stream, delivered once via RawSink::begin() before
 * any batch. Mirrors the non-run fields of CampaignRaw.
 */
struct CampaignMeta
{
    std::string deviceName;
    std::string workloadName;
    std::string inputLabel;
    /** The simulation parameters producing the stream. */
    SimConfig sim;
    /**
     * Launch geometry; default-constructed when the producer
     * cannot derive it (a standalone beam-log read), exactly as
     * for CampaignRaw.
     */
    KernelLaunch launch;
    /** Total sensitive area of the launch (a.u.). */
    double sensitiveAreaAu = 0.0;
};

/** @return the meta (header) of a materialized raw campaign. */
CampaignMeta campaignMeta(const CampaignRaw &raw);

/**
 * One contiguous, index-ordered slice of a campaign's runs. Batch
 * k covers [firstIndex, firstIndex + runs.size()); run
 * runs[i].index == firstIndex + i always holds.
 */
struct RunBatch
{
    uint64_t firstIndex = 0;
    std::vector<RawRun> runs;

    /** @return one past the last run index in this batch. */
    uint64_t endIndex() const { return firstIndex + runs.size(); }
};

/**
 * Consumer side of the stream. Implementations must tolerate any
 * batch size (including a single batch spanning the campaign, the
 * materialized default) and must not assume more than one batch is
 * ever alive at a time.
 */
class RawSink
{
  public:
    virtual ~RawSink() = default;

    /** Stream header; called once, before any batch. */
    virtual void begin(const CampaignMeta &meta) = 0;

    /** One batch, in index order; the sink takes ownership. */
    virtual void consume(RunBatch &&batch) = 0;

    /**
     * Stream end; called once, after the final batch.
     * @param simStats Simulation-side telemetry of the whole
     * campaign (what CampaignRaw::stats would carry), empty when
     * the producer has none.
     */
    virtual void end(const StatsSnapshot &simStats) = 0;
};

/**
 * Producer side of the stream, pull-flavored: meta up front, then
 * batches until exhausted. Drive one into a sink with pumpRaw().
 */
class RawSource
{
  public:
    virtual ~RawSource() = default;

    /** Stream header; valid from construction. */
    virtual const CampaignMeta &meta() const = 0;

    /**
     * Produce the next batch into `batch` (contents replaced).
     * @return false when the stream is exhausted (batch untouched).
     */
    virtual bool next(RunBatch &batch) = 0;

    /**
     * Simulation-side telemetry of the whole campaign; call after
     * the last batch was pulled. Empty when the source has none
     * (matching what readBeamLog() leaves in CampaignRaw::stats).
     */
    virtual StatsSnapshot simStats() = 0;
};

/**
 * The materialized adapter: collects every batch back into one
 * CampaignRaw. simulateCampaign() is simulateCampaignStream() into
 * one of these, which is what keeps the legacy API byte-identical.
 */
class CollectRawSink : public RawSink
{
  public:
    void begin(const CampaignMeta &meta) override;
    void consume(RunBatch &&batch) override;
    void end(const StatsSnapshot &simStats) override;

    /** @return the collected campaign (call after end()). */
    CampaignRaw take() { return std::move(raw_); }

    /** @return the collected campaign without giving it up. */
    const CampaignRaw &raw() const { return raw_; }

  private:
    CampaignRaw raw_;
};

/**
 * Replay a materialized campaign as a stream, in slices of
 * batchRuns (0 = the whole campaign in one batch). The CampaignRaw
 * must outlive the source.
 */
class CampaignRawSource : public RawSource
{
  public:
    CampaignRawSource(const CampaignRaw &raw, uint64_t batchRuns);

    const CampaignMeta &meta() const override { return meta_; }
    bool next(RunBatch &batch) override;
    StatsSnapshot simStats() override { return raw_->stats; }

  private:
    const CampaignRaw *raw_;
    CampaignMeta meta_;
    uint64_t batchRuns_;
    uint64_t nextIndex_ = 0;
};

/**
 * Fan a stream out to several sinks (analysis plus a beam-log
 * writer plus a store save, in the streamed CLI). Sinks receive
 * calls in the order given; each gets its own copy of every batch
 * except the last sink, which receives the original.
 */
class TeeRawSink : public RawSink
{
  public:
    explicit TeeRawSink(std::vector<RawSink *> sinks);

    void begin(const CampaignMeta &meta) override;
    void consume(RunBatch &&batch) override;
    void end(const StatsSnapshot &simStats) override;

  private:
    std::vector<RawSink *> sinks_;
};

/**
 * Drive a source to completion: begin, every batch, end.
 * @return the number of runs pumped.
 */
uint64_t pumpRaw(RawSource &source, RawSink &sink);

} // namespace radcrit

#endif // RADCRIT_CAMPAIGN_STREAM_HH
