/**
 * @file
 * Streaming campaign pipeline: batched dataflow between the
 * simulate, persist, and analyze stages.
 *
 * The materialized spine (simulateCampaign() returning one big
 * CampaignRaw, analyzeCampaign() walking it after the join) caps
 * campaign size at available RAM and serializes the phases. This
 * module is the seam that removes both limits: producers push
 * contiguous, index-ordered RunBatch slices into a RawSink as
 * workers retire them, and consumers pull the same batches from a
 * RawSource, so no stage ever needs to hold more than one batch of
 * raw records. The materialized API survives unchanged as a thin
 * adapter — simulateCampaign() is simulateCampaignStream() into a
 * CollectRawSink — which is what lets the goldens and property
 * tests pin stream == materialized byte for byte.
 *
 * Delivery contract (every producer in the repo obeys it):
 *  - begin(meta) first, exactly once, before any batch;
 *  - batches are contiguous and in index order: the first batch
 *    starts at run 0 and each next batch starts where the previous
 *    one ended;
 *  - end(simStats) last, exactly once, after the final batch, with
 *    the campaign's simulation-side telemetry snapshot (empty when
 *    the producer has none, e.g. a standalone beam-log read).
 */

#ifndef RADCRIT_CAMPAIGN_STREAM_HH
#define RADCRIT_CAMPAIGN_STREAM_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/config.hh"
#include "campaign/raw.hh"
#include "exec/launch.hh"
#include "obs/stats_registry.hh"

namespace radcrit
{

/**
 * Everything that identifies a campaign except its runs: the
 * header of a stream, delivered once via RawSink::begin() before
 * any batch. Mirrors the non-run fields of CampaignRaw.
 */
struct CampaignMeta
{
    std::string deviceName;
    std::string workloadName;
    std::string inputLabel;
    /** The simulation parameters producing the stream. */
    SimConfig sim;
    /**
     * Launch geometry; default-constructed when the producer
     * cannot derive it (a standalone beam-log read), exactly as
     * for CampaignRaw.
     */
    KernelLaunch launch;
    /** Total sensitive area of the launch (a.u.). */
    double sensitiveAreaAu = 0.0;
};

/** @return the meta (header) of a materialized raw campaign. */
CampaignMeta campaignMeta(const CampaignRaw &raw);

/**
 * One contiguous, index-ordered slice of a campaign's runs. Batch
 * k covers [firstIndex, firstIndex + runs.size()); run
 * runs[i].index == firstIndex + i always holds.
 */
struct RunBatch
{
    uint64_t firstIndex = 0;
    std::vector<RawRun> runs;

    /** @return one past the last run index in this batch. */
    uint64_t endIndex() const { return firstIndex + runs.size(); }
};

/**
 * Consumer side of the stream. Implementations must tolerate any
 * batch size (including a single batch spanning the campaign, the
 * materialized default) and must not assume more than one batch is
 * ever alive at a time.
 */
class RawSink
{
  public:
    virtual ~RawSink() = default;

    /** Stream header; called once, before any batch. */
    virtual void begin(const CampaignMeta &meta) = 0;

    /** One batch, in index order; the sink takes ownership. */
    virtual void consume(RunBatch &&batch) = 0;

    /**
     * Stream end; called once, after the final batch.
     * @param simStats Simulation-side telemetry of the whole
     * campaign (what CampaignRaw::stats would carry), empty when
     * the producer has none.
     */
    virtual void end(const StatsSnapshot &simStats) = 0;
};

/**
 * Producer side of the stream, pull-flavored: meta up front, then
 * batches until exhausted. Drive one into a sink with pumpRaw().
 */
class RawSource
{
  public:
    virtual ~RawSource() = default;

    /** Stream header; valid from construction. */
    virtual const CampaignMeta &meta() const = 0;

    /**
     * Produce the next batch into `batch` (contents replaced).
     * @return false when the stream is exhausted (batch untouched).
     */
    virtual bool next(RunBatch &batch) = 0;

    /**
     * Simulation-side telemetry of the whole campaign; call after
     * the last batch was pulled. Empty when the source has none
     * (matching what readBeamLog() leaves in CampaignRaw::stats).
     */
    virtual StatsSnapshot simStats() = 0;
};

/**
 * The materialized adapter: collects every batch back into one
 * CampaignRaw. simulateCampaign() is simulateCampaignStream() into
 * one of these, which is what keeps the legacy API byte-identical.
 */
class CollectRawSink : public RawSink
{
  public:
    void begin(const CampaignMeta &meta) override;
    void consume(RunBatch &&batch) override;
    void end(const StatsSnapshot &simStats) override;

    /** @return the collected campaign (call after end()). */
    CampaignRaw take() { return std::move(raw_); }

    /** @return the collected campaign without giving it up. */
    const CampaignRaw &raw() const { return raw_; }

  private:
    CampaignRaw raw_;
};

/**
 * Replay a materialized campaign as a stream, in slices of
 * batchRuns (0 = the whole campaign in one batch). The CampaignRaw
 * must outlive the source.
 */
class CampaignRawSource : public RawSource
{
  public:
    CampaignRawSource(const CampaignRaw &raw, uint64_t batchRuns);

    const CampaignMeta &meta() const override { return meta_; }
    bool next(RunBatch &batch) override;
    StatsSnapshot simStats() override { return raw_->stats; }

  private:
    const CampaignRaw *raw_;
    CampaignMeta meta_;
    uint64_t batchRuns_;
    uint64_t nextIndex_ = 0;
};

/**
 * Fan a stream out to several sinks (analysis plus a beam-log
 * writer plus a store save, in the streamed CLI). Sinks receive
 * calls in the order given; each gets its own copy of every batch
 * except the last sink, which receives the original.
 */
class TeeRawSink : public RawSink
{
  public:
    explicit TeeRawSink(std::vector<RawSink *> sinks);

    void begin(const CampaignMeta &meta) override;
    void consume(RunBatch &&batch) override;
    void end(const StatsSnapshot &simStats) override;

  private:
    std::vector<RawSink *> sinks_;
};

/**
 * Drive a source to completion: begin, every batch, end.
 * @return the number of runs pumped.
 */
uint64_t pumpRaw(RawSource &source, RawSink &sink);

/**
 * Process-wide cap on concurrent background store I/O. The async
 * stream adapters bracket every inner read/write with a lease, so
 * `--io-threads N` bounds how many campaigns' store traffic hits
 * the filesystem at once without ever parking an adapter for its
 * whole lifetime (leases are per-operation, which keeps the gate
 * deadlock-free: a lease holder always completes its one call).
 */
class IoThreadGate
{
  public:
    /** @param slots Concurrent leases allowed (0 = unlimited). */
    explicit IoThreadGate(unsigned slots = 0);

    /** Reconfigure the slot count (callers must be quiesced). */
    void configure(unsigned slots);

    /** @return the configured slot count (0 = unlimited). */
    unsigned slots() const;

    /** Block until a slot is free, then take it. */
    void acquire();

    /** Return a slot taken by acquire(). */
    void release();

    /** RAII lease: acquire on construction, release on scope end. */
    class Lease
    {
      public:
        explicit Lease(IoThreadGate *gate) : gate_(gate)
        {
            if (gate_)
                gate_->acquire();
        }
        ~Lease()
        {
            if (gate_)
                gate_->release();
        }
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;

      private:
        IoThreadGate *gate_;
    };

    /** The process-wide gate the CLI front ends configure. */
    static IoThreadGate &global();

  private:
    mutable std::mutex mutex_;
    std::condition_variable freed_;
    unsigned slots_;
    unsigned inUse_ = 0;
};

/**
 * Background-thread adapter over a RawSink: begin/consume/end are
 * enqueued onto a bounded op queue and replayed against the inner
 * sink by one I/O thread, so entry serialization (the store save
 * behind the tee) comes off the simulate critical path. consume()
 * blocks when the queue is full (bounded memory: at most
 * `queueCapacity` batches are ever in flight) and end() blocks
 * until the inner sink fully drained, so the delivery contract the
 * inner sink observes is exactly the producer's. An inner-sink
 * exception is captured on the I/O thread, stops further
 * forwarding, and is rethrown on the producer from the next
 * consume()/end() call.
 *
 * Single-use, like every sink: one begin..end cycle.
 */
class AsyncSaveSink : public RawSink
{
  public:
    /**
     * @param inner The sink to drive from the I/O thread; must
     * outlive this adapter.
     * @param gate Optional concurrency gate; every inner call is
     * bracketed by a lease.
     * @param queueCapacity Max queued batches before consume()
     * blocks (0 is treated as 1).
     */
    explicit AsyncSaveSink(RawSink &inner,
                           IoThreadGate *gate = nullptr,
                           size_t queueCapacity = 4);

    /** Joins the I/O thread (abandoning queued ops on abnormal
     * teardown — a completed end() has already drained). */
    ~AsyncSaveSink() override;

    void begin(const CampaignMeta &meta) override;
    void consume(RunBatch &&batch) override;
    void end(const StatsSnapshot &simStats) override;

    /** @return batches forwarded to the inner sink so far. */
    uint64_t batches() const;

    /** @return high-water mark of the op queue depth. */
    uint64_t queuePeak() const;

    /** @return nanoseconds the I/O thread spent in the inner
     * sink (the overlap won against the producer). */
    uint64_t ioBusyNs() const;

  private:
    struct Op
    {
        enum class Kind { Begin, Batch, End } kind;
        CampaignMeta meta;
        RunBatch batch;
        StatsSnapshot stats;
    };

    void ioLoop();
    void push(Op &&op);
    void rethrowPending();

    RawSink &inner_;
    IoThreadGate *gate_;
    size_t capacity_;

    mutable std::mutex mutex_;
    std::condition_variable spaceFreed_;
    std::condition_variable opQueued_;
    std::condition_variable drained_;
    std::deque<Op> queue_;
    bool stop_ = false;
    bool done_ = false;
    bool failed_ = false;
    std::exception_ptr error_;
    uint64_t batches_ = 0;
    uint64_t queuePeak_ = 0;
    uint64_t ioBusyNs_ = 0;
    std::thread io_;
};

/**
 * Background-prefetch adapter over a RawSource: one I/O thread
 * pulls batches from the inner source (entry parse, for a store
 * load) into a bounded queue while the consumer analyzes the
 * previous one, overlapping store reads with downstream work.
 * meta() is captured on the calling thread at construction; after
 * that the inner source is touched only by the I/O thread. An
 * inner exception is rethrown from next()/simStats() on the
 * consumer.
 */
class AsyncRawSource : public RawSource
{
  public:
    /**
     * @param inner Source to prefetch from; must outlive this
     * adapter.
     * @param gate Optional concurrency gate; every inner call is
     * bracketed by a lease.
     * @param queueCapacity Max prefetched batches (0 treated as 1).
     */
    explicit AsyncRawSource(RawSource &inner,
                            IoThreadGate *gate = nullptr,
                            size_t queueCapacity = 4);

    ~AsyncRawSource() override;

    const CampaignMeta &meta() const override { return meta_; }
    bool next(RunBatch &batch) override;
    StatsSnapshot simStats() override;

    /** @return high-water mark of the prefetch queue depth. */
    uint64_t queuePeak() const;

    /** @return nanoseconds the I/O thread spent in the inner
     * source. */
    uint64_t ioBusyNs() const;

  private:
    void ioLoop();

    RawSource &inner_;
    IoThreadGate *gate_;
    size_t capacity_;
    CampaignMeta meta_;

    mutable std::mutex mutex_;
    std::condition_variable spaceFreed_;
    std::condition_variable batchReady_;
    std::deque<RunBatch> queue_;
    bool exhausted_ = false;
    bool stop_ = false;
    std::exception_ptr error_;
    StatsSnapshot simStats_;
    uint64_t queuePeak_ = 0;
    uint64_t ioBusyNs_ = 0;
    std::thread io_;
};

} // namespace radcrit

#endif // RADCRIT_CAMPAIGN_STREAM_HH
