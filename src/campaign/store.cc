#include "campaign/store.hh"

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <thread>

#include <unistd.h>

#include "campaign/runner.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "exec/chaos.hh"
#include "exec/launch.hh"
#include "logs/beamlog.hh"
#include "obs/stats_registry.hh"

namespace radcrit
{

namespace
{

/** Chain a length-prefixed string into a hash. */
uint64_t
hashString(uint64_t h, const std::string &s)
{
    h = Rng::hashCombine(h, s.size());
    for (char c : s)
        h = Rng::hashCombine(h, static_cast<uint64_t>(
                                    static_cast<unsigned char>(c)));
    return h;
}

} // anonymous namespace

CampaignKey
campaignKey(const CampaignRaw &raw)
{
    return CampaignKey{raw.deviceName, raw.workloadName,
                       raw.inputLabel, raw.sim};
}

uint64_t
campaignKeyHash(const CampaignKey &key)
{
    uint64_t h = 0x5241444353544f52ULL; // "RADCSTOR"
    h = hashString(h, key.device);
    h = hashString(h, key.workload);
    h = hashString(h, key.input);
    h = Rng::hashCombine(h, key.sim.seed);
    h = Rng::hashCombine(h, key.sim.faultyRuns);
    h = Rng::hashCombine(h,
                         static_cast<uint64_t>(beamLogVersion));
    return h;
}

std::string
campaignKeyFileName(const CampaignKey &key)
{
    return statToken(key.device) + "-" + statToken(key.workload) +
        "-" + statToken(key.input) + "-" +
        strprintf("%016llx",
                  static_cast<unsigned long long>(
                      campaignKeyHash(key))) +
        ".beamlog";
}

CampaignStore::CampaignStore(const std::string &dir) : dir_(dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        fatal("cannot create campaign cache directory '%s': %s",
              dir_.c_str(), ec.message().c_str());
    if (!std::filesystem::is_directory(dir_))
        fatal("campaign cache path '%s' exists but is not a "
              "directory",
              dir_.c_str());
}

std::unique_ptr<CampaignStore>
CampaignStore::open(const std::string &dir)
{
    // Validate up front: a cache path that is a regular file (or
    // cannot be created) would otherwise miss on every load and
    // only fail much later, at the first save.
    std::error_code ec;
    if (std::filesystem::exists(dir, ec) &&
        !std::filesystem::is_directory(dir, ec)) {
        warn("campaign cache path '%s' exists but is not a "
             "directory; caching disabled",
             dir.c_str());
        return nullptr;
    }
    std::filesystem::create_directories(dir, ec);
    if (ec || !std::filesystem::is_directory(dir)) {
        warn("cannot create campaign cache directory '%s'%s%s; "
             "caching disabled",
             dir.c_str(), ec ? ": " : "",
             ec ? ec.message().c_str() : "");
        return nullptr;
    }
    return std::make_unique<CampaignStore>(dir);
}

std::string
CampaignStore::pathFor(const CampaignKey &key) const
{
    return dir_ + "/" + campaignKeyFileName(key);
}

void
CampaignStore::quarantine(const std::string &path,
                          const char *why)
{
    // Keep the bad bytes for autopsy, but make sure they are never
    // parsed again: every future lookup of this key starts from a
    // clean miss. If even the rename fails, delete the entry — a
    // corrupt file that keeps its cache name would fail every load.
    std::string aside = path + ".quarantined";
    std::error_code ec;
    std::filesystem::rename(path, aside, ec);
    if (ec) {
        std::filesystem::remove(path, ec);
        aside = "(removed)";
    }
    warn("campaign cache entry '%s' quarantined to '%s': %s",
         path.c_str(), aside.c_str(), why);
    ++quarantined_;
    StatsRegistry::global()
        .counter("campaign.store.quarantined")
        .inc();
}

std::optional<CampaignRaw>
CampaignStore::load(const CampaignKey &key)
{
    std::string path = pathFor(key);
    Counter &hit =
        StatsRegistry::global().counter("campaign.store.hit");
    Counter &miss =
        StatsRegistry::global().counter("campaign.store.miss");

    if (!std::filesystem::exists(path)) {
        ++misses_;
        miss.inc();
        return std::nullopt;
    }

    // Read corrupt entries twice before giving up: the first
    // failure may be a torn read of an entry another process is
    // just renaming into place (rename is atomic, but the pre-read
    // exists() check can race it on some filesystems). A second
    // failure means the bytes themselves are bad — quarantine the
    // entry and re-simulate.
    std::string error;
    std::optional<CampaignRaw> parsed =
        tryReadBeamLogFile(path, &error);
    if (!parsed)
        parsed = tryReadBeamLogFile(path, &error);
    if (!parsed) {
        quarantine(path, error.c_str());
        ++misses_;
        miss.inc();
        return std::nullopt;
    }

    CampaignRaw raw = std::move(*parsed);
    if (raw.deviceName != key.device ||
        raw.workloadName != key.workload ||
        raw.inputLabel != key.input ||
        raw.sim.seed != key.sim.seed ||
        raw.runs.size() != key.sim.faultyRuns) {
        std::string why = strprintf(
            "entry does not match its key (%s/%s %s seed=%llu "
            "runs=%llu)",
            key.device.c_str(), key.workload.c_str(),
            key.input.c_str(),
            static_cast<unsigned long long>(key.sim.seed),
            static_cast<unsigned long long>(key.sim.faultyRuns));
        quarantine(path, why.c_str());
        ++misses_;
        miss.inc();
        return std::nullopt;
    }

    ++hits_;
    hit.inc();
    return raw;
}

namespace
{

/**
 * The staging sink behind CampaignStore::saveSink(): streams the
 * campaign into "<entry>.tmp.<pid>.<tid>" via BeamLogWriter as
 * batches arrive and renames it into place at end(), reproducing
 * save()'s bytes, chaos corrupt-write hook, and atomicity.
 */
class StoreSaveSink : public RawSink
{
  public:
    explicit StoreSaveSink(const CampaignStore &store)
        : store_(&store)
    {
    }

    void begin(const CampaignMeta &meta) override
    {
        CampaignKey key{meta.deviceName, meta.workloadName,
                        meta.inputLabel, meta.sim};
        path_ = store_->pathFor(key);
        tmp_ = path_ +
            strprintf(".tmp.%ld.%zu",
                      static_cast<long>(getpid()),
                      std::hash<std::thread::id>{}(
                          std::this_thread::get_id()));
        out_.open(tmp_);
        if (!out_)
            fatal("cannot open '%s' for beam-log output",
                  tmp_.c_str());
        writer_.emplace(out_);
        writer_->header(meta.deviceName, meta.workloadName,
                        meta.inputLabel, meta.sim.seed,
                        meta.sim.faultyRuns,
                        meta.sensitiveAreaAu);
    }

    void consume(RunBatch &&batch) override
    {
        for (const RawRun &run : batch.runs)
            writer_->append(run);
    }

    void end(const StatsSnapshot &) override
    {
        out_.flush();
        if (!out_)
            fatal("write error on beam log '%s'", tmp_.c_str());
        out_.close();
        // Same planned corrupt-write fault as save(): truncate the
        // staged entry before the rename, exercising the load
        // path's retry-then-quarantine recovery.
        if (ChaosEngine *engine = chaos()) {
            if (engine->shouldCorruptWrite("store")) {
                std::error_code tec;
                uint64_t size =
                    std::filesystem::file_size(tmp_, tec);
                if (!tec)
                    std::filesystem::resize_file(tmp_, size / 2,
                                                 tec);
            }
        }
        std::error_code ec;
        std::filesystem::rename(tmp_, path_, ec);
        if (ec) {
            std::filesystem::remove(tmp_);
            fatal("cannot move campaign cache entry into '%s': %s",
                  path_.c_str(), ec.message().c_str());
        }
    }

  private:
    const CampaignStore *store_;
    std::string path_;
    std::string tmp_;
    std::ofstream out_;
    std::optional<BeamLogWriter> writer_;
};

} // anonymous namespace

bool
CampaignStore::loadStream(const CampaignKey &key,
                          const KernelLaunch &launch,
                          RawSink &sink, uint64_t batchRuns,
                          unsigned ioThreads)
{
    std::string path = pathFor(key);
    Counter &hit =
        StatsRegistry::global().counter("campaign.store.hit");
    Counter &miss =
        StatsRegistry::global().counter("campaign.store.miss");

    if (!std::filesystem::exists(path)) {
        ++misses_;
        miss.inc();
        return false;
    }

    std::string mismatch = strprintf(
        "entry does not match its key (%s/%s %s seed=%llu "
        "runs=%llu)",
        key.device.c_str(), key.workload.c_str(),
        key.input.c_str(),
        static_cast<unsigned long long>(key.sim.seed),
        static_cast<unsigned long long>(key.sim.faultyRuns));

    // The sink must never see a batch from an entry that later
    // turns out corrupt (a streaming consumer cannot un-consume),
    // so every byte is validated before delivery. Entries small
    // enough to buffer take the single-pass shape: parse once into
    // a held-back prefix, deliver only after the whole entry
    // proved clean. The size decision keys on key.sim.faultyRuns —
    // an entry whose header disagrees is quarantined in either
    // path, so the two paths cannot disagree about a valid entry.
    if (key.sim.faultyRuns <= singlePassCap()) {
        std::vector<RunBatch> buffered;
        CampaignMeta meta;
        // Two parse attempts, like load(): the first failure may
        // be a torn read racing another process's atomic rename.
        auto attempt = [&](std::string *error) -> bool {
            buffered.clear();
            std::ifstream in(path);
            if (!in) {
                if (error)
                    *error = strprintf(
                        "cannot open beam log '%s'",
                        path.c_str());
                return false;
            }
            try {
                BeamLogSource source(in, batchRuns);
                meta = source.meta();
                if (meta.deviceName != key.device ||
                    meta.workloadName != key.workload ||
                    meta.inputLabel != key.input ||
                    meta.sim.seed != key.sim.seed ||
                    meta.sim.faultyRuns != key.sim.faultyRuns) {
                    if (error)
                        *error = mismatch;
                    return false;
                }
                uint64_t total = 0;
                RunBatch batch;
                while (source.next(batch)) {
                    total += batch.runs.size();
                    buffered.push_back(std::move(batch));
                    batch = RunBatch{};
                }
                if (total != key.sim.faultyRuns) {
                    if (error)
                        *error = mismatch;
                    return false;
                }
            } catch (const BeamLogParseError &e) {
                if (error)
                    *error = e.what();
                return false;
            }
            return true;
        };

        std::string error;
        if (!attempt(&error) && !attempt(&error)) {
            quarantine(path, error.c_str());
            ++misses_;
            miss.inc();
            return false;
        }

        // Deliver the validated buffer. Meta carries the caller's
        // sim config and launch (execution details outside the
        // key), and end() gets the rebuilt simulation counters —
        // exactly the materialized hit shape.
        meta.sim = key.sim;
        meta.launch = launch;
        SimStatsRebuilder rebuilder(meta.deviceName,
                                    meta.workloadName,
                                    meta.sensitiveAreaAu,
                                    launch.occupancy);
        sink.begin(meta);
        for (RunBatch &batch : buffered) {
            for (const RawRun &run : batch.runs)
                rebuilder.fold(run);
            sink.consume(std::move(batch));
        }
        buffered.clear();
        sink.end(rebuilder.finish(StatsRegistry::global()));
        ++hits_;
        hit.inc();
        return true;
    }

    // Bounded-memory shape for entries too big to buffer:
    // validate the whole entry record by record first, then stream
    // it to the sink in a second pass. Two validation attempts,
    // like load(), to tolerate a rename racing the exists() check;
    // then quarantine.
    auto validate = [&](std::string *error) -> bool {
        std::ifstream in(path);
        if (!in) {
            if (error)
                *error = strprintf("cannot open beam log '%s'",
                                   path.c_str());
            return false;
        }
        try {
            BeamLogReader reader(in);
            if (reader.device() != key.device ||
                reader.workload() != key.workload ||
                reader.input() != key.input ||
                reader.seed() != key.sim.seed ||
                reader.declaredRuns() != key.sim.faultyRuns) {
                if (error)
                    *error = mismatch;
                return false;
            }
            while (reader.next()) {
            }
        } catch (const BeamLogParseError &e) {
            if (error)
                *error = e.what();
            return false;
        }
        return true;
    };

    std::string error;
    bool valid = validate(&error) || validate(&error);
    if (!valid) {
        quarantine(path, error.c_str());
        ++misses_;
        miss.inc();
        return false;
    }

    // Stream pass over the validated bytes. With ioThreads > 0 the
    // re-parse runs on a background I/O thread (AsyncRawSource) so
    // it overlaps the sink's work instead of serializing with it.
    std::ifstream in(path);
    if (!in) {
        ++misses_;
        miss.inc();
        return false;
    }
    try {
        BeamLogSource file_source(in, batchRuns);
        std::unique_ptr<AsyncRawSource> async;
        RawSource *source = &file_source;
        if (ioThreads > 0) {
            async = std::make_unique<AsyncRawSource>(
                file_source, &IoThreadGate::global());
            source = async.get();
        }
        CampaignMeta meta = source->meta();
        meta.sim = key.sim;
        meta.launch = launch;

        SimStatsRebuilder rebuilder(meta.deviceName,
                                    meta.workloadName,
                                    meta.sensitiveAreaAu,
                                    launch.occupancy);
        sink.begin(meta);
        RunBatch batch;
        while (source->next(batch)) {
            for (const RawRun &run : batch.runs)
                rebuilder.fold(run);
            sink.consume(std::move(batch));
            batch = RunBatch{};
        }
        sink.end(rebuilder.finish(StatsRegistry::global()));
    } catch (const BeamLogParseError &e) {
        // The entry validated moments ago; bytes changing under a
        // mid-stream reader mean something is rewriting cache
        // entries in place, which no writer in this repo does.
        // The sink may already have consumed batches, so there is
        // no clean miss to fall back to.
        fatal("campaign cache entry '%s' changed while "
              "streaming: %s",
              path.c_str(), e.what());
    }

    ++hits_;
    hit.inc();
    return true;
}

std::unique_ptr<RawSink>
CampaignStore::saveSink()
{
    return std::make_unique<StoreSaveSink>(*this);
}

void
CampaignStore::save(const CampaignRaw &raw)
{
    std::string path = pathFor(campaignKey(raw));
    // Write-then-rename so concurrent writers sharing a cache
    // directory never observe a torn entry. The tmp name carries
    // pid and thread id so neither concurrent processes nor
    // threads of one process clobber each other's staging file.
    std::string tmp = path +
        strprintf(".tmp.%ld.%zu", static_cast<long>(getpid()),
                  std::hash<std::thread::id>{}(
                      std::this_thread::get_id()));
    writeBeamLogFile(raw, tmp);
    // A planned corrupt-write fault truncates the staged entry
    // before the rename — the torn-entry shape a crash mid-write
    // would leave if saves were not staged, exercising the load
    // path's retry-then-quarantine recovery.
    if (ChaosEngine *engine = chaos()) {
        if (engine->shouldCorruptWrite("store")) {
            std::error_code tec;
            uint64_t size = std::filesystem::file_size(tmp, tec);
            if (!tec)
                std::filesystem::resize_file(tmp, size / 2, tec);
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp);
        fatal("cannot move campaign cache entry into '%s': %s",
              path.c_str(), ec.message().c_str());
    }
}

std::unique_ptr<CampaignStore>
storeFromEnv()
{
    const char *dir = std::getenv("RADCRIT_CAMPAIGN_CACHE");
    if (!dir || !*dir)
        return nullptr;
    return CampaignStore::open(dir);
}

CampaignRaw
simulateOrLoad(const DeviceModel &device, Workload &workload,
               const SimConfig &config, CampaignStore *store,
               WorkerPool *pool)
{
    if (store) {
        CampaignKey key{device.name, workload.name(),
                        workload.inputLabel(), config};
        if (auto cached = store->load(key)) {
            CampaignRaw raw = std::move(*cached);
            // jobs/progressEvery are execution details outside the
            // key; carry the caller's values.
            raw.sim = config;
            raw.launch = buildLaunch(device, workload.traits());
            raw.stats =
                rebuildSimStats(raw, StatsRegistry::global());
            return raw;
        }
    }
    CampaignRaw raw = pool
        ? simulateCampaign(device, workload, config, *pool)
        : simulateCampaign(device, workload, config);
    if (store)
        store->save(raw);
    return raw;
}

void
simulateOrLoadStream(const DeviceModel &device, Workload &workload,
                     const SimConfig &config, CampaignStore *store,
                     RawSink &sink, WorkerPool *pool)
{
    if (store) {
        CampaignKey key{device.name, workload.name(),
                        workload.inputLabel(), config};
        KernelLaunch launch =
            buildLaunch(device, workload.traits());
        if (store->loadStream(key, launch, sink,
                              config.batchRuns,
                              config.ioThreads))
            return;
        std::unique_ptr<RawSink> save = store->saveSink();
        // With --io-threads the store save (entry serialization)
        // rides a background I/O thread behind a bounded queue, so
        // persisting overlaps simulation instead of running inline
        // with the tee. The saved bytes are identical either way.
        std::unique_ptr<AsyncSaveSink> async_save;
        RawSink *save_side = save.get();
        if (config.ioThreads > 0) {
            async_save = std::make_unique<AsyncSaveSink>(
                *save, &IoThreadGate::global());
            save_side = async_save.get();
        }
        TeeRawSink tee({&sink, save_side});
        if (pool)
            simulateCampaignStream(device, workload, config,
                                   *pool, tee);
        else
            simulateCampaignStream(device, workload, config, tee);
        return;
    }
    if (pool)
        simulateCampaignStream(device, workload, config, *pool,
                               sink);
    else
        simulateCampaignStream(device, workload, config, sink);
}

} // namespace radcrit
