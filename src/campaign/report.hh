/**
 * @file
 * The per-campaign HTML report: one self-contained file a beam-test
 * operator can archive next to the beam log, covering the outcome
 * distribution, criticality/FIT tables, per-phase wall-clock
 * attribution, the campaign's log-scale histograms, and (when a
 * flight recorder ran) per-worker utilization.
 *
 * Composed from obs/report.hh's HtmlReport builder; everything in
 * the document derives from the CampaignResult (including its stats
 * snapshot) plus an optional Timeline, so the report is
 * deterministic in content modulo wall-clock values. Exposed on the
 * CLI as `radcrit_cli report <beamlog>` and `--report <file>` on
 * `run`/`analyze`.
 */

#ifndef RADCRIT_CAMPAIGN_REPORT_HH
#define RADCRIT_CAMPAIGN_REPORT_HH

#include <iosfwd>
#include <string>

#include "campaign/runner.hh"
#include "obs/procmem.hh"
#include "obs/timeline.hh"

namespace radcrit
{

/**
 * Render the campaign report document.
 *
 * @param os Destination stream.
 * @param result The analyzed campaign.
 * @param timeline Optional flight recorder whose per-worker lanes
 * feed the worker-utilization section (quiescent use only).
 * @param mem Optional process-memory sample (peak/current RSS)
 * surfaced in the wall-clock attribution section. Passed in
 * explicitly — the CLI samples at render time — so rendering stays
 * a pure function of its inputs.
 */
void writeCampaignReport(std::ostream &os,
                         const CampaignResult &result,
                         const Timeline *timeline = nullptr,
                         const ProcMemSample *mem = nullptr);

/**
 * writeCampaignReport() into `path`; fatal() when the file cannot
 * be opened.
 */
void writeCampaignReportFile(const CampaignResult &result,
                             const std::string &path,
                             const Timeline *timeline = nullptr,
                             const ProcMemSample *mem = nullptr);

} // namespace radcrit

#endif // RADCRIT_CAMPAIGN_REPORT_HH
