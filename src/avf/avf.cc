#include "avf/avf.hh"

namespace radcrit
{

std::vector<ResourceAvf>
computeAvf(const CampaignResult &result)
{
    std::array<uint64_t, numResourceKinds> strikes{};
    std::array<uint64_t, numResourceKinds> any{};
    std::array<uint64_t, numResourceKinds> sdc{};
    std::array<uint64_t, numResourceKinds> critical{};

    for (const auto &run : result.runs) {
        // Infra outcomes are harness failures, not device faults:
        // the strike never manifested, so it contributes to no
        // vulnerability factor.
        if (run.outcome == Outcome::InfraError ||
            run.outcome == Outcome::InfraTimeout)
            continue;
        auto i = static_cast<size_t>(run.strike.resource);
        ++strikes[i];
        if (run.outcome != Outcome::Masked)
            ++any[i];
        if (run.outcome == Outcome::Sdc) {
            ++sdc[i];
            if (!run.crit.executionFiltered)
                ++critical[i];
        }
    }

    std::vector<ResourceAvf> out;
    for (size_t i = 0; i < numResourceKinds; ++i) {
        if (strikes[i] == 0)
            continue;
        ResourceAvf r;
        r.resource = static_cast<ResourceKind>(i);
        r.strikes = strikes[i];
        auto n = static_cast<double>(strikes[i]);
        r.avfAny = static_cast<double>(any[i]) / n;
        r.avfSdc = static_cast<double>(sdc[i]) / n;
        r.avfCritical = static_cast<double>(critical[i]) / n;
        out.push_back(r);
    }
    return out;
}

bool
injectorAccessible(ResourceKind kind)
{
    switch (kind) {
      case ResourceKind::RegisterFile:
      case ResourceKind::L1Cache:
      case ResourceKind::SharedMemory:
      case ResourceKind::L2Cache:
        return true; // architecturally visible state
      default:
        // Schedulers, dispatchers, FPU/SFU logic, control logic,
        // pipeline latches and interconnect are inaccessible to
        // software injectors (paper IV-D).
        return false;
    }
}

InjectorCoverage
injectorCoverage(const CampaignResult &result)
{
    InjectorCoverage cov;
    uint64_t strikes = 0, strikes_vis = 0;
    uint64_t sdc = 0, sdc_vis = 0;
    uint64_t critical = 0, critical_vis = 0;
    uint64_t det = 0, det_vis = 0;

    for (const auto &run : result.runs) {
        bool visible = injectorAccessible(run.strike.resource);
        ++strikes;
        strikes_vis += visible;
        if (run.outcome == Outcome::Sdc) {
            ++sdc;
            sdc_vis += visible;
            if (!run.crit.executionFiltered) {
                ++critical;
                critical_vis += visible;
            }
        } else if (run.outcome == Outcome::Crash ||
                   run.outcome == Outcome::Hang) {
            ++det;
            det_vis += visible;
        }
    }

    auto frac = [](uint64_t num, uint64_t den) {
        return den ? static_cast<double>(num) /
            static_cast<double>(den) : 0.0;
    };
    cov.strikeCoverage = frac(strikes_vis, strikes);
    cov.sdcCoverage = frac(sdc_vis, sdc);
    cov.criticalFitCoverage = frac(critical_vis, critical);
    cov.detectableCoverage = frac(det_vis, det);
    return cov;
}

} // namespace radcrit
