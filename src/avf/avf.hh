/**
 * @file
 * Architectural / Program Vulnerability Factor estimation and the
 * fault-injector coverage study.
 *
 * The paper's methodology section (IV-D) positions beam testing
 * against fault-injection simulation: injectors measure the AVF
 * ("the probability for a failure in a resource to be observed at
 * the output", Mukherjee et al. [26]) or the PVF (Sridharan &
 * Kaeli [37]) but "provide the user with access to only a limited
 * set of GPU resources. Thus, not all the possible sources of
 * errors can be considered. Hardware schedulers and dispatchers as
 * well as the PCIe controller, for instance, are among the
 * inaccessible resources."
 *
 * This module computes per-resource AVFs from radcrit campaigns and
 * quantifies exactly that limitation: how much of the beam-observed
 * criticality a software injector restricted to the
 * architecturally-visible state would have seen.
 */

#ifndef RADCRIT_AVF_AVF_HH
#define RADCRIT_AVF_AVF_HH

#include <vector>

#include "arch/resource.hh"
#include "campaign/runner.hh"

namespace radcrit
{

/** Per-resource vulnerability factors estimated from a campaign. */
struct ResourceAvf
{
    ResourceKind resource = ResourceKind::NumKinds;
    /** Strikes sampled in this resource. */
    uint64_t strikes = 0;
    /** AVF: P(any program-visible failure | upset). */
    double avfAny = 0.0;
    /** SDC-only AVF: P(silent corruption | upset). */
    double avfSdc = 0.0;
    /**
     * Critical AVF: P(SDC surviving the tolerance filter | upset)
     * — the PVF-style, program-semantics-aware figure.
     */
    double avfCritical = 0.0;
};

/** Compute per-resource AVFs (ordered by ResourceKind). */
std::vector<ResourceAvf>
computeAvf(const CampaignResult &result);

/**
 * The set of resources a SASSIFI/NVBitFI-style software injector
 * can reach: architecturally visible state (registers, memories).
 * Schedulers, dispatchers, functional-unit logic, control and
 * interconnect are inaccessible (paper IV-D).
 */
bool injectorAccessible(ResourceKind kind);

/** Fault-injector coverage relative to the beam campaign. */
struct InjectorCoverage
{
    /** Fraction of all strikes in injector-reachable resources. */
    double strikeCoverage = 0.0;
    /** Fraction of SDC runs an injector-only study would see. */
    double sdcCoverage = 0.0;
    /** Fraction of *critical* (above-filter) SDC FIT visible. */
    double criticalFitCoverage = 0.0;
    /** Fraction of crash/hang events visible. */
    double detectableCoverage = 0.0;
};

/**
 * Quantify how much of the campaign's observed behaviour a
 * software fault injector restricted to injectorAccessible()
 * resources would capture.
 */
InjectorCoverage
injectorCoverage(const CampaignResult &result);

} // namespace radcrit

#endif // RADCRIT_AVF_AVF_HH
