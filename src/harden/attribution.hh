/**
 * @file
 * Criticality attribution: which architectural resource is
 * responsible for how much of a launch's critical (above-tolerance)
 * FIT. This is the analysis the paper's conclusion calls for:
 * "apply selective hardening to only those procedures, variables,
 * or resources whose corruption is likely to produce the observed
 * critical errors" (Section VI).
 */

#ifndef RADCRIT_HARDEN_ATTRIBUTION_HH
#define RADCRIT_HARDEN_ATTRIBUTION_HH

#include <vector>

#include "arch/resource.hh"
#include "campaign/runner.hh"

namespace radcrit
{

/** Per-resource criticality contribution of one campaign. */
struct ResourceCriticality
{
    ResourceKind resource = ResourceKind::NumKinds;
    /** Strikes that landed in this resource. */
    uint64_t strikes = 0;
    /** SDC runs attributed to this resource. */
    uint64_t sdcRuns = 0;
    /** SDC runs that survive the relative-error filter. */
    uint64_t criticalRuns = 0;
    /** Crash + hang runs attributed to this resource. */
    uint64_t detectableRuns = 0;
    /** Critical (filtered) FIT contribution, a.u. */
    double criticalFitAu = 0.0;
    /** Share of the launch's sensitive area. */
    double weightShare = 0.0;
};

/**
 * Attribute the campaign's critical FIT to resources, sorted by
 * descending criticalFitAu.
 */
std::vector<ResourceCriticality>
attributeCriticality(const CampaignResult &result);

} // namespace radcrit

#endif // RADCRIT_HARDEN_ATTRIBUTION_HH
