#include "harden/advisor.hh"

#include <algorithm>

#include "common/logging.hh"

namespace radcrit
{

std::vector<HardeningOption>
standardOptions(const DeviceModel &device)
{
    std::vector<HardeningOption> options;
    auto add = [&](ResourceKind kind, const char *technique,
                   double scale, double cost) {
        if (device.hasResource(kind))
            options.push_back({kind, technique, scale, cost});
    };
    add(ResourceKind::RegisterFile,
        "SECDED ECC on register file + operand queues", 0.10,
        6.0);
    add(ResourceKind::L1Cache, "SECDED ECC on L1 data arrays",
        0.10, 3.0);
    add(ResourceKind::SharedMemory,
        "SECDED ECC on scratchpad", 0.10, 3.0);
    add(ResourceKind::L2Cache,
        "DECTED ECC + tag duplication on LLC", 0.12, 4.0);
    add(ResourceKind::Scheduler,
        "parity-protected scheduler state + re-dispatch", 0.15,
        4.0);
    add(ResourceKind::Dispatcher,
        "instruction-encoding parity + replay", 0.20, 3.0);
    add(ResourceKind::Fpu, "residue-checked FPU lanes", 0.15,
        8.0);
    add(ResourceKind::Sfu,
        "duplicated special-function units", 0.05, 5.0);
    add(ResourceKind::ControlLogic,
        "triplicated launch/control state machines", 0.10, 2.0);
    add(ResourceKind::PipelineLatch,
        "hardened (DICE) pipeline latches", 0.25, 7.0);
    add(ResourceKind::Interconnect,
        "CRC-protected ring flits + retry", 0.10, 2.0);
    return options;
}

DeviceModel
applyHardening(const DeviceModel &device,
               const HardeningOption &option)
{
    DeviceModel hardened = device;
    bool found = false;
    for (auto &res : hardened.resources) {
        if (res.kind != option.resource)
            continue;
        found = true;
        if (isStorage(res.kind)) {
            res.eccSurvival *= option.survivalScale;
        } else {
            // Checked/hardened logic: most upsets are caught and
            // retried, shrinking the effective cross-section.
            res.sizeBits *= option.survivalScale;
        }
    }
    if (!found)
        fatal("device %s has no resource %s to harden",
              device.name.c_str(),
              resourceKindName(option.resource));
    hardened.name = device.name + "+hardened";
    return hardened;
}

namespace
{

double
criticalFit(const DeviceModel &device,
            const WorkloadFactory &factory, uint64_t runs,
            uint64_t seed)
{
    auto workload = factory(device);
    CampaignConfig cfg;
    cfg.sim.faultyRuns = runs;
    cfg.sim.seed = seed;
    CampaignResult res = runCampaign(device, *workload, cfg);
    return res.fitTotalAu(true);
}

} // anonymous namespace

std::vector<AdvisorStep>
advise(const DeviceModel &device, const WorkloadFactory &factory,
       double budget_pct, uint64_t runs, uint64_t seed)
{
    if (budget_pct <= 0.0)
        fatal("hardening budget must be positive");

    std::vector<AdvisorStep> plan;
    DeviceModel current = device;
    std::vector<HardeningOption> remaining =
        standardOptions(device);
    double spent = 0.0;
    double fit = criticalFit(current, factory, runs, seed);

    while (!remaining.empty()) {
        // Evaluate every affordable candidate; keep the best
        // critical-FIT reduction per unit cost.
        double best_score = 0.0;
        size_t best_idx = remaining.size();
        double best_fit = fit;
        for (size_t i = 0; i < remaining.size(); ++i) {
            const auto &opt = remaining[i];
            if (spent + opt.areaCostPct > budget_pct)
                continue;
            DeviceModel candidate =
                applyHardening(current, opt);
            double candidate_fit =
                criticalFit(candidate, factory, runs, seed);
            double score = (fit - candidate_fit) /
                opt.areaCostPct;
            if (score > best_score) {
                best_score = score;
                best_idx = i;
                best_fit = candidate_fit;
            }
        }
        if (best_idx == remaining.size())
            break; // nothing affordable improves anything

        AdvisorStep step;
        step.option = remaining[best_idx];
        step.fitBefore = fit;
        step.fitAfter = best_fit;
        spent += step.option.areaCostPct;
        step.cumulativeCostPct = spent;
        current = applyHardening(current, step.option);
        fit = best_fit;
        plan.push_back(step);
        remaining.erase(remaining.begin() +
                        static_cast<long>(best_idx));
    }
    return plan;
}

} // namespace radcrit
