/**
 * @file
 * Selective-hardening advisor (paper Section VI future work).
 *
 * Given a device, a workload, and an area budget, the advisor
 * greedily picks the hardening techniques (ECC upgrades, residue-
 * checked execution units, protected scheduler state, ...) that
 * remove the most critical FIT per unit of area cost, re-running
 * the campaign on the modified device model after each step. The
 * result quantifies the paper's closing claim that criticality
 * attribution makes targeted hardening cheap.
 */

#ifndef RADCRIT_HARDEN_ADVISOR_HH
#define RADCRIT_HARDEN_ADVISOR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/device.hh"
#include "campaign/runner.hh"
#include "sim/workload.hh"

namespace radcrit
{

/** One applicable hardening technique. */
struct HardeningOption
{
    /** Resource the technique protects. */
    ResourceKind resource = ResourceKind::NumKinds;
    /** Human-readable technique name. */
    std::string technique;
    /**
     * Multiplier on the resource's surviving-upset rate: for
     * storage it scales eccSurvival (e.g. 0.1 for SECDED over
     * parity); for logic it scales the effective area (e.g. 0.15
     * for residue checking that detects most wrong results).
     */
    double survivalScale = 0.1;
    /** Fractional silicon area / energy overhead. */
    double areaCostPct = 5.0;
};

/** @return the standard technique catalog for a device. */
std::vector<HardeningOption>
standardOptions(const DeviceModel &device);

/** @return a copy of the device with the option applied. */
DeviceModel applyHardening(const DeviceModel &device,
                           const HardeningOption &option);

/** One step of the greedy plan. */
struct AdvisorStep
{
    HardeningOption option;
    /** Critical (filtered) FIT before and after this step. */
    double fitBefore = 0.0;
    double fitAfter = 0.0;
    /** Cumulative area cost after this step. */
    double cumulativeCostPct = 0.0;
};

/**
 * Factory building a workload bound to a (possibly hardened)
 * device; traits depend on the device so the workload must be
 * rebuilt per candidate.
 */
using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(const DeviceModel &)>;

/**
 * Greedy selective-hardening plan.
 *
 * @param device Baseline device.
 * @param factory Workload factory.
 * @param budget_pct Total area budget in percent.
 * @param runs Campaign size per evaluation.
 * @param seed Campaign seed (same for every evaluation so FIT
 * deltas are paired).
 * @return the chosen steps in application order.
 */
std::vector<AdvisorStep>
advise(const DeviceModel &device, const WorkloadFactory &factory,
       double budget_pct, uint64_t runs, uint64_t seed);

} // namespace radcrit

#endif // RADCRIT_HARDEN_ADVISOR_HH
