#include "harden/attribution.hh"

#include <algorithm>

#include "sim/sampler.hh"

namespace radcrit
{

std::vector<ResourceCriticality>
attributeCriticality(const CampaignResult &result)
{
    std::array<ResourceCriticality, numResourceKinds> acc{};
    for (size_t i = 0; i < numResourceKinds; ++i)
        acc[i].resource = static_cast<ResourceKind>(i);

    for (const auto &run : result.runs) {
        auto &r = acc[static_cast<size_t>(run.strike.resource)];
        ++r.strikes;
        switch (run.outcome) {
          case Outcome::Sdc:
            ++r.sdcRuns;
            if (!run.crit.executionFiltered) {
                ++r.criticalRuns;
                r.criticalFitAu += result.fitAu(1);
            }
            break;
          case Outcome::Crash:
          case Outcome::Hang:
            ++r.detectableRuns;
            break;
          default:
            break;
        }
    }

    // Weight shares come from the sampler the campaign used.
    DeviceModel device = result.deviceName == "K40"
        ? makeK40() : makeXeonPhi();
    StrikeSampler sampler(device, result.launch);
    for (auto &r : acc) {
        r.weightShare = sampler.weight(r.resource) /
            sampler.totalWeight();
    }

    std::vector<ResourceCriticality> out;
    for (const auto &r : acc) {
        if (r.strikes > 0)
            out.push_back(r);
    }
    std::sort(out.begin(), out.end(),
              [](const ResourceCriticality &a,
                 const ResourceCriticality &b) {
                  return a.criticalFitAu > b.criticalFitAu;
              });
    return out;
}

} // namespace radcrit
