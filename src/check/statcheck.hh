/**
 * @file
 * Statistical assertions for campaign results.
 *
 * The paper's conclusions are distributional (SDC:crash ratios,
 * relative-error spreads, locality-class frequencies), so tests
 * should not pin them with hand-tuned point tolerances. Every
 * assertion here states an explicit claim ("the filtered-out
 * fraction is at least 0.40") and an explicit significance level,
 * and passes only when the observed counts *demonstrate* the claim
 * at that level: the appropriate confidence bound must clear the
 * stated threshold. Failure messages are self-documenting (counts,
 * interval, requirement), so a failing test explains itself.
 *
 * Campaigns are bit-identical for any worker count, so these checks
 * are deterministic per seed: the same campaign yields the same
 * verdict and the same message at jobs=1, 2, or 8.
 */

#ifndef RADCRIT_CHECK_STATCHECK_HH
#define RADCRIT_CHECK_STATCHECK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace radcrit
{
namespace check
{

/** A two-sided confidence interval. */
struct Interval
{
    double lo = 0.0;
    double hi = 0.0;

    /** @return true when [lo, hi] contains x. */
    bool contains(double x) const { return lo <= x && x <= hi; }
};

/**
 * Inverse standard-normal CDF (Acklam's rational approximation,
 * |error| < 1.2e-9). p must lie in (0, 1).
 */
double normalQuantile(double p);

/**
 * Wilson score interval for a binomial proportion at confidence
 * 1 - alpha. Well-behaved for small counts and proportions near 0
 * or 1, unlike the Wald interval.
 */
Interval wilsonInterval(uint64_t successes, uint64_t trials,
                        double alpha);

/**
 * Katz log confidence interval for the ratio of two independent
 * binomial proportions (k1/n1) / (k2/n2) at confidence 1 - alpha.
 * Degenerate counts (k == 0 or k == n) are continuity-corrected by
 * 0.5 before taking logs.
 */
Interval riskRatioInterval(uint64_t k1, uint64_t n1, uint64_t k2,
                           uint64_t n2, double alpha);

/**
 * Verdict of one named statistical assertion: convertible to bool,
 * with a message that restates the data, the interval, and the
 * requirement regardless of outcome.
 */
struct CheckResult
{
    bool passed = false;
    std::string message;

    explicit operator bool() const { return passed; }
};

/**
 * The observed proportion successes/trials demonstrates p >= p_min:
 * passes iff the Wilson lower bound at 1 - alpha clears p_min.
 */
CheckResult proportionAtLeast(const std::string &what,
                              uint64_t successes, uint64_t trials,
                              double p_min, double alpha);

/** Demonstrates p <= p_max via the Wilson upper bound. */
CheckResult proportionAtMost(const std::string &what,
                             uint64_t successes, uint64_t trials,
                             double p_max, double alpha);

/** Demonstrates p in [p_lo, p_hi]: the whole CI must fit inside. */
CheckResult proportionBetween(const std::string &what,
                              uint64_t successes, uint64_t trials,
                              double p_lo, double p_hi,
                              double alpha);

/**
 * Demonstrates p1 > p2 for two independent binomial samples: the
 * lower bound of the normal-approximation CI on p1 - p2 must be
 * positive.
 */
CheckResult proportionGreater(const std::string &what, uint64_t k1,
                              uint64_t n1, uint64_t k2,
                              uint64_t n2, double alpha);

/** Demonstrates (k1/n1)/(k2/n2) >= r_min via the Katz interval. */
CheckResult riskRatioAtLeast(const std::string &what, uint64_t k1,
                             uint64_t n1, uint64_t k2, uint64_t n2,
                             double r_min, double alpha);

/** Demonstrates (k1/n1)/(k2/n2) <= r_max via the Katz interval. */
CheckResult riskRatioAtMost(const std::string &what, uint64_t k1,
                            uint64_t n1, uint64_t k2, uint64_t n2,
                            double r_max, double alpha);

/**
 * Demonstrates that the event ratio a:b (e.g. SDC:(crash+hang)) is
 * at least r_min. Internally maps the ratio to the proportion
 * a / (a + b) and applies the Wilson lower bound.
 */
CheckResult ratioAtLeast(const std::string &what, uint64_t a,
                         uint64_t b, double r_min, double alpha);

/** Ratio counterpart of proportionAtMost(). */
CheckResult ratioAtMost(const std::string &what, uint64_t a,
                        uint64_t b, double r_max, double alpha);

/**
 * Demonstrates that the population mean behind `stat` is at least
 * `bound`: the normal-approximation lower confidence bound of the
 * sample mean must clear it.
 */
CheckResult meanAtLeast(const std::string &what,
                        const RunningStat &stat, double bound,
                        double alpha);

/**
 * Demonstrates mean(a) > mean(b) via a Welch-style z interval on
 * the difference of means.
 */
CheckResult meanGreater(const std::string &what,
                        const RunningStat &a,
                        const RunningStat &b, double alpha);

/**
 * Two-sample Kolmogorov-Smirnov statistic: the supremum distance
 * between the empirical CDFs of a and b.
 */
double ksStatistic(std::vector<double> a, std::vector<double> b);

/**
 * Asymptotic two-sample KS p-value for statistic d with sample
 * sizes n and m (Smirnov's limiting distribution with the usual
 * finite-size correction).
 */
double ksPValue(double d, size_t n, size_t m);

/**
 * Passes when the two samples are consistent with one underlying
 * distribution: the KS p-value must be >= alpha. Used to vet that
 * re-baselined campaigns preserve a distributional shape.
 */
CheckResult ksSameDistribution(const std::string &what,
                               std::vector<double> a,
                               std::vector<double> b,
                               double alpha);

/**
 * Upper regularized incomplete gamma Q(a, x) = Gamma(a, x) /
 * Gamma(a); the chi-squared survival function is
 * Q(dof / 2, stat / 2).
 */
double gammaQ(double a, double x);

/** Survival function of the chi-squared distribution. */
double chiSquaredPValue(double stat, int dof);

/**
 * Pearson goodness-of-fit: passes when the observed category
 * counts are consistent with the expected probabilities (p-value
 * >= alpha). Categories with zero expected probability must have
 * zero observations. `expected_probs` must sum to ~1.
 */
CheckResult chiSquaredFit(const std::string &what,
                          const std::vector<uint64_t> &observed,
                          const std::vector<double> &expected_probs,
                          double alpha);

/**
 * Chi-squared homogeneity over a 2 x k contingency table: passes
 * when the two observed category-count vectors are consistent with
 * one underlying categorical distribution. Categories empty in both
 * samples are ignored.
 */
CheckResult
chiSquaredHomogeneity(const std::string &what,
                      const std::vector<uint64_t> &a,
                      const std::vector<uint64_t> &b, double alpha);

} // namespace check
} // namespace radcrit

#endif // RADCRIT_CHECK_STATCHECK_HH
