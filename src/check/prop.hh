/**
 * @file
 * Property-based testing mini-framework for the campaign pipeline.
 *
 * A Gen<T> couples a sampler (driven by the repo's deterministic
 * Rng) with an optional shrinker; check::forAll() draws `cases`
 * values, evaluates a predicate on each, and on the first failure
 * greedily shrinks the counterexample and reports a message that
 * includes the exact RADCRIT_PROPTEST_SEED needed to replay that one
 * case. Setting the variable switches every forAll() in the process
 * into single-case replay mode (pair it with --gtest_filter to
 * re-run just the falsified property).
 *
 * Environment:
 *   RADCRIT_PROPTEST_SEED   replay one case from this seed
 *   RADCRIT_PROPTEST_CASES  cases per property (default 100)
 */

#ifndef RADCRIT_CHECK_PROP_HH
#define RADCRIT_CHECK_PROP_HH

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "metrics/sdcrecord.hh"

namespace radcrit
{
namespace check
{

/**
 * A typed value generator: `sample` draws a value from an Rng;
 * `shrink` (optional) proposes strictly "smaller" candidates for a
 * failing value, tried in order during counterexample minimization.
 */
template <class T>
struct Gen
{
    using Value = T;
    std::function<T(Rng &)> sample;
    std::function<std::vector<T>(const T &)> shrink;
};

/** Configuration of one forAll() run. */
struct PropConfig
{
    /** Base seed; case i uses Rng::hashCombine(seed, i). */
    uint64_t seed = 0x52414443'52495431ULL;
    /** Cases to draw (RADCRIT_PROPTEST_CASES). */
    uint64_t cases = 100;
    /** Cap on predicate evaluations spent shrinking. */
    uint64_t maxShrinkSteps = 500;
    /** Replay exactly one case from replaySeed. */
    bool replay = false;
    /** The case seed to replay (RADCRIT_PROPTEST_SEED). */
    uint64_t replaySeed = 0;
};

/**
 * @return the process-default configuration: replay mode when
 * RADCRIT_PROPTEST_SEED is set, case count from
 * RADCRIT_PROPTEST_CASES (both read on every call, so tests may
 * manipulate the environment).
 */
PropConfig defaultPropConfig();

/** Outcome of one forAll() run. */
struct PropResult
{
    /** True when no case falsified the property. */
    bool ok = true;
    /** Cases actually evaluated (1 in replay mode). */
    uint64_t casesRun = 0;
    /** Failure report: counterexample + replay seed; empty if ok. */
    std::string message;
};

namespace prop_detail
{

/** Deterministic per-case predicate stream, stable under shrinking. */
inline Rng
predicateRng(uint64_t case_seed)
{
    return Rng(Rng::hashCombine(case_seed, 0x70726f70ULL));
}

template <class T>
concept Streamable = requires(std::ostream &os, const T &t) {
    os << t;
};

std::string describeRecord(const SdcRecord &record);

template <Streamable T>
std::string
describe(const T &value)
{
    std::ostringstream os;
    os << value;
    return os.str();
}

inline std::string
describe(const SdcRecord &record)
{
    return describeRecord(record);
}

template <class A, class B>
std::string describe(const std::pair<A, B> &p);

template <class T>
std::string
describe(const std::vector<T> &values)
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < values.size(); ++i)
        os << (i ? ", " : "") << describe(values[i]);
    os << "]";
    return os.str();
}

template <class A, class B>
std::string
describe(const std::pair<A, B> &p)
{
    std::ostringstream os;
    os << "(" << describe(p.first) << ", " << describe(p.second)
       << ")";
    return os.str();
}

std::string failureMessage(const std::string &name,
                           uint64_t case_index, uint64_t cases,
                           uint64_t case_seed,
                           uint64_t shrink_steps,
                           const std::string &counterexample);

} // namespace prop_detail

/**
 * Evaluate `prop` over `cfg.cases` generated values.
 *
 * The predicate receives the generated value plus a private Rng
 * whose stream depends only on the case seed, so a property may use
 * auxiliary randomness and still replay exactly. On failure the
 * value is shrunk (greedy descent over Gen::shrink candidates,
 * re-evaluating with the same predicate stream) and the returned
 * message contains the minimized counterexample and the
 * RADCRIT_PROPTEST_SEED value that reproduces the case.
 */
template <class T>
PropResult
forAll(const std::string &name, const Gen<T> &gen,
       const std::function<bool(const T &, Rng &)> &prop,
       const PropConfig &cfg = defaultPropConfig())
{
    auto holds = [&](const T &value, uint64_t case_seed) {
        Rng rng = prop_detail::predicateRng(case_seed);
        return prop(value, rng);
    };

    PropResult result;
    uint64_t cases = cfg.replay ? 1 : cfg.cases;
    for (uint64_t i = 0; i < cases; ++i) {
        uint64_t case_seed = cfg.replay
            ? cfg.replaySeed
            : Rng::hashCombine(cfg.seed, i);
        Rng gen_rng(case_seed);
        T value = gen.sample(gen_rng);
        ++result.casesRun;
        if (holds(value, case_seed))
            continue;

        // Falsified: minimize by greedy descent over shrink
        // candidates, keeping any candidate that still fails.
        uint64_t steps = 0;
        if (gen.shrink) {
            bool progressed = true;
            while (progressed && steps < cfg.maxShrinkSteps) {
                progressed = false;
                for (const T &cand : gen.shrink(value)) {
                    if (steps >= cfg.maxShrinkSteps)
                        break;
                    ++steps;
                    if (!holds(cand, case_seed)) {
                        value = cand;
                        progressed = true;
                        break;
                    }
                }
            }
        }
        result.ok = false;
        result.message = prop_detail::failureMessage(
            name, i, cases, case_seed, steps,
            prop_detail::describe(value));
        return result;
    }
    return result;
}

/** forAll() for pure predicates that need no auxiliary Rng. */
template <class T>
PropResult
forAll(const std::string &name, const Gen<T> &gen,
       const std::function<bool(const T &)> &prop,
       const PropConfig &cfg = defaultPropConfig())
{
    return forAll<T>(
        name, gen,
        [&prop](const T &value, Rng &) { return prop(value); },
        cfg);
}

namespace gen
{

/** Uniform integer in [lo, hi]; shrinks toward lo. */
Gen<int64_t> intRange(int64_t lo, int64_t hi);

/** Arbitrary 64-bit seed value; shrinks toward small seeds. */
Gen<uint64_t> seed();

/** Uniform double in [lo, hi); shrinks toward lo. */
Gen<double> real(double lo, double hi);

/** Fair coin. */
Gen<bool> boolean();

/**
 * Uniform choice from a fixed, non-empty set; shrinks toward
 * earlier elements.
 */
template <class T>
Gen<T>
elementOf(std::vector<T> values)
{
    Gen<T> g;
    auto pool = std::make_shared<std::vector<T>>(
        std::move(values));
    g.sample = [pool](Rng &rng) {
        return (*pool)[rng.uniformInt(pool->size())];
    };
    g.shrink = [pool](const T &value) {
        std::vector<T> out;
        if (!pool->empty() && !(value == pool->front()))
            out.push_back(pool->front());
        return out;
    };
    return g;
}

/**
 * Vector of `elem` values with length uniform in [min_len,
 * max_len]. Shrinks by halving, dropping single elements, and
 * shrinking individual elements.
 */
template <class T>
Gen<std::vector<T>>
vectorOf(Gen<T> elem, size_t min_len, size_t max_len)
{
    Gen<std::vector<T>> g;
    auto e = std::make_shared<Gen<T>>(std::move(elem));
    g.sample = [e, min_len, max_len](Rng &rng) {
        size_t len = min_len +
            static_cast<size_t>(
                rng.uniformInt(max_len - min_len + 1));
        std::vector<T> out;
        out.reserve(len);
        for (size_t i = 0; i < len; ++i)
            out.push_back(e->sample(rng));
        return out;
    };
    g.shrink = [e, min_len](const std::vector<T> &value) {
        std::vector<std::vector<T>> out;
        size_t n = value.size();
        if (n > min_len) {
            // Drop the back half, then single elements.
            size_t keep = std::max(min_len, n / 2);
            if (keep < n) {
                out.emplace_back(value.begin(),
                                 value.begin() + keep);
            }
            for (size_t i = 0; i < n && out.size() < 16; ++i) {
                std::vector<T> cand;
                cand.reserve(n - 1);
                for (size_t j = 0; j < n; ++j) {
                    if (j != i)
                        cand.push_back(value[j]);
                }
                out.push_back(std::move(cand));
            }
        }
        if (e->shrink) {
            for (size_t i = 0; i < n && out.size() < 32; ++i) {
                for (const T &cand : e->shrink(value[i])) {
                    std::vector<T> copy = value;
                    copy[i] = cand;
                    out.push_back(std::move(copy));
                    if (out.size() >= 32)
                        break;
                }
            }
        }
        return out;
    };
    return g;
}

/** Pair of independent generators; shrinks component-wise. */
template <class A, class B>
Gen<std::pair<A, B>>
pairOf(Gen<A> first, Gen<B> second)
{
    Gen<std::pair<A, B>> g;
    auto fa = std::make_shared<Gen<A>>(std::move(first));
    auto fb = std::make_shared<Gen<B>>(std::move(second));
    g.sample = [fa, fb](Rng &rng) {
        A a = fa->sample(rng);
        B b = fb->sample(rng);
        return std::pair<A, B>(std::move(a), std::move(b));
    };
    g.shrink = [fa, fb](const std::pair<A, B> &value) {
        std::vector<std::pair<A, B>> out;
        if (fa->shrink) {
            for (const A &cand : fa->shrink(value.first))
                out.emplace_back(cand, value.second);
        }
        if (fb->shrink) {
            for (const B &cand : fb->shrink(value.second))
                out.emplace_back(value.first, cand);
        }
        return out;
    };
    return g;
}

/**
 * Map a generator through a function. Shrinking happens in the
 * source domain, so minimized counterexamples stay producible.
 */
template <class T, class F>
auto
map(Gen<T> base, F fn)
    -> Gen<decltype(fn(std::declval<const T &>()))>
{
    using U = decltype(fn(std::declval<const T &>()));
    Gen<U> g;
    auto b = std::make_shared<Gen<T>>(std::move(base));
    auto f = std::make_shared<F>(std::move(fn));
    // Keep the latest source value alongside so shrinks can be
    // re-mapped: a mapped generator remembers nothing, so we shrink
    // by regenerating from shrunk sources. To do that, the sample
    // carries the source with it -- callers who need shrinkable
    // mapped values should map from a Gen of the full source tuple
    // instead. Here shrink is simply disabled.
    g.sample = [b, f](Rng &rng) { return (*f)(b->sample(rng)); };
    g.shrink = nullptr;
    return g;
}

/**
 * Random corrupted-output grid record: dims axes with extents in
 * [1, max_extent], and 0..max_elements corrupted elements at
 * uniform in-bounds coordinates with read != expected. Shrinks by
 * dropping elements.
 */
Gen<SdcRecord> gridRecord(int dims, int64_t max_extent,
                          size_t max_elements);

} // namespace gen

} // namespace check
} // namespace radcrit

#endif // RADCRIT_CHECK_PROP_HH
