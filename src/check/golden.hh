/**
 * @file
 * Golden-snapshot regression harness for tabular artifacts (figure
 * CSVs, runRows() dumps, any rows-of-cells output).
 *
 * Comparisons run on a *canonical* form: every cell that parses as
 * a number is reformatted with %.10g, so goldens survive cosmetic
 * formatting changes while catching value drift beyond ~1e-10
 * relative. A mismatch report names the first divergent cell by
 * row, column, and header label.
 *
 * Re-blessing: set RADCRIT_REGEN_GOLDENS=1 (tools/regen_goldens.sh
 * drives this) and compareGolden() rewrites the golden file from
 * the actual rows instead of comparing. RADCRIT_GOLDEN_DIR
 * overrides where golden files are looked up.
 */

#ifndef RADCRIT_CHECK_GOLDEN_HH
#define RADCRIT_CHECK_GOLDEN_HH

#include <string>
#include <vector>

namespace radcrit
{
namespace check
{

/** Rows-of-cells table, the unit of golden comparison. */
using Table = std::vector<std::vector<std::string>>;

/**
 * @return the canonical form of one cell: numeric cells are
 * reparsed and reprinted with %.10g; everything else is returned
 * unchanged.
 */
std::string canonicalCell(const std::string &cell);

/** Canonicalize every cell of a table. */
Table canonicalTable(const Table &rows);

/** Outcome of one golden comparison. */
struct GoldenResult
{
    /** True when the artifact matches (or was just re-blessed). */
    bool passed = false;
    /** True when RADCRIT_REGEN_GOLDENS rewrote the file. */
    bool regenerated = false;
    /** Human-readable report; names the first divergent cell. */
    std::string message;

    explicit operator bool() const { return passed; }
};

/**
 * Compare `actual` against the golden file at `path` (canonical
 * forms on both sides). The file holds one comma-joined row per
 * line; cells must not contain commas or newlines (the harness
 * refuses such tables rather than quoting them). When
 * RADCRIT_REGEN_GOLDENS is set to a non-empty, non-"0" value the
 * golden file is (re)written from `actual` and the result reports
 * regenerated=true.
 *
 * On divergence the message names the file, the first divergent
 * row and column, the header label of that column (when the first
 * row looks like a header), and both cell values.
 */
GoldenResult compareGolden(const std::string &path,
                           const Table &actual);

/**
 * Resolve the directory golden files live in: the
 * RADCRIT_GOLDEN_DIR environment variable when set, otherwise the
 * provided compiled-in default.
 */
std::string goldenDir(const std::string &compiled_default);

} // namespace check
} // namespace radcrit

#endif // RADCRIT_CHECK_GOLDEN_HH
