#include "check/statcheck.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.hh"

namespace radcrit
{
namespace check
{

namespace
{

void
requireAlpha(double alpha)
{
    if (!(alpha > 0.0 && alpha < 1.0))
        panic("check: alpha %f outside (0, 1)", alpha);
}

/** Two-sided z value for confidence 1 - alpha. */
double
zValue(double alpha)
{
    requireAlpha(alpha);
    return normalQuantile(1.0 - alpha / 2.0);
}

std::string
verdict(bool passed)
{
    return passed ? "PASS" : "FAIL";
}

CheckResult
made(bool passed, std::string message)
{
    CheckResult r;
    r.passed = passed;
    r.message = std::move(message);
    return r;
}

} // anonymous namespace

double
normalQuantile(double p)
{
    if (!(p > 0.0 && p < 1.0))
        panic("normalQuantile: p %f outside (0, 1)", p);

    // Acklam's rational approximation with region splitting.
    static const double a[] = {
        -3.969683028665376e+01, 2.209460984245205e+02,
        -2.759285104469687e+02, 1.383577518672690e+02,
        -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {
        -5.447609879822406e+01, 1.615858368580409e+02,
        -1.556989798598866e+02, 6.680131188771972e+01,
        -1.328068155288572e+01};
    static const double c[] = {
        -7.784894002430293e-03, -3.223964580411365e-01,
        -2.400758277161838e+00, -2.549732539343734e+00,
        4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {
        7.784695709041462e-03, 3.224671290700398e-01,
        2.445134137142996e+00, 3.754408661907416e+00};
    const double p_low = 0.02425;

    if (p < p_low) {
        double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                 c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - p_low) {
        double q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                  c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    double q = p - 0.5;
    double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r +
             a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) *
             r + 1.0);
}

Interval
wilsonInterval(uint64_t successes, uint64_t trials, double alpha)
{
    if (trials == 0)
        panic("wilsonInterval: zero trials");
    if (successes > trials)
        panic("wilsonInterval: %llu successes > %llu trials",
              static_cast<unsigned long long>(successes),
              static_cast<unsigned long long>(trials));
    double z = zValue(alpha);
    double n = static_cast<double>(trials);
    double p = static_cast<double>(successes) / n;
    double z2 = z * z;
    double denom = 1.0 + z2 / n;
    double center = (p + z2 / (2.0 * n)) / denom;
    double half = z *
        std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
    Interval ci;
    // The exact bounds at degenerate counts are 0 and 1; the closed
    // form only reaches them up to rounding, so pin them.
    ci.lo = successes == 0 ? 0.0 : std::max(0.0, center - half);
    ci.hi = successes == trials ? 1.0
                                : std::min(1.0, center + half);
    return ci;
}

Interval
riskRatioInterval(uint64_t k1, uint64_t n1, uint64_t k2,
                  uint64_t n2, double alpha)
{
    if (n1 == 0 || n2 == 0)
        panic("riskRatioInterval: zero trials");
    double z = zValue(alpha);
    // Continuity correction keeps the log ratio finite for
    // degenerate counts.
    auto corrected = [](uint64_t k, uint64_t n) {
        double kk = static_cast<double>(k);
        double nn = static_cast<double>(n);
        if (k == 0 || k == n) {
            kk += 0.5;
            nn += 1.0;
        }
        return std::pair<double, double>(kk, nn);
    };
    auto [kk1, nn1] = corrected(k1, n1);
    auto [kk2, nn2] = corrected(k2, n2);
    double p1 = kk1 / nn1;
    double p2 = kk2 / nn2;
    double log_rr = std::log(p1 / p2);
    double se = std::sqrt((1.0 - p1) / (nn1 * p1) +
                          (1.0 - p2) / (nn2 * p2));
    Interval ci;
    ci.lo = std::exp(log_rr - z * se);
    ci.hi = std::exp(log_rr + z * se);
    return ci;
}

namespace
{

std::string
proportionPrefix(const std::string &what, uint64_t successes,
                 uint64_t trials, const Interval &ci, double alpha)
{
    return strprintf(
        "check %s: %llu/%llu = %.4f, wilson CI(alpha=%g) "
        "[%.4f, %.4f]",
        what.c_str(), static_cast<unsigned long long>(successes),
        static_cast<unsigned long long>(trials),
        static_cast<double>(successes) /
            static_cast<double>(trials),
        alpha, ci.lo, ci.hi);
}

} // anonymous namespace

CheckResult
proportionAtLeast(const std::string &what, uint64_t successes,
                  uint64_t trials, double p_min, double alpha)
{
    Interval ci = wilsonInterval(successes, trials, alpha);
    bool passed = ci.lo >= p_min;
    return made(passed,
                proportionPrefix(what, successes, trials, ci,
                                 alpha) +
                    strprintf("; require p >= %.4f: %s", p_min,
                              verdict(passed).c_str()));
}

CheckResult
proportionAtMost(const std::string &what, uint64_t successes,
                 uint64_t trials, double p_max, double alpha)
{
    Interval ci = wilsonInterval(successes, trials, alpha);
    bool passed = ci.hi <= p_max;
    return made(passed,
                proportionPrefix(what, successes, trials, ci,
                                 alpha) +
                    strprintf("; require p <= %.4f: %s", p_max,
                              verdict(passed).c_str()));
}

CheckResult
proportionBetween(const std::string &what, uint64_t successes,
                  uint64_t trials, double p_lo, double p_hi,
                  double alpha)
{
    Interval ci = wilsonInterval(successes, trials, alpha);
    bool passed = ci.lo >= p_lo && ci.hi <= p_hi;
    return made(passed,
                proportionPrefix(what, successes, trials, ci,
                                 alpha) +
                    strprintf("; require p in [%.4f, %.4f]: %s",
                              p_lo, p_hi,
                              verdict(passed).c_str()));
}

CheckResult
proportionGreater(const std::string &what, uint64_t k1,
                  uint64_t n1, uint64_t k2, uint64_t n2,
                  double alpha)
{
    if (n1 == 0 || n2 == 0)
        panic("proportionGreater: zero trials");
    double z = zValue(alpha);
    double p1 = static_cast<double>(k1) / static_cast<double>(n1);
    double p2 = static_cast<double>(k2) / static_cast<double>(n2);
    double se = std::sqrt(
        p1 * (1.0 - p1) / static_cast<double>(n1) +
        p2 * (1.0 - p2) / static_cast<double>(n2));
    double lo = (p1 - p2) - z * se;
    bool passed = lo > 0.0;
    return made(
        passed,
        strprintf("check %s: p1 = %llu/%llu = %.4f vs p2 = "
                  "%llu/%llu = %.4f, diff CI(alpha=%g) lower "
                  "bound %.4f; require p1 > p2: %s",
                  what.c_str(),
                  static_cast<unsigned long long>(k1),
                  static_cast<unsigned long long>(n1), p1,
                  static_cast<unsigned long long>(k2),
                  static_cast<unsigned long long>(n2), p2, alpha,
                  lo, verdict(passed).c_str()));
}

namespace
{

CheckResult
riskRatioBound(const std::string &what, uint64_t k1, uint64_t n1,
               uint64_t k2, uint64_t n2, double bound,
               double alpha, bool at_least)
{
    Interval ci = riskRatioInterval(k1, n1, k2, n2, alpha);
    double observed =
        (static_cast<double>(k1) / static_cast<double>(n1)) /
        (static_cast<double>(k2) / static_cast<double>(n2));
    bool passed = at_least ? ci.lo >= bound : ci.hi <= bound;
    return made(
        passed,
        strprintf("check %s: risk ratio (%llu/%llu)/(%llu/%llu) = "
                  "%.4f, katz CI(alpha=%g) [%.4f, %.4f]; require "
                  "ratio %s %.4f: %s",
                  what.c_str(),
                  static_cast<unsigned long long>(k1),
                  static_cast<unsigned long long>(n1),
                  static_cast<unsigned long long>(k2),
                  static_cast<unsigned long long>(n2), observed,
                  alpha, ci.lo, ci.hi, at_least ? ">=" : "<=",
                  bound, verdict(passed).c_str()));
}

} // anonymous namespace

CheckResult
riskRatioAtLeast(const std::string &what, uint64_t k1, uint64_t n1,
                 uint64_t k2, uint64_t n2, double r_min,
                 double alpha)
{
    return riskRatioBound(what, k1, n1, k2, n2, r_min, alpha,
                          true);
}

CheckResult
riskRatioAtMost(const std::string &what, uint64_t k1, uint64_t n1,
                uint64_t k2, uint64_t n2, double r_max,
                double alpha)
{
    return riskRatioBound(what, k1, n1, k2, n2, r_max, alpha,
                          false);
}

namespace
{

CheckResult
ratioBound(const std::string &what, uint64_t a, uint64_t b,
           double bound, double alpha, bool at_least)
{
    uint64_t total = a + b;
    if (total == 0)
        panic("ratio check '%s': no events at all", what.c_str());
    // a : b >= r  <=>  a / (a + b) >= r / (1 + r).
    Interval ci = wilsonInterval(a, total, alpha);
    double p_bound = bound / (1.0 + bound);
    bool passed =
        at_least ? ci.lo >= p_bound : ci.hi <= p_bound;
    double observed = b
        ? static_cast<double>(a) / static_cast<double>(b)
        : std::numeric_limits<double>::infinity();
    return made(
        passed,
        strprintf("check %s: ratio %llu:%llu = %.4f, as "
                  "proportion %.4f with wilson CI(alpha=%g) "
                  "[%.4f, %.4f]; require ratio %s %.4f (p %s "
                  "%.4f): %s",
                  what.c_str(),
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b), observed,
                  static_cast<double>(a) /
                      static_cast<double>(total),
                  alpha, ci.lo, ci.hi, at_least ? ">=" : "<=",
                  bound, at_least ? ">=" : "<=", p_bound,
                  verdict(passed).c_str()));
}

} // anonymous namespace

CheckResult
ratioAtLeast(const std::string &what, uint64_t a, uint64_t b,
             double r_min, double alpha)
{
    return ratioBound(what, a, b, r_min, alpha, true);
}

CheckResult
ratioAtMost(const std::string &what, uint64_t a, uint64_t b,
            double r_max, double alpha)
{
    return ratioBound(what, a, b, r_max, alpha, false);
}

CheckResult
meanAtLeast(const std::string &what, const RunningStat &stat,
            double bound, double alpha)
{
    if (stat.count() < 2)
        panic("meanAtLeast '%s': need >= 2 samples, have %zu",
              what.c_str(), stat.count());
    double z = zValue(alpha);
    double se = stat.stddev() /
        std::sqrt(static_cast<double>(stat.count()));
    double lo = stat.mean() - z * se;
    bool passed = lo >= bound;
    return made(
        passed,
        strprintf("check %s: mean %.4f over %zu samples, "
                  "CI(alpha=%g) lower bound %.4f; require mean >= "
                  "%.4f: %s",
                  what.c_str(), stat.mean(), stat.count(), alpha,
                  lo, bound, verdict(passed).c_str()));
}

CheckResult
meanGreater(const std::string &what, const RunningStat &a,
            const RunningStat &b, double alpha)
{
    if (a.count() < 2 || b.count() < 2)
        panic("meanGreater '%s': need >= 2 samples per side",
              what.c_str());
    double z = zValue(alpha);
    double se = std::sqrt(
        a.variance() / static_cast<double>(a.count()) +
        b.variance() / static_cast<double>(b.count()));
    double lo = (a.mean() - b.mean()) - z * se;
    bool passed = lo > 0.0;
    return made(
        passed,
        strprintf("check %s: mean %.4f (n=%zu) vs mean %.4f "
                  "(n=%zu), welch diff CI(alpha=%g) lower bound "
                  "%.4f; require mean1 > mean2: %s",
                  what.c_str(), a.mean(), a.count(), b.mean(),
                  b.count(), alpha, lo,
                  verdict(passed).c_str()));
}

double
ksStatistic(std::vector<double> a, std::vector<double> b)
{
    if (a.empty() || b.empty())
        panic("ksStatistic: empty sample");
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    size_t i = 0, j = 0;
    double d = 0.0;
    double na = static_cast<double>(a.size());
    double nb = static_cast<double>(b.size());
    while (i < a.size() && j < b.size()) {
        double x = std::min(a[i], b[j]);
        while (i < a.size() && a[i] <= x)
            ++i;
        while (j < b.size() && b[j] <= x)
            ++j;
        d = std::max(d, std::abs(static_cast<double>(i) / na -
                                 static_cast<double>(j) / nb));
    }
    return d;
}

double
ksPValue(double d, size_t n, size_t m)
{
    if (n == 0 || m == 0)
        panic("ksPValue: empty sample");
    double ne = static_cast<double>(n) * static_cast<double>(m) /
        static_cast<double>(n + m);
    double sqrt_ne = std::sqrt(ne);
    double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    if (lambda < 1e-9)
        return 1.0;
    // Smirnov's alternating series; converges in a few terms.
    double sum = 0.0;
    double sign = 1.0;
    for (int k = 1; k <= 100; ++k) {
        double term =
            std::exp(-2.0 * lambda * lambda * k * k);
        sum += sign * term;
        if (term < 1e-12)
            break;
        sign = -sign;
    }
    return std::clamp(2.0 * sum, 0.0, 1.0);
}

CheckResult
ksSameDistribution(const std::string &what, std::vector<double> a,
                   std::vector<double> b, double alpha)
{
    requireAlpha(alpha);
    size_t n = a.size(), m = b.size();
    double d = ksStatistic(std::move(a), std::move(b));
    double p = ksPValue(d, n, m);
    bool passed = p >= alpha;
    return made(
        passed,
        strprintf("check %s: KS D = %.4f over n=%zu vs m=%zu, "
                  "p-value %.4f; require p >= alpha=%g (same "
                  "distribution): %s",
                  what.c_str(), d, n, m, p, alpha,
                  verdict(passed).c_str()));
}

namespace
{

/** Regularized lower incomplete gamma by series expansion. */
double
gammaPSeries(double a, double x)
{
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if (std::abs(del) < std::abs(sum) * 1e-14)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/** Regularized upper incomplete gamma by continued fraction. */
double
gammaQContinued(double a, double x)
{
    const double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= 500; ++i) {
        double an = -static_cast<double>(i) *
            (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::abs(d) < tiny)
            d = tiny;
        c = b + an / c;
        if (std::abs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < 1e-14)
            break;
    }
    return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

} // anonymous namespace

double
gammaQ(double a, double x)
{
    if (a <= 0.0 || x < 0.0)
        panic("gammaQ: invalid arguments a=%f x=%f", a, x);
    if (x == 0.0)
        return 1.0;
    if (x < a + 1.0)
        return 1.0 - gammaPSeries(a, x);
    return gammaQContinued(a, x);
}

double
chiSquaredPValue(double stat, int dof)
{
    if (dof < 1)
        panic("chiSquaredPValue: dof %d < 1", dof);
    if (stat <= 0.0)
        return 1.0;
    return gammaQ(static_cast<double>(dof) / 2.0, stat / 2.0);
}

CheckResult
chiSquaredFit(const std::string &what,
              const std::vector<uint64_t> &observed,
              const std::vector<double> &expected_probs,
              double alpha)
{
    requireAlpha(alpha);
    if (observed.size() != expected_probs.size())
        panic("chiSquaredFit '%s': %zu observed vs %zu expected "
              "categories",
              what.c_str(), observed.size(),
              expected_probs.size());
    uint64_t total = 0;
    for (uint64_t o : observed)
        total += o;
    if (total == 0)
        panic("chiSquaredFit '%s': no observations",
              what.c_str());
    double prob_sum = 0.0;
    for (double p : expected_probs)
        prob_sum += p;
    if (std::abs(prob_sum - 1.0) > 1e-6)
        panic("chiSquaredFit '%s': expected probs sum to %f",
              what.c_str(), prob_sum);

    double stat = 0.0;
    int dof = -1;
    for (size_t i = 0; i < observed.size(); ++i) {
        double e = expected_probs[i] * static_cast<double>(total);
        if (e <= 0.0) {
            if (observed[i] != 0) {
                return made(
                    false,
                    strprintf("check %s: category %zu observed "
                              "%llu times but has expected "
                              "probability 0: FAIL",
                              what.c_str(), i,
                              static_cast<unsigned long long>(
                                  observed[i])));
            }
            continue;
        }
        double diff = static_cast<double>(observed[i]) - e;
        stat += diff * diff / e;
        ++dof;
    }
    if (dof < 1)
        panic("chiSquaredFit '%s': fewer than two live "
              "categories",
              what.c_str());
    double p = chiSquaredPValue(stat, dof);
    bool passed = p >= alpha;
    return made(
        passed,
        strprintf("check %s: chi2 = %.4f with dof=%d over %llu "
                  "observations, p-value %.4f; require p >= "
                  "alpha=%g (fits expected): %s",
                  what.c_str(), stat, dof,
                  static_cast<unsigned long long>(total), p,
                  alpha, verdict(passed).c_str()));
}

CheckResult
chiSquaredHomogeneity(const std::string &what,
                      const std::vector<uint64_t> &a,
                      const std::vector<uint64_t> &b, double alpha)
{
    requireAlpha(alpha);
    if (a.size() != b.size())
        panic("chiSquaredHomogeneity '%s': %zu vs %zu categories",
              what.c_str(), a.size(), b.size());
    uint64_t na = 0, nb = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        na += a[i];
        nb += b[i];
    }
    if (na == 0 || nb == 0)
        panic("chiSquaredHomogeneity '%s': an empty sample",
              what.c_str());
    double total = static_cast<double>(na + nb);
    double stat = 0.0;
    int dof = -1;
    for (size_t i = 0; i < a.size(); ++i) {
        uint64_t col = a[i] + b[i];
        if (col == 0)
            continue;
        double pa = static_cast<double>(col) * na / total;
        double pb = static_cast<double>(col) * nb / total;
        double da = static_cast<double>(a[i]) - pa;
        double db = static_cast<double>(b[i]) - pb;
        stat += da * da / pa + db * db / pb;
        ++dof;
    }
    if (dof < 1)
        panic("chiSquaredHomogeneity '%s': fewer than two live "
              "categories",
              what.c_str());
    double p = chiSquaredPValue(stat, dof);
    bool passed = p >= alpha;
    return made(
        passed,
        strprintf("check %s: chi2 = %.4f with dof=%d (n=%llu vs "
                  "m=%llu), p-value %.4f; require p >= alpha=%g "
                  "(homogeneous): %s",
                  what.c_str(), stat, dof,
                  static_cast<unsigned long long>(na),
                  static_cast<unsigned long long>(nb), p, alpha,
                  verdict(passed).c_str()));
}

} // namespace check
} // namespace radcrit
