#include "check/prop.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace radcrit
{
namespace check
{

namespace
{

bool
parseEnvU64(const char *name, uint64_t &out)
{
    const char *raw = std::getenv(name);
    if (!raw || !*raw)
        return false;
    char *end = nullptr;
    unsigned long long v = std::strtoull(raw, &end, 10);
    if (!end || *end != '\0') {
        warn("%s='%s' is not an unsigned integer; ignored", name,
             raw);
        return false;
    }
    out = static_cast<uint64_t>(v);
    return true;
}

} // anonymous namespace

PropConfig
defaultPropConfig()
{
    PropConfig cfg;
    uint64_t v = 0;
    if (parseEnvU64("RADCRIT_PROPTEST_SEED", v)) {
        cfg.replay = true;
        cfg.replaySeed = v;
    }
    if (parseEnvU64("RADCRIT_PROPTEST_CASES", v) && v > 0)
        cfg.cases = v;
    return cfg;
}

namespace prop_detail
{

std::string
describeRecord(const SdcRecord &record)
{
    std::ostringstream os;
    os << "SdcRecord{dims=" << record.dims << ", extent=["
       << record.extent[0] << "," << record.extent[1] << ","
       << record.extent[2] << "], elements=[";
    size_t shown = std::min<size_t>(record.elements.size(), 8);
    for (size_t i = 0; i < shown; ++i) {
        const auto &e = record.elements[i];
        os << (i ? ", " : "") << "(" << e.coord[0] << ","
           << e.coord[1] << "," << e.coord[2] << " read="
           << e.read << " exp=" << e.expected << ")";
    }
    if (record.elements.size() > shown)
        os << ", ... " << record.elements.size() - shown
           << " more";
    os << "]}";
    return os.str();
}

std::string
failureMessage(const std::string &name, uint64_t case_index,
               uint64_t cases, uint64_t case_seed,
               uint64_t shrink_steps,
               const std::string &counterexample)
{
    return strprintf(
        "property '%s' falsified (case %llu of %llu)\n"
        "  counterexample (after %llu shrink steps): %s\n"
        "  replay: RADCRIT_PROPTEST_SEED=%llu reruns exactly this "
        "case",
        name.c_str(),
        static_cast<unsigned long long>(case_index + 1),
        static_cast<unsigned long long>(cases),
        static_cast<unsigned long long>(shrink_steps),
        counterexample.c_str(),
        static_cast<unsigned long long>(case_seed));
}

} // namespace prop_detail

namespace gen
{

Gen<int64_t>
intRange(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("gen::intRange: lo %lld > hi %lld",
              static_cast<long long>(lo),
              static_cast<long long>(hi));
    Gen<int64_t> g;
    g.sample = [lo, hi](Rng &rng) {
        return rng.uniformRange(lo, hi);
    };
    g.shrink = [lo](const int64_t &value) {
        std::vector<int64_t> out;
        if (value == lo)
            return out;
        out.push_back(lo);
        int64_t mid = lo + (value - lo) / 2;
        if (mid != lo && mid != value)
            out.push_back(mid);
        out.push_back(value - 1);
        return out;
    };
    return g;
}

Gen<uint64_t>
seed()
{
    Gen<uint64_t> g;
    g.sample = [](Rng &rng) { return rng.next64(); };
    g.shrink = [](const uint64_t &value) {
        std::vector<uint64_t> out;
        if (value == 0)
            return out;
        out.push_back(0);
        out.push_back(value >> 32);
        out.push_back(value / 2);
        out.erase(std::unique(out.begin(), out.end()), out.end());
        return out;
    };
    return g;
}

Gen<double>
real(double lo, double hi)
{
    if (!(lo <= hi))
        panic("gen::real: lo %f > hi %f", lo, hi);
    Gen<double> g;
    g.sample = [lo, hi](Rng &rng) {
        return rng.uniform(lo, hi);
    };
    g.shrink = [lo](const double &value) {
        std::vector<double> out;
        if (value == lo)
            return out;
        out.push_back(lo);
        double mid = lo + (value - lo) / 2.0;
        if (mid != lo && mid != value)
            out.push_back(mid);
        return out;
    };
    return g;
}

Gen<bool>
boolean()
{
    Gen<bool> g;
    g.sample = [](Rng &rng) { return rng.bernoulli(0.5); };
    g.shrink = [](const bool &value) {
        std::vector<bool> out;
        if (value)
            out.push_back(false);
        return out;
    };
    return g;
}

Gen<SdcRecord>
gridRecord(int dims, int64_t max_extent, size_t max_elements)
{
    if (dims < 1 || dims > 3)
        panic("gen::gridRecord: dims %d out of [1, 3]", dims);
    if (max_extent < 1)
        panic("gen::gridRecord: max_extent %lld < 1",
              static_cast<long long>(max_extent));
    Gen<SdcRecord> g;
    g.sample = [dims, max_extent, max_elements](Rng &rng) {
        SdcRecord rec;
        rec.dims = dims;
        for (int a = 0; a < 3; ++a) {
            rec.extent[a] = a < dims
                ? rng.uniformRange(1, max_extent)
                : 1;
        }
        size_t n = static_cast<size_t>(
            rng.uniformInt(max_elements + 1));
        rec.elements.reserve(n);
        for (size_t i = 0; i < n; ++i) {
            CorruptedElement e;
            for (int a = 0; a < dims; ++a)
                e.coord[a] = rng.uniformRange(
                    0, rec.extent[a] - 1);
            e.expected = rng.uniform(-10.0, 10.0);
            // Strictly corrupted: read differs from expected.
            e.read = e.expected +
                (rng.bernoulli(0.5) ? 1.0 : -1.0) *
                    rng.uniform(1e-6, 100.0);
            rec.elements.push_back(e);
        }
        return rec;
    };
    g.shrink = [](const SdcRecord &rec) {
        std::vector<SdcRecord> out;
        size_t n = rec.elements.size();
        if (n == 0)
            return out;
        SdcRecord half = rec;
        half.elements.assign(rec.elements.begin(),
                             rec.elements.begin() + n / 2);
        out.push_back(std::move(half));
        for (size_t i = 0; i < n && out.size() < 16; ++i) {
            SdcRecord cand = rec;
            cand.elements.erase(cand.elements.begin() +
                                static_cast<ptrdiff_t>(i));
            out.push_back(std::move(cand));
        }
        return out;
    };
    return g;
}

} // namespace gen

} // namespace check
} // namespace radcrit
