#include "check/golden.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace radcrit
{
namespace check
{

namespace
{

bool
regenRequested()
{
    const char *raw = std::getenv("RADCRIT_REGEN_GOLDENS");
    return raw && *raw && std::strcmp(raw, "0") != 0;
}

GoldenResult
result(bool passed, bool regenerated, std::string message)
{
    GoldenResult r;
    r.passed = passed;
    r.regenerated = regenerated;
    r.message = std::move(message);
    return r;
}

Table
parseGoldenFile(std::istream &in)
{
    Table rows;
    std::string line;
    while (std::getline(in, line)) {
        std::vector<std::string> row;
        size_t start = 0;
        while (true) {
            size_t comma = line.find(',', start);
            if (comma == std::string::npos) {
                row.push_back(line.substr(start));
                break;
            }
            row.push_back(line.substr(start, comma - start));
            start = comma + 1;
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

/**
 * @return the header label for a column, when row 0 looks like a
 * header (every cell non-numeric); empty otherwise.
 */
std::string
headerLabel(const Table &rows, size_t col)
{
    if (rows.empty() || col >= rows[0].size())
        return "";
    for (const auto &cell : rows[0]) {
        if (cell != canonicalCell(cell) || cell.empty())
            return "";
        char *end = nullptr;
        std::strtod(cell.c_str(), &end);
        if (end && *end == '\0')
            return ""; // numeric first row: not a header
    }
    return rows[0][col];
}

} // anonymous namespace

std::string
canonicalCell(const std::string &cell)
{
    if (cell.empty())
        return cell;
    char *end = nullptr;
    double v = std::strtod(cell.c_str(), &end);
    if (!end || *end != '\0' || end == cell.c_str())
        return cell;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

Table
canonicalTable(const Table &rows)
{
    Table out;
    out.reserve(rows.size());
    for (const auto &row : rows) {
        std::vector<std::string> canon;
        canon.reserve(row.size());
        for (const auto &cell : row)
            canon.push_back(canonicalCell(cell));
        out.push_back(std::move(canon));
    }
    return out;
}

GoldenResult
compareGolden(const std::string &path, const Table &actual)
{
    for (const auto &row : actual) {
        for (const auto &cell : row) {
            if (cell.find(',') != std::string::npos ||
                cell.find('\n') != std::string::npos) {
                return result(
                    false, false,
                    strprintf("golden %s: cell '%s' contains a "
                              "comma or newline; the golden "
                              "format cannot hold it",
                              path.c_str(), cell.c_str()));
            }
        }
    }

    Table canon = canonicalTable(actual);

    if (regenRequested()) {
        std::ofstream out(path);
        if (!out) {
            return result(false, false,
                          strprintf("golden %s: cannot open for "
                                    "regeneration",
                                    path.c_str()));
        }
        for (const auto &row : canon) {
            for (size_t c = 0; c < row.size(); ++c)
                out << (c ? "," : "") << row[c];
            out << "\n";
        }
        return result(true, true,
                      strprintf("golden %s: regenerated (%zu "
                                "rows)",
                                path.c_str(), canon.size()));
    }

    std::ifstream in(path);
    if (!in) {
        return result(
            false, false,
            strprintf("golden %s: missing golden file (run "
                      "tools/regen_goldens.sh to bless the "
                      "current output)",
                      path.c_str()));
    }
    Table golden = canonicalTable(parseGoldenFile(in));

    size_t rows = std::min(golden.size(), canon.size());
    for (size_t r = 0; r < rows; ++r) {
        size_t cols = std::min(golden[r].size(), canon[r].size());
        for (size_t c = 0; c < cols; ++c) {
            if (golden[r][c] == canon[r][c])
                continue;
            std::string label = headerLabel(golden, c);
            return result(
                false, false,
                strprintf("golden %s: first divergence at row "
                          "%zu, col %zu%s%s%s: golden '%s' vs "
                          "actual '%s'",
                          path.c_str(), r, c,
                          label.empty() ? "" : " (",
                          label.c_str(), label.empty() ? "" : ")",
                          golden[r][c].c_str(),
                          canon[r][c].c_str()));
        }
        if (golden[r].size() != canon[r].size()) {
            return result(
                false, false,
                strprintf("golden %s: row %zu has %zu golden "
                          "cells vs %zu actual cells",
                          path.c_str(), r, golden[r].size(),
                          canon[r].size()));
        }
    }
    if (golden.size() != canon.size()) {
        return result(
            false, false,
            strprintf("golden %s: %zu golden rows vs %zu actual "
                      "rows (first extra row index %zu)",
                      path.c_str(), golden.size(), canon.size(),
                      rows));
    }
    return result(true, false,
                  strprintf("golden %s: match (%zu rows)",
                            path.c_str(), canon.size()));
}

std::string
goldenDir(const std::string &compiled_default)
{
    const char *raw = std::getenv("RADCRIT_GOLDEN_DIR");
    if (raw && *raw)
        return raw;
    return compiled_default;
}

} // namespace check
} // namespace radcrit
