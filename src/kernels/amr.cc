#include "kernels/amr.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace radcrit
{

AmrMap::AmrMap(int64_t n, double threshold)
    : n_(n), threshold_(threshold),
      flags_(static_cast<size_t>(n) * n, 0)
{
    if (n < 2)
        fatal("AmrMap needs a grid side >= 2 (got %lld)",
              static_cast<long long>(n));
    if (threshold <= 0.0)
        fatal("AmrMap threshold must be positive (got %g)",
              threshold);
}

void
AmrMap::update(const std::vector<double> &height)
{
    if (height.size() != flags_.size())
        panic("AmrMap::update: field has %zu cells, expected %zu",
              height.size(), flags_.size());
    refined_ = 0;
    auto at = [&](int64_t r, int64_t c) {
        r = std::clamp<int64_t>(r, 0, n_ - 1);
        c = std::clamp<int64_t>(c, 0, n_ - 1);
        return height[r * n_ + c];
    };
    for (int64_t r = 0; r < n_; ++r) {
        for (int64_t c = 0; c < n_; ++c) {
            double h = height[r * n_ + c];
            double grad = std::max(
                std::max(std::abs(at(r - 1, c) - h),
                         std::abs(at(r + 1, c) - h)),
                std::max(std::abs(at(r, c - 1) - h),
                         std::abs(at(r, c + 1) - h)));
            uint8_t flag = grad > threshold_ ? 1 : 0;
            flags_[r * n_ + c] = flag;
            refined_ += flag;
        }
    }
}

uint64_t
AmrMap::effectiveCells() const
{
    auto base = static_cast<uint64_t>(n_) * n_;
    return base + 3 * refined_;
}

double
AmrMap::imbalance() const
{
    constexpr int64_t tile = 16;
    if (n_ < tile)
        return 0.0;
    int64_t tiles = n_ / tile;
    std::vector<double> work;
    work.reserve(static_cast<size_t>(tiles) * tiles);
    for (int64_t tr = 0; tr < tiles; ++tr) {
        for (int64_t tc = 0; tc < tiles; ++tc) {
            uint64_t cells = 0;
            for (int64_t r = tr * tile; r < (tr + 1) * tile; ++r) {
                for (int64_t c = tc * tile; c < (tc + 1) * tile;
                     ++c) {
                    cells += 1 + 3 * flags_[r * n_ + c];
                }
            }
            work.push_back(static_cast<double>(cells));
        }
    }
    double mean = 0.0;
    for (double w : work)
        mean += w;
    mean /= static_cast<double>(work.size());
    size_t deviant = 0;
    for (double w : work) {
        if (std::abs(w - mean) > 0.25 * mean)
            ++deviant;
    }
    return static_cast<double>(deviant) /
        static_cast<double>(work.size());
}

} // namespace radcrit
