#include "kernels/dgemm.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "kernels/inject_util.hh"

namespace radcrit
{

namespace
{

/** Cache utilization = residency fraction x liveness. */
double
cacheUtil(double working_set_bits, double cache_bits,
          double liveness)
{
    return std::min(1.0, working_set_bits / cache_bits) * liveness;
}

} // anonymous namespace

Dgemm::Dgemm(const DeviceModel &device, int64_t n, uint64_t seed,
             int64_t paper_scale)
    : device_(device), n_(n), paperScale_(paper_scale)
{
    if (n <= 0 || n % blockTile != 0)
        fatal("DGEMM side %lld must be a positive multiple of %lld",
              static_cast<long long>(n),
              static_cast<long long>(blockTile));
    if (paper_scale <= 0)
        fatal("DGEMM paper_scale must be positive");

    ScopedTimer golden_timer(StatsRegistry::global(),
                             "kernel.dgemm.golden");

    // Sign-balanced inputs in (-1, 1): small enough to avoid
    // overflow, representative magnitude, balanced bit population
    // (paper Section IV-D).
    Rng rng(seed);
    Golden gold;
    gold.a.resize(static_cast<size_t>(n_) * n_);
    gold.b.resize(static_cast<size_t>(n_) * n_);
    for (auto &v : gold.a)
        v = rng.uniform(-1.0, 1.0);
    for (auto &v : gold.b)
        v = rng.uniform(-1.0, 1.0);

    // Golden output on the very same code path used at injection
    // time (paper IV-D: golden outputs calculated on the device
    // under test to avoid precision and round-off issues).
    gold.c.assign(static_cast<size_t>(n_) * n_, 0.0);
    constexpr int64_t kb = 64;
    for (int64_t k0 = 0; k0 < n_; k0 += kb) {
        int64_t k1 = std::min(n_, k0 + kb);
        for (int64_t i = 0; i < n_; ++i) {
            for (int64_t k = k0; k < k1; ++k) {
                double aik = gold.a[i * n_ + k];
                const double *brow = &gold.b[k * n_];
                double *crow = &gold.c[i * n_];
                for (int64_t j = 0; j < n_; ++j)
                    crow[j] += aik * brow[j];
            }
        }
    }

    double sumsq = 0.0;
    for (double v : gold.c)
        sumsq += v * v;
    gold.cRms = std::sqrt(sumsq /
                          static_cast<double>(gold.c.size()));
    if (gold.cRms <= 0.0)
        gold.cRms = 1.0;
    gold_ = std::make_shared<const Golden>(std::move(gold));

    // --- Launch traits at paper-equivalent scale -------------------
    int64_t n_eff = n_ * paperScale_;
    traits_.name = name_;
    // Table II: side^2 / 16 threads.
    traits_.totalThreads =
        static_cast<uint64_t>(n_eff) * n_eff / 16;
    traits_.blockThreads = (blockTile * blockTile) / 16; // 256
    // Two 64x8 double panels double-buffered per block: the small
    // footprint keeps occupancy high (the paper reports >97.5%
    // multiprocessor activity for the selected inputs).
    traits_.perBlockLocalBytes = 2 * blockTile * 8 * 8;
    traits_.registersPerThread = 64;
    traits_.flopsPerThread = 2.0 * static_cast<double>(n_eff) * 16.0;
    traits_.controlFlowIntensity = 0.05;
    traits_.sfuIntensity = 0.0;
    traits_.kernelInvocations = 1;
    traits_.doublePrecision = true;

    double ws_bits = 3.0 * static_cast<double>(n_eff) * n_eff * 64.0;
    bool gpu = device_.schedulerKind == SchedulerKind::Hardware;

    // Register liveness is the paper's V-A reason (2): the K40
    // time-multiplexes thousands of resident threads, so accumulator
    // values sit idle in the register file for long stretches. The
    // Phi's four hardware threads touch their accumulators every few
    // cycles, leaving almost no idle window.
    traits_.setUtil(ResourceKind::RegisterFile, gpu ? 1.0 : 0.1);
    if (device_.hasResource(ResourceKind::L1Cache)) {
        traits_.setUtil(ResourceKind::L1Cache, cacheUtil(
            ws_bits, device_.resource(ResourceKind::L1Cache)
            .sizeBits, gpu ? 0.5 : 0.15));
    }
    if (device_.hasResource(ResourceKind::SharedMemory))
        traits_.setUtil(ResourceKind::SharedMemory, 0.8);
    if (device_.hasResource(ResourceKind::L2Cache)) {
        // DGEMM is compute-bound (Table I): panels stream through
        // the LLC with short liveness, especially on the Phi whose
        // blocking targets L1/registers.
        traits_.setUtil(ResourceKind::L2Cache, cacheUtil(
            ws_bits, device_.resource(ResourceKind::L2Cache)
            .sizeBits, gpu ? 0.6 : 0.08));
    }
    traits_.setUtil(ResourceKind::Scheduler, 1.0);
    traits_.setUtil(ResourceKind::Dispatcher, 0.8);
    traits_.setUtil(ResourceKind::Fpu, 1.0);
    if (device_.hasResource(ResourceKind::Sfu))
        traits_.setUtil(ResourceKind::Sfu, 0.0);
    traits_.setUtil(ResourceKind::ControlLogic, 0.2);
    traits_.setUtil(ResourceKind::PipelineLatch, 0.9);
    if (device_.hasResource(ResourceKind::Interconnect))
        traits_.setUtil(ResourceKind::Interconnect, 0.3);
}

std::string
Dgemm::inputLabel() const
{
    int64_t n_eff = n_ * paperScale_;
    return std::to_string(n_eff) + "x" + std::to_string(n_eff);
}

SdcRecord
Dgemm::emptyRecord() const
{
    SdcRecord rec;
    rec.dims = 2;
    rec.extent = {n_, n_, 1};
    return rec;
}

double
Dgemm::dot(int64_t i, int64_t j) const
{
    return gold_->c[i * n_ + j];
}

double
Dgemm::partialDot(int64_t i, int64_t j, int64_t k_end) const
{
    double sum = 0.0;
    const double *arow = &gold_->a[i * n_];
    for (int64_t k = 0; k < k_end; ++k)
        sum += arow[k] * gold_->b[k * n_ + j];
    return sum;
}

void
Dgemm::record(SdcRecord &out, int64_t i, int64_t j,
              double read) const
{
    double expected = gold_->c[i * n_ + j];
    if (read != expected || std::isnan(read))
        out.elements.push_back({{i, j, 0}, read, expected});
}

SdcRecord
Dgemm::inject(const Strike &strike, Rng &rng)
{
    ScopedTick tick(injectTimer_);
    SdcRecord out = emptyRecord();
    // Strike-local randomness derives only from the strike's own
    // entropy: the injected record is a pure function of the
    // Strike, which lets beam logs replay campaigns exactly.
    (void)rng;
    Rng srng(Rng::hashCombine(strike.entropy, 0xD6E44ULL));
    switch (strike.manifestation) {
      case Manifestation::BitFlipValue:
        injectAccumulatorFlip(strike, srng, out);
        break;
      case Manifestation::BitFlipInputLine:
        injectInputLineFlip(strike, srng, out);
        break;
      case Manifestation::WrongOperation:
        injectWrongOperation(strike, srng, out);
        break;
      case Manifestation::SkippedChunk:
        injectSkippedChunk(strike, srng, out);
        break;
      case Manifestation::StaleData:
        injectStaleData(strike, srng, out);
        break;
      case Manifestation::MisscheduledBlock:
        injectMisscheduledBlock(strike, srng, out);
        break;
      default:
        panic("DGEMM: unhandled manifestation %d",
              static_cast<int>(strike.manifestation));
    }
    return out;
}

void
Dgemm::injectAccumulatorFlip(const Strike &strike, Rng &rng,
                             SdcRecord &out) const
{
    // One thread's accumulator for element (i, j) is upset when the
    // k-loop has consumed timeFraction of the inner dimension; the
    // remaining products accumulate on top of the flipped partial.
    int64_t i = rng.uniformRange(0, n_ - 1);
    int64_t j = rng.uniformRange(0, n_ - 1);
    auto k0 = static_cast<int64_t>(strike.timeFraction *
                                   static_cast<double>(n_));
    k0 = std::clamp<int64_t>(k0, 0, n_);
    double partial = partialDot(i, j, k0);
    double flipped = flipBits(partial, strike.burstBits, rng);
    double rest = dot(i, j) - partial;
    record(out, i, j, flipped + rest);
}

void
Dgemm::injectInputLineFlip(const Strike &strike, Rng &rng,
                           SdcRecord &out) const
{
    // A cache line of input data is corrupted; every output element
    // whose dot product consumes the line after the strike reads
    // the flipped values. The consumer scope depends on which level
    // held the line: L1/shared lines serve one block tile, the L2
    // line serves every block that touches it before eviction.
    int64_t line_vals = std::max<uint32_t>(
        device_.cacheLineBytes / 8, 1);
    bool corrupt_a = rng.bernoulli(0.5);

    int64_t row = rng.uniformRange(0, n_ - 1);
    int64_t k_start = rng.uniformRange(0, n_ - 1) / line_vals *
        line_vals;
    int64_t k_end = std::min(n_, k_start + line_vals);

    // Distribute the burst over the line.
    std::vector<std::pair<int64_t, double>> deltas;
    for (uint32_t bflip = 0; bflip < strike.burstBits; ++bflip) {
        int64_t k = rng.uniformRange(k_start, k_end - 1);
        double orig = corrupt_a ? gold_->a[row * n_ + k]
                                : gold_->b[k * n_ + row];
        double bad = flipBits(orig, 1, rng);
        deltas.emplace_back(k, bad - orig);
    }

    int64_t scope;
    if (strike.resource == ResourceKind::L2Cache ||
        strike.resource == ResourceKind::Interconnect) {
        scope = n_;
    } else {
        scope = blockTile;
    }
    auto consumed = static_cast<int64_t>(
        std::ceil(static_cast<double>(scope) *
                  (1.0 - strike.timeFraction)));
    consumed = std::clamp<int64_t>(consumed, 1, n_);
    int64_t start = consumed >= n_
        ? 0 : rng.uniformRange(0, n_ - consumed);

    for (int64_t idx = start; idx < start + consumed; ++idx) {
        double delta = 0.0;
        for (const auto &[k, dv] : deltas) {
            delta += corrupt_a ? dv * gold_->b[k * n_ + idx]
                               : dv * gold_->a[idx * n_ + k];
        }
        if (delta == 0.0)
            continue;
        if (corrupt_a)
            record(out, row, idx, gold_->c[row * n_ + idx] + delta);
        else
            record(out, idx, row, gold_->c[idx * n_ + row] + delta);
    }
}

void
Dgemm::injectWrongOperation(const Strike &strike, Rng &rng,
                            SdcRecord &out) const
{
    // One warp/vector chunk executes a garbled instruction window:
    // its slice of the C tile is numerically garbage.
    (void)strike;
    int64_t i0 = rng.uniformRange(0, n_ / chunkRows - 1) * chunkRows;
    int64_t j0 = rng.uniformRange(0, n_ / chunkCols - 1) * chunkCols;
    for (int64_t i = i0; i < i0 + chunkRows; ++i) {
        for (int64_t j = j0; j < j0 + chunkCols; ++j)
            record(out, i, j, garbageValue(gold_->cRms, rng));
    }
}

void
Dgemm::injectSkippedChunk(const Strike &strike, Rng &rng,
                          SdcRecord &out) const
{
    // Work silently dropped at timeFraction: the affected elements
    // keep only the partial sums accumulated so far. Scheduler and
    // control-logic strikes drop whole blocks; dispatcher-level
    // strikes drop one warp slice.
    bool whole_block =
        strike.resource == ResourceKind::Scheduler ||
        strike.resource == ResourceKind::ControlLogic;
    int64_t rows = whole_block ? blockTile : chunkRows;
    int64_t cols = whole_block ? blockTile : chunkCols;
    int64_t i0 = rng.uniformRange(0, n_ / rows - 1) * rows;
    int64_t j0 = rng.uniformRange(0, n_ / cols - 1) * cols;
    auto k0 = static_cast<int64_t>(strike.timeFraction *
                                   static_cast<double>(n_));
    k0 = std::clamp<int64_t>(k0, 0, n_);
    for (int64_t i = i0; i < i0 + rows; ++i) {
        for (int64_t j = j0; j < j0 + cols; ++j)
            record(out, i, j, partialDot(i, j, k0));
    }
}

void
Dgemm::injectStaleData(const Strike &strike, Rng &rng,
                       SdcRecord &out) const
{
    // Several scattered chunks consume a stale B panel (the panel
    // from the previous k-step) for one rank-kb update.
    (void)strike;
    // The stale panel is the one from the previous k-step, so k0
    // must start at the second panel; shrink the panel width for
    // matrices smaller than two default panels.
    const int64_t kb = std::min<int64_t>(64, n_ / 2);
    if (kb == 0)
        return;
    int64_t chunks = rng.uniformRange(2, 6);
    int64_t k0 = rng.uniformRange(1, n_ / kb - 1) * kb;
    if (k0 + kb > n_)
        k0 = n_ - kb;
    std::vector<std::pair<int64_t, int64_t>> chosen;
    for (int64_t c = 0; c < chunks; ++c) {
        int64_t i0 = rng.uniformRange(0, n_ / chunkRows - 1) *
            chunkRows;
        int64_t j0 = rng.uniformRange(0, n_ / chunkCols - 1) *
            chunkCols;
        // Distinct consumers only: a chunk reads the stale panel
        // once.
        if (std::find(chosen.begin(), chosen.end(),
                      std::make_pair(i0, j0)) != chosen.end()) {
            continue;
        }
        chosen.emplace_back(i0, j0);
        for (int64_t i = i0; i < i0 + chunkRows; ++i) {
            for (int64_t j = j0; j < j0 + chunkCols; ++j) {
                double delta = 0.0;
                for (int64_t k = k0; k < std::min(n_, k0 + kb);
                     ++k) {
                    double stale = gold_->b[(k - kb) * n_ + j];
                    delta += gold_->a[i * n_ + k] *
                        (stale - gold_->b[k * n_ + j]);
                }
                if (delta != 0.0) {
                    record(out, i, j,
                           gold_->c[i * n_ + j] + delta);
                }
            }
        }
    }
}

void
Dgemm::injectMisscheduledBlock(const Strike &strike, Rng &rng,
                               SdcRecord &out) const
{
    // A block launches with wrong coordinates and writes the tile
    // computed for another region of C over its own tile.
    (void)strike;
    int64_t tiles = n_ / blockTile;
    int64_t bi = rng.uniformRange(0, tiles - 1);
    int64_t bj = rng.uniformRange(0, tiles - 1);
    int64_t si = rng.uniformRange(0, tiles - 1);
    int64_t sj = rng.uniformRange(0, tiles - 1);
    if (si == bi && sj == bj)
        sj = (sj + 1) % tiles;
    for (int64_t di = 0; di < blockTile; ++di) {
        for (int64_t dj = 0; dj < blockTile; ++dj) {
            double read = gold_->c[(si * blockTile + di) * n_ +
                                   sj * blockTile + dj];
            record(out, bi * blockTile + di, bj * blockTile + dj,
                   read);
        }
    }
}

std::vector<double>
Dgemm::materializeOutput(const SdcRecord &record) const
{
    std::vector<double> c = gold_->c;
    for (const auto &e : record.elements)
        c[e.coord[0] * n_ + e.coord[1]] = e.read;
    return c;
}

} // namespace radcrit
