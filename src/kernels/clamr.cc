#include "kernels/clamr.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "kernels/inject_util.hh"

namespace radcrit
{

namespace
{

/** Height floor used when dividing by h (desingularization). */
constexpr double hFloor = 1e-8;

double
cacheUtil(double ws_bits, double cache_bits, double liveness)
{
    return std::min(1.0, ws_bits / cache_bits) * liveness;
}

/** Rusanov numerical flux for the 1D-split shallow-water system. */
struct Flux
{
    double fh, fhu, fhv;
};

Flux
rusanovX(double hl, double hul, double hvl, double hr, double hur,
         double hvr)
{
    double ul = hul / std::max(hl, hFloor);
    double ur = hur / std::max(hr, hFloor);
    double cl = std::abs(ul) + std::sqrt(Clamr::g *
                                         std::max(hl, 0.0));
    double cr = std::abs(ur) + std::sqrt(Clamr::g *
                                         std::max(hr, 0.0));
    double a = std::max(cl, cr);

    double fl_h = hul;
    double fl_hu = hul * ul + 0.5 * Clamr::g * hl * hl;
    double fl_hv = hvl * ul;
    double fr_h = hur;
    double fr_hu = hur * ur + 0.5 * Clamr::g * hr * hr;
    double fr_hv = hvr * ur;

    Flux f;
    f.fh = 0.5 * (fl_h + fr_h) - 0.5 * a * (hr - hl);
    f.fhu = 0.5 * (fl_hu + fr_hu) - 0.5 * a * (hur - hul);
    f.fhv = 0.5 * (fl_hv + fr_hv) - 0.5 * a * (hvr - hvl);
    return f;
}

/** Minmod slope limiter. */
double
minmod(double a, double b)
{
    if (a * b <= 0.0)
        return 0.0;
    return std::abs(a) < std::abs(b) ? a : b;
}

} // anonymous namespace

void
SweState::resize(size_t cells)
{
    h.assign(cells, 0.0);
    hu.assign(cells, 0.0);
    hv.assign(cells, 0.0);
}

Clamr::Clamr(const DeviceModel &device, int64_t grid, int64_t steps,
             uint64_t seed, int64_t paper_scale)
    : device_(device), n_(grid), steps_(steps),
      paperScale_(paper_scale)
{
    if (grid < 64 || grid % 8 != 0)
        fatal("CLAMR grid %lld must be a multiple of 8 >= 64",
              static_cast<long long>(grid));
    if (steps < 16)
        fatal("CLAMR needs at least 16 steps");
    if (paper_scale <= 0)
        fatal("CLAMR paper_scale must be positive");

    ScopedTimer golden_timer(StatsRegistry::global(),
                             "kernel.clamr.golden");

    snapInterval_ = std::max<int64_t>(steps_ / 16, 1);

    // Circular dam break (the standard CLAMR test problem): a
    // column of deep water at the centre over a shallow background.
    // The paper's runs last 5000 steps, so almost every strike
    // lands on a fully developed wave field; our scaled runs are
    // shorter, so we seed satellite columns and a mild sloshing
    // momentum so the whole domain is wave-active at every strike
    // time (documented in DESIGN.md).
    Rng rng(seed);
    auto cells = static_cast<size_t>(n_) * n_;
    init_.resize(cells);
    double cx = static_cast<double>(n_) / 2.0;
    double cy = static_cast<double>(n_) / 2.0;
    double radius = static_cast<double>(n_) / 8.0;
    struct Column { double r, c, rad, height; };
    std::vector<Column> columns{{cy, cx, radius, 10.0}};
    for (int sat = 0; sat < 6; ++sat) {
        columns.push_back({
            rng.uniform(0.1, 0.9) * static_cast<double>(n_),
            rng.uniform(0.1, 0.9) * static_cast<double>(n_),
            static_cast<double>(n_) / 16.0,
            rng.uniform(3.0, 6.0)});
    }
    for (int64_t r = 0; r < n_; ++r) {
        for (int64_t c = 0; c < n_; ++c) {
            double h = 1.0;
            for (const auto &col : columns) {
                double dr = static_cast<double>(r) + 0.5 - col.r;
                double dc = static_cast<double>(c) + 0.5 - col.c;
                if (dr * dr + dc * dc < col.rad * col.rad)
                    h = std::max(h, col.height);
            }
            size_t i = r * n_ + c;
            init_.h[i] = h;
            // Smooth long-wavelength slosh.
            double ph = 2.0 * M_PI / static_cast<double>(n_);
            init_.hu[i] = 0.3 * h *
                std::sin(ph * static_cast<double>(c) * 2.0);
            init_.hv[i] = 0.3 * h *
                std::cos(ph * static_cast<double>(r) * 3.0);
        }
    }

    // Golden run with checkpoints and AMR cell-count series.
    AmrMap amr(n_, 0.5);
    SweState cur = init_;
    SweState nxt;
    nxt.resize(cells);
    std::vector<SweState> snaps;
    snaps.push_back(cur);
    amr.update(cur.h);
    amrSeries_.push_back(amr.effectiveCells());
    for (int64_t it = 0; it < steps_; ++it) {
        step(cur, nxt);
        std::swap(cur, nxt);
        if ((it + 1) % snapInterval_ == 0 && it + 1 < steps_) {
            snaps.push_back(cur);
            amr.update(cur.h);
            amrSeries_.push_back(amr.effectiveCells());
        }
    }
    snaps_ = std::make_shared<const std::vector<SweState>>(
        std::move(snaps));
    golden_ = cur;
    goldenMass_ = mass(golden_);
    lastMass_ = goldenMass_;

    // --- Launch traits at paper-equivalent scale -------------------
    int64_t n_eff = n_ * paperScale_;
    uint64_t mean_amr = 0;
    for (uint64_t v : amrSeries_)
        mean_amr += v;
    mean_amr /= amrSeries_.size();
    double amr_factor = static_cast<double>(mean_amr) /
        (static_cast<double>(n_) * static_cast<double>(n_));

    traits_.name = name_;
    traits_.totalThreads = static_cast<uint64_t>(
        static_cast<double>(n_eff) * static_cast<double>(n_eff) *
        amr_factor);
    traits_.blockThreads = tile * tile;
    traits_.perBlockLocalBytes = tile * tile * 3 * 8;
    traits_.registersPerThread = 56;
    traits_.flopsPerThread = static_cast<double>(steps_) * 60.0;
    // Many branch-heavy border/refinement tests (Table I:
    // irregular) and one kernel call per step.
    traits_.controlFlowIntensity = 0.8;
    traits_.sfuIntensity = 0.4; // sqrt in the wave speeds
    traits_.kernelInvocations = static_cast<uint64_t>(steps_);
    traits_.doublePrecision = true;

    double ws_bits = 3.0 * static_cast<double>(n_eff) * n_eff *
        64.0;
    bool gpu = device_.schedulerKind == SchedulerKind::Hardware;

    // Compute-bound with irregular accesses (Table I): state is
    // reloaded and overwritten constantly, so storage liveness is
    // short; the criticality mass sits in the control-heavy logic.
    traits_.setUtil(ResourceKind::RegisterFile, 0.15);
    if (device_.hasResource(ResourceKind::L1Cache)) {
        traits_.setUtil(ResourceKind::L1Cache, cacheUtil(
            ws_bits, device_.resource(ResourceKind::L1Cache)
            .sizeBits, 0.15));
    }
    if (device_.hasResource(ResourceKind::SharedMemory))
        traits_.setUtil(ResourceKind::SharedMemory, 0.15);
    if (device_.hasResource(ResourceKind::L2Cache)) {
        traits_.setUtil(ResourceKind::L2Cache, cacheUtil(
            ws_bits, device_.resource(ResourceKind::L2Cache)
            .sizeBits, gpu ? 0.2 : 0.2));
    }
    traits_.setUtil(ResourceKind::Scheduler, 1.0);
    traits_.setUtil(ResourceKind::Dispatcher, 0.9);
    traits_.setUtil(ResourceKind::Fpu, 0.9);
    if (device_.hasResource(ResourceKind::Sfu))
        traits_.setUtil(ResourceKind::Sfu, 0.5);
    traits_.setUtil(ResourceKind::ControlLogic, 0.9);
    traits_.setUtil(ResourceKind::PipelineLatch, 0.9);
    if (device_.hasResource(ResourceKind::Interconnect))
        traits_.setUtil(ResourceKind::Interconnect, 0.5);
}

std::string
Clamr::inputLabel() const
{
    int64_t n_eff = n_ * paperScale_;
    return std::to_string(n_eff) + "x" + std::to_string(n_eff) +
        " cells";
}

SdcRecord
Clamr::emptyRecord() const
{
    SdcRecord rec;
    rec.dims = 2;
    rec.extent = {n_, n_, 1};
    return rec;
}

double
Clamr::mass(const SweState &state)
{
    double m = 0.0;
    for (double h : state.h)
        m += h;
    return m;
}

void
Clamr::step(const SweState &src, SweState &dst) const
{
    // Second-order MUSCL reconstruction (minmod limiter) with
    // Rusanov interface fluxes, unsplit 2D update, reflective
    // boundaries (ghosts mirror the interior cell with the normal
    // momentum negated). The low numerical diffusion of the
    // second-order scheme is what lets injected perturbations
    // persist and propagate as waves instead of being smeared away
    // — the behaviour the paper reports for CLAMR.
    //
    // Interface fluxes are evaluated once per interface and
    // accumulated with opposite signs into both neighbouring
    // cells, so total mass is conserved to the rounding of the
    // per-cell additions.
    double lam = dt_; // dx = dy = 1

    // Cell access with one reflective ghost layer per side; `swap`
    // mirrors the normal momentum for the direction being swept.
    auto cell = [&](int64_t r, int64_t c, double &h, double &hn,
                    double &ht, bool sweep_x) {
        double sign = 1.0;
        if (r < 0) { r = 0; if (!sweep_x) sign = -1.0; }
        if (r >= n_) { r = n_ - 1; if (!sweep_x) sign = -1.0; }
        if (c < 0) { c = 0; if (sweep_x) sign = -1.0; }
        if (c >= n_) { c = n_ - 1; if (sweep_x) sign = -1.0; }
        size_t i = r * n_ + c;
        h = src.h[i];
        if (sweep_x) {
            hn = sign * src.hu[i];
            ht = src.hv[i];
        } else {
            hn = sign * src.hv[i];
            ht = src.hu[i];
        }
    };

    // Limited edge states of cell (r, c) toward +/- normal
    // direction for the given sweep.
    auto edges = [&](int64_t r, int64_t c, bool sweep_x, bool plus,
                     double &h, double &hn, double &ht) {
        double hm, hnm, htm, h0, hn0, ht0, hp, hnp, htp;
        int64_t rm = sweep_x ? r : r - 1;
        int64_t cm = sweep_x ? c - 1 : c;
        int64_t rp = sweep_x ? r : r + 1;
        int64_t cp = sweep_x ? c + 1 : c;
        cell(rm, cm, hm, hnm, htm, sweep_x);
        cell(r, c, h0, hn0, ht0, sweep_x);
        cell(rp, cp, hp, hnp, htp, sweep_x);
        double half = plus ? 0.5 : -0.5;
        h = h0 + half * minmod(h0 - hm, hp - h0);
        hn = hn0 + half * minmod(hn0 - hnm, hnp - hn0);
        ht = ht0 + half * minmod(ht0 - htm, htp - ht0);
        // Reconstruction must not drive the depth negative.
        h = std::max(h, hFloor);
    };

    dst.h = src.h;
    dst.hu = src.hu;
    dst.hv = src.hv;

    // X sweep: interfaces between (r, k-1) and (r, k), k in [0, n].
    for (int64_t r = 0; r < n_; ++r) {
        for (int64_t k = 0; k <= n_; ++k) {
            double hl = 0.0, hul = 0.0, hvl = 0.0;
            double hr = 0.0, hur = 0.0, hvr = 0.0;
            if (k < n_)
                edges(r, k, true, false, hr, hur, hvr);
            if (k > 0)
                edges(r, k - 1, true, true, hl, hul, hvl);
            // Wall ghosts mirror the reconstructed interior edge
            // with the normal momentum negated, making the wall
            // mass flux exactly zero.
            if (k == 0) {
                hl = hr; hul = -hur; hvl = hvr;
            }
            if (k == n_) {
                hr = hl; hur = -hul; hvr = hvl;
            }
            Flux f = rusanovX(hl, hul, hvl, hr, hur, hvr);
            if (k > 0) {
                size_t i = r * n_ + (k - 1);
                dst.h[i] -= lam * f.fh;
                dst.hu[i] -= lam * f.fhu;
                dst.hv[i] -= lam * f.fhv;
            }
            if (k < n_) {
                size_t i = r * n_ + k;
                dst.h[i] += lam * f.fh;
                dst.hu[i] += lam * f.fhu;
                dst.hv[i] += lam * f.fhv;
            }
        }
    }

    // Y sweep: interfaces between (k-1, c) and (k, c). The solver
    // is reused with hv as the normal momentum.
    for (int64_t c = 0; c < n_; ++c) {
        for (int64_t k = 0; k <= n_; ++k) {
            double hl = 0.0, hvl = 0.0, hul = 0.0;
            double hr = 0.0, hvr = 0.0, hur = 0.0;
            if (k < n_)
                edges(k, c, false, false, hr, hvr, hur);
            if (k > 0)
                edges(k - 1, c, false, true, hl, hvl, hul);
            if (k == 0) {
                hl = hr; hvl = -hvr; hul = hur;
            }
            if (k == n_) {
                hr = hl; hvr = -hvl; hur = hul;
            }
            Flux g = rusanovX(hl, hvl, hul, hr, hvr, hur);
            if (k > 0) {
                size_t i = (k - 1) * n_ + c;
                dst.h[i] -= lam * g.fh;
                dst.hv[i] -= lam * g.fhu;
                dst.hu[i] -= lam * g.fhv;
            }
            if (k < n_) {
                size_t i = k * n_ + c;
                dst.h[i] += lam * g.fh;
                dst.hv[i] += lam * g.fhu;
                dst.hu[i] += lam * g.fhv;
            }
        }
    }
}

int64_t
Clamr::strikeStep(const Strike &strike) const
{
    auto it = static_cast<int64_t>(strike.timeFraction *
                                   static_cast<double>(steps_));
    return std::clamp<int64_t>(it, 0, steps_ - 1);
}

void
Clamr::runWithCorruption(int64_t it0, int64_t persist,
                         const Corruptor &corrupt, SdcRecord &out)
{
    int64_t snap = std::min<int64_t>(it0 / snapInterval_,
                                     static_cast<int64_t>(
                                         snaps_->size()) - 1);
    SweState cur = (*snaps_)[static_cast<size_t>(snap)];
    SweState nxt;
    nxt.resize(cur.h.size());
    int64_t it_end = std::min(steps_, it0 + persist);
    for (int64_t it = snap * snapInterval_; it < steps_; ++it) {
        if (it >= it0 && it < it_end)
            corrupt(cur, it);
        step(cur, nxt);
        std::swap(cur, nxt);
    }
    lastMass_ = mass(cur);
    for (int64_t r = 0; r < n_; ++r) {
        for (int64_t c = 0; c < n_; ++c) {
            double read = cur.h[r * n_ + c];
            double expected = golden_.h[r * n_ + c];
            if (read != expected || std::isnan(read))
                out.elements.push_back({{r, c, 0}, read,
                                        expected});
        }
    }
}

SdcRecord
Clamr::inject(const Strike &strike, Rng &rng)
{
    ScopedTick tick(injectTimer_);
    SdcRecord out = emptyRecord();
    // Strike-local randomness derives only from the strike's own
    // entropy: the injected record is a pure function of the
    // Strike, which lets beam logs replay campaigns exactly.
    (void)rng;
    Rng srng(Rng::hashCombine(strike.entropy, 0xC1A32ULL));
    switch (strike.manifestation) {
      case Manifestation::BitFlipValue:
        injectValueFlip(strike, srng, out);
        break;
      case Manifestation::BitFlipInputLine:
        injectInputLineFlip(strike, srng, out);
        break;
      case Manifestation::WrongOperation:
        injectWrongOperation(strike, srng, out);
        break;
      case Manifestation::SkippedChunk:
        injectSkippedChunk(strike, srng, out);
        break;
      case Manifestation::StaleData:
        injectStaleData(strike, srng, out);
        break;
      case Manifestation::MisscheduledBlock:
        injectMisscheduledBlock(strike, srng, out);
        break;
      default:
        panic("CLAMR: unhandled manifestation %d",
              static_cast<int>(strike.manifestation));
    }
    return out;
}

void
Clamr::injectValueFlip(const Strike &strike, Rng &rng,
                       SdcRecord &out)
{
    int64_t it0 = strikeStep(strike);
    int64_t r = rng.uniformRange(0, n_ - 1);
    int64_t c = rng.uniformRange(0, n_ - 1);
    // h is read most often (fluxes and both wave speeds), so it is
    // the most exposed field; this weighting also sets the
    // mass-check detector coverage (paper ref. [4]: 82%).
    int field = rng.bernoulli(0.6) ? 0
        : (rng.bernoulli(0.5) ? 1 : 2);
    uint32_t bits = strike.burstBits;
    Rng flip_rng = rng.split(1);
    Corruptor corrupt = [=, this, &flip_rng](SweState &state,
                                             int64_t) {
        size_t i = r * n_ + c;
        if (field == 0) {
            // Mantissa plus two low exponent bits: keeps h positive
            // and within the CFL-stable range (larger excursions
            // abort the run and count as crashes).
            state.h[i] = flipBitsBounded(state.h[i], bits, 53,
                                         flip_rng);
        } else {
            double &v = field == 1 ? state.hu[i] : state.hv[i];
            if (flip_rng.bernoulli(0.1))
                v = -v; // sign flip is bounded for momentum
            else
                v = flipBitsBounded(v, bits, 53, flip_rng);
        }
    };
    runWithCorruption(it0, 1, corrupt, out);
}

void
Clamr::injectInputLineFlip(const Strike &strike, Rng &rng,
                           SdcRecord &out)
{
    int64_t it0 = strikeStep(strike);
    int64_t line_cells = std::max<uint32_t>(
        device_.cacheLineBytes / 8, 1);
    int64_t r = rng.uniformRange(0, n_ - 1);
    int64_t c0 = rng.uniformRange(0, n_ - 1) / line_cells *
        line_cells;
    int64_t c1 = std::min(n_, c0 + line_cells);
    bool gpu = device_.schedulerKind == SchedulerKind::Hardware;
    int64_t persist = strike.resource == ResourceKind::L2Cache
        ? (gpu ? 2 : 4) : 1;

    auto values = std::make_shared<std::vector<double>>();
    uint32_t bits = strike.burstBits;
    Rng flip_rng = rng.split(2);
    Corruptor corrupt = [=, this, &flip_rng](SweState &state,
                                             int64_t) {
        if (values->empty()) {
            for (int64_t c = c0; c < c1; ++c)
                values->push_back(state.h[r * n_ + c]);
            for (uint32_t bflip = 0; bflip < bits; ++bflip) {
                auto i = flip_rng.uniformInt(values->size());
                (*values)[i] = flipBitsBounded((*values)[i], 1, 51,
                                               flip_rng);
            }
        }
        for (int64_t c = c0; c < c1; ++c)
            state.h[r * n_ + c] = (*values)[c - c0];
    };
    runWithCorruption(it0, persist, corrupt, out);
}

void
Clamr::injectWrongOperation(const Strike &strike, Rng &rng,
                            SdcRecord &out)
{
    // One work chunk computes a wrong update for one step.
    int64_t it0 = strikeStep(strike);
    int64_t tiles = n_ / tile;
    int64_t tr = rng.uniformRange(0, tiles - 1) * tile;
    int64_t tc = rng.uniformRange(0, tiles - 1) * tile;
    Rng noise_rng = rng.split(3);
    Corruptor corrupt = [=, this, &noise_rng](SweState &state,
                                              int64_t) {
        for (int64_t r = tr; r < tr + tile; ++r) {
            for (int64_t c = tc; c < tc + tile; ++c) {
                size_t i = r * n_ + c;
                // Noise scaled to the local state keeps the run
                // inside the CFL-stable range (larger excursions
                // abort and count as crashes, see file comment).
                double h = state.h[i];
                state.h[i] = std::max(
                    0.05, h + noise_rng.normal(0.0, 0.35 * h));
                state.hu[i] += noise_rng.normal(0.0,
                                                0.8 * state.h[i]);
                state.hv[i] += noise_rng.normal(0.0,
                                                0.8 * state.h[i]);
            }
        }
    };
    runWithCorruption(it0, 1, corrupt, out);
}

void
Clamr::injectSkippedChunk(const Strike &strike, Rng &rng,
                          SdcRecord &out)
{
    // One chunk's update silently skipped: its cells lag one step.
    int64_t it0 = strikeStep(strike);
    int64_t tiles = n_ / tile;
    int64_t tr = rng.uniformRange(0, tiles - 1) * tile;
    int64_t tc = rng.uniformRange(0, tiles - 1) * tile;
    auto stale = std::make_shared<SweState>();
    Corruptor corrupt = [=, this](SweState &state, int64_t) {
        if (stale->h.empty()) {
            stale->resize(tile * tile);
            size_t k = 0;
            for (int64_t r = tr; r < tr + tile; ++r) {
                for (int64_t c = tc; c < tc + tile; ++c) {
                    size_t i = r * n_ + c;
                    stale->h[k] = state.h[i];
                    stale->hu[k] = state.hu[i];
                    stale->hv[k] = state.hv[i];
                    ++k;
                }
            }
            return;
        }
        size_t k = 0;
        for (int64_t r = tr; r < tr + tile; ++r) {
            for (int64_t c = tc; c < tc + tile; ++c) {
                size_t i = r * n_ + c;
                state.h[i] = stale->h[k];
                state.hu[i] = stale->hu[k];
                state.hv[i] = stale->hv[k];
                ++k;
            }
        }
    };
    runWithCorruption(it0, 5, corrupt, out);
}

void
Clamr::injectStaleData(const Strike &strike, Rng &rng,
                       SdcRecord &out)
{
    // A halo row segment of heights is served stale for two steps.
    int64_t it0 = strikeStep(strike);
    int64_t r = rng.uniformRange(0, n_ - 1);
    int64_t c0 = rng.uniformRange(0, n_ - 1) / tile * tile;
    int64_t c1 = std::min(n_, c0 + 4 * tile);
    auto stale = std::make_shared<std::vector<double>>();
    Corruptor corrupt = [=, this](SweState &state, int64_t) {
        if (stale->empty()) {
            for (int64_t c = c0; c < c1; ++c)
                stale->push_back(state.h[r * n_ + c]);
            return;
        }
        for (int64_t c = c0; c < c1; ++c)
            state.h[r * n_ + c] = (*stale)[c - c0];
    };
    runWithCorruption(it0, 3, corrupt, out);
}

void
Clamr::injectMisscheduledBlock(const Strike &strike, Rng &rng,
                               SdcRecord &out)
{
    // One chunk receives the state computed for another chunk.
    int64_t it0 = strikeStep(strike);
    int64_t tiles = n_ / tile;
    int64_t tr = rng.uniformRange(0, tiles - 1) * tile;
    int64_t tc = rng.uniformRange(0, tiles - 1) * tile;
    int64_t sr = rng.uniformRange(0, tiles - 1) * tile;
    int64_t sc = rng.uniformRange(0, tiles - 1) * tile;
    if (sr == tr && sc == tc)
        sc = (sc + tile) % n_;
    Corruptor corrupt = [=, this](SweState &state, int64_t) {
        for (int64_t dr = 0; dr < tile; ++dr) {
            for (int64_t dc = 0; dc < tile; ++dc) {
                size_t dst = (tr + dr) * n_ + tc + dc;
                size_t src = (sr + dr) * n_ + sc + dc;
                state.h[dst] = state.h[src];
                state.hu[dst] = state.hu[src];
                state.hv[dst] = state.hv[src];
            }
        }
    };
    runWithCorruption(it0, 1, corrupt, out);
}

} // namespace radcrit
