#include "kernels/hotspot.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "kernels/inject_util.hh"

namespace radcrit
{

namespace
{

/** Lateral coupling per axis and ambient coupling per step. */
constexpr float cLat = 0.12f;
constexpr float cAmb = 0.02f;
constexpr float cPow = 0.5f;

double
cacheUtil(double ws_bits, double cache_bits, double liveness)
{
    return std::min(1.0, ws_bits / cache_bits) * liveness;
}

} // anonymous namespace

HotSpot::HotSpot(const DeviceModel &device, int64_t grid,
                 int64_t iterations, uint64_t seed,
                 int64_t paper_scale)
    : device_(device), n_(grid), iters_(iterations),
      paperScale_(paper_scale)
{
    if (grid < 64 || grid % tile != 0)
        fatal("HotSpot grid %lld must be a multiple of %lld "
              ">= 64", static_cast<long long>(grid),
              static_cast<long long>(tile));
    if (iterations < 8)
        fatal("HotSpot needs at least 8 iterations");
    if (paper_scale <= 0)
        fatal("HotSpot paper_scale must be positive");

    ScopedTimer golden_timer(StatsRegistry::global(),
                             "kernel.hotspot.golden");

    snapInterval_ = std::max<int64_t>(iters_ / 12, 1);

    // Power map: smooth background plus a few hot functional units,
    // mimicking the architectural floor plan input.
    Rng rng(seed);
    auto cells = static_cast<size_t>(n_) * n_;
    power_.resize(cells);
    tempInit_.resize(cells);
    for (size_t i = 0; i < cells; ++i) {
        power_[i] = static_cast<float>(rng.uniform(0.0, 0.4));
        tempInit_[i] = 323.0f +
            static_cast<float>(rng.uniform(0.0, 1.0));
    }
    int hot_blocks = 6;
    for (int hb = 0; hb < hot_blocks; ++hb) {
        int64_t r0 = rng.uniformRange(0, n_ - n_ / 8 - 1);
        int64_t c0 = rng.uniformRange(0, n_ - n_ / 8 - 1);
        for (int64_t r = r0; r < r0 + n_ / 8; ++r) {
            for (int64_t c = c0; c < c0 + n_ / 8; ++c)
                power_[r * n_ + c] += 1.5f;
        }
    }

    // Golden run with checkpoints.
    std::vector<float> cur = tempInit_;
    std::vector<float> nxt(cells);
    std::vector<std::vector<float>> snaps;
    snaps.push_back(cur);
    for (int64_t it = 0; it < iters_; ++it) {
        step(cur, nxt);
        cur.swap(nxt);
        if ((it + 1) % snapInterval_ == 0 && it + 1 < iters_)
            snaps.push_back(cur);
    }
    snaps_ = std::make_shared<
        const std::vector<std::vector<float>>>(std::move(snaps));
    golden_ = cur;

    // --- Launch traits at paper-equivalent scale -------------------
    int64_t n_eff = n_ * paperScale_;
    traits_.name = name_;
    traits_.totalThreads = static_cast<uint64_t>(n_eff) * n_eff;
    traits_.blockThreads = tile * tile;
    // Small local-memory footprint: highest occupancy of the
    // tested codes (paper IV-B).
    traits_.perBlockLocalBytes = tile * tile * 4 * 2;
    traits_.registersPerThread = 24;
    traits_.flopsPerThread = static_cast<double>(iters_) * 12.0;
    traits_.controlFlowIntensity = 0.05;
    traits_.sfuIntensity = 0.0;
    traits_.kernelInvocations = static_cast<uint64_t>(iters_);
    traits_.doublePrecision = false;
    // Small resident footprint keeps corrupted addresses mapped on
    // the K40; the Phi's 57 coherent L2s + ring carry much more
    // tag/coherence state, so its storage strikes escalate more
    // often (paper Section V: HotSpot SDC:det is ~7x on the K40
    // but only ~3x on the Phi).
    traits_.crashExposure =
        device_.schedulerKind == SchedulerKind::Hardware ? 0.25
                                                         : 0.65;

    double ws_bits = 2.0 * static_cast<double>(n_eff) * n_eff *
        32.0;
    bool gpu = device_.schedulerKind == SchedulerKind::Hardware;

    traits_.setUtil(ResourceKind::RegisterFile, 0.5);
    if (device_.hasResource(ResourceKind::L1Cache)) {
        traits_.setUtil(ResourceKind::L1Cache, cacheUtil(
            ws_bits, device_.resource(ResourceKind::L1Cache)
            .sizeBits, 0.8));
    }
    if (device_.hasResource(ResourceKind::SharedMemory))
        traits_.setUtil(ResourceKind::SharedMemory, 0.7);
    if (device_.hasResource(ResourceKind::L2Cache)) {
        // Memory-bound (Table I): the whole grid streams through
        // the LLC every iteration.
        traits_.setUtil(ResourceKind::L2Cache, cacheUtil(
            ws_bits, device_.resource(ResourceKind::L2Cache)
            .sizeBits, gpu ? 0.8 : 0.9));
    }
    // Iterative re-launches of an identical, perfectly regular grid
    // let the scheduler reuse its dispatch state, and a
    // mis-schedule only lags one tile by an iteration (absorbed by
    // the next relaunch): the scheduler is barely a criticality
    // source for stencils, which is why HotSpot shows the highest
    // SDC:(crash+hang) ratio on the K40 (paper Section V).
    traits_.setUtil(ResourceKind::Scheduler, 0.1);
    traits_.setUtil(ResourceKind::Dispatcher, 0.6);
    traits_.setUtil(ResourceKind::Fpu, 0.5);
    if (device_.hasResource(ResourceKind::Sfu))
        traits_.setUtil(ResourceKind::Sfu, 0.0);
    traits_.setUtil(ResourceKind::ControlLogic, 0.15);
    traits_.setUtil(ResourceKind::PipelineLatch, 0.6);
    if (device_.hasResource(ResourceKind::Interconnect))
        traits_.setUtil(ResourceKind::Interconnect, 0.6);
}

std::string
HotSpot::inputLabel() const
{
    int64_t n_eff = n_ * paperScale_;
    return std::to_string(n_eff) + "x" + std::to_string(n_eff);
}

SdcRecord
HotSpot::emptyRecord() const
{
    SdcRecord rec;
    rec.dims = 2;
    rec.extent = {n_, n_, 1};
    return rec;
}

void
HotSpot::step(const std::vector<float> &src,
              std::vector<float> &dst) const
{
    auto at = [&](int64_t r, int64_t c) {
        r = std::clamp<int64_t>(r, 0, n_ - 1);
        c = std::clamp<int64_t>(c, 0, n_ - 1);
        return src[r * n_ + c];
    };
    for (int64_t r = 0; r < n_; ++r) {
        for (int64_t c = 0; c < n_; ++c) {
            float t = src[r * n_ + c];
            float lap_r = at(r - 1, c) + at(r + 1, c) - 2.0f * t;
            float lap_c = at(r, c - 1) + at(r, c + 1) - 2.0f * t;
            dst[r * n_ + c] = t + cPow * power_[r * n_ + c] +
                cLat * (lap_r + lap_c) + cAmb * (ambient - t);
        }
    }
}

int64_t
HotSpot::strikeIteration(const Strike &strike) const
{
    auto it = static_cast<int64_t>(strike.timeFraction *
                                   static_cast<double>(iters_));
    return std::clamp<int64_t>(it, 0, iters_ - 1);
}

void
HotSpot::runWithCorruption(int64_t it0, int64_t persist,
                           const Corruptor &corrupt,
                           SdcRecord &out) const
{
    int64_t snap = std::min<int64_t>(it0 / snapInterval_,
                                     static_cast<int64_t>(
                                         snaps_->size()) - 1);
    std::vector<float> cur = (*snaps_)[static_cast<size_t>(snap)];
    std::vector<float> nxt(cur.size());
    int64_t it_end = std::min(iters_, it0 + persist);
    for (int64_t it = snap * snapInterval_; it < iters_; ++it) {
        if (it >= it0 && it < it_end)
            corrupt(cur, it);
        step(cur, nxt);
        cur.swap(nxt);
    }
    for (int64_t r = 0; r < n_; ++r) {
        for (int64_t c = 0; c < n_; ++c) {
            float read = cur[r * n_ + c];
            float expected = golden_[r * n_ + c];
            if (read != expected || std::isnan(read)) {
                out.elements.push_back({{r, c, 0},
                                        static_cast<double>(read),
                                        static_cast<double>(
                                            expected)});
            }
        }
    }
}

SdcRecord
HotSpot::inject(const Strike &strike, Rng &rng)
{
    ScopedTick tick(injectTimer_);
    SdcRecord out = emptyRecord();
    // Strike-local randomness derives only from the strike's own
    // entropy: the injected record is a pure function of the
    // Strike, which lets beam logs replay campaigns exactly.
    (void)rng;
    Rng srng(Rng::hashCombine(strike.entropy, 0x407507ULL));
    switch (strike.manifestation) {
      case Manifestation::BitFlipValue:
        injectValueFlip(strike, srng, out);
        break;
      case Manifestation::BitFlipInputLine:
        injectInputLineFlip(strike, srng, out);
        break;
      case Manifestation::WrongOperation:
        injectWrongOperation(strike, srng, out);
        break;
      case Manifestation::SkippedChunk:
        injectSkippedChunk(strike, srng, out);
        break;
      case Manifestation::StaleData:
        injectStaleData(strike, srng, out);
        break;
      case Manifestation::MisscheduledBlock:
        injectMisscheduledBlock(strike, srng, out);
        break;
      default:
        panic("HotSpot: unhandled manifestation %d",
              static_cast<int>(strike.manifestation));
    }
    return out;
}

void
HotSpot::injectValueFlip(const Strike &strike, Rng &rng,
                         SdcRecord &out) const
{
    int64_t it0 = strikeIteration(strike);
    int64_t r = rng.uniformRange(0, n_ - 1);
    int64_t c = rng.uniformRange(0, n_ - 1);
    uint32_t bits = strike.burstBits;
    // Bounded-excursion flips: mantissa plus two low exponent bits
    // (see file comment).
    Rng flip_rng = rng.split(1);
    Corruptor corrupt = [=, this, &flip_rng](
        std::vector<float> &state, int64_t) {
        state[r * n_ + c] = flipBitsFloatBounded(
            state[r * n_ + c], bits, 20, flip_rng);
    };
    runWithCorruption(it0, 1, corrupt, out);
}

void
HotSpot::injectInputLineFlip(const Strike &strike, Rng &rng,
                             SdcRecord &out) const
{
    int64_t it0 = strikeIteration(strike);
    int64_t line_cells = std::max<uint32_t>(
        device_.cacheLineBytes / 4, 1);
    int64_t r = rng.uniformRange(0, n_ - 1);
    int64_t c0 = rng.uniformRange(0, n_ - 1) / line_cells *
        line_cells;
    int64_t c1 = std::min(n_, c0 + line_cells);

    // The Phi's long L2 residency keeps re-serving the corrupted
    // line across several iterations; the K40 evicts it quickly.
    bool gpu = device_.schedulerKind == SchedulerKind::Hardware;
    int64_t persist = strike.resource == ResourceKind::L2Cache
        ? (gpu ? 1 : 8) : 1;

    // Capture the corrupted values at first application; stale
    // re-reads re-impose the same values.
    auto values = std::make_shared<std::vector<float>>();
    uint32_t bits = strike.burstBits;
    Rng flip_rng = rng.split(2);
    Corruptor corrupt = [=, this, &flip_rng](
        std::vector<float> &state, int64_t) {
        if (values->empty()) {
            for (int64_t c = c0; c < c1; ++c)
                values->push_back(state[r * n_ + c]);
            for (uint32_t bflip = 0; bflip < bits; ++bflip) {
                auto idx = flip_rng.uniformInt(values->size());
                (*values)[idx] = flipBitsFloatBounded(
                    (*values)[idx], 1, 20, flip_rng);
            }
        }
        for (int64_t c = c0; c < c1; ++c)
            state[r * n_ + c] = (*values)[c - c0];
    };
    runWithCorruption(it0, persist, corrupt, out);
}

void
HotSpot::injectWrongOperation(const Strike &strike, Rng &rng,
                              SdcRecord &out) const
{
    // One block computes a wrong update for one iteration: its tile
    // receives bounded-garbage temperatures.
    int64_t it0 = strikeIteration(strike);
    int64_t tiles = n_ / tile;
    int64_t tr = rng.uniformRange(0, tiles - 1) * tile;
    int64_t tc = rng.uniformRange(0, tiles - 1) * tile;
    Rng noise_rng = rng.split(3);
    Corruptor corrupt = [=, this, &noise_rng](
        std::vector<float> &state, int64_t) {
        for (int64_t r = tr; r < tr + tile; ++r) {
            for (int64_t c = tc; c < tc + tile; ++c) {
                state[r * n_ + c] += static_cast<float>(
                    noise_rng.normal(0.0, 18.0));
            }
        }
    };
    runWithCorruption(it0, 1, corrupt, out);
}

void
HotSpot::injectSkippedChunk(const Strike &strike, Rng &rng,
                            SdcRecord &out) const
{
    // One block's update silently skipped: its tile lags one
    // iteration behind (re-imposing the previous-iteration values).
    int64_t it0 = strikeIteration(strike);
    int64_t tiles = n_ / tile;
    int64_t tr = rng.uniformRange(0, tiles - 1) * tile;
    int64_t tc = rng.uniformRange(0, tiles - 1) * tile;
    auto stale = std::make_shared<std::vector<float>>();
    Corruptor capture_then_lag = [=, this](
        std::vector<float> &state, int64_t) {
        if (stale->empty()) {
            for (int64_t r = tr; r < tr + tile; ++r) {
                for (int64_t c = tc; c < tc + tile; ++c)
                    stale->push_back(state[r * n_ + c]);
            }
            return; // first corrupted iteration: capture only
        }
        size_t k = 0;
        for (int64_t r = tr; r < tr + tile; ++r) {
            for (int64_t c = tc; c < tc + tile; ++c)
                state[r * n_ + c] = (*stale)[k++];
        }
    };
    runWithCorruption(it0, 2, capture_then_lag, out);
}

void
HotSpot::injectStaleData(const Strike &strike, Rng &rng,
                         SdcRecord &out) const
{
    // A halo row segment is served stale for a couple of
    // iterations.
    int64_t it0 = strikeIteration(strike);
    int64_t r = rng.uniformRange(0, n_ - 1);
    int64_t c0 = rng.uniformRange(0, std::max<int64_t>(
        n_ - 4 * tile, 1) - 1);
    int64_t c1 = std::min(n_, c0 + 4 * tile);
    auto stale = std::make_shared<std::vector<float>>();
    Corruptor corrupt = [=, this](std::vector<float> &state,
                                  int64_t) {
        if (stale->empty()) {
            for (int64_t c = c0; c < c1; ++c)
                stale->push_back(state[r * n_ + c]);
            return;
        }
        for (int64_t c = c0; c < c1; ++c)
            state[r * n_ + c] = (*stale)[c - c0];
    };
    runWithCorruption(it0, 3, corrupt, out);
}

void
HotSpot::injectMisscheduledBlock(const Strike &strike, Rng &rng,
                                 SdcRecord &out) const
{
    // One block writes the tile computed for another region.
    int64_t it0 = strikeIteration(strike);
    int64_t tiles = n_ / tile;
    int64_t tr = rng.uniformRange(0, tiles - 1) * tile;
    int64_t tc = rng.uniformRange(0, tiles - 1) * tile;
    int64_t sr = rng.uniformRange(0, tiles - 1) * tile;
    int64_t sc = rng.uniformRange(0, tiles - 1) * tile;
    if (sr == tr && sc == tc)
        sc = (sc + tile) % n_;
    Corruptor corrupt = [=, this](std::vector<float> &state,
                                  int64_t) {
        for (int64_t dr = 0; dr < tile; ++dr) {
            for (int64_t dc = 0; dc < tile; ++dc) {
                state[(tr + dr) * n_ + tc + dc] =
                    state[(sr + dr) * n_ + sc + dc];
            }
        }
    };
    runWithCorruption(it0, 1, corrupt, out);
}

} // namespace radcrit
