/**
 * @file
 * Cell-based adaptive-mesh-refinement map, the CLAMR scheduling
 * layer.
 *
 * CLAMR refines cells near steep gradients of the water height; the
 * paper stresses that the resulting "large number of kernel calls
 * and changes in number of threads between time steps" exercise the
 * device control resources. The AmrMap computes, per step, which
 * cells a cell-based AMR would refine and how many effective cells
 * (= threads) the step launches. The wave dynamics themselves run on
 * the fully refined uniform grid (see DESIGN.md substitution notes).
 */

#ifndef RADCRIT_KERNELS_AMR_HH
#define RADCRIT_KERNELS_AMR_HH

#include <cstdint>
#include <vector>

namespace radcrit
{

/**
 * Two-level refinement map over an n x n cell grid.
 */
class AmrMap
{
  public:
    /**
     * @param n Grid side.
     * @param threshold Refine where the max height difference to a
     * 4-neighbour exceeds this.
     */
    AmrMap(int64_t n, double threshold);

    /** Recompute flags from a height field (row-major n x n). */
    void update(const std::vector<double> &height);

    /** @return number of cells flagged for refinement. */
    uint64_t refinedCells() const { return refined_; }

    /**
     * @return effective cell (thread) count: unflagged cells count
     * once, flagged cells split into four children.
     */
    uint64_t effectiveCells() const;

    /** @return per-cell refinement flags. */
    const std::vector<uint8_t> &flags() const { return flags_; }

    /** @return grid side. */
    int64_t n() const { return n_; }

    /**
     * Load-imbalance proxy: fraction of 16x16 work tiles whose
     * effective cell count deviates from the mean by more than 25%.
     */
    double imbalance() const;

  private:
    int64_t n_;
    double threshold_;
    std::vector<uint8_t> flags_;
    uint64_t refined_ = 0;
};

} // namespace radcrit

#endif // RADCRIT_KERNELS_AMR_HH
