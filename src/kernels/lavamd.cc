#include "kernels/lavamd.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "kernels/inject_util.hh"

namespace radcrit
{

namespace
{

double
cacheUtil(double ws_bits, double cache_bits, double liveness)
{
    return std::min(1.0, ws_bits / cache_bits) * liveness;
}

} // anonymous namespace

LavaMd::LavaMd(const DeviceModel &device, int64_t boxes1d,
               uint64_t seed, int64_t paper_scale,
               int64_t particle_scale, int64_t paper_boxes1d)
    : device_(device), nb_(boxes1d), paperScale_(paper_scale),
      paperBoxes_(paper_boxes1d > 0 ? paper_boxes1d
                                    : boxes1d * paper_scale)
{
    if (boxes1d < 2)
        fatal("LavaMD needs at least 2 boxes per dimension");
    if (paper_scale <= 0 || particle_scale <= 0)
        fatal("LavaMD scales must be positive");
    if (device_.particlesPerBoxHint == 0)
        fatal("device %s has no LavaMD particle tuning",
              device_.name.c_str());

    ScopedTimer golden_timer(StatsRegistry::global(),
                             "kernel.lavamd.golden");

    p_ = std::max<int64_t>(
        device_.particlesPerBoxHint / particle_scale, 4);

    int64_t boxes = nb_ * nb_ * nb_;
    auto total = static_cast<size_t>(boxes * p_);
    posx_.resize(total);
    posy_.resize(total);
    posz_.resize(total);
    charge_.resize(total);

    Rng rng(seed);
    for (int64_t b = 0; b < boxes; ++b) {
        auto bc = boxCoord(b);
        for (int64_t p = 0; p < p_; ++p) {
            size_t gi = b * p_ + p;
            posx_[gi] = static_cast<double>(bc[0]) + rng.uniform();
            posy_[gi] = static_cast<double>(bc[1]) + rng.uniform();
            posz_[gi] = static_cast<double>(bc[2]) + rng.uniform();
            charge_[gi] = rng.uniform(0.1, 1.0);
        }
    }
    curx_ = posx_;
    cury_ = posy_;
    curz_ = posz_;
    curq_ = charge_;

    fGolden_.resize(total);
    for (int64_t b = 0; b < boxes; ++b) {
        auto neigh = neighbors(b);
        for (int64_t p = 0; p < p_; ++p) {
            int64_t gi = b * p_ + p;
            fGolden_[gi] = forceOver(gi, neigh);
        }
    }
    double sumsq = 0.0;
    for (double f : fGolden_)
        sumsq += f * f;
    fRms_ = std::sqrt(sumsq / static_cast<double>(total));
    if (fRms_ <= 0.0)
        fRms_ = 1.0;

    // --- Launch traits at paper-equivalent scale -------------------
    int64_t nb_eff = paperBoxes_;
    uint64_t p_eff = device_.particlesPerBoxHint;
    traits_.name = name_;
    traits_.totalThreads =
        static_cast<uint64_t>(nb_eff) * nb_eff * nb_eff * p_eff;
    traits_.blockThreads = p_eff;
    // Home box + one neighbor box staged locally: 2 * P * 4 doubles
    // (~12-14 KB per block on the K40, as the paper notes).
    traits_.perBlockLocalBytes = 2 * p_eff * 4 * 8;
    traits_.registersPerThread = 48;
    traits_.flopsPerThread = 27.0 * static_cast<double>(p_eff) *
        10.0;
    traits_.controlFlowIntensity = 0.15;
    traits_.sfuIntensity = 0.9;
    traits_.kernelInvocations = 1;
    traits_.doublePrecision = true;

    double ws_bits = static_cast<double>(nb_eff) * nb_eff * nb_eff *
        static_cast<double>(p_eff) * 4.0 * 64.0;
    bool gpu = device_.schedulerKind == SchedulerKind::Hardware;

    // The inner interaction loop touches its registers every cycle
    // (short idle windows) and the low occupancy keeps the
    // multiplexing depth shallow: small register liveness.
    traits_.setUtil(ResourceKind::RegisterFile, 0.04);
    if (device_.hasResource(ResourceKind::L1Cache)) {
        traits_.setUtil(ResourceKind::L1Cache, cacheUtil(
            ws_bits, device_.resource(ResourceKind::L1Cache)
            .sizeBits, 0.35));
    }
    if (device_.hasResource(ResourceKind::SharedMemory))
        traits_.setUtil(ResourceKind::SharedMemory, 0.5);
    if (device_.hasResource(ResourceKind::L2Cache)) {
        // Memory-bound (Table I): boxes live long in the LLC. The
        // Phi's huge coherent L2 keeps most of the dataset resident
        // (paper V-E), and its utilization grows with input size;
        // the K40's small L2 evicts quickly (short liveness).
        traits_.setUtil(ResourceKind::L2Cache, cacheUtil(
            ws_bits, device_.resource(ResourceKind::L2Cache)
            .sizeBits, gpu ? 0.5 : 0.9));
    }
    // Few, heavy, long-lived blocks: the dispatch duty cycle of
    // the scheduler is low even though the block count is large.
    traits_.setUtil(ResourceKind::Scheduler, 0.12);
    traits_.setUtil(ResourceKind::Dispatcher, 0.7);
    traits_.setUtil(ResourceKind::Fpu, 1.0);
    if (device_.hasResource(ResourceKind::Sfu))
        traits_.setUtil(ResourceKind::Sfu, 1.0);
    traits_.setUtil(ResourceKind::ControlLogic, 0.2);
    traits_.setUtil(ResourceKind::PipelineLatch, 0.8);
    if (device_.hasResource(ResourceKind::Interconnect))
        traits_.setUtil(ResourceKind::Interconnect, 0.7);
}

std::string
LavaMd::inputLabel() const
{
    return std::to_string(paperBoxes_) + " boxes/dim";
}

SdcRecord
LavaMd::emptyRecord() const
{
    SdcRecord rec;
    rec.dims = 3;
    rec.extent = {nb_, nb_, nb_};
    return rec;
}

int64_t
LavaMd::boxIndex(int64_t bx, int64_t by, int64_t bz) const
{
    return (bz * nb_ + by) * nb_ + bx;
}

std::array<int64_t, 3>
LavaMd::boxCoord(int64_t b) const
{
    return {b % nb_, (b / nb_) % nb_, b / (nb_ * nb_)};
}

std::vector<int64_t>
LavaMd::neighbors(int64_t b) const
{
    auto bc = boxCoord(b);
    std::vector<int64_t> out;
    out.reserve(27);
    for (int64_t dz = -1; dz <= 1; ++dz) {
        for (int64_t dy = -1; dy <= 1; ++dy) {
            for (int64_t dx = -1; dx <= 1; ++dx) {
                int64_t x = bc[0] + dx;
                int64_t y = bc[1] + dy;
                int64_t z = bc[2] + dz;
                if (x < 0 || x >= nb_ || y < 0 || y >= nb_ ||
                    z < 0 || z >= nb_) {
                    continue; // border boxes have fewer neighbors
                }
                out.push_back(boxIndex(x, y, z));
            }
        }
    }
    return out;
}

double
LavaMd::pairForce(int64_t gi, int64_t gj) const
{
    double dx = curx_[gi] - curx_[gj];
    double dy = cury_[gi] - cury_[gj];
    double dz = curz_[gi] - curz_[gj];
    double r2 = dx * dx + dy * dy + dz * dz;
    return curq_[gj] * 2.0 * std::exp(-a2 * r2) * dx;
}

double
LavaMd::forceOver(int64_t gi,
                  const std::vector<int64_t> &boxes) const
{
    double f = 0.0;
    for (int64_t b : boxes) {
        int64_t base = b * p_;
        for (int64_t p = 0; p < p_; ++p) {
            int64_t gj = base + p;
            if (gj == gi)
                continue;
            f += pairForce(gi, gj);
        }
    }
    return f;
}

int64_t
LavaMd::consumerBoxes(ResourceKind resource, size_t neigh,
                      Rng &rng) const
{
    auto n = static_cast<int64_t>(neigh);
    switch (resource) {
      case ResourceKind::RegisterFile:
      case ResourceKind::PipelineLatch:
        return 1;
      case ResourceKind::SharedMemory:
        return 1; // the staging copy serves one home box
      case ResourceKind::L1Cache:
        // blocks co-resident on one SM / threads on one core
        return std::min<int64_t>(n, 2 + rng.uniformRange(0, 2));
      case ResourceKind::L2Cache:
      case ResourceKind::Interconnect: {
        // Residency: fraction of the neighborhood served before the
        // line is evicted, shrinking as the working set outgrows
        // the LLC (paper V-B: larger inputs increase isolation
        // between blocks on the K40; the Phi's L2 keeps serving).
        double l2 = device_.resource(ResourceKind::L2Cache)
            .sizeBits;
        int64_t nb_eff = paperBoxes_;
        double ws = static_cast<double>(nb_eff) * nb_eff * nb_eff *
            static_cast<double>(device_.particlesPerBoxHint) * 4.0 *
            64.0;
        double frac = std::clamp(4.0 * l2 / ws, 0.08, 1.0);
        return std::max<int64_t>(
            1, static_cast<int64_t>(std::lround(
                static_cast<double>(n) * frac)));
      }
      default:
        return 1;
    }
}

void
LavaMd::record(SdcRecord &out, int64_t gi, double read) const
{
    double expected = fGolden_[gi];
    if (read != expected || std::isnan(read)) {
        auto bc = boxCoord(gi / p_);
        out.elements.push_back({{bc[0], bc[1], bc[2]}, read,
                                expected});
    }
}

void
LavaMd::recomputeBoxWith(int64_t box,
                         const std::vector<int64_t> &corrupted_gi,
                         SdcRecord &out)
{
    auto neigh = neighbors(box);
    for (int64_t p = 0; p < p_; ++p) {
        int64_t gi = box * p_ + p;
        bool self_corrupted = std::find(corrupted_gi.begin(),
                                        corrupted_gi.end(), gi) !=
            corrupted_gi.end();
        double f;
        if (self_corrupted) {
            // Its own position changed: every term differs.
            f = forceOver(gi, neigh);
        } else {
            // Delta update: only terms against corrupted particles
            // change — but only when those particles are inside
            // this box's neighborhood.
            f = fGolden_[gi];
            for (int64_t gj : corrupted_gi) {
                if (gj == gi)
                    continue;
                int64_t gj_box = gj / p_;
                if (std::find(neigh.begin(), neigh.end(), gj_box) ==
                    neigh.end()) {
                    continue;
                }
                // Original term recomputed from pristine inputs.
                double dx = posx_[gi] - posx_[gj];
                double dy = posy_[gi] - posy_[gj];
                double dz = posz_[gi] - posz_[gj];
                double r2 = dx * dx + dy * dy + dz * dz;
                double orig = charge_[gj] * 2.0 *
                    std::exp(-a2 * r2) * dx;
                f += pairForce(gi, gj) - orig;
            }
        }
        record(out, gi, f);
    }
}

SdcRecord
LavaMd::inject(const Strike &strike, Rng &rng)
{
    ScopedTick tick(injectTimer_);
    SdcRecord out = emptyRecord();
    // Strike-local randomness derives only from the strike's own
    // entropy: the injected record is a pure function of the
    // Strike, which lets beam logs replay campaigns exactly.
    (void)rng;
    Rng srng(Rng::hashCombine(strike.entropy, 0x1A7A3DULL));
    switch (strike.manifestation) {
      case Manifestation::BitFlipValue:
        injectValueFlip(strike, srng, out);
        break;
      case Manifestation::BitFlipInputLine:
        injectInputLineFlip(strike, srng, out);
        break;
      case Manifestation::WrongOperation:
        injectWrongOperation(strike, srng, out);
        break;
      case Manifestation::SkippedChunk:
        injectSkippedChunk(strike, srng, out);
        break;
      case Manifestation::StaleData:
        injectStaleData(strike, srng, out);
        break;
      case Manifestation::MisscheduledBlock:
        injectMisscheduledBlock(strike, srng, out);
        break;
      default:
        panic("LavaMD: unhandled manifestation %d",
              static_cast<int>(strike.manifestation));
    }
    // Restore pristine inputs for the next injection.
    curx_ = posx_;
    cury_ = posy_;
    curz_ = posz_;
    curq_ = charge_;
    return out;
}

void
LavaMd::injectValueFlip(const Strike &strike, Rng &rng,
                        SdcRecord &out)
{
    auto total = static_cast<int64_t>(fGolden_.size());
    bool thread_private =
        strike.resource == ResourceKind::RegisterFile ||
        strike.resource == ResourceKind::PipelineLatch;

    if (thread_private && rng.bernoulli(0.25)) {
        // Accumulator upset: the partial potential of one particle
        // is flipped mid-accumulation; the rest accumulates on top.
        int64_t gi = rng.uniformRange(0, total - 1);
        auto neigh = neighbors(gi / p_);
        auto k0 = static_cast<size_t>(strike.timeFraction *
                                      static_cast<double>(
                                          neigh.size()));
        k0 = std::min(k0, neigh.size());
        std::vector<int64_t> head(neigh.begin(),
                                  neigh.begin() +
                                  static_cast<long>(k0));
        double partial = forceOver(gi, head);
        double flipped = flipBits(partial, strike.burstBits, rng);
        record(out, gi, flipped + (fGolden_[gi] - partial));
        return;
    }

    // An input value (position component or charge) is corrupted;
    // consumers that read it after the strike compute wrong terms.
    // The exponentiation magnifies even small perturbations.
    int64_t gj = rng.uniformRange(0, total - 1);
    // Thread-private copies hold the thread's own position; shared
    // copies may also hold the charge.
    int comp = static_cast<int>(
        rng.uniformRange(0, thread_private ? 2 : 3));
    std::vector<double> *arr =
        comp == 0 ? &curx_ : comp == 1 ? &cury_
        : comp == 2 ? &curz_ : &curq_;
    (*arr)[gj] = flipBits((*arr)[gj], strike.burstBits, rng);

    if (thread_private) {
        // The corrupted copy is the thread's own position register,
        // read once per pair term: every interaction computed after
        // the strike uses it, so the whole tail of the accumulation
        // is wrong (and exp-magnified).
        auto neigh = neighbors(gj / p_);
        auto k0 = static_cast<size_t>(strike.timeFraction *
                                      static_cast<double>(
                                          neigh.size()));
        k0 = std::min(k0, neigh.size());
        std::vector<int64_t> head(neigh.begin(),
                                  neigh.begin() +
                                  static_cast<long>(k0));
        std::vector<int64_t> tail(neigh.begin() +
                                  static_cast<long>(k0),
                                  neigh.end());
        // Golden partial over the already-processed boxes...
        double f = fGolden_[gj];
        for (int64_t b : tail) {
            for (int64_t p = 0; p < p_; ++p) {
                int64_t go = b * p_ + p;
                if (go == gj)
                    continue;
                double dx = posx_[gj] - posx_[go];
                double dy = posy_[gj] - posy_[go];
                double dz = posz_[gj] - posz_[go];
                double r2 = dx * dx + dy * dy + dz * dz;
                f -= charge_[go] * 2.0 * std::exp(-a2 * r2) * dx;
            }
        }
        // ...plus the tail recomputed with the corrupted own
        // position (only gj's entry of the cur arrays differs).
        for (int64_t b : tail) {
            for (int64_t p = 0; p < p_; ++p) {
                int64_t go = b * p_ + p;
                if (go == gj)
                    continue;
                double dx = curx_[gj] - posx_[go];
                double dy = cury_[gj] - posy_[go];
                double dz = curz_[gj] - posz_[go];
                double r2 = dx * dx + dy * dy + dz * dz;
                f += charge_[go] * 2.0 * std::exp(-a2 * r2) * dx;
            }
        }
        record(out, gj, f);
        return;
    }

    auto neigh = neighbors(gj / p_);
    int64_t scope = consumerBoxes(strike.resource, neigh.size(),
                                  rng);
    auto after = static_cast<int64_t>(
        std::ceil((1.0 - strike.timeFraction) *
                  static_cast<double>(neigh.size())));
    int64_t count = std::clamp<int64_t>(
        std::min(scope, after), 1,
        static_cast<int64_t>(neigh.size()));
    std::vector<int64_t> corrupted{gj};
    for (int64_t k = 0; k < count; ++k) {
        // Boxes scheduled last consume the corruption.
        recomputeBoxWith(neigh[neigh.size() - 1 - k], corrupted,
                         out);
    }
}

void
LavaMd::injectInputLineFlip(const Strike &strike, Rng &rng,
                            SdcRecord &out)
{
    auto total = static_cast<int64_t>(fGolden_.size());
    int64_t line_vals = std::max<uint32_t>(
        device_.cacheLineBytes / 8, 1);
    int64_t start = rng.uniformRange(0, total - 1) / line_vals *
        line_vals;
    int64_t end = std::min(total, start + line_vals);

    int comp = static_cast<int>(rng.uniformRange(0, 3));
    std::vector<double> *arr =
        comp == 0 ? &curx_ : comp == 1 ? &cury_
        : comp == 2 ? &curz_ : &curq_;

    std::vector<int64_t> corrupted;
    for (uint32_t bflip = 0; bflip < strike.burstBits; ++bflip) {
        int64_t gi = rng.uniformRange(start, end - 1);
        (*arr)[gi] = flipBits((*arr)[gi], 1, rng);
        if (std::find(corrupted.begin(), corrupted.end(), gi) ==
            corrupted.end()) {
            corrupted.push_back(gi);
        }
    }

    // Affected boxes: the union neighborhood of the corrupted
    // particles, limited by the line's cache residency.
    std::vector<int64_t> boxes;
    for (int64_t gi : corrupted) {
        for (int64_t b : neighbors(gi / p_)) {
            if (std::find(boxes.begin(), boxes.end(), b) ==
                boxes.end()) {
                boxes.push_back(b);
            }
        }
    }
    int64_t scope = consumerBoxes(strike.resource, boxes.size(),
                                  rng);
    auto after = static_cast<int64_t>(
        std::ceil((1.0 - strike.timeFraction) *
                  static_cast<double>(boxes.size())));
    int64_t count = std::clamp<int64_t>(
        std::min(scope, after), 1,
        static_cast<int64_t>(boxes.size()));
    for (int64_t k = 0; k < count; ++k)
        recomputeBoxWith(boxes[boxes.size() - 1 - k], corrupted,
                         out);
}

void
LavaMd::injectWrongOperation(const Strike &strike, Rng &rng,
                             SdcRecord &out)
{
    // Garbled transcendental/FMA window: the potentials produced
    // for one box are numeric garbage. SM persistence occasionally
    // corrupts further boxes scheduled on the same unit (strided
    // through the grid).
    (void)strike;
    int64_t boxes = nb_ * nb_ * nb_;
    int64_t extra = rng.bernoulli(0.35)
        ? rng.uniformRange(1, 2) : 0;
    int64_t stride = std::max<int64_t>(1, boxes /
                                       device_.computeUnits);
    int64_t b0 = rng.uniformRange(0, boxes - 1);
    for (int64_t e = 0; e <= extra; ++e) {
        int64_t b = (b0 + e * stride) % boxes;
        for (int64_t p = 0; p < p_; ++p)
            record(out, b * p_ + p, garbageValue(fRms_, rng));
    }
}

void
LavaMd::injectSkippedChunk(const Strike &strike, Rng &rng,
                           SdcRecord &out)
{
    // Accumulation truncated at the strike time for all particles
    // of the affected box(es); grid-level control strikes drop a
    // run of consecutively scheduled boxes.
    int64_t boxes = nb_ * nb_ * nb_;
    int64_t run = strike.resource == ResourceKind::ControlLogic
        ? rng.uniformRange(1, 4) : 1;
    int64_t b0 = rng.uniformRange(0, boxes - 1);
    for (int64_t e = 0; e < run; ++e) {
        int64_t b = (b0 + e) % boxes;
        auto neigh = neighbors(b);
        auto k0 = static_cast<size_t>(strike.timeFraction *
                                      static_cast<double>(
                                          neigh.size()));
        k0 = std::min(k0, neigh.size());
        std::vector<int64_t> head(neigh.begin(),
                                  neigh.begin() +
                                  static_cast<long>(k0));
        for (int64_t p = 0; p < p_; ++p) {
            int64_t gi = b * p_ + p;
            record(out, gi, forceOver(gi, head));
        }
    }
}

void
LavaMd::injectStaleData(const Strike &strike, Rng &rng,
                        SdcRecord &out)
{
    // Consumers read a stale copy of a victim box's positions (the
    // state before the last relocation).
    int64_t boxes = nb_ * nb_ * nb_;
    int64_t victim = rng.uniformRange(0, boxes - 1);

    std::vector<int64_t> corrupted;
    for (int64_t p = 0; p < p_; ++p) {
        int64_t gi = victim * p_ + p;
        // Wrong/stale line served: positions off by box-scale
        // distances, not rounding-scale ones.
        curx_[gi] += rng.uniform(-2.0, 2.0);
        cury_[gi] += rng.uniform(-2.0, 2.0);
        curz_[gi] += rng.uniform(-2.0, 2.0);
        corrupted.push_back(gi);
    }

    auto neigh = neighbors(victim);
    // Partial Fisher-Yates: pick distinct consumer boxes. The
    // stale line reaches as many boxes as its residency allows
    // (Phi: most of the neighborhood; K40: a few).
    for (size_t k = neigh.size(); k > 1; --k) {
        std::swap(neigh[k - 1],
                  neigh[rng.uniformInt(k)]);
    }
    int64_t consumers = std::clamp<int64_t>(
        consumerBoxes(strike.resource, neigh.size(), rng), 2,
        static_cast<int64_t>(neigh.size()));
    for (int64_t k = 0; k < consumers; ++k)
        recomputeBoxWith(neigh[k], corrupted, out);
}

void
LavaMd::injectMisscheduledBlock(const Strike &strike, Rng &rng,
                                SdcRecord &out)
{
    // One box receives the potentials computed for another box.
    (void)strike;
    int64_t boxes = nb_ * nb_ * nb_;
    int64_t b = rng.uniformRange(0, boxes - 1);
    int64_t src = rng.uniformRange(0, boxes - 1);
    if (src == b)
        src = (src + 1) % boxes;
    for (int64_t p = 0; p < p_; ++p)
        record(out, b * p_ + p, fGolden_[src * p_ + p]);
}

} // namespace radcrit
