/**
 * @file
 * LavaMD workload: particle forces in a 3D grid of boxes, the
 * paper's representative of N-Body / Multi-physics Particle Dynamics
 * codes (Table I: memory-bound, imbalanced, regular).
 *
 * Each box holds P particles; every particle accumulates the force
 * contribution q_j * 2 * exp(-a2 * r^2) * (x_i - x_j) over all
 * particles of the 27-box cutoff neighborhood (clamped at borders,
 * producing the load imbalance the paper notes), following the
 * Rodinia kernel's fs*d.x force terms. The exponentiation is the
 * criticality driver the paper identifies: "the exponentiation
 * operations can turn small value variations into large
 * differences" — and because the signed force sum cancels, even a
 * single corrupted pair term is visible against the total.
 *
 * Scaling: a grid of nb boxes stands for a paper grid of
 * nb * paperScale boxes, and P = particlesPerBoxHint / particleScale
 * particles stand for the device-tuned paper count (192 on K40, 100
 * on Phi). Launch traits use paper-equivalent numbers.
 */

#ifndef RADCRIT_KERNELS_LAVAMD_HH
#define RADCRIT_KERNELS_LAVAMD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timer.hh"
#include "sim/workload.hh"

namespace radcrit
{

/**
 * LavaMD particle-potential kernel with injection hooks.
 */
class LavaMd : public Workload
{
  public:
    /**
     * @param device Device the workload is bound to (chooses the
     * particles-per-box tuning).
     * @param boxes1d Scaled boxes per dimension (>= 2).
     * @param seed Input-generation seed.
     * @param paper_scale Paper boxes1d = boxes1d * paper_scale.
     * @param particle_scale Scaled P = hint / particle_scale.
     * @param paper_boxes1d Optional exact paper size this scaled
     * grid stands for (used for labels and paper-scale traits when
     * the paper size is not an exact multiple, e.g. 13 -> 6).
     */
    LavaMd(const DeviceModel &device, int64_t boxes1d,
           uint64_t seed = 42, int64_t paper_scale = 2,
           int64_t particle_scale = 4, int64_t paper_boxes1d = 0);

    const std::string &name() const override { return name_; }
    std::string inputLabel() const override;
    const WorkloadTraits &traits() const override { return traits_; }
    SdcRecord inject(const Strike &strike, Rng &rng) override;
    SdcRecord emptyRecord() const override;
    std::unique_ptr<Workload> clone() const override
    {
        // Positions/charges and golden forces are small (boxes^3 *
        // P doubles), so a plain copy is cheaper than sharing; the
        // cur* scratch buffers must be private per clone anyway.
        return std::make_unique<LavaMd>(*this);
    }

    /** @return scaled boxes per dimension. */
    int64_t boxes1d() const { return nb_; }

    /** @return scaled particles per box. */
    int64_t particlesPerBox() const { return p_; }

    /** @return golden forces (x), indexed box * P + particle. */
    const std::vector<double> &goldenForce() const
    {
        return fGolden_;
    }

    /** Interaction coefficient: u2 = a2 * r^2. */
    static constexpr double a2 = 0.5 * 0.5 * 0.5;

  private:
    /** Linear index of box (bx, by, bz). */
    int64_t boxIndex(int64_t bx, int64_t by, int64_t bz) const;
    /** Box coordinates of a linear index. */
    std::array<int64_t, 3> boxCoord(int64_t b) const;
    /** Neighbor boxes (incl. home), clamped at the borders. */
    std::vector<int64_t> neighbors(int64_t b) const;

    /** Pairwise force contribution of particle gj on gi. */
    double pairForce(int64_t gi, int64_t gj) const;
    /** Force on particle gi over a set of neighbor boxes. */
    double forceOver(int64_t gi,
                     const std::vector<int64_t> &boxes) const;

    /**
     * Number of neighborhood boxes that consume a corrupted value
     * held in the given resource, derived from cache residency.
     */
    int64_t consumerBoxes(ResourceKind resource, size_t neigh,
                          Rng &rng) const;

    void injectValueFlip(const Strike &strike, Rng &rng,
                         SdcRecord &out);
    void injectInputLineFlip(const Strike &strike, Rng &rng,
                             SdcRecord &out);
    void injectWrongOperation(const Strike &strike, Rng &rng,
                              SdcRecord &out);
    void injectSkippedChunk(const Strike &strike, Rng &rng,
                            SdcRecord &out);
    void injectStaleData(const Strike &strike, Rng &rng,
                         SdcRecord &out);
    void injectMisscheduledBlock(const Strike &strike, Rng &rng,
                                 SdcRecord &out);

    /**
     * Recompute the potentials of every particle in `box` with the
     * position/charge of particles in `corrupted` overridden, and
     * record mismatches.
     */
    void recomputeBoxWith(int64_t box,
                          const std::vector<int64_t> &corrupted_gi,
                          SdcRecord &out);

    void record(SdcRecord &out, int64_t gi, double read) const;

    std::string name_ = "LavaMD";
    DeviceModel device_;
    int64_t nb_;
    int64_t p_;
    int64_t paperScale_;
    int64_t paperBoxes_;
    WorkloadTraits traits_;
    /** Positions and charges, indexed box * P + particle. */
    std::vector<double> posx_, posy_, posz_, charge_;
    /** Working copies holding injected corruption. */
    std::vector<double> curx_, cury_, curz_, curq_;
    std::vector<double> fGolden_;
    double fRms_ = 1.0;
    /** Injection-replay latency telemetry. */
    PhaseTimer injectTimer_{StatsRegistry::global(),
                            "kernel.lavamd.inject"};
};

} // namespace radcrit

#endif // RADCRIT_KERNELS_LAVAMD_HH
