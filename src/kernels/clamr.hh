/**
 * @file
 * CLAMR workload: shallow-water fluid dynamics with cell-based AMR,
 * the paper's representative of DOE production fluid codes (Table I:
 * CPU-bound, imbalanced, irregular access).
 *
 * The solver integrates the 2D shallow-water equations
 * (conservation of mass and x/y momentum, flat bottom, negligible
 * vertical flow) with a first-order Rusanov finite-volume scheme on
 * the circular dam-break test problem. The flux form conserves total
 * mass exactly (up to FP rounding), which is the paper's criticality
 * story for CLAMR: a radiation-induced perturbation changes the
 * conserved invariant, so "the error will keep affecting the
 * solution" and spreads as a wave (Figs. 8 and 9) — and conversely a
 * total-mass check detects most strikes (ref. [4]: 82% coverage).
 *
 * The AMR layer (AmrMap) tracks which cells a cell-based AMR would
 * refine; per-step thread counts and control-resource stress derive
 * from it, while the wave dynamics run on the fully refined grid
 * (substitution documented in DESIGN.md).
 */

#ifndef RADCRIT_KERNELS_CLAMR_HH
#define RADCRIT_KERNELS_CLAMR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernels/amr.hh"
#include "obs/timer.hh"
#include "sim/workload.hh"

namespace radcrit
{

/** Shallow-water state: height and momenta per cell (row-major). */
struct SweState
{
    std::vector<double> h;
    std::vector<double> hu;
    std::vector<double> hv;

    /** Resize all fields to n*n cells. */
    void resize(size_t cells);
};

/**
 * CLAMR shallow-water solver with injection hooks.
 */
class Clamr : public Workload
{
  public:
    /**
     * @param device Device the workload is bound to.
     * @param grid Scaled grid side (multiple of 8, >= 64).
     * @param steps Time steps (default 512).
     * @param seed Input-generation seed (dam-break perturbations).
     * @param paper_scale Paper grid side = grid * paper_scale.
     */
    Clamr(const DeviceModel &device, int64_t grid,
          int64_t steps = 512, uint64_t seed = 42,
          int64_t paper_scale = 4);

    const std::string &name() const override { return name_; }
    std::string inputLabel() const override;
    const WorkloadTraits &traits() const override { return traits_; }
    SdcRecord inject(const Strike &strike, Rng &rng) override;
    SdcRecord emptyRecord() const override;
    std::unique_ptr<Workload> clone() const override
    {
        // Clones share the checkpoint stack immutably; lastMass_
        // and the scratch state stay private per clone.
        return std::make_unique<Clamr>(*this);
    }

    /** @return scaled grid side. */
    int64_t grid() const { return n_; }

    /** @return time-step count. */
    int64_t steps() const { return steps_; }

    /** @return golden final height field. */
    const std::vector<double> &goldenH() const
    {
        return golden_.h;
    }

    /** @return total mass of the golden final state. */
    double goldenMass() const { return goldenMass_; }

    /**
     * @return total mass of the corrupted final state produced by
     * the most recent inject() call (the mass-check detector input).
     */
    double lastInjectedMass() const { return lastMass_; }

    /** Total mass (sum of heights) of a state. */
    static double mass(const SweState &state);

    /**
     * One Rusanov time step: reads src, writes dst. Exposed for
     * tests (conservation, symmetry) and the AMR thread-count study.
     */
    void step(const SweState &src, SweState &dst) const;

    /**
     * Effective AMR cell counts sampled along the golden run (one
     * entry per checkpoint), showing the thread-count variation the
     * paper attributes CLAMR's control-resource stress to.
     */
    const std::vector<uint64_t> &amrCellSeries() const
    {
        return amrSeries_;
    }

    /** Gravity constant. */
    static constexpr double g = 9.8;
    /** Work tile side used by block-level manifestations. */
    static constexpr int64_t tile = 8;

  private:
    using Corruptor =
        std::function<void(SweState &state, int64_t step)>;

    void runWithCorruption(int64_t it0, int64_t persist,
                           const Corruptor &corrupt,
                           SdcRecord &out);

    int64_t strikeStep(const Strike &strike) const;

    void injectValueFlip(const Strike &strike, Rng &rng,
                         SdcRecord &out);
    void injectInputLineFlip(const Strike &strike, Rng &rng,
                             SdcRecord &out);
    void injectWrongOperation(const Strike &strike, Rng &rng,
                              SdcRecord &out);
    void injectSkippedChunk(const Strike &strike, Rng &rng,
                            SdcRecord &out);
    void injectStaleData(const Strike &strike, Rng &rng,
                         SdcRecord &out);
    void injectMisscheduledBlock(const Strike &strike, Rng &rng,
                                 SdcRecord &out);

    std::string name_ = "CLAMR";
    DeviceModel device_;
    int64_t n_;
    int64_t steps_;
    int64_t paperScale_;
    int64_t snapInterval_;
    double dt_ = 0.025;
    WorkloadTraits traits_;
    SweState init_;
    SweState golden_;
    double goldenMass_ = 0.0;
    double lastMass_ = 0.0;
    /**
     * Golden checkpoints every snapInterval_ steps, immutable
     * after construction and shared between clones.
     */
    std::shared_ptr<const std::vector<SweState>> snaps_;
    std::vector<uint64_t> amrSeries_;
    /** Injection-replay latency telemetry. */
    PhaseTimer injectTimer_{StatsRegistry::global(),
                            "kernel.clamr.inject"};
};

} // namespace radcrit

#endif // RADCRIT_KERNELS_CLAMR_HH
