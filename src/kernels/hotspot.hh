/**
 * @file
 * HotSpot workload: iterative 2D thermal stencil, the paper's
 * representative of Structured Grid / stencil codes (Table I:
 * memory-bound, balanced, regular; single precision; highest
 * occupancy of the tested codes).
 *
 * Each iteration relaxes the on-chip temperature toward an
 * equilibrium driven by the power map and ambient coupling. This is
 * precisely why the paper finds HotSpot the most naturally resilient
 * code: an injected perturbation diffuses to neighbours (growing the
 * corrupted-element count, always as line/square patterns) while its
 * magnitude decays (mean relative error below 25%, and 80-95% of
 * faulty runs fall entirely under the 2% filter).
 *
 * Injection replays the computation from the closest golden
 * checkpoint, applies the corruption at the struck iteration, and
 * lets the *real stencil dynamics* propagate it to the final output.
 *
 * Numeric-range note (see DESIGN.md): upsets that push the state far
 * outside the solver's range produce NaN/Inf cascades that are
 * detectable (and counted as crashes by the outcome model), so
 * SDC-visible bit flips are restricted to bounded-excursion bit
 * positions.
 */

#ifndef RADCRIT_KERNELS_HOTSPOT_HH
#define RADCRIT_KERNELS_HOTSPOT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/timer.hh"
#include "sim/workload.hh"

namespace radcrit
{

/**
 * HotSpot thermal stencil with injection hooks.
 */
class HotSpot : public Workload
{
  public:
    /**
     * @param device Device the workload is bound to.
     * @param grid Scaled grid side (multiple of tile, >= 64).
     * @param iterations Stencil iterations (default 192).
     * @param seed Input-generation seed.
     * @param paper_scale Paper grid side = grid * paper_scale.
     */
    HotSpot(const DeviceModel &device, int64_t grid,
            int64_t iterations = 192, uint64_t seed = 42,
            int64_t paper_scale = 4);

    const std::string &name() const override { return name_; }
    std::string inputLabel() const override;
    const WorkloadTraits &traits() const override { return traits_; }
    SdcRecord inject(const Strike &strike, Rng &rng) override;
    SdcRecord emptyRecord() const override;
    std::unique_ptr<Workload> clone() const override
    {
        // Clones share the checkpoint stack (the dominant buffer)
        // immutably; everything else is copied.
        return std::make_unique<HotSpot>(*this);
    }

    /** @return scaled grid side. */
    int64_t grid() const { return n_; }

    /** @return iteration count. */
    int64_t iterations() const { return iters_; }

    /** @return golden final temperature field (row-major). */
    const std::vector<float> &goldenTemp() const { return golden_; }

    /** Block tile side. */
    static constexpr int64_t tile = 16;
    /** Ambient temperature (K). */
    static constexpr float ambient = 300.0f;

    /**
     * One stencil iteration: reads `src`, writes `dst` (both n x n).
     * Exposed for tests and the entropy-detector study.
     */
    void step(const std::vector<float> &src,
              std::vector<float> &dst) const;

  private:
    /**
     * Corruption hook applied at the start of each struck iteration.
     */
    using Corruptor =
        std::function<void(std::vector<float> &state,
                           int64_t iter)>;

    /**
     * Replay from the closest checkpoint, applying `corrupt` at the
     * start of iterations [it0, it0 + persist), then run to the
     * end and diff against the golden output.
     */
    void runWithCorruption(int64_t it0, int64_t persist,
                           const Corruptor &corrupt,
                           SdcRecord &out) const;

    int64_t strikeIteration(const Strike &strike) const;

    void injectValueFlip(const Strike &strike, Rng &rng,
                         SdcRecord &out) const;
    void injectInputLineFlip(const Strike &strike, Rng &rng,
                             SdcRecord &out) const;
    void injectWrongOperation(const Strike &strike, Rng &rng,
                              SdcRecord &out) const;
    void injectSkippedChunk(const Strike &strike, Rng &rng,
                            SdcRecord &out) const;
    void injectStaleData(const Strike &strike, Rng &rng,
                         SdcRecord &out) const;
    void injectMisscheduledBlock(const Strike &strike, Rng &rng,
                                 SdcRecord &out) const;

    std::string name_ = "HotSpot";
    DeviceModel device_;
    int64_t n_;
    int64_t iters_;
    int64_t paperScale_;
    int64_t snapInterval_;
    WorkloadTraits traits_;
    std::vector<float> power_;
    std::vector<float> tempInit_;
    std::vector<float> golden_;
    /**
     * Golden checkpoints every snapInterval_ iterations, immutable
     * after construction and shared between clones.
     */
    std::shared_ptr<const std::vector<std::vector<float>>> snaps_;
    /** Injection-replay latency telemetry. */
    PhaseTimer injectTimer_{StatsRegistry::global(),
                            "kernel.hotspot.inject"};
};

} // namespace radcrit

#endif // RADCRIT_KERNELS_HOTSPOT_HH
