/**
 * @file
 * Bit-level corruption helpers shared by the kernel injection hooks.
 *
 * Two families of value corruption exist:
 *  - unbounded flips (any bit incl. sign/exponent) for feed-forward
 *    codes (DGEMM, LavaMD) where a wild value simply lands in the
 *    output — these produce the huge relative errors the paper
 *    reports for those codes;
 *  - bounded flips for iterative PDE codes (HotSpot, CLAMR), where
 *    out-of-range excursions destroy the numeric state (NaN cascades,
 *    CFL violations) and manifest as crashes/hangs rather than SDCs;
 *    the SDC-visible corruption is therefore restricted to bits that
 *    keep the value within the solver's stable range (documented in
 *    DESIGN.md).
 */

#ifndef RADCRIT_KERNELS_INJECT_UTIL_HH
#define RADCRIT_KERNELS_INJECT_UTIL_HH

#include <cstdint>

namespace radcrit
{

class Rng;

/**
 * Flip `bits` distinct uniformly chosen bits of a double (any of the
 * 64 positions, including exponent and sign).
 */
double flipBits(double v, uint32_t bits, Rng &rng);

/**
 * Flip `bits` distinct bits of a double restricted to positions
 * [0, max_bit] (bounded excursion; max_bit 51 = mantissa only).
 */
double flipBitsBounded(double v, uint32_t bits, uint32_t max_bit,
                       Rng &rng);

/** Flip `bits` distinct uniformly chosen bits of a float (32). */
float flipBitsFloat(float v, uint32_t bits, Rng &rng);

/**
 * Flip `bits` distinct float bits restricted to [0, max_bit]
 * (max_bit 22 = mantissa only).
 */
float flipBitsFloatBounded(float v, uint32_t bits, uint32_t max_bit,
                           Rng &rng);

/**
 * A numerically wrong result of a garbled instruction window: the
 * magnitude is log-uniform over many decades around the reference
 * scale and the sign is random, modelling wrong-opcode / wrong-
 * operand execution.
 *
 * @param reference_scale Typical magnitude of correct values (> 0).
 */
double garbageValue(double reference_scale, Rng &rng);

/**
 * A mildly wrong result: the correct value scaled and offset within
 * the same order of magnitude (wrong-but-plausible execution), used
 * where the paper reports moderate relative errors.
 */
double skewedValue(double correct, double reference_scale,
                   Rng &rng);

} // namespace radcrit

#endif // RADCRIT_KERNELS_INJECT_UTIL_HH
