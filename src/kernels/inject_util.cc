#include "kernels/inject_util.hh"

#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"

namespace radcrit
{

namespace
{

template <typename UInt>
UInt
flipDistinctBits(UInt word, uint32_t bits, uint32_t max_bit,
                 Rng &rng)
{
    UInt mask = 0;
    uint32_t placed = 0;
    uint32_t span = max_bit + 1;
    if (bits > span)
        bits = span;
    while (placed < bits) {
        UInt bit = UInt(1) << rng.uniformInt(span);
        if (mask & bit)
            continue;
        mask |= bit;
        ++placed;
    }
    return word ^ mask;
}

} // anonymous namespace

double
flipBits(double v, uint32_t bits, Rng &rng)
{
    uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    u = flipDistinctBits(u, bits, 63, rng);
    double out;
    std::memcpy(&out, &u, sizeof(out));
    return out;
}

double
flipBitsBounded(double v, uint32_t bits, uint32_t max_bit, Rng &rng)
{
    if (max_bit > 63)
        panic("flipBitsBounded: max_bit %u > 63", max_bit);
    uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    u = flipDistinctBits(u, bits, max_bit, rng);
    double out;
    std::memcpy(&out, &u, sizeof(out));
    return out;
}

float
flipBitsFloat(float v, uint32_t bits, Rng &rng)
{
    uint32_t u;
    std::memcpy(&u, &v, sizeof(u));
    u = flipDistinctBits(u, bits, 31, rng);
    float out;
    std::memcpy(&out, &u, sizeof(out));
    return out;
}

float
flipBitsFloatBounded(float v, uint32_t bits, uint32_t max_bit,
                     Rng &rng)
{
    if (max_bit > 31)
        panic("flipBitsFloatBounded: max_bit %u > 31", max_bit);
    uint32_t u;
    std::memcpy(&u, &v, sizeof(u));
    u = flipDistinctBits(u, bits, max_bit, rng);
    float out;
    std::memcpy(&out, &u, sizeof(out));
    return out;
}

double
garbageValue(double reference_scale, Rng &rng)
{
    if (reference_scale <= 0.0)
        reference_scale = 1.0;
    // Log-uniform over ~12 decades centred 3 decades above the
    // reference: garbled arithmetic rarely lands near the correct
    // magnitude.
    double decades = rng.uniform(-3.0, 9.0);
    double magnitude = reference_scale * std::pow(10.0, decades);
    return rng.bernoulli(0.5) ? magnitude : -magnitude;
}

double
skewedValue(double correct, double reference_scale, Rng &rng)
{
    double scale = rng.uniform(0.25, 4.0);
    double offset = rng.normal(0.0, 0.25 * reference_scale);
    return correct * scale + offset;
}

} // namespace radcrit
