/**
 * @file
 * DGEMM workload: dense double-precision matrix multiply, the
 * paper's representative of highly arithmetic, compute-bound, Dense
 * Linear Algebra codes (Table I: CPU-bound, balanced, regular).
 *
 * The launch follows Table II: side^2/16 threads (each thread owns a
 * 4x4 tile of C); blocks own 64x64 tiles staged through shared
 * memory/L1. Default inputs are scaled stand-ins: a side of n
 * represents a paper side of n * paperScale (8 by default, so the
 * scaled series 128..1024 maps onto the paper's 1024..8192); launch
 * traits (thread counts, cache working sets) are computed at paper
 * scale while the numeric arrays stay at the scaled size.
 */

#ifndef RADCRIT_KERNELS_DGEMM_HH
#define RADCRIT_KERNELS_DGEMM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/timer.hh"
#include "sim/workload.hh"

namespace radcrit
{

/**
 * Double-precision matrix multiply C = A * B with architectural
 * injection hooks.
 */
class Dgemm : public Workload
{
  public:
    /**
     * @param device Device the workload is bound to.
     * @param n Scaled matrix side (must be a multiple of 64).
     * @param seed Input-generation seed; inputs are sign-balanced
     * uniform values in (-1, 1) (paper IV-D: balanced 0s and 1s,
     * small enough to avoid overflow).
     * @param paper_scale Paper-equivalent side = n * paper_scale.
     */
    Dgemm(const DeviceModel &device, int64_t n, uint64_t seed = 42,
          int64_t paper_scale = 8);

    const std::string &name() const override { return name_; }
    std::string inputLabel() const override;
    const WorkloadTraits &traits() const override { return traits_; }
    SdcRecord inject(const Strike &strike, Rng &rng) override;
    SdcRecord emptyRecord() const override;
    std::unique_ptr<Workload> clone() const override
    {
        return std::make_unique<Dgemm>(*this);
    }

    /** @return scaled matrix side. */
    int64_t n() const { return n_; }

    /** @return input matrix A (row-major, n x n). */
    const std::vector<double> &a() const { return gold_->a; }

    /** @return input matrix B (row-major, n x n). */
    const std::vector<double> &b() const { return gold_->b; }

    /** @return golden output C (row-major, n x n). */
    const std::vector<double> &goldenC() const { return gold_->c; }

    /**
     * @return a full output matrix equal to the golden output with
     * the record's corrupted values substituted (used by the ABFT
     * evaluation).
     */
    std::vector<double>
    materializeOutput(const SdcRecord &record) const;

    /** Block tile side (elements of C per thread block). */
    static constexpr int64_t blockTile = 64;
    /** Warp/vector chunk shape within a block tile. */
    static constexpr int64_t chunkRows = 8;
    static constexpr int64_t chunkCols = 16;

  private:
    /** Full dot product golden(i, j) recomputed from inputs. */
    double dot(int64_t i, int64_t j) const;
    /** Partial dot product over k in [0, k_end). */
    double partialDot(int64_t i, int64_t j, int64_t k_end) const;

    void injectAccumulatorFlip(const Strike &strike, Rng &rng,
                               SdcRecord &out) const;
    void injectInputLineFlip(const Strike &strike, Rng &rng,
                             SdcRecord &out) const;
    void injectWrongOperation(const Strike &strike, Rng &rng,
                              SdcRecord &out) const;
    void injectSkippedChunk(const Strike &strike, Rng &rng,
                            SdcRecord &out) const;
    void injectStaleData(const Strike &strike, Rng &rng,
                         SdcRecord &out) const;
    void injectMisscheduledBlock(const Strike &strike, Rng &rng,
                                 SdcRecord &out) const;

    /** Record (i, j) as corrupted when read differs from golden. */
    void record(SdcRecord &out, int64_t i, int64_t j,
                double read) const;

    /**
     * Inputs and golden output, computed once at construction and
     * immutable afterwards: clones share one block instead of
     * copying O(n^2) doubles per campaign worker.
     */
    struct Golden
    {
        std::vector<double> a;
        std::vector<double> b;
        std::vector<double> c;
        /** RMS magnitude of golden C (garbage-value scale). */
        double cRms = 1.0;
    };

    std::string name_ = "DGEMM";
    DeviceModel device_;
    int64_t n_;
    int64_t paperScale_;
    WorkloadTraits traits_;
    std::shared_ptr<const Golden> gold_;
    /** Injection-replay latency telemetry. */
    PhaseTimer injectTimer_{StatsRegistry::global(),
                            "kernel.dgemm.inject"};
};

} // namespace radcrit

#endif // RADCRIT_KERNELS_DGEMM_HH
