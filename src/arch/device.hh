/**
 * @file
 * Parametric accelerator device models.
 *
 * A DeviceModel is the radcrit stand-in for the irradiated silicon:
 * it lists every strike-able resource with its size (storage bits or
 * logic-area bit-equivalents), how well it is protected (ECC
 * survival), what a surviving upset does to the program (outcome
 * profile: SDC / crash / hang / masked) and how an SDC manifests to
 * the kernel (manifestation profile). Factory functions build the two
 * devices of the paper: NVIDIA K40 (Kepler GK110b, 28 nm planar) and
 * Intel Xeon Phi 3120A (Knights Corner, 22 nm FinFET).
 */

#ifndef RADCRIT_ARCH_DEVICE_HH
#define RADCRIT_ARCH_DEVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "arch/manifestation.hh"
#include "arch/resource.hh"

namespace radcrit
{

class Rng;

/**
 * Probabilities of program-level outcomes given an upset in live
 * state of a resource. Components must sum to 1.
 */
struct OutcomeProfile
{
    double pSdc = 0.0;
    double pCrash = 0.0;
    double pHang = 0.0;
    double pMasked = 0.0;

    /** @return pSdc + pCrash + pHang + pMasked. */
    double sum() const { return pSdc + pCrash + pHang + pMasked; }
};

/** One weighted manifestation choice. */
struct ManifestationWeight
{
    Manifestation manifestation;
    double weight;
};

/**
 * One strike-able resource instance on a device.
 */
struct Resource
{
    ResourceKind kind = ResourceKind::NumKinds;
    /**
     * Storage bits for arrays; logic area in bit-equivalents for
     * combinational/sequential logic (a bit-equivalent is the area
     * whose upset cross-section matches one SRAM bit of the same
     * node).
     */
    double sizeBits = 0.0;
    /** Fraction of upsets that escape ECC/parity protection. */
    double eccSurvival = 1.0;
    /** Outcome distribution conditional on a live-state upset. */
    OutcomeProfile outcome;
    /** Manifestation distribution conditional on an SDC. */
    std::vector<ManifestationWeight> manifestations;
};

/** Parallel-thread management philosophy (paper Section IV-A). */
enum class SchedulerKind : uint8_t
{
    /** NVIDIA-style in-silicon warp/block scheduler. */
    Hardware,
    /** Intel-style software scheduling by an on-card OS. */
    OperatingSystem
};

/** @return printable name of the scheduler kind. */
const char *schedulerKindName(SchedulerKind kind);

/**
 * Complete parametric model of one accelerator.
 */
class DeviceModel
{
  public:
    /** Short device name, e.g. "K40". */
    std::string name;
    /** Vendor string, e.g. "NVIDIA". */
    std::string vendor;
    /** Thread-management philosophy. */
    SchedulerKind schedulerKind = SchedulerKind::Hardware;

    /**
     * Per-bit upset sensitivity of storage arrays, in arbitrary
     * units. Planar 28 nm (K40) is 1.0; FinFET 22 nm (Phi) is ~10x
     * less sensitive per bit (Noh et al., paper ref. [28]).
     */
    double storageSensitivity = 1.0;
    /** Per-bit-equivalent sensitivity of logic. */
    double logicSensitivity = 0.35;

    /** SMs (K40) or physical cores (Phi). */
    uint32_t computeUnits = 0;
    /** Max resident threads per unit (2048 on K40, 4 on Phi). */
    uint32_t maxThreadsPerUnit = 0;
    /**
     * Scratchpad bytes per unit that constrain occupancy (K40 shared
     * memory); 0 when occupancy is not scratchpad-limited (Phi).
     */
    uint64_t sharedMemPerUnitBytes = 0;
    /** Cache line size in bytes. */
    uint32_t cacheLineBytes = 0;
    /**
     * True when waiting-but-resident threads keep their data exposed
     * in the register file (paper Section V-A reason (2), K40).
     */
    bool registerResidencyExposure = false;
    /**
     * Exponent of scheduler-strain growth with managed threads
     * (paper Section V-A reason (1)): ~0.7 for hardware schedulers,
     * ~0.14 for OS scheduling.
     */
    double schedulerStrainExponent = 0.0;
    /** LavaMD particles per box tuned for the device (IV-C). */
    uint32_t particlesPerBoxHint = 0;
    /**
     * Max bits flipped by one strike in storage (multi-cell upsets);
     * the actual count is sampled geometrically in [1, this].
     */
    uint32_t maxBurstBits = 1;

    /** All strike-able resources. */
    std::vector<Resource> resources;

    /** @return total resident thread capacity. */
    uint64_t maxResidentThreads() const;

    /** @return true when the device has the given resource. */
    bool hasResource(ResourceKind kind) const;

    /** @return the resource record; panics when absent. */
    const Resource &resource(ResourceKind kind) const;

    /**
     * Sample a manifestation for an SDC in the given resource.
     */
    Manifestation sampleManifestation(ResourceKind kind,
                                      Rng &rng) const;

    /**
     * Sample the number of bits flipped by one storage strike
     * (geometric, capped at maxBurstBits).
     */
    uint32_t sampleBurstBits(Rng &rng) const;

    /** Validate internal consistency; panics on violations. */
    void validate() const;
};

/**
 * @return a model of the NVIDIA Tesla K40 (GK110b): 15 SMs, 2048
 * threads/SM, 30 Mbit ECC register file, 960 KB L1/shared, 1536 KB
 * L2, hardware scheduler, 28 nm planar (paper Section IV-A).
 */
DeviceModel makeK40();

/**
 * @return a model of the Intel Xeon Phi 3120A (Knights Corner): 57
 * in-order cores x 4 hardware threads, 32x512-bit vector registers
 * per core, 64 KB L1 + 512 KB coherent L2 per core, ring
 * interconnect, OS scheduling, 22 nm FinFET (paper Section IV-A).
 */
DeviceModel makeXeonPhi();

} // namespace radcrit

#endif // RADCRIT_ARCH_DEVICE_HH
