#include "arch/manifestation.hh"

#include "common/logging.hh"

namespace radcrit
{

const char *
manifestationName(Manifestation m)
{
    switch (m) {
      case Manifestation::BitFlipValue:
        return "BitFlipValue";
      case Manifestation::BitFlipInputLine:
        return "BitFlipInputLine";
      case Manifestation::WrongOperation:
        return "WrongOperation";
      case Manifestation::SkippedChunk:
        return "SkippedChunk";
      case Manifestation::StaleData:
        return "StaleData";
      case Manifestation::MisscheduledBlock:
        return "MisscheduledBlock";
      default:
        panic("manifestationName: invalid manifestation %d",
              static_cast<int>(m));
    }
}

} // namespace radcrit
