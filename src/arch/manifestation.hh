/**
 * @file
 * How a surviving strike manifests to the running kernel.
 *
 * The device architecture determines *what kind* of corruption a
 * strike produces (a flipped storage bit, a garbled instruction
 * window, a mis-scheduled block, ...); the kernel then determines how
 * that corruption propagates to the output. This split is the core of
 * the reproduction strategy: the paper's cross-device criticality
 * differences (Section V-E) are all architecture-side — K40's short
 * pipelines and ECC'd register file yield mostly single-bit data
 * flips, while Xeon Phi's complex in-order cores and huge coherent L2
 * yield instruction-window corruption and widely shared corrupted
 * lines.
 */

#ifndef RADCRIT_ARCH_MANIFESTATION_HH
#define RADCRIT_ARCH_MANIFESTATION_HH

#include <cstdint>
#include <string>

namespace radcrit
{

/**
 * Fault manifestation classes delivered to kernels.
 */
enum class Manifestation : uint8_t
{
    /** Flip 1..k bits of one in-flight or stored data value. */
    BitFlipValue,
    /**
     * Flip bit(s) within one cache line of input data; every
     * consumer of the line reads the corrupted values until
     * eviction.
     */
    BitFlipInputLine,
    /**
     * A corrupted instruction window: the results produced by one
     * work chunk (warp / vector lane group) are numerically wrong in
     * an unstructured way (wrong operand, wrong opcode).
     */
    WrongOperation,
    /** A chunk of work silently not executed (stale/zero output). */
    SkippedChunk,
    /** A chunk reads stale values of shared input data. */
    StaleData,
    /**
     * A block/chunk is scheduled with wrong coordinates and writes
     * data computed for another region of the domain.
     */
    MisscheduledBlock,

    NumManifestations
};

/** Number of manifestation classes for array sizing. */
constexpr size_t numManifestations =
    static_cast<size_t>(Manifestation::NumManifestations);

/** @return a stable short name for the manifestation. */
const char *manifestationName(Manifestation m);

} // namespace radcrit

#endif // RADCRIT_ARCH_MANIFESTATION_HH
