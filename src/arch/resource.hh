/**
 * @file
 * Taxonomy of strike-able architectural resources.
 *
 * The paper (Section IV-D) motivates beam testing precisely because it
 * "induc[es] failures in all the components of the device, including
 * the scheduler, dispatcher, and control logic". This enum names every
 * resource class our beam-campaign simulator can strike; the device
 * models assign each a size (storage bits or logic area in
 * bit-equivalents), a per-bit sensitivity, and ECC survival.
 */

#ifndef RADCRIT_ARCH_RESOURCE_HH
#define RADCRIT_ARCH_RESOURCE_HH

#include <cstdint>
#include <string>

namespace radcrit
{

/**
 * Architectural resource classes a neutron strike can upset.
 */
enum class ResourceKind : uint8_t
{
    /** Scalar/vector register files (incl. operand queues). */
    RegisterFile,
    /** Per-core/SM L1 data cache. */
    L1Cache,
    /** GPU shared memory (per-SM scratchpad). */
    SharedMemory,
    /** Last-level (L2) cache, shared across cores/SMs. */
    L2Cache,
    /** Warp/thread scheduler: hardware (K40) or OS structures (Phi). */
    Scheduler,
    /** Instruction dispatch / decode logic. */
    Dispatcher,
    /** Floating-point execution units. */
    Fpu,
    /** Special function units (transcendentals; K40 only). */
    Sfu,
    /** Kernel-launch, PCIe and global control logic. */
    ControlLogic,
    /** Unprotected pipeline latches and internal queues. */
    PipelineLatch,
    /** On-die interconnect (Phi's bidirectional ring). */
    Interconnect,

    NumKinds
};

/** Number of resource kinds as a size_t for array sizing. */
constexpr size_t numResourceKinds =
    static_cast<size_t>(ResourceKind::NumKinds);

/** @return a stable short name for the resource kind. */
const char *resourceKindName(ResourceKind kind);

/** @return the resource kind with the given name; fatal on unknown. */
ResourceKind resourceKindFromName(const std::string &name);

/** @return true for storage arrays (bits hold data at rest). */
bool isStorage(ResourceKind kind);

/** @return true for combinational/sequential logic resources. */
bool isLogic(ResourceKind kind);

} // namespace radcrit

#endif // RADCRIT_ARCH_RESOURCE_HH
