#include "arch/device.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace radcrit
{

const char *
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Hardware:
        return "Hardware";
      case SchedulerKind::OperatingSystem:
        return "OperatingSystem";
      default:
        panic("schedulerKindName: invalid kind %d",
              static_cast<int>(kind));
    }
}

uint64_t
DeviceModel::maxResidentThreads() const
{
    return static_cast<uint64_t>(computeUnits) * maxThreadsPerUnit;
}

bool
DeviceModel::hasResource(ResourceKind kind) const
{
    for (const auto &r : resources) {
        if (r.kind == kind)
            return true;
    }
    return false;
}

const Resource &
DeviceModel::resource(ResourceKind kind) const
{
    for (const auto &r : resources) {
        if (r.kind == kind)
            return r;
    }
    panic("device %s has no resource %s", name.c_str(),
          resourceKindName(kind));
}

Manifestation
DeviceModel::sampleManifestation(ResourceKind kind, Rng &rng) const
{
    const Resource &res = resource(kind);
    if (res.manifestations.empty())
        panic("resource %s on %s has no manifestations",
              resourceKindName(kind), name.c_str());
    double total = 0.0;
    for (const auto &mw : res.manifestations)
        total += mw.weight;
    double pick = rng.uniform() * total;
    for (const auto &mw : res.manifestations) {
        pick -= mw.weight;
        if (pick <= 0.0)
            return mw.manifestation;
    }
    return res.manifestations.back().manifestation;
}

uint32_t
DeviceModel::sampleBurstBits(Rng &rng) const
{
    // Geometric with p = 0.5, truncated at maxBurstBits: each extra
    // cell in a multi-cell upset is roughly half as likely.
    uint32_t bits = 1;
    while (bits < maxBurstBits && rng.bernoulli(0.5))
        ++bits;
    return bits;
}

void
DeviceModel::validate() const
{
    if (resources.empty())
        panic("device %s has no resources", name.c_str());
    for (const auto &r : resources) {
        double s = r.outcome.sum();
        if (std::abs(s - 1.0) > 1e-9)
            panic("device %s resource %s outcome sums to %f",
                  name.c_str(), resourceKindName(r.kind), s);
        if (r.sizeBits <= 0.0)
            panic("device %s resource %s has size %f", name.c_str(),
                  resourceKindName(r.kind), r.sizeBits);
        if (r.eccSurvival < 0.0 || r.eccSurvival > 1.0)
            panic("device %s resource %s eccSurvival %f",
                  name.c_str(), resourceKindName(r.kind),
                  r.eccSurvival);
        if (r.manifestations.empty() && r.outcome.pSdc > 0.0)
            panic("device %s resource %s can SDC but has no "
                  "manifestations", name.c_str(),
                  resourceKindName(r.kind));
    }
    if (computeUnits == 0 || maxThreadsPerUnit == 0)
        panic("device %s has no compute capacity", name.c_str());
}

namespace
{

/** Shorthand builders keep the factory tables readable. */
Resource
storageRes(ResourceKind kind, double bits, double ecc_survival,
           OutcomeProfile outcome,
           std::vector<ManifestationWeight> manifest)
{
    Resource r;
    r.kind = kind;
    r.sizeBits = bits;
    r.eccSurvival = ecc_survival;
    r.outcome = outcome;
    r.manifestations = std::move(manifest);
    return r;
}

Resource
logicRes(ResourceKind kind, double bit_equivalents,
         OutcomeProfile outcome,
         std::vector<ManifestationWeight> manifest)
{
    return storageRes(kind, bit_equivalents, 1.0, outcome,
                      std::move(manifest));
}

constexpr double kibit = 1024.0 * 8.0; // bits per KiB

} // anonymous namespace

DeviceModel
makeK40()
{
    using M = Manifestation;

    DeviceModel d;
    d.name = "K40";
    d.vendor = "NVIDIA";
    d.schedulerKind = SchedulerKind::Hardware;
    // 28 nm planar bulk (TSMC): reference storage sensitivity.
    d.storageSensitivity = 1.0;
    // Short, simple pipelines: small latched-logic cross-section.
    d.logicSensitivity = 0.35;
    d.computeUnits = 15;           // SMs
    d.maxThreadsPerUnit = 2048;
    d.sharedMemPerUnitBytes = 48 * 1024; // usable shared memory
    d.cacheLineBytes = 128;
    d.registerResidencyExposure = true;   // V-A reason (2)
    d.schedulerStrainExponent = 0.85;     // V-A reason (1)
    d.particlesPerBoxHint = 192;          // IV-C
    d.maxBurstBits = 3;

    // 30 Mbit register file, ECC protected; upsets survive only in
    // unprotected operand collectors / queues (paper V-A: "data may
    // still sit in internal queues or flip-flops that are not
    // protected").
    d.resources.push_back(storageRes(
        ResourceKind::RegisterFile, 30.0 * 1024.0 * kibit / 8.0,
        0.08,
        {0.92, 0.05, 0.01, 0.02},
        {{M::BitFlipValue, 1.0}}));

    // 960 KB total L1/shared, split evenly; parity only.
    d.resources.push_back(storageRes(
        ResourceKind::L1Cache, 480.0 * kibit, 0.30,
        {0.85, 0.12, 0.01, 0.02},
        {{M::BitFlipValue, 0.5}, {M::BitFlipInputLine, 0.5}}));
    d.resources.push_back(storageRes(
        ResourceKind::SharedMemory, 480.0 * kibit, 0.30,
        {0.92, 0.05, 0.01, 0.02},
        {{M::BitFlipValue, 0.6}, {M::BitFlipInputLine, 0.4}}));

    // 1536 KB L2, shared by all SMs. ECC filters most raw bit
    // flips; surviving upsets are split between line-level data
    // corruption and addressing/coherence errors that serve stale
    // data.
    d.resources.push_back(storageRes(
        ResourceKind::L2Cache, 1536.0 * kibit, 0.25,
        {0.80, 0.17, 0.01, 0.02},
        {{M::BitFlipInputLine, 0.6}, {M::StaleData, 0.4}}));

    // Hardware warp/block scheduler (GigaThread engine + per-SM
    // schedulers). Its effective area scales with thread pressure
    // (see exec::schedulerStrain); crash-heavy outcome.
    d.resources.push_back(logicRes(
        ResourceKind::Scheduler, 1.5e6,
        {0.25, 0.55, 0.18, 0.02},
        {{M::MisscheduledBlock, 0.6}, {M::SkippedChunk, 0.4}}));

    d.resources.push_back(logicRes(
        ResourceKind::Dispatcher, 0.8e6,
        {0.35, 0.50, 0.10, 0.05},
        {{M::WrongOperation, 0.7}, {M::SkippedChunk, 0.3}}));

    // 2880 CUDA cores of simple FPU logic.
    d.resources.push_back(logicRes(
        ResourceKind::Fpu, 2.0e6,
        {0.85, 0.10, 0.00, 0.05},
        {{M::WrongOperation, 1.0}}));

    // 480 special function units. The paper hypothesizes (V-E) that
    // "the transcendental function unit in the K40 is more prone to
    // corruption"; we encode that hypothesis as a generous
    // effective area so SFU-heavy codes (LavaMD) see mostly
    // WrongOperation SDCs with huge relative errors, as observed.
    d.resources.push_back(logicRes(
        ResourceKind::Sfu, 4.0e6,
        {0.90, 0.05, 0.00, 0.05},
        {{M::WrongOperation, 1.0}}));

    d.resources.push_back(logicRes(
        ResourceKind::ControlLogic, 0.6e6,
        {0.05, 0.60, 0.35, 0.00},
        {{M::SkippedChunk, 1.0}}));

    d.resources.push_back(logicRes(
        ResourceKind::PipelineLatch, 0.7e6,
        {0.60, 0.25, 0.05, 0.10},
        {{M::BitFlipValue, 0.7}, {M::WrongOperation, 0.3}}));

    d.validate();
    return d;
}

DeviceModel
makeXeonPhi()
{
    using M = Manifestation;

    DeviceModel d;
    d.name = "XeonPhi";
    d.vendor = "Intel";
    d.schedulerKind = SchedulerKind::OperatingSystem;
    // 22 nm Tri-gate FinFET: ~10x lower per-bit SRAM sensitivity
    // than planar (paper IV-A citing Noh et al. [28]).
    d.storageSensitivity = 0.10;
    // Deep x86 in-order pipelines with decode/uops: logic
    // cross-section is NOT derated as strongly as SRAM.
    d.logicSensitivity = 0.30;
    d.computeUnits = 57;           // physical cores
    d.maxThreadsPerUnit = 4;       // hardware threads per core
    d.sharedMemPerUnitBytes = 0;   // cache-based; no scratchpad limit
    d.cacheLineBytes = 64;
    d.registerResidencyExposure = false;  // waiting work sits in DRAM
    d.schedulerStrainExponent = 0.14;     // OS scheduling, V-A (1)
    d.particlesPerBoxHint = 100;          // IV-C
    // FinFET multi-cell upsets span more cells at 22 nm.
    d.maxBurstBits = 5;

    // 57 cores x 4 threads x 32 x 512-bit vector registers, no ECC.
    d.resources.push_back(storageRes(
        ResourceKind::RegisterFile, 57.0 * 4.0 * 32.0 * 512.0, 1.0,
        {0.90, 0.07, 0.01, 0.02},
        {{M::BitFlipValue, 1.0}}));

    // 57 x 64 KB L1 (parity: many upsets become detected faults;
    // the silent escapes are mostly addressing errors serving
    // wrong/stale lines rather than clean bit flips).
    d.resources.push_back(storageRes(
        ResourceKind::L1Cache, 57.0 * 64.0 * kibit, 0.30,
        {0.87, 0.10, 0.01, 0.02},
        {{M::BitFlipInputLine, 0.4}, {M::BitFlipValue, 0.2},
         {M::StaleData, 0.4}}));

    // 57 x 512 KB fully coherent L2 = 29184 KB: by far the largest
    // storage array. Corrupted lines stay resident long and are
    // consumed by many cores (paper V-E: "Xeon Phi has larger caches
    // than K40, so its data is not evicted as often").
    // ECC on the L2 scrubs virtually all single/double bit flips;
    // what survives to program visibility is dominated by
    // tag/coherence corruption that serves stale or wrong lines to
    // many cores — which is why the Phi shows many corrupted
    // elements but (almost) none below the 2% threshold.
    d.resources.push_back(storageRes(
        ResourceKind::L2Cache, 29184.0 * kibit, 0.25,
        {0.89, 0.08, 0.01, 0.02},
        {{M::BitFlipInputLine, 0.3}, {M::StaleData, 0.7}}));

    // OS scheduling structures: software state; upsets there mostly
    // kill the uOS or the offload daemon (crash/hang heavy).
    d.resources.push_back(logicRes(
        ResourceKind::Scheduler, 0.5e6,
        {0.08, 0.62, 0.30, 0.00},
        {{M::SkippedChunk, 0.7}, {M::MisscheduledBlock, 0.3}}));

    // x86 decode + dispatch across 57 complex cores. Most latched
    // upsets garble an instruction window silently; crashes need an
    // illegal encoding.
    d.resources.push_back(logicRes(
        ResourceKind::Dispatcher, 2.5e6,
        {0.66, 0.23, 0.06, 0.05},
        {{M::WrongOperation, 0.8}, {M::SkippedChunk, 0.2}}));

    // 512-bit vector FPUs.
    d.resources.push_back(logicRes(
        ResourceKind::Fpu, 2.5e6,
        {0.90, 0.05, 0.00, 0.05},
        {{M::WrongOperation, 1.0}}));

    d.resources.push_back(logicRes(
        ResourceKind::ControlLogic, 0.8e6,
        {0.05, 0.55, 0.40, 0.00},
        {{M::SkippedChunk, 1.0}}));

    // Long in-order pipelines: large latch population per core.
    d.resources.push_back(logicRes(
        ResourceKind::PipelineLatch, 3.5e6,
        {0.74, 0.15, 0.06, 0.05},
        {{M::WrongOperation, 0.6}, {M::BitFlipValue, 0.4}}));

    // Bidirectional 64-byte ring connecting the coherent L2s.
    d.resources.push_back(logicRes(
        ResourceKind::Interconnect, 0.9e6,
        {0.40, 0.40, 0.15, 0.05},
        {{M::StaleData, 0.6}, {M::BitFlipInputLine, 0.4}}));

    d.validate();
    return d;
}

} // namespace radcrit
