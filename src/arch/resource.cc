#include "arch/resource.hh"

#include "common/logging.hh"

namespace radcrit
{

const char *
resourceKindName(ResourceKind kind)
{
    switch (kind) {
      case ResourceKind::RegisterFile: return "RegisterFile";
      case ResourceKind::L1Cache: return "L1Cache";
      case ResourceKind::SharedMemory: return "SharedMemory";
      case ResourceKind::L2Cache: return "L2Cache";
      case ResourceKind::Scheduler: return "Scheduler";
      case ResourceKind::Dispatcher: return "Dispatcher";
      case ResourceKind::Fpu: return "Fpu";
      case ResourceKind::Sfu: return "Sfu";
      case ResourceKind::ControlLogic: return "ControlLogic";
      case ResourceKind::PipelineLatch: return "PipelineLatch";
      case ResourceKind::Interconnect: return "Interconnect";
      default:
        panic("resourceKindName: invalid kind %d",
              static_cast<int>(kind));
    }
}

ResourceKind
resourceKindFromName(const std::string &name)
{
    for (size_t i = 0; i < numResourceKinds; ++i) {
        auto kind = static_cast<ResourceKind>(i);
        if (name == resourceKindName(kind))
            return kind;
    }
    fatal("unknown resource kind '%s'", name.c_str());
}

bool
isStorage(ResourceKind kind)
{
    switch (kind) {
      case ResourceKind::RegisterFile:
      case ResourceKind::L1Cache:
      case ResourceKind::SharedMemory:
      case ResourceKind::L2Cache:
        return true;
      default:
        return false;
    }
}

bool
isLogic(ResourceKind kind)
{
    return !isStorage(kind) && kind != ResourceKind::NumKinds;
}

} // namespace radcrit
