#include "logs/beamlog.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>

#include "common/logging.hh"
#include "exec/chaos.hh"
#include "obs/stats_registry.hh"

namespace radcrit
{

namespace
{

/** Percent-encode spaces and '%' so values stay single tokens. */
std::string
encodeValue(const std::string &value)
{
    std::string out;
    for (char c : value) {
        if (c == ' ')
            out += "%20";
        else if (c == '%')
            out += "%25";
        else
            out += c;
    }
    return out;
}

/** Inverse of encodeValue(). */
std::string
decodeValue(const std::string &value)
{
    std::string out;
    for (size_t i = 0; i < value.size(); ++i) {
        if (value[i] == '%' && i + 2 < value.size()) {
            if (value.compare(i, 3, "%20") == 0) {
                out += ' ';
                i += 2;
                continue;
            }
            if (value.compare(i, 3, "%25") == 0) {
                out += '%';
                i += 2;
                continue;
            }
        }
        out += value[i];
    }
    return out;
}

/** Parse "key=value" tokens from one log line after the keyword. */
std::map<std::string, std::string>
parseFields(std::istringstream &iss, const std::string &line)
{
    std::map<std::string, std::string> fields;
    std::string token;
    while (iss >> token) {
        auto eq = token.find('=');
        if (eq == std::string::npos)
            throw BeamLogParseError(strprintf(
                "malformed log token '%s' in line: %s",
                token.c_str(), line.c_str()));
        fields[token.substr(0, eq)] =
            decodeValue(token.substr(eq + 1));
    }
    return fields;
}

const std::string &
need(const std::map<std::string, std::string> &fields,
     const char *key, const std::string &line)
{
    auto it = fields.find(key);
    if (it == fields.end())
        throw BeamLogParseError(strprintf(
            "missing log field '%s' in line: %s", key,
            line.c_str()));
    return it->second;
}

double
toDouble(const std::string &s, const std::string &line)
{
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str())
        throw BeamLogParseError(strprintf(
            "bad number '%s' in line: %s", s.c_str(),
            line.c_str()));
    return v;
}

int64_t
toInt(const std::string &s, const std::string &line)
{
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (end == s.c_str())
        throw BeamLogParseError(strprintf(
            "bad integer '%s' in line: %s", s.c_str(),
            line.c_str()));
    return v;
}

/** Full-range uint64 parse (seeds routinely exceed INT64_MAX). */
uint64_t
toUint(const std::string &s, const std::string &line)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str())
        throw BeamLogParseError(strprintf(
            "bad integer '%s' in line: %s", s.c_str(),
            line.c_str()));
    return v;
}

Outcome
outcomeFromName(const std::string &name, const std::string &line)
{
    for (size_t i = 0; i < numOutcomes; ++i) {
        auto o = static_cast<Outcome>(i);
        if (name == outcomeName(o))
            return o;
    }
    throw BeamLogParseError(strprintf(
        "unknown outcome '%s' in line: %s", name.c_str(),
        line.c_str()));
}

Manifestation
manifestationFromName(const std::string &name,
                      const std::string &line)
{
    for (size_t i = 0; i < numManifestations; ++i) {
        auto m = static_cast<Manifestation>(i);
        if (name == manifestationName(m))
            return m;
    }
    throw BeamLogParseError(strprintf(
        "unknown manifestation '%s' in line: %s", name.c_str(),
        line.c_str()));
}

/** Serialize one run's #RUN..#END record (shared by campaign logs
 * and checkpoint shards). */
void
writeRunRecord(std::ostream &os, const RawRun &run, uint64_t idx)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.17g",
                  run.strike.timeFraction);
    os << "#RUN idx=" << idx
       << " outcome=" << outcomeName(run.outcome)
       << " resource=" << resourceKindName(run.strike.resource)
       << " manifestation="
       << manifestationName(run.strike.manifestation)
       << " t=" << buf
       << " burst=" << run.strike.burstBits
       << " entropy=" << run.strike.entropy << '\n';
    if (run.outcome == Outcome::Sdc) {
        const SdcRecord &rec = run.record;
        os << "#DIMS dims=" << rec.dims
           << " x=" << rec.extent[0]
           << " y=" << rec.extent[1]
           << " z=" << rec.extent[2] << '\n';
        for (const auto &e : rec.elements) {
            os << "#ERR x=" << e.coord[0]
               << " y=" << e.coord[1]
               << " z=" << e.coord[2];
            std::snprintf(buf, sizeof(buf), "%.17g", e.read);
            os << " read=" << buf;
            std::snprintf(buf, sizeof(buf), "%.17g", e.expected);
            os << " expected=" << buf << '\n';
        }
    }
    os << "#END idx=" << idx << '\n';
}

/**
 * Incremental parser over the shared #RUN/#DIMS/#ERR/#END record
 * grammar. Throws BeamLogParseError on malformed lines; a run is
 * handed back when its #END arrives.
 */
struct RecordParser
{
    RawRun current;
    bool inRun = false;

    std::optional<RawRun>
    consume(const std::string &keyword, std::istringstream &iss,
            const std::string &line)
    {
        if (keyword == "#RUN") {
            if (inRun)
                throw BeamLogParseError(strprintf(
                    "nested #RUN in beam log: %s", line.c_str()));
            auto fields = parseFields(iss, line);
            current = RawRun{};
            current.index = static_cast<uint64_t>(
                toInt(need(fields, "idx", line), line));
            current.outcome = outcomeFromName(
                need(fields, "outcome", line), line);
            current.strike.resource = resourceKindFromName(
                need(fields, "resource", line));
            current.strike.manifestation = manifestationFromName(
                need(fields, "manifestation", line), line);
            current.strike.timeFraction =
                toDouble(need(fields, "t", line), line);
            current.strike.burstBits = static_cast<uint32_t>(
                toInt(need(fields, "burst", line), line));
            current.strike.entropy = static_cast<uint64_t>(
                std::strtoull(need(fields, "entropy", line)
                              .c_str(), nullptr, 10));
            inRun = true;
            return std::nullopt;
        }
        if (keyword == "#DIMS") {
            if (!inRun)
                throw BeamLogParseError(strprintf(
                    "#DIMS outside a run: %s", line.c_str()));
            auto fields = parseFields(iss, line);
            current.record.dims = static_cast<int>(
                toInt(need(fields, "dims", line), line));
            current.record.extent = {
                toInt(need(fields, "x", line), line),
                toInt(need(fields, "y", line), line),
                toInt(need(fields, "z", line), line)};
            return std::nullopt;
        }
        if (keyword == "#ERR") {
            if (!inRun)
                throw BeamLogParseError(strprintf(
                    "#ERR outside a run: %s", line.c_str()));
            auto fields = parseFields(iss, line);
            CorruptedElement e;
            e.coord = {toInt(need(fields, "x", line), line),
                       toInt(need(fields, "y", line), line),
                       toInt(need(fields, "z", line), line)};
            e.read = toDouble(need(fields, "read", line), line);
            e.expected = toDouble(need(fields, "expected", line),
                                  line);
            current.record.elements.push_back(e);
            return std::nullopt;
        }
        if (keyword == "#END") {
            if (!inRun)
                throw BeamLogParseError(strprintf(
                    "#END without #RUN: %s", line.c_str()));
            inRun = false;
            return std::move(current);
        }
        throw BeamLogParseError(strprintf(
            "unknown beam-log keyword '%s'", keyword.c_str()));
    }
};

/** Parsed #HEADER fields (shared by the whole-log parser and the
 * incremental reader). */
struct HeaderFields
{
    std::string device;
    std::string workload;
    std::string input;
    uint64_t seed = 0;
    uint64_t runs = 0;
    double sensitiveAreaAu = 0.0;
};

HeaderFields
parseHeaderLine(std::istringstream &iss, const std::string &line)
{
    auto fields = parseFields(iss, line);
    int64_t version = toInt(need(fields, "version", line), line);
    if (version != beamLogVersion)
        throw BeamLogParseError(strprintf(
            "unsupported beam-log version %lld (expected %d)",
            static_cast<long long>(version), beamLogVersion));
    HeaderFields header;
    header.device = need(fields, "device", line);
    header.workload = need(fields, "workload", line);
    header.input = need(fields, "input", line);
    header.seed = toUint(need(fields, "seed", line), line);
    header.runs = toUint(need(fields, "runs", line), line);
    header.sensitiveAreaAu =
        toDouble(need(fields, "sensitive_area_au", line), line);
    return header;
}

/** Parse core of readBeamLog(); throws BeamLogParseError. */
CampaignRaw
parseBeamLog(std::istream &is)
{
    CampaignRaw raw;
    std::string line;
    RecordParser records;
    uint64_t declared_runs = 0;
    bool have_header = false;

    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream iss(line);
        std::string keyword;
        iss >> keyword;
        if (keyword == "#HEADER") {
            HeaderFields header = parseHeaderLine(iss, line);
            raw.deviceName = header.device;
            raw.workloadName = header.workload;
            raw.inputLabel = header.input;
            raw.sim.seed = header.seed;
            declared_runs = header.runs;
            raw.sim.faultyRuns = declared_runs;
            raw.sensitiveAreaAu = header.sensitiveAreaAu;
            have_header = true;
        } else if (auto run = records.consume(keyword, iss,
                                              line)) {
            raw.runs.push_back(std::move(*run));
        }
    }
    if (records.inRun)
        throw BeamLogParseError(strprintf(
            "beam log truncated inside run %llu",
            static_cast<unsigned long long>(
                records.current.index)));
    if (!have_header)
        throw BeamLogParseError("beam log has no #HEADER");
    if (raw.runs.size() != declared_runs)
        throw BeamLogParseError(strprintf(
            "beam log declares %llu runs but contains %llu",
            static_cast<unsigned long long>(declared_runs),
            static_cast<unsigned long long>(raw.runs.size())));
    return raw;
}

std::string
shardHeader(const CampaignRaw &raw)
{
    std::ostringstream os;
    os << "#SHARD version=" << beamLogVersion
       << " device=" << encodeValue(raw.deviceName)
       << " workload=" << encodeValue(raw.workloadName)
       << " input=" << encodeValue(raw.inputLabel)
       << " seed=" << raw.sim.seed
       << " runs=" << raw.sim.faultyRuns << '\n';
    return os.str();
}

} // anonymous namespace

void
BeamLogWriter::header(const std::string &device,
                      const std::string &workload,
                      const std::string &input, uint64_t seed,
                      uint64_t runs, double sensitive_area_au)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.17g", sensitive_area_au);
    *os_ << "#HEADER version=" << beamLogVersion
         << " device=" << encodeValue(device)
         << " workload=" << encodeValue(workload)
         << " input=" << encodeValue(input)
         << " seed=" << seed
         << " runs=" << runs
         << " sensitive_area_au=" << buf << '\n';
}

void
BeamLogWriter::append(const RawRun &run)
{
    writeRunRecord(*os_, run, appended_);
    ++appended_;
}

struct BeamLogReader::ParserState
{
    RecordParser records;
};

BeamLogReader::BeamLogReader(std::istream &is)
    : is_(&is), state_(std::make_shared<ParserState>())
{
    std::string line;
    while (std::getline(*is_, line)) {
        if (line.empty())
            continue;
        std::istringstream iss(line);
        std::string keyword;
        iss >> keyword;
        if (keyword != "#HEADER")
            throw BeamLogParseError("beam log has no #HEADER");
        HeaderFields header = parseHeaderLine(iss, line);
        device_ = header.device;
        workload_ = header.workload;
        input_ = header.input;
        seed_ = header.seed;
        declaredRuns_ = header.runs;
        sensitiveAreaAu_ = header.sensitiveAreaAu;
        return;
    }
    throw BeamLogParseError("beam log has no #HEADER");
}

std::optional<RawRun>
BeamLogReader::next()
{
    if (done_)
        return std::nullopt;
    std::string line;
    while (std::getline(*is_, line)) {
        if (line.empty())
            continue;
        std::istringstream iss(line);
        std::string keyword;
        iss >> keyword;
        if (auto run = state_->records.consume(keyword, iss,
                                               line)) {
            ++read_;
            return run;
        }
    }
    if (state_->records.inRun)
        throw BeamLogParseError(strprintf(
            "beam log truncated inside run %llu",
            static_cast<unsigned long long>(
                state_->records.current.index)));
    done_ = true;
    if (read_ != declaredRuns_)
        throw BeamLogParseError(strprintf(
            "beam log declares %llu runs but contains %llu",
            static_cast<unsigned long long>(declaredRuns_),
            static_cast<unsigned long long>(read_)));
    return std::nullopt;
}

BeamLogSource::BeamLogSource(std::istream &is, uint64_t batchRuns)
    : reader_(is),
      batchRuns_(batchRuns == 0
                 ? std::max<uint64_t>(reader_.declaredRuns(), 1)
                 : batchRuns)
{
    meta_.deviceName = reader_.device();
    meta_.workloadName = reader_.workload();
    meta_.inputLabel = reader_.input();
    meta_.sim.seed = reader_.seed();
    meta_.sim.faultyRuns = reader_.declaredRuns();
    meta_.sensitiveAreaAu = reader_.sensitiveAreaAu();
}

bool
BeamLogSource::next(RunBatch &batch)
{
    batch.firstIndex = nextIndex_;
    batch.runs.clear();
    batch.runs.reserve(std::min<uint64_t>(
        batchRuns_, reader_.declaredRuns() - std::min<uint64_t>(
                        nextIndex_, reader_.declaredRuns())));
    while (batch.runs.size() < batchRuns_) {
        auto run = reader_.next();
        if (!run)
            break;
        batch.runs.push_back(std::move(*run));
    }
    nextIndex_ += batch.runs.size();
    return !batch.runs.empty();
}

void
BeamLogSink::begin(const CampaignMeta &meta)
{
    writer_.header(meta.deviceName, meta.workloadName,
                   meta.inputLabel, meta.sim.seed,
                   meta.sim.faultyRuns, meta.sensitiveAreaAu);
}

void
BeamLogSink::consume(RunBatch &&batch)
{
    for (const RawRun &run : batch.runs)
        writer_.append(run);
}

void
BeamLogSink::end(const StatsSnapshot &)
{
}

void
writeBeamLog(const CampaignRaw &raw, std::ostream &os)
{
    BeamLogWriter writer(os);
    writer.header(raw.deviceName, raw.workloadName,
                  raw.inputLabel, raw.sim.seed, raw.runs.size(),
                  raw.sensitiveAreaAu);
    for (const RawRun &run : raw.runs)
        writer.append(run);
}

void
writeBeamLogFile(const CampaignRaw &raw, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for beam-log output",
              path.c_str());
    writeBeamLog(raw, out);
    out.flush();
    if (!out)
        fatal("write error on beam log '%s'", path.c_str());
}

CampaignRaw
readBeamLog(std::istream &is)
{
    try {
        return parseBeamLog(is);
    } catch (const BeamLogParseError &e) {
        fatal("%s", e.what());
    }
}

CampaignRaw
readBeamLogFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open beam log '%s'", path.c_str());
    return readBeamLog(in);
}

std::optional<CampaignRaw>
tryReadBeamLog(std::istream &is, std::string *error)
{
    try {
        return parseBeamLog(is);
    } catch (const BeamLogParseError &e) {
        if (error)
            *error = e.what();
        return std::nullopt;
    }
}

std::optional<CampaignRaw>
tryReadBeamLogFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = strprintf("cannot open beam log '%s'",
                               path.c_str());
        return std::nullopt;
    }
    return tryReadBeamLog(in, error);
}

CheckpointWriter::CheckpointWriter(const std::string &path,
                                   const CampaignRaw &raw,
                                   uint64_t keepBytes,
                                   uint64_t flushEvery)
    : path_(path), flushEvery_(std::max<uint64_t>(flushEvery, 1))
{
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(path, ec);
    if (!ec && size > keepBytes)
        std::filesystem::resize_file(path, keepBytes, ec);
    if (ec && keepBytes > 0)
        fatal("cannot truncate checkpoint '%s' to %llu bytes",
              path.c_str(),
              static_cast<unsigned long long>(keepBytes));

    out_.open(path, std::ios::app);
    if (!out_)
        fatal("cannot open checkpoint '%s' for append",
              path.c_str());
    if (keepBytes == 0)
        out_ << shardHeader(raw) << std::flush;
    if (!out_)
        fatal("write error on checkpoint '%s'", path.c_str());
}

void
CheckpointWriter::append(const RawRun &run)
{
    std::ostringstream record;
    writeRunRecord(record, run, run.index);
    std::string bytes = record.str();
    // A planned corrupt-write fault tears the record in half —
    // exactly what a SIGKILL mid-append leaves behind — so the
    // torn-tail recovery path is testable deterministically.
    if (ChaosEngine *engine = chaos()) {
        if (engine->shouldCorruptWrite("checkpoint"))
            bytes.resize(bytes.size() / 2);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << bytes;
    ++appended_;
    if (appended_ % flushEvery_ == 0)
        out_.flush();
    if (!out_)
        fatal("write error on checkpoint '%s'", path_.c_str());
}

CheckpointRecovery
readCheckpointShards(const std::string &path,
                     const CampaignRaw &expect)
{
    CheckpointRecovery recovery;
    std::ifstream in(path);
    if (!in)
        return recovery;

    std::string line;
    RecordParser records;
    uint64_t offset = 0;
    bool have_header = false;

    while (std::getline(in, line)) {
        // A line without its trailing newline is the torn tail of
        // the append a killed process did not finish; even a
        // well-formed record there is dropped, because appending
        // after unterminated bytes would merge two lines.
        bool complete_line = !in.eof();
        uint64_t line_bytes = line.size() + 1;
        if (!complete_line) {
            records.inRun = true; // count the tear below
            break;
        }
        if (line.empty()) {
            offset += line_bytes;
            if (have_header && !records.inRun)
                recovery.validBytes = offset;
            continue;
        }
        std::istringstream iss(line);
        std::string keyword;
        iss >> keyword;
        try {
            if (keyword == "#SHARD") {
                auto fields = parseFields(iss, line);
                int64_t version =
                    toInt(need(fields, "version", line), line);
                if (version != beamLogVersion)
                    throw BeamLogParseError(strprintf(
                        "unsupported shard version %lld",
                        static_cast<long long>(version)));
                if (need(fields, "device", line) !=
                        expect.deviceName ||
                    need(fields, "workload", line) !=
                        expect.workloadName ||
                    need(fields, "input", line) !=
                        expect.inputLabel ||
                    toUint(need(fields, "seed", line), line) !=
                        expect.sim.seed ||
                    toUint(need(fields, "runs", line), line) !=
                        expect.sim.faultyRuns)
                    fatal("checkpoint '%s' belongs to a "
                          "different campaign (%s)",
                          path.c_str(), line.c_str());
                have_header = true;
            } else if (!have_header) {
                throw BeamLogParseError(strprintf(
                    "checkpoint has no #SHARD header: %s",
                    line.c_str()));
            } else if (auto run = records.consume(keyword, iss,
                                                  line)) {
                recovery.runs.push_back(std::move(*run));
            }
        } catch (const BeamLogParseError &e) {
            // Anything after a malformed line is suspect: stop at
            // the last complete record.
            warn("checkpoint '%s': %s", path.c_str(), e.what());
            records.inRun = true;
            break;
        }
        offset += line_bytes;
        if (have_header && !records.inRun)
            recovery.validBytes = offset;
    }

    if (!have_header) {
        recovery.runs.clear();
        recovery.validBytes = 0;
        return recovery;
    }
    recovery.found = true;
    if (records.inRun) {
        ++recovery.tornRecords;
        warn("checkpoint '%s': dropping torn trailing record "
             "(resuming from %llu complete run(s))",
             path.c_str(),
             static_cast<unsigned long long>(
                 recovery.runs.size()));
        StatsRegistry::global()
            .counter("resilience.checkpoint.torn_records")
            .inc();
    }
    return recovery;
}

} // namespace radcrit
