#include "logs/beamlog.hh"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace radcrit
{

namespace
{

/** Percent-encode spaces and '%' so values stay single tokens. */
std::string
encodeValue(const std::string &value)
{
    std::string out;
    for (char c : value) {
        if (c == ' ')
            out += "%20";
        else if (c == '%')
            out += "%25";
        else
            out += c;
    }
    return out;
}

/** Inverse of encodeValue(). */
std::string
decodeValue(const std::string &value)
{
    std::string out;
    for (size_t i = 0; i < value.size(); ++i) {
        if (value[i] == '%' && i + 2 < value.size()) {
            if (value.compare(i, 3, "%20") == 0) {
                out += ' ';
                i += 2;
                continue;
            }
            if (value.compare(i, 3, "%25") == 0) {
                out += '%';
                i += 2;
                continue;
            }
        }
        out += value[i];
    }
    return out;
}

/** Parse "key=value" tokens from one log line after the keyword. */
std::map<std::string, std::string>
parseFields(std::istringstream &iss, const std::string &line)
{
    std::map<std::string, std::string> fields;
    std::string token;
    while (iss >> token) {
        auto eq = token.find('=');
        if (eq == std::string::npos)
            fatal("malformed log token '%s' in line: %s",
                  token.c_str(), line.c_str());
        fields[token.substr(0, eq)] =
            decodeValue(token.substr(eq + 1));
    }
    return fields;
}

const std::string &
need(const std::map<std::string, std::string> &fields,
     const char *key, const std::string &line)
{
    auto it = fields.find(key);
    if (it == fields.end())
        fatal("missing log field '%s' in line: %s", key,
              line.c_str());
    return it->second;
}

double
toDouble(const std::string &s, const std::string &line)
{
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str())
        fatal("bad number '%s' in line: %s", s.c_str(),
              line.c_str());
    return v;
}

int64_t
toInt(const std::string &s, const std::string &line)
{
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (end == s.c_str())
        fatal("bad integer '%s' in line: %s", s.c_str(),
              line.c_str());
    return v;
}

/** Full-range uint64 parse (seeds routinely exceed INT64_MAX). */
uint64_t
toUint(const std::string &s, const std::string &line)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str())
        fatal("bad integer '%s' in line: %s", s.c_str(),
              line.c_str());
    return v;
}

Outcome
outcomeFromName(const std::string &name, const std::string &line)
{
    for (size_t i = 0; i < numOutcomes; ++i) {
        auto o = static_cast<Outcome>(i);
        if (name == outcomeName(o))
            return o;
    }
    fatal("unknown outcome '%s' in line: %s", name.c_str(),
          line.c_str());
}

Manifestation
manifestationFromName(const std::string &name,
                      const std::string &line)
{
    for (size_t i = 0; i < numManifestations; ++i) {
        auto m = static_cast<Manifestation>(i);
        if (name == manifestationName(m))
            return m;
    }
    fatal("unknown manifestation '%s' in line: %s", name.c_str(),
          line.c_str());
}

} // anonymous namespace

void
writeBeamLog(const CampaignRaw &raw, std::ostream &os)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%.17g", raw.sensitiveAreaAu);
    os << "#HEADER version=" << beamLogVersion
       << " device=" << encodeValue(raw.deviceName)
       << " workload=" << encodeValue(raw.workloadName)
       << " input=" << encodeValue(raw.inputLabel)
       << " seed=" << raw.sim.seed
       << " runs=" << raw.runs.size()
       << " sensitive_area_au=" << buf << '\n';

    for (size_t i = 0; i < raw.runs.size(); ++i) {
        const RawRun &run = raw.runs[i];
        std::snprintf(buf, sizeof(buf), "%.17g",
                      run.strike.timeFraction);
        os << "#RUN idx=" << i
           << " outcome=" << outcomeName(run.outcome)
           << " resource="
           << resourceKindName(run.strike.resource)
           << " manifestation="
           << manifestationName(run.strike.manifestation)
           << " t=" << buf
           << " burst=" << run.strike.burstBits
           << " entropy=" << run.strike.entropy << '\n';
        if (run.outcome == Outcome::Sdc) {
            const SdcRecord &rec = run.record;
            os << "#DIMS dims=" << rec.dims
               << " x=" << rec.extent[0]
               << " y=" << rec.extent[1]
               << " z=" << rec.extent[2] << '\n';
            for (const auto &e : rec.elements) {
                os << "#ERR x=" << e.coord[0]
                   << " y=" << e.coord[1]
                   << " z=" << e.coord[2];
                std::snprintf(buf, sizeof(buf), "%.17g", e.read);
                os << " read=" << buf;
                std::snprintf(buf, sizeof(buf), "%.17g",
                              e.expected);
                os << " expected=" << buf << '\n';
            }
        }
        os << "#END idx=" << i << '\n';
    }
}

void
writeBeamLogFile(const CampaignRaw &raw, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for beam-log output",
              path.c_str());
    writeBeamLog(raw, out);
    out.flush();
    if (!out)
        fatal("write error on beam log '%s'", path.c_str());
}

CampaignRaw
readBeamLog(std::istream &is)
{
    CampaignRaw raw;
    std::string line;
    RawRun current;
    uint64_t declared_runs = 0;
    bool in_run = false;
    bool have_header = false;

    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream iss(line);
        std::string keyword;
        iss >> keyword;
        if (keyword == "#HEADER") {
            auto fields = parseFields(iss, line);
            int64_t version =
                toInt(need(fields, "version", line), line);
            if (version != beamLogVersion)
                fatal("unsupported beam-log version %lld "
                      "(expected %d)",
                      static_cast<long long>(version),
                      beamLogVersion);
            raw.deviceName = need(fields, "device", line);
            raw.workloadName = need(fields, "workload", line);
            raw.inputLabel = need(fields, "input", line);
            raw.sim.seed = toUint(need(fields, "seed", line),
                                  line);
            declared_runs = toUint(need(fields, "runs", line),
                                   line);
            raw.sim.faultyRuns = declared_runs;
            raw.sensitiveAreaAu = toDouble(
                need(fields, "sensitive_area_au", line), line);
            have_header = true;
        } else if (keyword == "#RUN") {
            if (in_run)
                fatal("nested #RUN in beam log: %s",
                      line.c_str());
            auto fields = parseFields(iss, line);
            current = RawRun{};
            current.index = static_cast<uint64_t>(
                toInt(need(fields, "idx", line), line));
            current.outcome = outcomeFromName(
                need(fields, "outcome", line), line);
            current.strike.resource = resourceKindFromName(
                need(fields, "resource", line));
            current.strike.manifestation = manifestationFromName(
                need(fields, "manifestation", line), line);
            current.strike.timeFraction =
                toDouble(need(fields, "t", line), line);
            current.strike.burstBits = static_cast<uint32_t>(
                toInt(need(fields, "burst", line), line));
            current.strike.entropy = static_cast<uint64_t>(
                std::strtoull(need(fields, "entropy", line)
                              .c_str(), nullptr, 10));
            in_run = true;
        } else if (keyword == "#DIMS") {
            if (!in_run)
                fatal("#DIMS outside a run: %s", line.c_str());
            auto fields = parseFields(iss, line);
            current.record.dims = static_cast<int>(
                toInt(need(fields, "dims", line), line));
            current.record.extent = {
                toInt(need(fields, "x", line), line),
                toInt(need(fields, "y", line), line),
                toInt(need(fields, "z", line), line)};
        } else if (keyword == "#ERR") {
            if (!in_run)
                fatal("#ERR outside a run: %s", line.c_str());
            auto fields = parseFields(iss, line);
            CorruptedElement e;
            e.coord = {toInt(need(fields, "x", line), line),
                       toInt(need(fields, "y", line), line),
                       toInt(need(fields, "z", line), line)};
            e.read = toDouble(need(fields, "read", line), line);
            e.expected = toDouble(need(fields, "expected", line),
                                  line);
            current.record.elements.push_back(e);
        } else if (keyword == "#END") {
            if (!in_run)
                fatal("#END without #RUN: %s", line.c_str());
            raw.runs.push_back(std::move(current));
            in_run = false;
        } else {
            fatal("unknown beam-log keyword '%s'",
                  keyword.c_str());
        }
    }
    if (in_run)
        fatal("beam log truncated inside run %llu",
              static_cast<unsigned long long>(current.index));
    if (!have_header)
        fatal("beam log has no #HEADER");
    if (raw.runs.size() != declared_runs)
        fatal("beam log declares %llu runs but contains %llu",
              static_cast<unsigned long long>(declared_runs),
              static_cast<unsigned long long>(raw.runs.size()));
    return raw;
}

CampaignRaw
readBeamLogFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open beam log '%s'", path.c_str());
    return readBeamLog(in);
}

} // namespace radcrit
