/**
 * @file
 * Beam-campaign log format: the canonical (de)serialization of
 * CampaignRaw.
 *
 * The paper's contribution (2) makes all corrupted outputs
 * "publicly available in a repository to ease reproducibility and
 * third party analysis ... so to allow users to apply different
 * filters". This module provides that artifact for radcrit
 * campaigns: a line-oriented text format that captures every run's
 * strike, outcome, and (for SDCs) the complete mismatch log, with a
 * versioned header carrying the device/workload identity and the
 * simulation config that produced it. readBeamLog() reloads it as a
 * CampaignRaw, so the criticality metrics can be recomputed via
 * analyzeCampaign() under any tolerance without rerunning the
 * campaign — analyze(parse(write(raw))) is bit-identical to
 * analyze(raw).
 *
 * Format (one record per line, '#'-prefixed keywords):
 *
 *   #HEADER version=2 device=K40 workload=DGEMM input=2048x2048 \
 *        seed=... runs=200 sensitive_area_au=...
 *   #RUN idx=0 outcome=SDC resource=RegisterFile \
 *        manifestation=BitFlipValue t=0.41 burst=1
 *   #DIMS dims=2 x=256 y=256 z=1
 *   #ERR x=12 y=40 z=0 read=1.7976e0 expected=1.7976e0
 *   #END idx=0
 *   #RUN idx=1 outcome=Crash ...
 *   #END idx=1
 *
 * The launch geometry is not serialized — it is derived from
 * (device, workload), never consumed by analysis, and the campaign
 * store rebuilds it on load. A log parsed standalone carries a
 * default-constructed KernelLaunch.
 *
 * Checkpoint shards reuse the same record grammar under a #SHARD
 * header: the campaign runner appends each run's record as it
 * completes (out of index order under parallel execution, so the
 * record's idx field is authoritative), and readCheckpointShards()
 * recovers every complete record after a crash, tolerating a torn
 * trailing record — the one write the killed process did not finish.
 * The strict campaign-log reader rejects shard files, so a shard
 * can never be mistaken for a finished campaign.
 */

#ifndef RADCRIT_LOGS_BEAMLOG_HH
#define RADCRIT_LOGS_BEAMLOG_HH

#include <fstream>
#include <iosfwd>
#include <istream>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/raw.hh"
#include "campaign/stream.hh"

namespace radcrit
{

/**
 * Version of the on-disk format. Bumped whenever the header or
 * record grammar changes; the reader rejects any other version so
 * stale cache entries and foreign files fail loudly instead of
 * parsing as garbage. v1 (no version field, header without
 * sim-config) is no longer read.
 */
constexpr int beamLogVersion = 2;

/**
 * Serialize a raw campaign to the log format. All doubles are
 * printed with %.17g so a parse round-trip is bit-exact.
 */
void writeBeamLog(const CampaignRaw &raw, std::ostream &os);

/** Convenience: write to a file path (fatal on I/O errors). */
void writeBeamLogFile(const CampaignRaw &raw,
                      const std::string &path);

/**
 * What the parser core throws on malformed input. readBeamLog()
 * converts it into the historical fatal() diagnostics; tolerant
 * callers (tryReadBeamLog, the campaign store's quarantine path)
 * catch it and recover.
 */
struct BeamLogParseError : std::runtime_error
{
    explicit BeamLogParseError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Parse a log into a CampaignRaw. fatal() on malformed input or a
 * version mismatch (user-supplied data). RawRun::wallNs and the
 * stats snapshot are not part of the format; loaded runs carry 0 /
 * empty there (the store rebuilds counters, see rebuildSimStats()).
 */
CampaignRaw readBeamLog(std::istream &is);

/** Convenience: read from a file path (fatal if unreadable). */
CampaignRaw readBeamLogFile(const std::string &path);

/**
 * Non-fatal variant of readBeamLog(): nullopt on malformed input,
 * with the parse diagnostic stored in *error when given. The error
 * text is identical to what readBeamLog() would have passed to
 * fatal().
 */
std::optional<CampaignRaw>
tryReadBeamLog(std::istream &is, std::string *error = nullptr);

/**
 * Non-fatal file read: nullopt when the file cannot be opened or
 * does not parse (diagnostic in *error).
 */
std::optional<CampaignRaw>
tryReadBeamLogFile(const std::string &path,
                   std::string *error = nullptr);

/**
 * Incremental record-at-a-time beam-log writer: the streaming
 * counterpart of writeBeamLog() (which is implemented on top of
 * it). header() emits the #HEADER line up front with the declared
 * run count; append() serializes one run — so a streamed campaign
 * can be persisted as workers retire batches, without ever
 * materializing the CampaignRaw. The byte stream is identical to
 * writeBeamLog() over the same runs.
 */
class BeamLogWriter
{
  public:
    /** @param os Destination; must outlive the writer. */
    explicit BeamLogWriter(std::ostream &os) : os_(&os) {}

    /** Emit the #HEADER line. Call once, before any append(). */
    void header(const std::string &device,
                const std::string &workload,
                const std::string &input, uint64_t seed,
                uint64_t runs, double sensitive_area_au);

    /**
     * Serialize one run. Records carry sequential indices in
     * append order, matching writeBeamLog()'s loop index.
     */
    void append(const RawRun &run);

    /** @return records appended so far. */
    uint64_t appended() const { return appended_; }

  private:
    std::ostream *os_;
    uint64_t appended_ = 0;
};

/**
 * Incremental record-at-a-time beam-log reader: parses the #HEADER
 * eagerly (it must be the first non-empty line, which every writer
 * in this repo guarantees) and then yields one run per next() call,
 * so consumers — `radcrit_cli analyze --stream`, streaming store
 * loads — never hold more than the record in flight. Applies the
 * same validation as readBeamLog(): version check, truncation
 * inside a run, and declared-vs-actual run count (at end of
 * stream), all reported as BeamLogParseError.
 */
class BeamLogReader
{
  public:
    /**
     * @param is Source; must outlive the reader. Throws
     * BeamLogParseError when the header is missing or malformed.
     */
    explicit BeamLogReader(std::istream &is);

    /** Campaign identity parsed from the header. */
    const std::string &device() const { return device_; }
    const std::string &workload() const { return workload_; }
    const std::string &input() const { return input_; }
    uint64_t seed() const { return seed_; }
    /** Run count the header declares. */
    uint64_t declaredRuns() const { return declaredRuns_; }
    double sensitiveAreaAu() const { return sensitiveAreaAu_; }

    /**
     * Parse the next run record. Throws BeamLogParseError on
     * malformed input, a log truncated inside a run, or a complete
     * log whose record count contradicts the header.
     *
     * @return nullopt at a clean end of stream.
     */
    std::optional<RawRun> next();

    /** @return records returned by next() so far. */
    uint64_t read() const { return read_; }

  private:
    std::istream *is_;
    std::string device_;
    std::string workload_;
    std::string input_;
    uint64_t seed_ = 0;
    uint64_t declaredRuns_ = 0;
    double sensitiveAreaAu_ = 0.0;
    uint64_t read_ = 0;
    bool done_ = false;
    // Incremental record parser state, kept opaque here (defined
    // in the .cc alongside the shared record grammar).
    struct ParserState;
    std::shared_ptr<ParserState> state_;
};

/**
 * RawSource over a beam log: meta from the header (launch
 * default-constructed, exactly like readBeamLog()), runs in
 * batches of batchRuns (0 = one batch). simStats() is empty — a
 * standalone log read carries no simulation telemetry, matching
 * CampaignRaw::stats after readBeamLog().
 */
class BeamLogSource : public RawSource
{
  public:
    /** Throws BeamLogParseError on a missing/malformed header. */
    BeamLogSource(std::istream &is, uint64_t batchRuns);

    const CampaignMeta &meta() const override { return meta_; }
    bool next(RunBatch &batch) override;
    StatsSnapshot simStats() override { return {}; }

  private:
    BeamLogReader reader_;
    CampaignMeta meta_;
    uint64_t batchRuns_;
    uint64_t nextIndex_ = 0;
};

/**
 * RawSink writing the stream to a beam log as batches arrive. The
 * bytes are identical to writeBeamLog() over the materialized
 * campaign (header run count comes from meta.sim.faultyRuns, which
 * equals the delivered run count for a complete stream).
 */
class BeamLogSink : public RawSink
{
  public:
    /** @param os Destination; must outlive the sink. */
    explicit BeamLogSink(std::ostream &os) : writer_(os) {}

    void begin(const CampaignMeta &meta) override;
    void consume(RunBatch &&batch) override;
    void end(const StatsSnapshot &simStats) override;

    /** @return records written. */
    uint64_t written() const { return writer_.appended(); }

  private:
    BeamLogWriter writer_;
};

/**
 * Append-only writer of a checkpoint shard: one #SHARD header, then
 * one complete run record per append(), flushed so a SIGKILL can
 * tear at most the record being written. Thread-safe (pool workers
 * append as their runs complete). Construction truncates the file
 * to `keepBytes` first — the byte count of recovered content from
 * readCheckpointShards(), 0 for a fresh shard — so a torn trailing
 * record never bleeds into new appends.
 */
class CheckpointWriter
{
  public:
    /**
     * @param path Shard file to append to (created if needed).
     * @param raw Campaign identity written into the #SHARD header.
     * @param keepBytes Valid prefix to keep; everything past it is
     * discarded. 0 starts the shard over (header rewritten).
     * @param flushEvery Flush after every this many appends (1 =
     * every record; 0 is treated as 1). Records between flushes can
     * be lost to a kill, so this trades durability for fewer
     * syscalls on very fast campaigns.
     */
    CheckpointWriter(const std::string &path,
                     const CampaignRaw &raw, uint64_t keepBytes = 0,
                     uint64_t flushEvery = 1);

    CheckpointWriter(const CheckpointWriter &) = delete;
    CheckpointWriter &operator=(const CheckpointWriter &) = delete;

    /** Append one completed run's record (see flushEvery). */
    void append(const RawRun &run);

    /** @return records appended by this writer. */
    uint64_t appended() const { return appended_; }

  private:
    std::mutex mutex_;
    std::ofstream out_;
    std::string path_;
    uint64_t flushEvery_ = 1;
    uint64_t appended_ = 0;
};

/** What readCheckpointShards() recovered from a shard file. */
struct CheckpointRecovery
{
    /** Complete run records, in file (completion) order. */
    std::vector<RawRun> runs;
    /** Torn / malformed trailing records dropped. */
    uint64_t tornRecords = 0;
    /**
     * Bytes of valid shard content (header plus complete records);
     * pass to CheckpointWriter to resume appending after them.
     */
    uint64_t validBytes = 0;
    /** True when the file existed with a readable #SHARD header. */
    bool found = false;
};

/**
 * Recover complete run records from a checkpoint shard. Missing
 * file or unreadable header: found == false (resume starts clean).
 * A shard whose header identity (device, workload, input, seed,
 * runs) contradicts `expect` is fatal — resuming someone else's
 * campaign would silently corrupt results. A torn trailing record
 * (the append a killed process did not finish) is dropped with a
 * warning and counted, never an error.
 */
CheckpointRecovery
readCheckpointShards(const std::string &path,
                     const CampaignRaw &expect);

} // namespace radcrit

#endif // RADCRIT_LOGS_BEAMLOG_HH
