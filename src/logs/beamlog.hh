/**
 * @file
 * Beam-campaign log format: the canonical (de)serialization of
 * CampaignRaw.
 *
 * The paper's contribution (2) makes all corrupted outputs
 * "publicly available in a repository to ease reproducibility and
 * third party analysis ... so to allow users to apply different
 * filters". This module provides that artifact for radcrit
 * campaigns: a line-oriented text format that captures every run's
 * strike, outcome, and (for SDCs) the complete mismatch log, with a
 * versioned header carrying the device/workload identity and the
 * simulation config that produced it. readBeamLog() reloads it as a
 * CampaignRaw, so the criticality metrics can be recomputed via
 * analyzeCampaign() under any tolerance without rerunning the
 * campaign — analyze(parse(write(raw))) is bit-identical to
 * analyze(raw).
 *
 * Format (one record per line, '#'-prefixed keywords):
 *
 *   #HEADER version=2 device=K40 workload=DGEMM input=2048x2048 \
 *        seed=... runs=200 sensitive_area_au=...
 *   #RUN idx=0 outcome=SDC resource=RegisterFile \
 *        manifestation=BitFlipValue t=0.41 burst=1
 *   #DIMS dims=2 x=256 y=256 z=1
 *   #ERR x=12 y=40 z=0 read=1.7976e0 expected=1.7976e0
 *   #END idx=0
 *   #RUN idx=1 outcome=Crash ...
 *   #END idx=1
 *
 * The launch geometry is not serialized — it is derived from
 * (device, workload), never consumed by analysis, and the campaign
 * store rebuilds it on load. A log parsed standalone carries a
 * default-constructed KernelLaunch.
 */

#ifndef RADCRIT_LOGS_BEAMLOG_HH
#define RADCRIT_LOGS_BEAMLOG_HH

#include <iosfwd>
#include <string>

#include "campaign/raw.hh"

namespace radcrit
{

/**
 * Version of the on-disk format. Bumped whenever the header or
 * record grammar changes; the reader rejects any other version so
 * stale cache entries and foreign files fail loudly instead of
 * parsing as garbage. v1 (no version field, header without
 * sim-config) is no longer read.
 */
constexpr int beamLogVersion = 2;

/**
 * Serialize a raw campaign to the log format. All doubles are
 * printed with %.17g so a parse round-trip is bit-exact.
 */
void writeBeamLog(const CampaignRaw &raw, std::ostream &os);

/** Convenience: write to a file path (fatal on I/O errors). */
void writeBeamLogFile(const CampaignRaw &raw,
                      const std::string &path);

/**
 * Parse a log into a CampaignRaw. fatal() on malformed input or a
 * version mismatch (user-supplied data). RawRun::wallNs and the
 * stats snapshot are not part of the format; loaded runs carry 0 /
 * empty there (the store rebuilds counters, see rebuildSimStats()).
 */
CampaignRaw readBeamLog(std::istream &is);

/** Convenience: read from a file path (fatal if unreadable). */
CampaignRaw readBeamLogFile(const std::string &path);

} // namespace radcrit

#endif // RADCRIT_LOGS_BEAMLOG_HH
