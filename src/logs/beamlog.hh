/**
 * @file
 * Beam-campaign log format, writer and reader.
 *
 * The paper's contribution (2) makes all corrupted outputs
 * "publicly available in a repository to ease reproducibility and
 * third party analysis ... so to allow users to apply different
 * filters". This module provides that artifact for radcrit
 * campaigns: a line-oriented text format that captures every run's
 * strike, outcome, and (for SDCs) the complete mismatch log, plus a
 * reader that reloads it so the criticality metrics can be
 * recomputed under any tolerance without rerunning the campaign.
 *
 * Format (one record per line, '#'-prefixed keywords):
 *
 *   #HEADER device=K40 workload=DGEMM input=2048x2048 seed=...
 *   #RUN idx=0 outcome=SDC resource=RegisterFile \
 *        manifestation=BitFlipValue t=0.41 burst=1
 *   #DIMS dims=2 x=256 y=256 z=1
 *   #ERR x=12 y=40 z=0 read=1.7976e0 expected=1.7976e0
 *   #END idx=0
 *   #RUN idx=1 outcome=Crash ...
 *   #END idx=1
 */

#ifndef RADCRIT_LOGS_BEAMLOG_HH
#define RADCRIT_LOGS_BEAMLOG_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/sdcrecord.hh"
#include "sim/fault.hh"

namespace radcrit
{

struct CampaignResult;
class Workload;

/** One run reloaded from a log. */
struct LoggedRun
{
    uint64_t index = 0;
    Outcome outcome = Outcome::Masked;
    Strike strike;
    /** Mismatch log; empty unless outcome == Sdc. */
    SdcRecord record;
};

/** A complete reloaded campaign log. */
struct BeamLog
{
    std::string device;
    std::string workload;
    std::string input;
    uint64_t seed = 0;
    std::vector<LoggedRun> runs;

    /** @return number of runs with the given outcome. */
    uint64_t count(Outcome outcome) const;
};

/**
 * Serialize a campaign to the log format.
 *
 * The campaign runner stores only the analyzed metrics, so the
 * writer replays every SDC strike through the workload (which is
 * deterministic per strike) to regenerate the full mismatch logs,
 * exactly like the paper's host logging corrupted outputs.
 *
 * @param result Campaign to serialize.
 * @param workload The workload the campaign ran (same instance or
 * an identical reconstruction).
 * @param os Output stream.
 */
void writeBeamLog(const CampaignResult &result, Workload &workload,
                  std::ostream &os);

/** Convenience: write to a file path (fatal on I/O errors). */
void writeBeamLogFile(const CampaignResult &result,
                      Workload &workload,
                      const std::string &path);

/**
 * Parse a log. fatal() on malformed input (user-supplied data).
 */
BeamLog readBeamLog(std::istream &is);

/** Convenience: read from a file path (fatal if unreadable). */
BeamLog readBeamLogFile(const std::string &path);

/**
 * Third-party re-analysis: recompute the paper's metrics from a
 * log under a caller-chosen tolerance.
 */
struct LogAnalysis
{
    uint64_t sdcRuns = 0;
    uint64_t filteredOutRuns = 0;
    double meanOfMeanRelErrPct = 0.0;
    /** Pattern counts over surviving (filtered) executions. */
    std::vector<uint64_t> filteredPatternCounts;
    /** Pattern counts over all SDC executions. */
    std::vector<uint64_t> patternCounts;
};

LogAnalysis analyzeBeamLog(const BeamLog &log,
                           double threshold_pct);

} // namespace radcrit

#endif // RADCRIT_LOGS_BEAMLOG_HH
