/**
 * @file
 * Third-party log re-analysis: runs a campaign, publishes its beam
 * log (the artifact the paper makes public in ref. [1]), reloads
 * it, and re-applies a range of tolerance filters — the workflow
 * the paper enables for users whose applications accept different
 * accuracy margins (e.g. the 4% seismic misfit of ref. [14]).
 *
 *   $ log_reanalysis [--runs=150] [--log=mylog.txt]
 */

#include <cstdio>
#include <iostream>

#include "campaign/paperconfigs.hh"
#include "campaign/runner.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "logs/beamlog.hh"

using namespace radcrit;

int
main(int argc, char **argv)
{
    CliParser cli("log_reanalysis");
    cli.addInt("runs", 150, "faulty runs to log");
    cli.addString("log", "beamlog_dgemm_k40.txt",
                  "log file to write and re-read");
    cli.parse(argc, argv);

    // 1. Run a campaign and publish its log.
    DeviceModel device = makeDevice(DeviceId::K40);
    auto dgemm = makeDgemmWorkload(device, 256);
    CampaignConfig cfg = defaultCampaign(
        static_cast<uint64_t>(cli.getInt("runs")), device.name,
        dgemm->name(), dgemm->inputLabel());
    CampaignResult res = runCampaign(device, *dgemm, cfg);
    std::string path = cli.getString("log");
    writeBeamLogFile(res, *dgemm, path);
    std::printf("campaign logged to %s (%zu runs, %llu SDCs)\n\n",
                path.c_str(), res.runs.size(),
                static_cast<unsigned long long>(
                    res.count(Outcome::Sdc)));

    // 2. A third party reloads the log — no access to the
    // workload or device needed — and applies its own filters.
    BeamLog log = readBeamLogFile(path);
    TextTable table("Re-analysis of " + log.device + "/" +
                    log.workload + " " + log.input +
                    " under different tolerances");
    table.setHeader({"tolerance%", "SDC runs", "accepted",
                     "still-critical", "mean relErr%"});
    for (double tol : {0.0, 0.5, 2.0, 4.0, 10.0}) {
        LogAnalysis a = analyzeBeamLog(log, tol);
        table.addRow({TextTable::num(tol, 1),
                      TextTable::num(a.sdcRuns),
                      TextTable::num(a.filteredOutRuns),
                      TextTable::num(a.sdcRuns -
                                     a.filteredOutRuns),
                      TextTable::num(a.meanOfMeanRelErrPct, 2)});
    }
    table.render(std::cout);
    std::printf("\nA seismic-imaging user (4%% misfit accepted, "
                "paper ref. [14]) would treat the 'accepted' "
                "rows as correct executions: reliability is an "
                "application property, not just a device "
                "property.\n");
    return 0;
}
