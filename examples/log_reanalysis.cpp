/**
 * @file
 * Third-party log re-analysis: simulates a campaign, publishes its
 * beam log (the artifact the paper makes public in ref. [1]),
 * reloads it, and re-applies a range of tolerance filters via
 * analyzeCampaign() — the workflow the paper enables for users
 * whose applications accept different accuracy margins (e.g. the
 * 4% seismic misfit of ref. [14]).
 *
 *   $ log_reanalysis [--runs=150] [--log=mylog.txt]
 */

#include <cstdio>
#include <iostream>

#include "campaign/paperconfigs.hh"
#include "campaign/runner.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "logs/beamlog.hh"

using namespace radcrit;

int
main(int argc, char **argv)
{
    CliParser cli("log_reanalysis");
    cli.addInt("runs", 150, "faulty runs to log");
    cli.addString("log", "beamlog_dgemm_k40.txt",
                  "log file to write and re-read");
    cli.parse(argc, argv);

    // 1. Simulate a campaign and publish its raw log. Note the
    // kernels run exactly once, here.
    DeviceModel device = makeDevice(DeviceId::K40);
    auto dgemm = makeDgemmWorkload(device, 256);
    CampaignConfig cfg = defaultCampaign(
        static_cast<uint64_t>(cli.getInt("runs")), device.name,
        dgemm->name(), dgemm->inputLabel());
    CampaignRaw raw = simulateCampaign(device, *dgemm, cfg.sim);
    std::string path = cli.getString("log");
    writeBeamLogFile(raw, path);
    std::printf("campaign logged to %s (%zu runs, %llu SDCs)\n\n",
                path.c_str(), raw.runs.size(),
                static_cast<unsigned long long>(
                    raw.count(Outcome::Sdc)));

    // 2. A third party reloads the log — no access to the
    // workload or device needed — and applies its own filters.
    CampaignRaw log = readBeamLogFile(path);
    TextTable table("Re-analysis of " + log.deviceName + "/" +
                    log.workloadName + " " + log.inputLabel +
                    " under different tolerances");
    table.setHeader({"tolerance%", "SDC runs", "accepted",
                     "still-critical", "mean relErr%"});
    for (double tol : {0.0, 0.5, 2.0, 4.0, 10.0}) {
        AnalysisConfig acfg;
        acfg.filterThresholdPct = tol;
        CampaignResult res = analyzeCampaign(log, acfg);
        uint64_t sdc = 0, accepted = 0;
        double err_sum = 0.0;
        for (const auto &run : res.runs) {
            if (run.outcome != Outcome::Sdc)
                continue;
            ++sdc;
            accepted += run.crit.executionFiltered;
            err_sum += run.crit.meanRelErrPct;
        }
        table.addRow({TextTable::num(tol, 1),
                      TextTable::num(sdc),
                      TextTable::num(accepted),
                      TextTable::num(sdc - accepted),
                      TextTable::num(
                          sdc ? err_sum /
                                    static_cast<double>(sdc)
                              : 0.0, 2)});
    }
    table.render(std::cout);
    std::printf("\nA seismic-imaging user (4%% misfit accepted, "
                "paper ref. [14]) would treat the 'accepted' "
                "rows as correct executions: reliability is an "
                "application property, not just a device "
                "property.\n");
    return 0;
}
