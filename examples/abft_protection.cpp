/**
 * @file
 * ABFT protection demo: run DGEMM under strikes with and without
 * Huang-Abraham checksums and report what the spatial-locality
 * metric predicts — line/single errors are absorbed, square and
 * random errors survive (paper Sections III and V-A).
 *
 *   $ abft_protection [--device=K40] [--strikes=200]
 */

#include <cstdio>
#include <iostream>

#include "abft/abft_dgemm.hh"
#include "campaign/paperconfigs.hh"
#include "common/cli.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "kernels/dgemm.hh"
#include "metrics/criticality.hh"
#include "sim/sampler.hh"

using namespace radcrit;

int
main(int argc, char **argv)
{
    CliParser cli("abft_protection");
    cli.addString("device", "K40", "K40 or XeonPhi");
    cli.addInt("strikes", 200, "strikes to simulate");
    cli.parse(argc, argv);

    DeviceModel device = makeDevice(
        cli.getString("device") == "XeonPhi" ? DeviceId::XeonPhi
                                             : DeviceId::K40);
    Dgemm dgemm(device, 256);
    AbftDgemm abft(dgemm.a(), dgemm.b(), dgemm.n());
    KernelLaunch launch = buildLaunch(device, dgemm.traits());
    StrikeSampler sampler(device, launch);
    Rng rng(99);

    auto strikes = static_cast<uint64_t>(cli.getInt("strikes"));
    uint64_t sdc = 0, absorbed = 0, survived = 0, hidden = 0;
    std::array<uint64_t, numPatterns> survived_pattern{};
    for (uint64_t i = 0; i < strikes; ++i) {
        Strike strike = sampler.sampleStrike(rng);
        if (sampler.sampleOutcome(strike.resource, rng) !=
            Outcome::Sdc) {
            continue;
        }
        SdcRecord rec = dgemm.inject(strike, rng);
        if (rec.empty())
            continue;
        ++sdc;
        auto c = dgemm.materializeOutput(rec);
        auto verdict = abft.checkAndCorrect(c);
        switch (verdict.status) {
          case AbftDgemm::Status::Corrected:
            ++absorbed;
            break;
          case AbftDgemm::Status::DetectedUncorrectable:
            ++survived;
            survived_pattern[static_cast<size_t>(
                classifyLocality(rec))]++;
            break;
          case AbftDgemm::Status::Clean:
            ++hidden; // corruption below checksum tolerance
            break;
        }
    }

    std::printf("DGEMM on %s, %llu strikes -> %llu SDCs\n",
                device.name.c_str(),
                static_cast<unsigned long long>(strikes),
                static_cast<unsigned long long>(sdc));
    TextTable table;
    table.setHeader({"ABFT verdict", "runs", "share"});
    auto pct = [&](uint64_t n) {
        return sdc ? TextTable::num(
            100.0 * static_cast<double>(n) /
            static_cast<double>(sdc), 0) + "%"
                   : std::string("-");
    };
    table.addRow({"corrected in place",
                  TextTable::num(absorbed), pct(absorbed)});
    table.addRow({"detected, not correctable",
                  TextTable::num(survived), pct(survived)});
    table.addRow({"below checksum tolerance",
                  TextTable::num(hidden), pct(hidden)});
    table.render(std::cout);

    std::printf("\npatterns of the surviving errors:\n");
    for (size_t p = 0; p < numPatterns; ++p) {
        if (survived_pattern[p] == 0)
            continue;
        std::printf("  %-8s %llu\n",
                    patternName(static_cast<Pattern>(p)),
                    static_cast<unsigned long long>(
                        survived_pattern[p]));
    }
    std::printf("\nThe locality metric told us in advance: "
                "square/random errors defeat the checksum "
                "scheme, so knowing a device's pattern mix "
                "predicts whether ABFT is worth deploying "
                "(paper Section III).\n");
    return 0;
}
