/**
 * @file
 * CLAMR wave visualizer: injects a strike into the shallow-water
 * solver at several points in time and renders how the corrupted
 * region grows into the paper's Fig. 9 wave — plus the mass-check
 * detector verdict for each run.
 *
 *   $ wave_visualizer [--seed=7]
 */

#include <cstdio>
#include <iostream>

#include "abft/detectors.hh"
#include "campaign/paperconfigs.hh"
#include "common/cli.hh"
#include "common/rng.hh"
#include "kernels/clamr.hh"
#include "metrics/criticality.hh"
#include "metrics/locality_map.hh"

using namespace radcrit;

int
main(int argc, char **argv)
{
    CliParser cli("wave_visualizer");
    cli.addInt("seed", 7, "strike entropy seed");
    cli.parse(argc, argv);

    DeviceModel device = makeDevice(DeviceId::XeonPhi);
    Clamr clamr(device, clamrScaledGrid());
    MassChecker checker(clamr.goldenMass(), 1e-9);
    Rng rng(static_cast<uint64_t>(cli.getInt("seed")));

    std::printf("CLAMR circular dam break on %lldx%lld cells, "
                "%lld steps; golden mass %.3f\n\n",
                static_cast<long long>(clamr.grid()),
                static_cast<long long>(clamr.grid()),
                static_cast<long long>(clamr.steps()),
                clamr.goldenMass());

    for (double t : {0.85, 0.6, 0.3}) {
        Strike strike;
        strike.resource = ResourceKind::Fpu;
        strike.manifestation = Manifestation::WrongOperation;
        strike.timeFraction = t;
        strike.entropy = static_cast<uint64_t>(
            cli.getInt("seed"));
        SdcRecord rec = clamr.inject(strike, rng);
        CriticalityReport crit = analyzeCriticality(rec);

        std::printf("strike at t=%.2f of the run "
                    "(%lld steps remaining):\n", t,
                    static_cast<long long>(
                        clamr.steps() -
                        static_cast<int64_t>(
                            t * static_cast<double>(
                                clamr.steps()))));
        std::printf("  %zu incorrect cells, pattern %s, mean "
                    "relative error %.2f%%\n",
                    crit.numIncorrect,
                    patternName(crit.pattern),
                    crit.meanRelErrPct);
        bool caught = checker.detect(clamr.lastInjectedMass());
        std::printf("  mass check: %.6f vs %.6f -> %s\n",
                    clamr.lastInjectedMass(), clamr.goldenMass(),
                    caught ? "DETECTED (invariant violated)"
                           : "missed");
        LocalityMap map(rec);
        map.renderAscii(std::cout, 48);
        std::printf("\n");
    }
    std::printf("The wave of incorrect elements keeps expanding "
                "as execution continues — CLAMR errors are never "
                "recovered because the conservation invariant "
                "itself is corrupted (paper Section V-D).\n");
    return 0;
}
