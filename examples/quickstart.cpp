/**
 * @file
 * Quickstart: inject one radiation strike into a workload on a
 * device model and print the paper's four criticality metrics.
 *
 *   $ quickstart [--device=K40|XeonPhi] [--workload=HotSpot|...]
 */

#include <cstdio>
#include <memory>

#include "campaign/paperconfigs.hh"
#include "common/cli.hh"
#include "common/rng.hh"
#include "metrics/criticality.hh"
#include "sim/sampler.hh"

using namespace radcrit;

int
main(int argc, char **argv)
{
    CliParser cli("quickstart");
    cli.addString("device", "K40", "K40 or XeonPhi");
    cli.addString("workload", "HotSpot",
                  "DGEMM, LavaMD, HotSpot or CLAMR");
    cli.addInt("seed", 2017, "campaign seed");
    cli.parse(argc, argv);

    // 1. Pick a device model and bind a workload to it.
    DeviceModel device = makeDevice(
        cli.getString("device") == "XeonPhi" ? DeviceId::XeonPhi
                                             : DeviceId::K40);
    std::unique_ptr<Workload> workload;
    std::string name = cli.getString("workload");
    if (name == "DGEMM") {
        workload = makeDgemmWorkload(device, 256);
    } else if (name == "LavaMD") {
        workload = makeLavamdWorkload(
            device, LavaMdSize{7, 15});
    } else if (name == "CLAMR") {
        workload = makeClamrWorkload(device);
    } else {
        workload = makeHotspotWorkload(device);
    }
    std::printf("device   : %s (%s scheduling)\n",
                device.name.c_str(),
                schedulerKindName(device.schedulerKind));
    std::printf("workload : %s, input %s\n",
                workload->name().c_str(),
                workload->inputLabel().c_str());

    // 2. Build the launch view and a strike sampler for it.
    KernelLaunch launch = buildLaunch(device, workload->traits());
    StrikeSampler sampler(device, launch);
    std::printf("launch   : %llu threads, occupancy %.2f, "
                "scheduler strain %.2f\n",
                static_cast<unsigned long long>(
                    workload->traits().totalThreads),
                launch.occupancy, launch.schedulerStrain);

    // 3. Sample strikes until one produces an SDC, then analyze.
    Rng rng(static_cast<uint64_t>(cli.getInt("seed")));
    for (int attempt = 0; attempt < 200; ++attempt) {
        Strike strike = sampler.sampleStrike(rng);
        Outcome outcome = sampler.sampleOutcome(strike.resource,
                                                rng);
        std::printf("\nstrike %d: %s in %s at t=%.2f -> %s\n",
                    attempt, manifestationName(
                        strike.manifestation),
                    resourceKindName(strike.resource),
                    strike.timeFraction, outcomeName(outcome));
        if (outcome != Outcome::Sdc)
            continue;

        SdcRecord record = workload->inject(strike, rng);
        if (record.empty()) {
            std::printf("  ...architecturally masked (no output "
                        "mismatch)\n");
            continue;
        }
        CriticalityReport crit = analyzeCriticality(record);
        std::printf("  metric 1  incorrect elements : %zu\n",
                    crit.numIncorrect);
        std::printf("  metric 3  mean relative error: %.4f%%\n",
                    crit.meanRelErrPct);
        std::printf("  metric 4  spatial locality   : %s\n",
                    patternName(crit.pattern));
        std::printf("  > 2%% filter: %zu elements survive "
                    "(pattern %s)%s\n",
                    crit.numIncorrectFiltered,
                    patternName(crit.patternFiltered),
                    crit.executionFiltered
                        ? " -> execution would be accepted "
                          "under imprecise computing"
                        : "");
        return 0;
    }
    std::printf("no SDC observed in 200 strikes (try another "
                "seed)\n");
    return 0;
}
