/**
 * @file
 * Cross-architecture criticality report: runs a small campaign of
 * every workload on both device models and prints the comparison
 * the paper's Section V-E discussion draws — which architecture
 * produces less critical errors for which algorithm class.
 *
 *   $ criticality_report [--runs=150]
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "campaign/paperconfigs.hh"
#include "campaign/runner.hh"
#include "common/cli.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace radcrit;

namespace
{

struct Row
{
    std::string device;
    std::string workload;
    uint64_t sdc;
    double medianErr;
    double meanIncorrect;
    double filtered;
    double fit;
};

Row
evaluate(const DeviceModel &device, Workload &workload,
         uint64_t runs)
{
    CampaignConfig cfg = defaultCampaign(runs, device.name,
                                         workload.name(),
                                         workload.inputLabel());
    CampaignResult res = runCampaign(device, workload, cfg);
    std::vector<double> errs;
    RunningStat incorrect;
    for (const auto &run : res.runs) {
        if (run.outcome != Outcome::Sdc)
            continue;
        errs.push_back(run.crit.meanRelErrPct);
        incorrect.add(static_cast<double>(
            run.crit.numIncorrect));
    }
    return {device.name, workload.name(),
            res.count(Outcome::Sdc),
            errs.empty() ? 0.0 : quantile(errs, 0.5),
            incorrect.mean(), res.filteredOutFraction(),
            res.fitTotalAu(false)};
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliParser cli("criticality_report");
    cli.addInt("runs", 150, "faulty runs per configuration");
    cli.parse(argc, argv);
    auto runs = static_cast<uint64_t>(cli.getInt("runs"));

    TextTable table("Error criticality across architectures "
                    "(paper Section V-E)");
    table.setHeader({"device", "workload", "SDCs",
                     "median relErr%", "mean #incorrect",
                     "filtered@2%", "FIT [a.u.]"});

    std::vector<Row> rows;
    for (DeviceId id : allDevices()) {
        DeviceModel device = makeDevice(id);
        auto dgemm = makeDgemmWorkload(device, 256);
        rows.push_back(evaluate(device, *dgemm, runs));
        auto lavamd = makeLavamdWorkload(device,
                                         LavaMdSize{7, 15});
        rows.push_back(evaluate(device, *lavamd, runs));
        auto hotspot = makeHotspotWorkload(device);
        rows.push_back(evaluate(device, *hotspot, runs));
        if (id == DeviceId::XeonPhi) {
            auto clamr = makeClamrWorkload(device);
            rows.push_back(evaluate(device, *clamr, runs));
        }
    }
    for (const auto &r : rows) {
        table.addRow({r.device, r.workload,
                      TextTable::num(r.sdc),
                      TextTable::num(r.medianErr, 2),
                      TextTable::num(r.meanIncorrect, 0),
                      TextTable::num(100.0 * r.filtered, 0) + "%",
                      TextTable::num(r.fit, 1)});
    }
    table.render(std::cout);

    std::printf(
        "\nReading the table like the paper's conclusions:\n"
        " - arithmetic codes (DGEMM): the K40 produces small, "
        "mostly tolerable errors;\n   the Phi produces gross "
        "ones -> K40 less critical for DGEMM users.\n"
        " - FDM/particle codes (LavaMD): the Phi spreads "
        "errors wider (cubic) but keeps\n   them smaller; the "
        "K40's transcendental path makes them huge.\n"
        " - iterative stencils (HotSpot): intrinsically robust "
        "on both devices.\n"
        " - conservative fluid codes (CLAMR): errors never "
        "dissipate (mass invariant).\n");
    return 0;
}
