/**
 * @file
 * Standalone shim for the registered 'ablation_scheduler' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_ablation_scheduler.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("ablation_scheduler", argc, argv);
}
