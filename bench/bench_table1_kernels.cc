/**
 * @file
 * Standalone shim for the registered 'table1_kernels' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_table1_kernels.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("table1_kernels", argc, argv);
}
