/**
 * @file
 * System-scale projection (paper Section I): scale the campaign
 * failure rates to a Titan-class machine (18,688 accelerators),
 * check the "dozens of hours" MTBF the paper quotes, and compute
 * the Young/Daly checkpoint interval and resulting machine
 * efficiency — why criticality-aware tolerance matters at scale.
 */

#include "bench_util.hh"

#include "mtbf/projection.hh"

using namespace radcrit;

int
main(int argc, char **argv)
{
    CliParser cli = figureCli("bench_mtbf_projection", 300);
    cli.addInt("devices", 18688,
               "accelerators in the machine (Titan: 18688)");
    cli.addDouble("fit-per-au", 25.0,
                  "absolute FIT per relative-FIT a.u. (anchor)");
    cli.parse(argc, argv);
    benchInit(cli);
    auto runs = static_cast<uint64_t>(cli.getInt("runs"));

    SystemConfig system;
    system.devices = static_cast<uint64_t>(
        cli.getInt("devices"));
    system.fitPerAu = cli.getDouble("fit-per-au");

    TextTable table("System projection: " +
                    TextTable::num(static_cast<uint64_t>(
                        system.devices)) +
                    " devices, anchor " +
                    TextTable::num(system.fitPerAu, 1) +
                    " FIT/a.u.");
    table.setHeader({"device", "workload", "MTBF det. [h]",
                     "MTBS SDC [h]", "MTBS crit. [h]",
                     "Daly ckpt [h]", "efficiency"});

    for (DeviceId id : allDevices()) {
        DeviceModel device = makeDevice(id);
        std::vector<std::unique_ptr<Workload>> workloads;
        workloads.push_back(makeDgemmWorkload(device, 256));
        workloads.push_back(makeLavamdWorkload(
            device, LavaMdSize{7, 15}));
        workloads.push_back(makeHotspotWorkload(device));
        for (auto &w : workloads) {
            CampaignResult res =
                runPaperCampaign(device, *w, runs);
            SystemProjection p = projectToSystem(res, system);
            table.addRow({device.name, w->name(),
                          TextTable::num(p.mtbfDetectableHours,
                                         1),
                          TextTable::num(p.mtbsSdcHours, 1),
                          TextTable::num(p.mtbsCriticalHours, 1),
                          TextTable::num(p.dalyIntervalHours, 2),
                          TextTable::num(100.0 * p.efficiency,
                                         1) + "%"});
        }
        table.addSeparator();
    }
    table.render(std::cout);
    std::printf("\nMTBS = mean time between (critical) silent "
                "corruptions. Checkpointing only recovers the "
                "detectable failures; SDCs silently corrupt "
                "science, and the 'critical' column shows how "
                "much breathing room an application tolerance "
                "buys (paper Sections I-II).\n");
    return 0;
}
