/**
 * @file
 * Standalone shim for the registered 'mtbf_projection' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_mtbf_projection.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("mtbf_projection", argc, argv);
}
