/**
 * @file
 * Paper Fig. 6: HotSpot mean relative error vs. incorrect
 * elements. Counts >= 50,000 plot at 50,000 (scaled: the clamp
 * scales with the grid) and the mean relative error stays below
 * 25% — the stencil-dissipation signature.
 */

#include "bench_util.hh"

using namespace radcrit;

int
main(int argc, char **argv)
{
    CliParser cli = figureCli("bench_fig6_hotspot_scatter");
    cli.parse(argc, argv);
    benchInit(cli);
    auto runs = static_cast<uint64_t>(cli.getInt("runs"));
    bool csv = !cli.getFlag("no-csv");

    // Paper clamps at 50k elements of a 1024^2 grid; the scaled
    // clamp keeps the same fraction of our 256^2 grid.
    double count_clamp = 50000.0 / 16.0;

    for (DeviceId id : allDevices()) {
        DeviceModel device = makeDevice(id);
        auto w = makeHotspotWorkload(device);
        std::vector<CampaignResult> results;
        results.push_back(runPaperCampaign(device, *w, runs));
        std::string panel = id == DeviceId::K40 ? "(a) K40"
                                                : "(b) Xeon Phi";
        renderScatterFigure(
            "Fig. 6" + panel +
            ": HotSpot Mean relative error and Incorrect Elements",
            results, count_clamp, 25.0,
            std::string("fig6_hotspot_scatter_") + device.name +
            ".csv", csv);
        std::printf("\n");
    }
    writeBenchJson("bench_fig6_hotspot_scatter");
    return 0;
}
