/**
 * @file
 * Standalone shim for the registered 'fig6_hotspot_scatter' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_fig6_hotspot_scatter.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("fig6_hotspot_scatter", argc, argv);
}
