/**
 * @file
 * Paper Fig. 2: DGEMM mean relative error vs. number of incorrect
 * elements per faulty execution, one panel per device, one series
 * per input size. Relative errors >= 100% plot at 100% as in the
 * paper ("we assign a 100% relative error to all those errors with
 * a relative error higher or equal to 100%").
 */

#include "bench_util.hh"

using namespace radcrit;

int
main(int argc, char **argv)
{
    CliParser cli = figureCli("bench_fig2_dgemm_scatter");
    cli.parse(argc, argv);
    benchInit(cli);
    auto runs = static_cast<uint64_t>(cli.getInt("runs"));
    bool csv = !cli.getFlag("no-csv");

    for (DeviceId id : allDevices()) {
        DeviceModel device = makeDevice(id);
        std::vector<CampaignResult> results;
        for (int64_t side : dgemmScaledSides(id)) {
            auto w = makeDgemmWorkload(device, side);
            results.push_back(runPaperCampaign(device, *w, runs));
        }
        std::string panel = id == DeviceId::K40 ? "(a) K40"
                                                : "(b) Xeon Phi";
        renderScatterFigure(
            "Fig. 2" + panel +
            ": DGEMM Mean relative error and Incorrect Elements",
            results, 20000.0, 100.0,
            std::string("fig2_dgemm_scatter_") + device.name +
            ".csv", csv);
        std::printf("\n");
    }
    writeBenchJson("bench_fig2_dgemm_scatter");
    return 0;
}
