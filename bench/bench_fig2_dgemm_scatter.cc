/**
 * @file
 * Standalone shim for the registered 'fig2_dgemm_scatter' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_fig2_dgemm_scatter.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("fig2_dgemm_scatter", argc, argv);
}
