/**
 * @file
 * Shared helpers for the per-figure bench harnesses: run campaigns
 * over the canonical paper configurations, render the paper's
 * figure shapes (scatter + stacked bars) to the terminal, and dump
 * machine-readable CSV next to them.
 */

#ifndef RADCRIT_BENCH_BENCH_UTIL_HH
#define RADCRIT_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/paperconfigs.hh"
#include "campaign/runner.hh"
#include "campaign/series.hh"
#include "common/cli.hh"
#include "common/csv.hh"
#include "common/figure.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "exec/pool.hh"
#include "obs/json.hh"
#include "obs/stats_registry.hh"

namespace radcrit
{

/** Directory for CSV side-outputs of the bench harnesses. */
inline std::string
benchOutputDir()
{
    std::string dir = "bench_out";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

/** Standard CLI for figure benches: --runs, --jobs, --csv. */
inline CliParser
figureCli(const std::string &name, int64_t default_runs = 200)
{
    CliParser cli(name);
    cli.addInt("runs", default_runs,
               "faulty runs per configuration");
    cli.addInt("jobs",
               static_cast<int64_t>(WorkerPool::envJobs(1)),
               "worker threads per campaign (1 = serial, 0 = one "
               "per hardware thread; default from RADCRIT_JOBS)");
    cli.addFlag("no-csv", "skip CSV side-output");
    return cli;
}

/**
 * Process-wide tally of campaign work done by one bench harness,
 * feeding the machine-readable results emitter. runPaperCampaign()
 * records into it automatically.
 */
struct BenchRecorder
{
    uint64_t campaigns = 0;
    uint64_t runs = 0;
    uint64_t wallNs = 0;
    /** Worker threads per campaign (resolved, so never 0). */
    unsigned jobs = 1;

    void
    addCampaign(uint64_t campaign_runs, uint64_t campaign_ns)
    {
        ++campaigns;
        runs += campaign_runs;
        wallNs += campaign_ns;
    }

    /** @return wall nanoseconds per simulated faulty run. */
    double
    nsPerOp() const
    {
        return runs == 0
            ? 0.0
            : static_cast<double>(wallNs) /
                static_cast<double>(runs);
    }

    /** @return simulated faulty runs per second. */
    double
    runsPerSecond() const
    {
        return wallNs == 0
            ? 0.0
            : static_cast<double>(runs) * 1e9 /
                static_cast<double>(wallNs);
    }
};

/** @return the process-wide bench recorder. */
inline BenchRecorder &
benchRecorder()
{
    static BenchRecorder recorder;
    return recorder;
}

/**
 * Read --jobs from a figureCli() parser and arm the recorder, so
 * every later runPaperCampaign() runs with that worker count and
 * the bench JSON records it. Call once right after cli.parse().
 */
inline unsigned
benchJobs(const CliParser &cli)
{
    int64_t raw = cli.getInt("jobs");
    if (raw < 0)
        fatal("--jobs must be >= 0");
    unsigned jobs = WorkerPool::resolveJobs(
        static_cast<unsigned>(raw));
    benchRecorder().jobs = jobs;
    return jobs;
}

/** Run the canonical campaign for a workload instance. */
inline CampaignResult
runPaperCampaign(const DeviceModel &device, Workload &workload,
                 uint64_t runs)
{
    CampaignConfig cfg = defaultCampaign(
        runs, device.name, workload.name(),
        workload.inputLabel());
    cfg.jobs = benchRecorder().jobs;
    auto start = std::chrono::steady_clock::now();
    CampaignResult res = runCampaign(device, workload, cfg);
    auto wall_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start).count());
    benchRecorder().addCampaign(res.runs.size(), wall_ns);
    return res;
}

/**
 * Emit the bench's machine-readable results as
 * bench_out/<bench_name>.json: schema version, campaign/run
 * tallies with worker count, ns-per-run and (parallel)
 * runs-per-second, and the full stats registry snapshot (phase
 * timers, kernel timers, outcome counters).
 * tools/check_bench_json.py validates the shape in CI.
 */
inline void
writeBenchJson(const std::string &bench_name)
{
    const BenchRecorder &rec = benchRecorder();
    std::string path = benchOutputDir() + "/" + bench_name +
        ".json";
    std::ofstream out(path);
    if (!out) {
        warn("cannot open bench results file '%s'", path.c_str());
        return;
    }
    out << "{\n"
        << "  \"schema\": 2,\n"
        << "  \"bench\": \"" << jsonEscape(bench_name) << "\",\n"
        << "  \"campaigns\": " << rec.campaigns << ",\n"
        << "  \"jobs\": " << rec.jobs << ",\n"
        << "  \"runs\": " << rec.runs << ",\n"
        << "  \"wall_ns\": " << rec.wallNs << ",\n"
        << "  \"ns_per_op\": " << jsonNum(rec.nsPerOp()) << ",\n"
        << "  \"runs_per_s\": " << jsonNum(rec.runsPerSecond())
        << ",\n"
        << "  \"stats\": ";
    StatsRegistry::global().snapshot().writeJson(out, 2);
    out << "\n}\n";
    std::printf("[json] %s\n", path.c_str());
}

/**
 * Render one scatter figure (mean relative error vs. number of
 * incorrect elements) from a set of campaigns, with the paper's
 * axis clamps, and optionally dump per-run CSV.
 */
inline void
renderScatterFigure(const std::string &title,
                    const std::vector<CampaignResult> &results,
                    double x_clamp, double y_clamp,
                    const std::string &csv_name, bool write_csv)
{
    ScatterPlot plot(title, "Number of Incorrect Elements",
                     "Average Relative Error (%)");
    if (x_clamp > 0.0)
        plot.setXClamp(x_clamp);
    if (y_clamp > 0.0)
        plot.setYClamp(y_clamp);
    for (const auto &res : results)
        plot.addSeries(scatterSeries(res));
    plot.render(std::cout);

    if (write_csv) {
        std::string path = benchOutputDir() + "/" + csv_name;
        CsvWriter csv(path);
        csv.writeRow({"device", "input", "numIncorrect",
                      "meanRelErrPct"});
        for (const auto &res : results) {
            ScatterSeries s = scatterSeries(res);
            for (size_t i = 0; i < s.xs.size(); ++i) {
                csv.writeRow({res.deviceName, res.inputLabel,
                              TextTable::num(s.xs[i], 0),
                              TextTable::num(s.ys[i], 4)});
            }
        }
        std::printf("[csv] %s\n", path.c_str());
    }
}

/**
 * Render one locality/magnitude figure (stacked FIT bars, All and
 * >threshold) from a set of campaigns.
 */
inline void
renderLocalityFigure(const std::string &title,
                     const std::vector<CampaignResult> &results,
                     const std::vector<Pattern> &patterns,
                     const std::string &csv_name, bool write_csv)
{
    std::vector<std::string> names;
    for (Pattern p : patterns)
        names.push_back(patternName(p));
    StackedBarChart chart(title, names);
    for (const auto &res : results) {
        LocalityBars bars = localityBars(res, patterns);
        for (auto &bar : bars.bars)
            chart.addBar(std::move(bar));
    }
    chart.render(std::cout);

    if (write_csv) {
        std::string path = benchOutputDir() + "/" + csv_name;
        CsvWriter csv(path);
        std::vector<std::string> header{"device", "input",
                                        "filtered"};
        for (const auto &n : names)
            header.push_back(n);
        header.push_back("total");
        csv.writeRow(header);
        for (const auto &res : results) {
            for (bool filtered : {false, true}) {
                FitBreakdown bd = res.fitByPattern(filtered);
                std::vector<std::string> row{
                    res.deviceName, res.inputLabel,
                    filtered ? "yes" : "no"};
                for (Pattern p : patterns)
                    row.push_back(TextTable::num(bd.of(p), 4));
                row.push_back(TextTable::num(bd.total(), 4));
                csv.writeRow(row);
            }
        }
        std::printf("[csv] %s\n", path.c_str());
    }
}

} // namespace radcrit

#endif // RADCRIT_BENCH_BENCH_UTIL_HH
