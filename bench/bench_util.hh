/**
 * @file
 * Shared helpers for the per-figure bench harnesses: run campaigns
 * over the canonical paper configurations, render the paper's
 * figure shapes (scatter + stacked bars) to the terminal, and dump
 * machine-readable CSV next to them.
 */

#ifndef RADCRIT_BENCH_BENCH_UTIL_HH
#define RADCRIT_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "campaign/paperconfigs.hh"
#include "campaign/runner.hh"
#include "campaign/series.hh"
#include "common/cli.hh"
#include "common/csv.hh"
#include "common/figure.hh"
#include "common/table.hh"

namespace radcrit
{

/** Directory for CSV side-outputs of the bench harnesses. */
inline std::string
benchOutputDir()
{
    std::string dir = "bench_out";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

/** Standard CLI for figure benches: --runs and --csv toggles. */
inline CliParser
figureCli(const std::string &name, int64_t default_runs = 200)
{
    CliParser cli(name);
    cli.addInt("runs", default_runs,
               "faulty runs per configuration");
    cli.addFlag("no-csv", "skip CSV side-output");
    return cli;
}

/** Run the canonical campaign for a workload instance. */
inline CampaignResult
runPaperCampaign(const DeviceModel &device, Workload &workload,
                 uint64_t runs)
{
    CampaignConfig cfg = defaultCampaign(
        runs, device.name, workload.name(),
        workload.inputLabel());
    return runCampaign(device, workload, cfg);
}

/**
 * Render one scatter figure (mean relative error vs. number of
 * incorrect elements) from a set of campaigns, with the paper's
 * axis clamps, and optionally dump per-run CSV.
 */
inline void
renderScatterFigure(const std::string &title,
                    const std::vector<CampaignResult> &results,
                    double x_clamp, double y_clamp,
                    const std::string &csv_name, bool write_csv)
{
    ScatterPlot plot(title, "Number of Incorrect Elements",
                     "Average Relative Error (%)");
    if (x_clamp > 0.0)
        plot.setXClamp(x_clamp);
    if (y_clamp > 0.0)
        plot.setYClamp(y_clamp);
    for (const auto &res : results)
        plot.addSeries(scatterSeries(res));
    plot.render(std::cout);

    if (write_csv) {
        std::string path = benchOutputDir() + "/" + csv_name;
        CsvWriter csv(path);
        csv.writeRow({"device", "input", "numIncorrect",
                      "meanRelErrPct"});
        for (const auto &res : results) {
            ScatterSeries s = scatterSeries(res);
            for (size_t i = 0; i < s.xs.size(); ++i) {
                csv.writeRow({res.deviceName, res.inputLabel,
                              TextTable::num(s.xs[i], 0),
                              TextTable::num(s.ys[i], 4)});
            }
        }
        std::printf("[csv] %s\n", path.c_str());
    }
}

/**
 * Render one locality/magnitude figure (stacked FIT bars, All and
 * >threshold) from a set of campaigns.
 */
inline void
renderLocalityFigure(const std::string &title,
                     const std::vector<CampaignResult> &results,
                     const std::vector<Pattern> &patterns,
                     const std::string &csv_name, bool write_csv)
{
    std::vector<std::string> names;
    for (Pattern p : patterns)
        names.push_back(patternName(p));
    StackedBarChart chart(title, names);
    for (const auto &res : results) {
        LocalityBars bars = localityBars(res, patterns);
        for (auto &bar : bars.bars)
            chart.addBar(std::move(bar));
    }
    chart.render(std::cout);

    if (write_csv) {
        std::string path = benchOutputDir() + "/" + csv_name;
        CsvWriter csv(path);
        std::vector<std::string> header{"device", "input",
                                        "filtered"};
        for (const auto &n : names)
            header.push_back(n);
        header.push_back("total");
        csv.writeRow(header);
        for (const auto &res : results) {
            for (bool filtered : {false, true}) {
                FitBreakdown bd = res.fitByPattern(filtered);
                std::vector<std::string> row{
                    res.deviceName, res.inputLabel,
                    filtered ? "yes" : "no"};
                for (Pattern p : patterns)
                    row.push_back(TextTable::num(bd.of(p), 4));
                row.push_back(TextTable::num(bd.total(), 4));
                csv.writeRow(row);
            }
        }
        std::printf("[csv] %s\n", path.c_str());
    }
}

} // namespace radcrit

#endif // RADCRIT_BENCH_BENCH_UTIL_HH
