/**
 * @file
 * Shared helpers for the per-figure bench harnesses: run campaigns
 * over the canonical paper configurations (through the campaign
 * store when --cache is given, so paired figures simulate each
 * campaign once), render the paper's figure shapes (scatter +
 * stacked bars) to the terminal, and dump machine-readable CSV next
 * to them.
 */

#ifndef RADCRIT_BENCH_BENCH_UTIL_HH
#define RADCRIT_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "campaign/paperconfigs.hh"
#include "campaign/runner.hh"
#include "campaign/series.hh"
#include "campaign/store.hh"
#include "common/cli.hh"
#include "common/csv.hh"
#include "common/figure.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "exec/pool.hh"
#include "obs/json.hh"
#include "obs/stats_registry.hh"

namespace radcrit
{

/** Directory for CSV side-outputs of the bench harnesses. */
inline std::string
benchOutputDir()
{
    std::string dir = "bench_out";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        // Warn once up front instead of letting every subsequent
        // CSV/JSON open fail one by one with a less useful message.
        static bool warned = false;
        if (!warned) {
            warned = true;
            warn("cannot create bench output directory '%s': %s",
                 dir.c_str(), ec.message().c_str());
        }
    }
    return dir;
}

/**
 * Standard CLI for figure benches: --runs, --jobs, --cache, --csv.
 */
inline CliParser
figureCli(const std::string &name, int64_t default_runs = 200)
{
    CliParser cli(name);
    cli.addInt("runs", default_runs,
               "faulty runs per configuration");
    cli.addInt("jobs",
               static_cast<int64_t>(WorkerPool::envJobs(1)),
               "worker threads per campaign (1 = serial, 0 = one "
               "per hardware thread; default from RADCRIT_JOBS)");
    const char *cache_env = std::getenv("RADCRIT_CAMPAIGN_CACHE");
    cli.addString("cache", cache_env ? cache_env : "",
                  "campaign store directory: simulate once, load "
                  "raw campaigns from cache afterwards (default "
                  "from RADCRIT_CAMPAIGN_CACHE; empty = off)");
    cli.addFlag("no-csv", "skip CSV side-output");
    return cli;
}

/**
 * Process-wide tally of campaign work done by one bench harness,
 * feeding the machine-readable results emitter. runPaperCampaign()
 * records into it automatically.
 */
struct BenchRecorder
{
    uint64_t campaigns = 0;
    uint64_t runs = 0;
    uint64_t wallNs = 0;
    /** Worker threads per campaign (resolved, so never 0). */
    unsigned jobs = 1;
    /** Campaigns loaded from the store instead of simulated. */
    uint64_t cacheHits = 0;
    /**
     * Campaigns simulated (cache off, entry absent, or mismatch);
     * cacheHits + cacheMisses == campaigns always.
     */
    uint64_t cacheMisses = 0;

    void
    addCampaign(uint64_t campaign_runs, uint64_t campaign_ns,
                bool cached)
    {
        ++campaigns;
        runs += campaign_runs;
        wallNs += campaign_ns;
        if (cached)
            ++cacheHits;
        else
            ++cacheMisses;
    }

    /** @return wall nanoseconds per simulated faulty run. */
    double
    nsPerOp() const
    {
        return runs == 0
            ? 0.0
            : static_cast<double>(wallNs) /
                static_cast<double>(runs);
    }

    /** @return simulated faulty runs per second. */
    double
    runsPerSecond() const
    {
        return wallNs == 0
            ? 0.0
            : static_cast<double>(runs) * 1e9 /
                static_cast<double>(wallNs);
    }
};

/** @return the process-wide bench recorder. */
inline BenchRecorder &
benchRecorder()
{
    static BenchRecorder recorder;
    return recorder;
}

/**
 * @return the process-wide campaign store slot (null = cache off).
 * benchInit() arms it from --cache.
 */
inline std::unique_ptr<CampaignStore> &
benchStore()
{
    static std::unique_ptr<CampaignStore> store;
    return store;
}

/**
 * Resolve --jobs and --cache from a figureCli() parser and arm the
 * recorder and the store, so every later runPaperCampaign() runs
 * with that worker count / through that cache and the bench JSON
 * records both. Call once right after cli.parse().
 */
inline unsigned
benchInit(const CliParser &cli)
{
    int64_t raw = cli.getInt("jobs");
    if (raw < 0)
        fatal("--jobs must be >= 0");
    unsigned jobs = WorkerPool::resolveJobs(
        static_cast<unsigned>(raw));
    benchRecorder().jobs = jobs;
    std::string cache = cli.getString("cache");
    if (!cache.empty())
        benchStore() = std::make_unique<CampaignStore>(cache);
    return jobs;
}

/**
 * Produce the raw canonical campaign for a workload instance:
 * loaded from the store on a hit, simulated (and saved) otherwise.
 * Records work and cache traffic into the bench recorder.
 */
inline CampaignRaw
paperCampaignRaw(const DeviceModel &device, Workload &workload,
                 uint64_t runs)
{
    CampaignConfig cfg = defaultCampaign(
        runs, device.name, workload.name(),
        workload.inputLabel());
    cfg.sim.jobs = benchRecorder().jobs;
    CampaignStore *store = benchStore().get();
    uint64_t hits_before = store ? store->hits() : 0;
    auto start = std::chrono::steady_clock::now();
    CampaignRaw raw = simulateOrLoad(device, workload, cfg.sim,
                                     store);
    auto wall_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start).count());
    bool cached = store && store->hits() > hits_before;
    benchRecorder().addCampaign(raw.runs.size(), wall_ns, cached);
    return raw;
}

/** Run the canonical campaign for a workload instance. */
inline CampaignResult
runPaperCampaign(const DeviceModel &device, Workload &workload,
                 uint64_t runs)
{
    CampaignConfig cfg = defaultCampaign(
        runs, device.name, workload.name(),
        workload.inputLabel());
    CampaignRaw raw = paperCampaignRaw(device, workload, runs);
    return analyzeCampaign(raw, cfg.analysis);
}

/**
 * Emit the bench's machine-readable results as
 * bench_out/<bench_name>.json: schema version, campaign/run
 * tallies with worker count and store hit/miss traffic, ns-per-run
 * and (parallel) runs-per-second, a "timings" block carrying the
 * perf trajectory (per-phase wall ns, throughput, pool
 * utilization), and the full stats registry snapshot (phase
 * timers, kernel timers, outcome counters).
 * tools/check_bench_json.py validates the shape in CI.
 */
inline void
writeBenchJson(const std::string &bench_name)
{
    const BenchRecorder &rec = benchRecorder();
    std::string path = benchOutputDir() + "/" + bench_name +
        ".json";
    std::ofstream out(path);
    if (!out) {
        warn("cannot open bench results file '%s'", path.c_str());
        return;
    }
    StatsSnapshot snap = StatsRegistry::global().snapshot();
    {
        JsonObjectWriter obj(out);
        obj.field("schema", uint64_t{4});
        obj.field("bench", bench_name);
        obj.field("campaigns", rec.campaigns);
        obj.field("jobs", static_cast<uint64_t>(rec.jobs));
        obj.field("runs", rec.runs);
        obj.field("wall_ns", rec.wallNs);
        obj.field("cache_hits", rec.cacheHits);
        obj.field("cache_misses", rec.cacheMisses);
        obj.field("ns_per_op", rec.nsPerOp());
        obj.field("runs_per_s", rec.runsPerSecond());
        obj.beginRawField("timings");
        {
            // The perf trajectory: wall clock, throughput, where
            // the time went (phase timers), and how well the worker
            // pool was used. All-cache-hit runs legitimately report
            // zero phase time: no simulation happened.
            JsonObjectWriter timings(out, 4);
            timings.field("wall_ns", rec.wallNs);
            timings.field("runs_per_s", rec.runsPerSecond());
            timings.field("pool_busy_ns", static_cast<uint64_t>(
                snap.value("pool.busy.ns")));
            timings.field("pool_idle_ns", static_cast<uint64_t>(
                snap.value("pool.idle.ns")));
            timings.field("pool_utilization",
                          snap.value("pool.utilization"));
            timings.beginRawField("phase_ns");
            {
                JsonObjectWriter phases(out, 6);
                for (const char *phase :
                     {"sample", "classify", "replay", "metrics"}) {
                    phases.field(
                        phase,
                        static_cast<uint64_t>(snap.value(
                            std::string("campaign.phase.") +
                            phase + ".ns")));
                }
                phases.field("total", static_cast<uint64_t>(
                    snap.value("campaign.total.ns")));
            }
        }
        obj.beginRawField("stats");
        snap.writeJson(out, 2);
        obj.close();
    }
    out << "\n";
    std::printf("[json] %s\n", path.c_str());
}

/**
 * Render one scatter figure (mean relative error vs. number of
 * incorrect elements) from a set of campaigns, with the paper's
 * axis clamps, and optionally dump per-run CSV.
 */
inline void
renderScatterFigure(const std::string &title,
                    const std::vector<CampaignResult> &results,
                    double x_clamp, double y_clamp,
                    const std::string &csv_name, bool write_csv)
{
    ScatterPlot plot(title, "Number of Incorrect Elements",
                     "Average Relative Error (%)");
    if (x_clamp > 0.0)
        plot.setXClamp(x_clamp);
    if (y_clamp > 0.0)
        plot.setYClamp(y_clamp);
    for (const auto &res : results)
        plot.addSeries(scatterSeries(res));
    plot.render(std::cout);

    if (write_csv) {
        std::string path = benchOutputDir() + "/" + csv_name;
        CsvWriter csv(path);
        csv.writeRow({"device", "input", "numIncorrect",
                      "meanRelErrPct"});
        for (const auto &res : results) {
            ScatterSeries s = scatterSeries(res);
            for (size_t i = 0; i < s.xs.size(); ++i) {
                csv.writeRow({res.deviceName, res.inputLabel,
                              TextTable::num(s.xs[i], 0),
                              TextTable::num(s.ys[i], 4)});
            }
        }
        std::printf("[csv] %s\n", path.c_str());
    }
}

/**
 * Render one locality/magnitude figure (stacked FIT bars, All and
 * >threshold) from a set of campaigns.
 */
inline void
renderLocalityFigure(const std::string &title,
                     const std::vector<CampaignResult> &results,
                     const std::vector<Pattern> &patterns,
                     const std::string &csv_name, bool write_csv)
{
    std::vector<std::string> names;
    for (Pattern p : patterns)
        names.push_back(patternName(p));
    StackedBarChart chart(title, names);
    for (const auto &res : results) {
        LocalityBars bars = localityBars(res, patterns);
        for (auto &bar : bars.bars)
            chart.addBar(std::move(bar));
    }
    chart.render(std::cout);

    if (write_csv) {
        std::string path = benchOutputDir() + "/" + csv_name;
        CsvWriter csv(path);
        std::vector<std::string> header{"device", "input",
                                        "filtered"};
        for (const auto &n : names)
            header.push_back(n);
        header.push_back("total");
        csv.writeRow(header);
        for (const auto &res : results) {
            for (bool filtered : {false, true}) {
                FitBreakdown bd = res.fitByPattern(filtered);
                std::vector<std::string> row{
                    res.deviceName, res.inputLabel,
                    filtered ? "yes" : "no"};
                for (Pattern p : patterns)
                    row.push_back(TextTable::num(bd.of(p), 4));
                row.push_back(TextTable::num(bd.total(), 4));
                csv.writeRow(row);
            }
        }
        std::printf("[csv] %s\n", path.c_str());
    }
}

} // namespace radcrit

#endif // RADCRIT_BENCH_BENCH_UTIL_HH
