/**
 * @file
 * Standalone shim for the registered 'abft_coverage' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_abft_coverage.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("abft_coverage", argc, argv);
}
