/**
 * @file
 * Standalone shim for the registered 'table2_inputs' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_table2_inputs.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("table2_inputs", argc, argv);
}
