/**
 * @file
 * Paper Table II: parallel kernels' details — domain, input sizes
 * and thread counts, computed from the launch descriptors of the
 * actual implementations on both devices.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "campaign/paperconfigs.hh"
#include "common/table.hh"
#include "exec/launch.hh"

using namespace radcrit;

namespace
{

void
addRows(TextTable &table, const DeviceModel &device)
{
    DeviceId id = device.name == "K40" ? DeviceId::K40
                                       : DeviceId::XeonPhi;
    for (int64_t side : dgemmScaledSides(id)) {
        auto w = makeDgemmWorkload(device, side);
        KernelLaunch l = buildLaunch(device, w->traits());
        table.addRow({device.name, "DGEMM", "Linear algebra",
                      w->inputLabel(),
                      TextTable::num(w->traits().totalThreads),
                      TextTable::num(l.residentThreads),
                      TextTable::num(l.occupancy, 2),
                      TextTable::num(l.schedulerStrain, 2)});
    }
    for (const auto &size : lavamdScaledSizes(id)) {
        auto w = makeLavamdWorkload(device, size);
        KernelLaunch l = buildLaunch(device, w->traits());
        table.addRow({device.name, "LavaMD",
                      "Molecular dynamics", w->inputLabel(),
                      TextTable::num(w->traits().totalThreads),
                      TextTable::num(l.residentThreads),
                      TextTable::num(l.occupancy, 2),
                      TextTable::num(l.schedulerStrain, 2)});
    }
    {
        auto w = makeHotspotWorkload(device);
        KernelLaunch l = buildLaunch(device, w->traits());
        table.addRow({device.name, "HotSpot",
                      "Physics simulation", w->inputLabel(),
                      TextTable::num(w->traits().totalThreads),
                      TextTable::num(l.residentThreads),
                      TextTable::num(l.occupancy, 2),
                      TextTable::num(l.schedulerStrain, 2)});
    }
    {
        auto w = makeClamrWorkload(device);
        KernelLaunch l = buildLaunch(device, w->traits());
        table.addRow({device.name, "CLAMR", "Fluid dynamics",
                      w->inputLabel() + " (+AMR)",
                      TextTable::num(w->traits().totalThreads),
                      TextTable::num(l.residentThreads),
                      TextTable::num(l.occupancy, 2),
                      TextTable::num(l.schedulerStrain, 2)});
    }
    table.addSeparator();
}

} // anonymous namespace

int
main()
{
    TextTable table("Table II: Parallel kernels' details "
                    "(paper-equivalent launch view)");
    table.setHeader({"Device", "Kernel", "Domain", "Input size",
                     "#Threads", "resident", "occupancy",
                     "sched strain"});
    for (DeviceId id : allDevices())
        addRows(table, makeDevice(id));
    table.render(std::cout);
    std::printf("\nLavaMD particles/box: 192 on K40, 100 on "
                "Xeon Phi (paper IV-C, scaled /4 internally)\n");
    return 0;
}
