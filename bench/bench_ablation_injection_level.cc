/**
 * @file
 * Standalone shim for the registered 'ablation_injection_level' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_ablation_injection_level.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("ablation_injection_level", argc, argv);
}
