/**
 * @file
 * Paper Section V opening measurements: SDC : (crash + hang)
 * ratios per device, code and input size. Paper values for
 * comparison: DGEMM K40 1.1-4x (falling with input), Phi ~4x
 * flat; LavaMD K40 ~3x, Phi 3-12x (rising with input); HotSpot
 * K40 ~7x, Phi ~3x.
 */

#include <cmath>

#include "bench_util.hh"

using namespace radcrit;

namespace
{

/** SDC:(crash+hang) ratio cell; "n/a" when undefined. */
std::string
ratioCell(const CampaignResult &res, int digits)
{
    double ratio = res.sdcOverDetectable();
    return std::isnan(ratio) ? "n/a"
                             : TextTable::num(ratio, digits);
}

void
addRow(TextTable &table, const CampaignResult &res,
       const std::string &paper_band)
{
    table.addRow({res.deviceName, res.workloadName,
                  res.inputLabel,
                  TextTable::num(res.count(Outcome::Sdc)),
                  TextTable::num(res.count(Outcome::Crash)),
                  TextTable::num(res.count(Outcome::Hang)),
                  ratioCell(res, 2),
                  paper_band});
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliParser cli = figureCli("bench_sdc_crash_ratios", 300);
    cli.parse(argc, argv);
    benchInit(cli);
    auto runs = static_cast<uint64_t>(cli.getInt("runs"));
    bool csv = !cli.getFlag("no-csv");

    TextTable table("SDC : (crash + hang) ratios "
                    "(paper Section V)");
    table.setHeader({"device", "workload", "input", "SDC",
                     "crash", "hang", "SDC:det", "paper band"});

    std::vector<CampaignResult> all;
    for (DeviceId id : allDevices()) {
        DeviceModel device = makeDevice(id);
        bool k40 = id == DeviceId::K40;
        for (int64_t side : dgemmScaledSides(id)) {
            auto w = makeDgemmWorkload(device, side);
            auto res = runPaperCampaign(device, *w, runs);
            addRow(table, res,
                   k40 ? "1.1-4x, falls w/ input" : "~4x flat");
            all.push_back(std::move(res));
        }
        for (const auto &size : lavamdScaledSizes(id)) {
            auto w = makeLavamdWorkload(device, size);
            auto res = runPaperCampaign(device, *w, runs);
            addRow(table, res,
                   k40 ? "~3x" : "3-12x, rises w/ input");
            all.push_back(std::move(res));
        }
        {
            auto w = makeHotspotWorkload(device);
            auto res = runPaperCampaign(device, *w, runs);
            addRow(table, res, k40 ? "~7x" : "~3x");
            all.push_back(std::move(res));
        }
        table.addSeparator();
    }
    table.render(std::cout);

    if (csv) {
        std::string path = benchOutputDir() +
            "/sdc_crash_ratios.csv";
        CsvWriter w(path);
        w.writeRow({"device", "workload", "input", "sdc", "crash",
                    "hang", "masked", "ratio"});
        for (const auto &res : all) {
            w.writeRow({res.deviceName, res.workloadName,
                        res.inputLabel,
                        TextTable::num(res.count(Outcome::Sdc)),
                        TextTable::num(res.count(Outcome::Crash)),
                        TextTable::num(res.count(Outcome::Hang)),
                        TextTable::num(res.count(Outcome::Masked)),
                        ratioCell(res, 3)});
        }
        std::printf("[csv] %s\n", path.c_str());
    }
    writeBenchJson("bench_sdc_crash_ratios");
    return 0;
}
