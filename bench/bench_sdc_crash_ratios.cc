/**
 * @file
 * Standalone shim for the registered 'sdc_crash_ratios' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_sdc_crash_ratios.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("sdc_crash_ratios", argc, argv);
}
