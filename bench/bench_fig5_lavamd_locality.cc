/**
 * @file
 * Paper Fig. 5: LavaMD spatial locality and magnitude — relative
 * FIT per pattern (cubic/square/line/single/random), All vs > 2%.
 */

#include "bench_util.hh"

using namespace radcrit;

int
main(int argc, char **argv)
{
    CliParser cli = figureCli("bench_fig5_lavamd_locality");
    cli.parse(argc, argv);
    benchInit(cli);
    auto runs = static_cast<uint64_t>(cli.getInt("runs"));
    bool csv = !cli.getFlag("no-csv");

    for (DeviceId id : allDevices()) {
        DeviceModel device = makeDevice(id);
        std::vector<CampaignResult> results;
        for (const auto &size : lavamdScaledSizes(id)) {
            auto w = makeLavamdWorkload(device, size);
            results.push_back(runPaperCampaign(device, *w, runs));
        }
        std::string panel = id == DeviceId::K40 ? "(a) K40"
                                                : "(b) Xeon Phi";
        renderLocalityFigure(
            "Fig. 5" + panel +
            ": LavaMD spatial locality and magnitude [FIT a.u.]",
            results, patterns3d(),
            std::string("fig5_lavamd_locality_") + device.name +
            ".csv", csv);
        std::printf("\n");
    }
    writeBenchJson("bench_fig5_lavamd_locality");
    return 0;
}
