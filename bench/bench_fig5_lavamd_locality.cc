/**
 * @file
 * Standalone shim for the registered 'fig5_lavamd_locality' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_fig5_lavamd_locality.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("fig5_lavamd_locality", argc, argv);
}
