/**
 * @file
 * Standalone shim for the registered 'fig8_clamr_scatter' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_fig8_clamr_scatter.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("fig8_clamr_scatter", argc, argv);
}
