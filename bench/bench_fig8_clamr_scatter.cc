/**
 * @file
 * Paper Fig. 8: CLAMR mean relative error and incorrect elements
 * on the Xeon Phi (the paper has no K40 data: CLAMR is a LANL
 * proprietary workload targeted at Xeon-Phi-based Trinity).
 */

#include "bench_util.hh"

using namespace radcrit;

int
main(int argc, char **argv)
{
    CliParser cli = figureCli("bench_fig8_clamr_scatter", 150);
    cli.parse(argc, argv);
    benchInit(cli);
    auto runs = static_cast<uint64_t>(cli.getInt("runs"));
    bool csv = !cli.getFlag("no-csv");

    DeviceModel device = makeDevice(DeviceId::XeonPhi);
    auto w = makeClamrWorkload(device);
    std::vector<CampaignResult> results;
    results.push_back(runPaperCampaign(device, *w, runs));
    renderScatterFigure(
        "Fig. 8: CLAMR Mean relative error and Incorrect Elements"
        " (Xeon Phi)",
        results, 0.0, 100.0, "fig8_clamr_scatter.csv", csv);
    writeBenchJson("bench_fig8_clamr_scatter");
    return 0;
}
