/**
 * @file
 * Standalone shim for the registered 'fig4_lavamd_scatter' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_fig4_lavamd_scatter.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("fig4_lavamd_scatter", argc, argv);
}
