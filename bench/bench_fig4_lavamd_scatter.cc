/**
 * @file
 * Paper Fig. 4: LavaMD mean relative error vs. incorrect elements.
 * Mean relative errors >= 20,000% plot at 20,000% as in the paper.
 */

#include "bench_util.hh"

using namespace radcrit;

int
main(int argc, char **argv)
{
    CliParser cli = figureCli("bench_fig4_lavamd_scatter");
    cli.parse(argc, argv);
    benchInit(cli);
    auto runs = static_cast<uint64_t>(cli.getInt("runs"));
    bool csv = !cli.getFlag("no-csv");

    for (DeviceId id : allDevices()) {
        DeviceModel device = makeDevice(id);
        std::vector<CampaignResult> results;
        for (const auto &size : lavamdScaledSizes(id)) {
            auto w = makeLavamdWorkload(device, size);
            results.push_back(runPaperCampaign(device, *w, runs));
        }
        std::string panel = id == DeviceId::K40 ? "(a) K40"
                                                : "(b) Xeon Phi";
        renderScatterFigure(
            "Fig. 4" + panel +
            ": LavaMD Mean relative error and Incorrect Elements",
            results, 5000.0, 20000.0,
            std::string("fig4_lavamd_scatter_") + device.name +
            ".csv", csv);
        std::printf("\n");
    }
    writeBenchJson("bench_fig4_lavamd_scatter");
    return 0;
}
