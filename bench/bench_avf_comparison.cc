/**
 * @file
 * Standalone shim for the registered 'avf_comparison' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_avf_comparison.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("avf_comparison", argc, argv);
}
