/**
 * @file
 * Beam-vs-fault-injection comparison (paper Section IV-D): per-
 * resource AVFs from the campaigns, and the coverage a
 * SASSIFI/NVBitFI-style software injector (registers + memories
 * only) would achieve relative to the beam — quantifying why the
 * paper "take[s] advantage of the controlled neutron beam to
 * perform the error criticality analysis".
 */

#include "bench_util.hh"

#include "avf/avf.hh"
#include "kernels/dgemm.hh"
#include "kernels/hotspot.hh"
#include "kernels/lavamd.hh"

using namespace radcrit;

namespace
{

void
avfTable(const CampaignResult &res)
{
    TextTable table("Per-resource vulnerability factors: " +
                    res.deviceName + " / " + res.workloadName +
                    " " + res.inputLabel);
    table.setHeader({"resource", "injector?", "strikes",
                     "AVF(any)", "AVF(SDC)", "AVF(critical)"});
    for (const auto &r : computeAvf(res)) {
        table.addRow({resourceKindName(r.resource),
                      injectorAccessible(r.resource) ? "yes"
                                                     : "NO",
                      TextTable::num(r.strikes),
                      TextTable::num(r.avfAny, 2),
                      TextTable::num(r.avfSdc, 2),
                      TextTable::num(r.avfCritical, 2)});
    }
    table.render(std::cout);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliParser cli = figureCli("bench_avf_comparison", 400);
    cli.parse(argc, argv);
    benchInit(cli);
    auto runs = static_cast<uint64_t>(cli.getInt("runs"));

    TextTable coverage("Software-injector coverage of the "
                       "beam-observed behaviour (paper IV-D)");
    coverage.setHeader({"device", "workload", "strike cov.",
                        "SDC cov.", "critical cov.",
                        "crash/hang cov."});

    for (DeviceId id : allDevices()) {
        DeviceModel device = makeDevice(id);
        std::vector<std::unique_ptr<Workload>> workloads;
        workloads.push_back(makeDgemmWorkload(device, 256));
        workloads.push_back(makeLavamdWorkload(
            device, LavaMdSize{7, 15}));
        workloads.push_back(makeHotspotWorkload(device));
        for (auto &w : workloads) {
            CampaignResult res =
                runPaperCampaign(device, *w, runs);
            avfTable(res);
            std::printf("\n");
            InjectorCoverage cov = injectorCoverage(res);
            auto pct = [](double f) {
                return TextTable::num(100.0 * f, 0) + "%";
            };
            coverage.addRow({device.name, w->name(),
                             pct(cov.strikeCoverage),
                             pct(cov.sdcCoverage),
                             pct(cov.criticalFitCoverage),
                             pct(cov.detectableCoverage)});
        }
        coverage.addSeparator();
    }
    coverage.render(std::cout);
    std::printf("\nResources marked 'NO' (schedulers, "
                "dispatchers, execution-unit logic, control, "
                "interconnect) are invisible to software fault "
                "injectors — the coverage gaps above are the "
                "paper's argument for beam testing.\n");
    return 0;
}
