/**
 * @file
 * Standalone shim for the registered 'ablation_filter_threshold' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_ablation_filter_threshold.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("ablation_filter_threshold", argc, argv);
}
