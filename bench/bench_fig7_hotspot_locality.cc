/**
 * @file
 * Paper Fig. 7: HotSpot spatial locality and magnitude. Both
 * architectures present only square and line errors, and 80-95% of
 * faulty executions fall under the 2% filter.
 */

#include "bench_util.hh"

using namespace radcrit;

int
main(int argc, char **argv)
{
    CliParser cli = figureCli("bench_fig7_hotspot_locality");
    cli.parse(argc, argv);
    benchInit(cli);
    auto runs = static_cast<uint64_t>(cli.getInt("runs"));
    bool csv = !cli.getFlag("no-csv");

    for (DeviceId id : allDevices()) {
        DeviceModel device = makeDevice(id);
        auto w = makeHotspotWorkload(device);
        std::vector<CampaignResult> results;
        results.push_back(runPaperCampaign(device, *w, runs));
        std::string panel = id == DeviceId::K40 ? "(a) K40"
                                                : "(b) Xeon Phi";
        renderLocalityFigure(
            "Fig. 7" + panel +
            ": HotSpot spatial locality and magnitude [FIT a.u.]",
            results, patterns2d(),
            std::string("fig7_hotspot_locality_") + device.name +
            ".csv", csv);
        std::printf("filtered executions: %.0f%%\n\n",
                    100.0 * results[0].filteredOutFraction());
    }
    writeBenchJson("bench_fig7_hotspot_locality");
    return 0;
}
