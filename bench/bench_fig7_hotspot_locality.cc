/**
 * @file
 * Standalone shim for the registered 'fig7_hotspot_locality' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_fig7_hotspot_locality.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("fig7_hotspot_locality", argc, argv);
}
