/**
 * @file
 * Standalone shim for the registered 'fig1_setup' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_fig1_setup.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("fig1_setup", argc, argv);
}
