/**
 * @file
 * Standalone shim for the registered 'hardening' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_hardening.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("hardening", argc, argv);
}
