/**
 * @file
 * Selective-hardening study (paper Section VI future work): rank
 * each device/workload's resources by critical-FIT contribution,
 * then run the greedy advisor under an area budget and report how
 * much critical FIT targeted hardening removes.
 */

#include "bench_util.hh"

#include "harden/advisor.hh"
#include "harden/attribution.hh"
#include "kernels/dgemm.hh"
#include "kernels/lavamd.hh"

using namespace radcrit;

namespace
{

void
attributionTable(const DeviceModel &device, Workload &workload,
                 uint64_t runs)
{
    CampaignResult res = runPaperCampaign(device, workload, runs);
    auto attribution = attributeCriticality(res);
    TextTable table("Criticality attribution: " + device.name +
                    " / " + workload.name() + " " +
                    workload.inputLabel());
    table.setHeader({"resource", "weight%", "strikes", "SDC",
                     "critical", "crash+hang", "criticalFIT"});
    for (const auto &r : attribution) {
        table.addRow({resourceKindName(r.resource),
                      TextTable::num(100.0 * r.weightShare, 1),
                      TextTable::num(r.strikes),
                      TextTable::num(r.sdcRuns),
                      TextTable::num(r.criticalRuns),
                      TextTable::num(r.detectableRuns),
                      TextTable::num(r.criticalFitAu, 2)});
    }
    table.render(std::cout);
    std::printf("\n");
}

void
advisorStudy(const DeviceModel &device, double budget,
             uint64_t runs)
{
    WorkloadFactory factory = [](const DeviceModel &d) {
        return std::make_unique<Dgemm>(d, 256, 42);
    };
    auto plan = advise(device, factory, budget, runs, 77);
    TextTable table("Greedy hardening plan: " + device.name +
                    " / DGEMM, budget " +
                    TextTable::num(budget, 0) + "% area");
    table.setHeader({"step", "technique", "cost%", "cum%",
                     "criticalFIT before", "after", "gain"});
    int step_no = 1;
    for (const auto &step : plan) {
        table.addRow({
            TextTable::num(static_cast<int64_t>(step_no++)),
            step.option.technique,
            TextTable::num(step.option.areaCostPct, 1),
            TextTable::num(step.cumulativeCostPct, 1),
            TextTable::num(step.fitBefore, 2),
            TextTable::num(step.fitAfter, 2),
            TextTable::num(100.0 * (1.0 - step.fitAfter /
                                    step.fitBefore), 0) + "%"});
    }
    table.render(std::cout);
    if (!plan.empty()) {
        std::printf("total: %.1f%% area removes %.0f%% of "
                    "critical FIT\n\n",
                    plan.back().cumulativeCostPct,
                    100.0 * (1.0 - plan.back().fitAfter /
                             plan.front().fitBefore));
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CliParser cli = figureCli("bench_hardening", 300);
    cli.addDouble("budget", 12.0, "area budget in percent");
    cli.parse(argc, argv);
    benchInit(cli);
    auto runs = static_cast<uint64_t>(cli.getInt("runs"));
    double budget = cli.getDouble("budget");

    for (DeviceId id : allDevices()) {
        DeviceModel device = makeDevice(id);
        Dgemm dgemm(device, 256, 42);
        attributionTable(device, dgemm, runs);
        LavaMd lavamd(device, 7, 42, 2, 4, 15);
        attributionTable(device, lavamd, runs);
    }
    for (DeviceId id : allDevices())
        advisorStudy(makeDevice(id), budget, runs);
    return 0;
}
