/**
 * @file
 * Standalone shim for the registered 'calibration' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_calibration.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("calibration", argc, argv);
}
