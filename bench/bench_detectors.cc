/**
 * @file
 * Standalone shim for the registered 'detectors' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_detectors.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("detectors", argc, argv);
}
