/**
 * @file
 * Paper Fig. 9: CLAMR error locality map — the output as a 2D
 * matrix with corrupted elements marked, showing the wave of
 * incorrect elements propagating from the strike site. Renders in
 * ASCII and writes a full-resolution PPM (red dots, as in the
 * paper's figure).
 */

#include "bench_util.hh"

#include "common/rng.hh"
#include "kernels/clamr.hh"
#include "metrics/locality_map.hh"
#include "sim/sampler.hh"

using namespace radcrit;

int
main(int argc, char **argv)
{
    CliParser cli("bench_fig9_clamr_map");
    cli.addInt("seed", 2017, "strike selection seed");
    cli.addDouble("time", 0.78,
                  "strike time as a fraction of the run");
    cli.parse(argc, argv);

    DeviceModel device = makeDevice(DeviceId::XeonPhi);
    Clamr clamr(device, clamrScaledGrid());

    // One representative faulty run: a garbled update chunk in the
    // middle of the simulation, as in the paper's example map.
    Strike strike;
    strike.resource = ResourceKind::Fpu;
    strike.manifestation = Manifestation::WrongOperation;
    strike.timeFraction = cli.getDouble("time");
    strike.entropy = static_cast<uint64_t>(cli.getInt("seed"));
    Rng rng(strike.entropy);
    SdcRecord rec = clamr.inject(strike, rng);

    std::printf("Fig. 9: CLAMR Error Locality Map "
                "(%zu incorrect elements, pattern %s)\n",
                rec.numIncorrect(),
                patternName(classifyLocality(rec)));
    LocalityMap map(rec);
    map.renderAscii(std::cout, 64);
    std::string ppm = benchOutputDir() + "/fig9_clamr_map.ppm";
    map.writePpm(ppm);
    std::printf("[ppm] %s\n", ppm.c_str());
    writeBenchJson("bench_fig9_clamr_map");
    return 0;
}
