/**
 * @file
 * Standalone shim for the registered 'fig9_clamr_map' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_fig9_clamr_map.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("fig9_clamr_map", argc, argv);
}
