/**
 * @file
 * Standalone shim for the registered 'kernel_throughput' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_kernel_throughput.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("kernel_throughput", argc, argv);
}
