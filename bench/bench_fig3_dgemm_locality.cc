/**
 * @file
 * Paper Fig. 3: DGEMM spatial locality and magnitude — relative
 * FIT broken down by error pattern, per input size, All vs > 2%.
 * The paper notes the Phi shows no sub-2% errors, so its filtered
 * bars coincide with the All bars.
 */

#include "bench_util.hh"

using namespace radcrit;

int
main(int argc, char **argv)
{
    CliParser cli = figureCli("bench_fig3_dgemm_locality");
    cli.parse(argc, argv);
    benchInit(cli);
    auto runs = static_cast<uint64_t>(cli.getInt("runs"));
    bool csv = !cli.getFlag("no-csv");

    for (DeviceId id : allDevices()) {
        DeviceModel device = makeDevice(id);
        std::vector<CampaignResult> results;
        for (int64_t side : dgemmScaledSides(id)) {
            auto w = makeDgemmWorkload(device, side);
            results.push_back(runPaperCampaign(device, *w, runs));
        }
        std::string panel = id == DeviceId::K40 ? "(a) K40"
                                                : "(b) Xeon Phi";
        renderLocalityFigure(
            "Fig. 3" + panel +
            ": DGEMM spatial locality and magnitude [FIT a.u.]",
            results, patterns2d(),
            std::string("fig3_dgemm_locality_") + device.name +
            ".csv", csv);
        std::printf("\n");
    }
    writeBenchJson("bench_fig3_dgemm_locality");
    return 0;
}
