/**
 * @file
 * Standalone shim for the registered 'fig3_dgemm_locality' experiment; the
 * whole implementation lives in
 * src/suite/experiments/exp_fig3_dgemm_locality.cc.
 */

#include "suite/driver.hh"

int
main(int argc, char **argv)
{
    return radcrit::experimentShimMain("fig3_dgemm_locality", argc, argv);
}
