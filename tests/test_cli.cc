/**
 * @file
 * Tests for the command-line option parser.
 */

#include <gtest/gtest.h>

#include "common/cli.hh"

namespace radcrit
{
namespace
{

TEST(CliTest, DefaultsApply)
{
    CliParser cli("prog");
    cli.addInt("n", 7, "count");
    cli.addString("name", "abc", "name");
    cli.addDouble("x", 1.5, "x");
    cli.addFlag("fast", "go fast");
    const char *argv[] = {"prog"};
    cli.parse(1, argv);
    EXPECT_EQ(cli.getInt("n"), 7);
    EXPECT_EQ(cli.getString("name"), "abc");
    EXPECT_DOUBLE_EQ(cli.getDouble("x"), 1.5);
    EXPECT_FALSE(cli.getFlag("fast"));
}

TEST(CliTest, EqualsForm)
{
    CliParser cli("prog");
    cli.addInt("n", 0, "");
    const char *argv[] = {"prog", "--n=42"};
    cli.parse(2, argv);
    EXPECT_EQ(cli.getInt("n"), 42);
}

TEST(CliTest, SpaceForm)
{
    CliParser cli("prog");
    cli.addString("s", "", "");
    const char *argv[] = {"prog", "--s", "hello"};
    cli.parse(3, argv);
    EXPECT_EQ(cli.getString("s"), "hello");
}

TEST(CliTest, FlagPresence)
{
    CliParser cli("prog");
    cli.addFlag("v", "");
    const char *argv[] = {"prog", "--v"};
    cli.parse(2, argv);
    EXPECT_TRUE(cli.getFlag("v"));
}

TEST(CliTest, PositionalCollected)
{
    CliParser cli("prog");
    cli.addFlag("v", "");
    const char *argv[] = {"prog", "input.txt", "--v", "more"};
    cli.parse(4, argv);
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "input.txt");
    EXPECT_EQ(cli.positional()[1], "more");
}

TEST(CliTest, NegativeNumbers)
{
    CliParser cli("prog");
    cli.addInt("n", 0, "");
    cli.addDouble("x", 0.0, "");
    const char *argv[] = {"prog", "--n=-3", "--x=-2.5"};
    cli.parse(3, argv);
    EXPECT_EQ(cli.getInt("n"), -3);
    EXPECT_DOUBLE_EQ(cli.getDouble("x"), -2.5);
}

TEST(CliTest, UsageMentionsOptions)
{
    CliParser cli("prog");
    cli.addInt("runs", 5, "number of runs");
    std::string u = cli.usage();
    EXPECT_NE(u.find("--runs"), std::string::npos);
    EXPECT_NE(u.find("number of runs"), std::string::npos);
    EXPECT_NE(u.find("default: 5"), std::string::npos);
}

TEST(CliDeathTest, UnknownOptionFatal)
{
    CliParser cli("prog");
    const char *argv[] = {"prog", "--nope"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "unknown option");
}

TEST(CliDeathTest, BadIntFatal)
{
    CliParser cli("prog");
    cli.addInt("n", 0, "");
    const char *argv[] = {"prog", "--n=abc"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "expects an integer");
}

TEST(CliDeathTest, MissingValueFatal)
{
    CliParser cli("prog");
    cli.addInt("n", 0, "");
    const char *argv[] = {"prog", "--n"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "requires a value");
}

TEST(CliDeathTest, FlagWithValueFatal)
{
    CliParser cli("prog");
    cli.addFlag("v", "");
    const char *argv[] = {"prog", "--v=1"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "does not take a value");
}

} // anonymous namespace
} // namespace radcrit
