/**
 * @file
 * Tests for strike/outcome plumbing and manifestation names.
 */

#include <gtest/gtest.h>

#include "arch/manifestation.hh"
#include "sim/fault.hh"

namespace radcrit
{
namespace
{

TEST(FaultTest, OutcomeNames)
{
    EXPECT_STREQ(outcomeName(Outcome::Masked), "Masked");
    EXPECT_STREQ(outcomeName(Outcome::Sdc), "SDC");
    EXPECT_STREQ(outcomeName(Outcome::Crash), "Crash");
    EXPECT_STREQ(outcomeName(Outcome::Hang), "Hang");
    EXPECT_STREQ(outcomeName(Outcome::InfraError),
                 "infra_error");
    EXPECT_STREQ(outcomeName(Outcome::InfraTimeout),
                 "infra_timeout");
}

TEST(FaultTest, ManifestationNamesUnique)
{
    std::set<std::string> names;
    for (size_t i = 0; i < numManifestations; ++i)
        names.insert(manifestationName(
            static_cast<Manifestation>(i)));
    EXPECT_EQ(names.size(), numManifestations);
}

TEST(FaultTest, StrikeDefaults)
{
    Strike s;
    EXPECT_EQ(s.resource, ResourceKind::RegisterFile);
    EXPECT_EQ(s.manifestation, Manifestation::BitFlipValue);
    EXPECT_EQ(s.burstBits, 1u);
    EXPECT_DOUBLE_EQ(s.timeFraction, 0.0);
}

TEST(FaultTest, OutcomeCount)
{
    EXPECT_EQ(numOutcomes, 6u);
}

} // anonymous namespace
} // namespace radcrit
