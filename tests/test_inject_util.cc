/**
 * @file
 * Tests for the bit-flip and garbage-value helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.hh"
#include "kernels/inject_util.hh"

namespace radcrit
{
namespace
{

uint64_t
bitsOf(double v)
{
    uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

uint32_t
bitsOf(float v)
{
    uint32_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

TEST(FlipBitsTest, FlipsExactCount)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        double v = rng.uniform(-10.0, 10.0);
        for (uint32_t k : {1u, 2u, 3u}) {
            double f = flipBits(v, k, rng);
            EXPECT_EQ(std::popcount(bitsOf(v) ^ bitsOf(f)), k);
        }
    }
}

TEST(FlipBitsTest, BoundedStaysInMantissa)
{
    Rng rng(2);
    for (int i = 0; i < 500; ++i) {
        double v = 323.25;
        double f = flipBitsBounded(v, 1, 51, rng);
        uint64_t diff = bitsOf(v) ^ bitsOf(f);
        EXPECT_EQ(std::popcount(diff), 1);
        // Bit index below 52: value changes by < 1 ulp * 2^52.
        EXPECT_LT(diff, 1ULL << 52);
        // Mantissa-only flips keep sign and exponent: the value
        // stays within a factor of 2.
        EXPECT_GT(f, v / 2.0);
        EXPECT_LT(f, v * 2.0);
    }
}

TEST(FlipBitsTest, FloatVariants)
{
    Rng rng(3);
    float v = 1.5f;
    float f = flipBitsFloat(v, 2, rng);
    EXPECT_EQ(std::popcount(bitsOf(v) ^ bitsOf(f)), 2);
    float b = flipBitsFloatBounded(v, 1, 22, rng);
    EXPECT_LT(bitsOf(v) ^ bitsOf(b), 1u << 23);
}

TEST(FlipBitsTest, BurstLargerThanRangeClamped)
{
    Rng rng(4);
    // Requesting 10 bits in a 3-bit range flips all 3.
    double f = flipBitsBounded(1.0, 10, 2, rng);
    uint64_t diff = bitsOf(1.0) ^ bitsOf(f);
    EXPECT_EQ(std::popcount(diff), 3);
    EXPECT_LT(diff, 8u);
}

TEST(FlipBitsTest, DoubleFlipRestores)
{
    // Flipping the same deterministic mask twice restores the
    // value; here we check flip is an involution on the bit level
    // by applying XOR of the observed diff.
    Rng rng(5);
    double v = -7.25;
    double f = flipBits(v, 3, rng);
    uint64_t diff = bitsOf(v) ^ bitsOf(f);
    uint64_t back = bitsOf(f) ^ diff;
    double restored;
    std::memcpy(&restored, &back, sizeof(restored));
    EXPECT_EQ(bitsOf(restored), bitsOf(v));
}

TEST(GarbageValueTest, SpansDecadesAndSigns)
{
    Rng rng(6);
    int negative = 0;
    double min_mag = 1e300, max_mag = 0.0;
    for (int i = 0; i < 5000; ++i) {
        double g = garbageValue(1.0, rng);
        negative += g < 0.0;
        min_mag = std::min(min_mag, std::abs(g));
        max_mag = std::max(max_mag, std::abs(g));
    }
    EXPECT_NEAR(negative / 5000.0, 0.5, 0.05);
    EXPECT_LT(min_mag, 1e-2);
    EXPECT_GT(max_mag, 1e7);
}

TEST(GarbageValueTest, ScalesWithReference)
{
    Rng a(7), b(7);
    double g1 = garbageValue(1.0, a);
    double g2 = garbageValue(100.0, b);
    EXPECT_NEAR(g2 / g1, 100.0, 1e-9);
}

TEST(GarbageValueTest, NonPositiveReferenceDefaults)
{
    Rng rng(8);
    double g = garbageValue(0.0, rng);
    EXPECT_TRUE(std::isfinite(g));
    EXPECT_NE(g, 0.0);
}

TEST(SkewedValueTest, StaysSameOrderOfMagnitude)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double s = skewedValue(10.0, 10.0, rng);
        EXPECT_LT(std::abs(s), 100.0);
    }
}

} // anonymous namespace
} // namespace radcrit
