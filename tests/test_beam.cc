/**
 * @file
 * Tests for the beam facility model (paper Section IV-D).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "sim/beam.hh"

namespace radcrit
{
namespace
{

TEST(BeamTest, AccelerationFactorOrders)
{
    // Paper: LANSCE/ISIS flux is 6 to 8 orders of magnitude above
    // the 13 n/(cm^2 h) terrestrial flux.
    BeamFacility isis;
    isis.fluxPerCm2s = 1e5;
    BeamFacility lansce;
    lansce.fluxPerCm2s = 2.5e6;
    EXPECT_GT(isis.accelerationFactor(), 1e6);
    EXPECT_LT(lansce.accelerationFactor(), 1e9);
}

TEST(BeamTest, SpotArea)
{
    BeamFacility f;
    f.spotDiameterInch = 2.0;
    // 2-inch circle: pi * (2.54)^2 cm^2.
    EXPECT_NEAR(f.spotAreaCm2(), M_PI * 2.54 * 2.54, 1e-9);
}

TEST(BeamTest, PaperSetupHasFourBoards)
{
    BeamFacility f = makePaperSetup();
    ASSERT_EQ(f.boards.size(), 4u);
    // De-rating decreases with distance.
    for (size_t i = 1; i < f.boards.size(); ++i) {
        EXPECT_GT(f.boards[i].distanceM,
                  f.boards[i - 1].distanceM);
        EXPECT_LT(f.boards[i].derating,
                  f.boards[i - 1].derating);
    }
}

TEST(BeamTest, EquivalentNaturalHours)
{
    // Paper: >= 8e8 natural hours from the campaigns, about
    // 91,000 years.
    BeamFacility f;
    f.fluxPerCm2s = 1e6;
    BeamExposure exp(f, 1.0, 60.0);
    double natural = exp.equivalentNaturalHours(800.0);
    EXPECT_GT(natural, 8e8);
}

TEST(BeamTest, SingleStrikeRule)
{
    BeamFacility f;
    f.fluxPerCm2s = 1e6;
    BeamExposure exp(f, 1.0, 1.0); // 1 s runs
    // Cross-section tuned so errors/run < 1e-3 passes the rule.
    EXPECT_TRUE(exp.honoursSingleStrikeRule(1e-10, 1.0));
    EXPECT_FALSE(exp.honoursSingleStrikeRule(1e-8, 1.0));
}

TEST(BeamTest, StrikeCountsArePoisson)
{
    BeamFacility f;
    f.fluxPerCm2s = 1e6;
    BeamExposure exp(f, 1.0, 1.0);
    double upsets_per_fluence = 2e-6; // 2 strikes per run expected
    Rng rng(9);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(
            exp.sampleStrikes(upsets_per_fluence, rng));
    EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(BeamTest, FitScalesWithErrorsAndTime)
{
    BeamFacility f;
    f.fluxPerCm2s = 1e6;
    BeamExposure exp(f, 1.0, 60.0);
    double fit1 = exp.fitAtSeaLevel(10.0, 100.0);
    EXPECT_DOUBLE_EQ(exp.fitAtSeaLevel(20.0, 100.0), 2.0 * fit1);
    EXPECT_DOUBLE_EQ(exp.fitAtSeaLevel(10.0, 200.0), 0.5 * fit1);
}

TEST(BeamTest, FitFormula)
{
    BeamFacility f;
    f.fluxPerCm2s = 1e6;
    BeamExposure exp(f, 1.0, 60.0);
    // errors / fluence * natural flux * 1e9:
    // 1 error over 1 h = 3.6e9 n/cm^2 -> 13/3.6e9 * 1e9.
    EXPECT_NEAR(exp.fitAtSeaLevel(1.0, 1.0),
                13.0 / 3.6e9 * 1e9, 1e-6);
}

TEST(BeamDeathTest, InvalidConfigFatal)
{
    BeamFacility f;
    EXPECT_EXIT(BeamExposure(f, 0.0, 1.0),
                ::testing::ExitedWithCode(1), "cross-section");
    EXPECT_EXIT(BeamExposure(f, 1.0, 0.0),
                ::testing::ExitedWithCode(1), "run time");
}

} // anonymous namespace
} // namespace radcrit
