/**
 * @file
 * Tests for the CSV writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hh"

namespace radcrit
{
namespace
{

std::string
readAll(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

class CsvTest : public ::testing::Test
{
  protected:
    std::string path_ = ::testing::TempDir() + "radcrit_csv_test.csv";

    void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesRows)
{
    {
        CsvWriter w(path_);
        w.writeRow({"a", "b"});
        w.writeRow({"1", "2"});
    }
    EXPECT_EQ(readAll(path_), "a,b\n1,2\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters)
{
    {
        CsvWriter w(path_);
        w.writeRow({"a,b", "he said \"hi\"", "line\nbreak"});
    }
    EXPECT_EQ(readAll(path_),
              "\"a,b\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvEscapeTest, PlainFieldUntouched)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(CsvEscapeTest, CommaQuoted)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuoteDoubled)
{
    EXPECT_EQ(CsvWriter::escape("\""), "\"\"\"\"");
}

TEST(CsvDeathTest, BadPathIsFatal)
{
    EXPECT_EXIT(CsvWriter("/nonexistent-dir/x.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // anonymous namespace
} // namespace radcrit
