/**
 * @file
 * Tests for the streaming campaign pipeline: the RunBatch /
 * RawSink / RawSource seam, the batched engine delivery contract,
 * the incremental beam-log reader/writer, the streaming store
 * load/save, the mergeable AnalysisAccumulator, and the proc.mem
 * gauges. The load-bearing property throughout: stream ==
 * materialized, byte for byte.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "campaign/analysis.hh"
#include "campaign/runner.hh"
#include "campaign/store.hh"
#include "campaign/stream.hh"
#include "kernels/dgemm.hh"
#include "logs/beamlog.hh"
#include "obs/procmem.hh"
#include "obs/stats_registry.hh"

namespace radcrit
{
namespace
{

/** Records the delivery shape a producer drives into it. */
class ProbeSink : public RawSink
{
  public:
    void
    begin(const CampaignMeta &meta) override
    {
        ++begins;
        meta_ = meta;
    }

    void
    consume(RunBatch &&batch) override
    {
        firstIndices.push_back(batch.firstIndex);
        sizes.push_back(batch.runs.size());
        for (size_t i = 0; i < batch.runs.size(); ++i)
            indexOk = indexOk &&
                batch.runs[i].index == batch.firstIndex + i;
    }

    void
    end(const StatsSnapshot &simStats) override
    {
        ++ends;
        stats = simStats;
    }

    const CampaignMeta &meta() const { return meta_; }

    int begins = 0;
    int ends = 0;
    bool indexOk = true;
    std::vector<uint64_t> firstIndices;
    std::vector<size_t> sizes;
    StatsSnapshot stats;

  private:
    CampaignMeta meta_;
};

class StreamTest : public ::testing::Test
{
  protected:
    DeviceModel device_ = makeK40();
    Dgemm dgemm_{device_, 64, 42};

    CampaignRaw
    campaign(uint64_t runs = 60, uint64_t batch_runs = 0)
    {
        SimConfig cfg;
        cfg.faultyRuns = runs;
        cfg.seed = 11;
        cfg.batchRuns = batch_runs;
        return simulateCampaign(device_, dgemm_, cfg);
    }

    static void
    expectSameAnalysis(const CampaignResult &a,
                       const CampaignResult &b)
    {
        ASSERT_EQ(a.runs.size(), b.runs.size());
        for (size_t i = 0; i < a.runs.size(); ++i) {
            EXPECT_EQ(a.runs[i].index, b.runs[i].index);
            EXPECT_EQ(a.runs[i].outcome, b.runs[i].outcome);
            EXPECT_EQ(a.runs[i].crit.numIncorrect,
                      b.runs[i].crit.numIncorrect);
            EXPECT_EQ(a.runs[i].crit.meanRelErrPct,
                      b.runs[i].crit.meanRelErrPct);
            EXPECT_EQ(a.runs[i].crit.pattern,
                      b.runs[i].crit.pattern);
        }
        EXPECT_EQ(a.fitTotalAu(false), b.fitTotalAu(false));
        EXPECT_EQ(a.fitTotalAu(true), b.fitTotalAu(true));
    }
};

TEST_F(StreamTest, CampaignRawSourceSlicesContiguously)
{
    CampaignRaw raw = campaign(10);
    CampaignRawSource source(raw, 3);
    ProbeSink probe;
    EXPECT_EQ(pumpRaw(source, probe), 10u);
    EXPECT_EQ(probe.begins, 1);
    EXPECT_EQ(probe.ends, 1);
    EXPECT_TRUE(probe.indexOk);
    EXPECT_EQ(probe.sizes,
              (std::vector<size_t>{3, 3, 3, 1}));
    EXPECT_EQ(probe.firstIndices,
              (std::vector<uint64_t>{0, 3, 6, 9}));
    EXPECT_EQ(probe.meta().deviceName, raw.deviceName);
    EXPECT_EQ(probe.meta().sim.faultyRuns, raw.sim.faultyRuns);
}

TEST_F(StreamTest, ZeroBatchRunsMeansOneBatch)
{
    CampaignRaw raw = campaign(10);
    CampaignRawSource source(raw, 0);
    ProbeSink probe;
    pumpRaw(source, probe);
    EXPECT_EQ(probe.sizes, (std::vector<size_t>{10}));
}

TEST_F(StreamTest, CollectRoundTripReproducesRaw)
{
    CampaignRaw raw = campaign(20);
    CampaignRawSource source(raw, 7);
    CollectRawSink collect;
    pumpRaw(source, collect);
    CampaignRaw back = collect.take();

    std::stringstream a, b;
    writeBeamLog(raw, a);
    writeBeamLog(back, b);
    EXPECT_EQ(a.str(), b.str());
}

TEST_F(StreamTest, TeeDeliversToEverySink)
{
    CampaignRaw raw = campaign(12);
    CampaignRawSource source(raw, 5);
    ProbeSink first;
    CollectRawSink second;
    TeeRawSink tee({&first, &second});
    pumpRaw(source, tee);
    EXPECT_EQ(first.begins, 1);
    EXPECT_EQ(first.ends, 1);
    EXPECT_EQ(first.sizes, (std::vector<size_t>{5, 5, 2}));
    EXPECT_EQ(second.raw().runs.size(), 12u);
}

TEST_F(StreamTest, EngineDeliversContiguousBatches)
{
    SimConfig cfg;
    cfg.faultyRuns = 25;
    cfg.seed = 11;
    cfg.batchRuns = 8;
    ProbeSink probe;
    simulateCampaignStream(device_, dgemm_, cfg, probe);
    EXPECT_EQ(probe.begins, 1);
    EXPECT_EQ(probe.ends, 1);
    EXPECT_TRUE(probe.indexOk);
    EXPECT_EQ(probe.sizes, (std::vector<size_t>{8, 8, 8, 1}));
    EXPECT_EQ(probe.firstIndices,
              (std::vector<uint64_t>{0, 8, 16, 24}));
    // end() carries the same simulation telemetry the materialized
    // path stores in CampaignRaw::stats.
    EXPECT_GT(probe.stats.entries.size(), 0u);
}

TEST_F(StreamTest, BatchedEngineIsByteIdentical)
{
    CampaignRaw whole = campaign(40, 0);
    for (uint64_t batch : {1, 7, 40, 1000}) {
        CampaignRaw sliced = campaign(40, batch);
        std::stringstream a, b;
        writeBeamLog(whole, a);
        writeBeamLog(sliced, b);
        EXPECT_EQ(a.str(), b.str()) << "batchRuns=" << batch;
        expectSameAnalysis(analyzeCampaign(whole, {}),
                           analyzeCampaign(sliced, {}));
    }
}

TEST_F(StreamTest, IncrementalWriterMatchesWriteBeamLog)
{
    CampaignRaw raw = campaign(15);
    std::stringstream whole;
    writeBeamLog(raw, whole);

    std::stringstream incremental;
    BeamLogWriter writer(incremental);
    writer.header(raw.deviceName, raw.workloadName, raw.inputLabel,
                  raw.sim.seed, raw.runs.size(),
                  raw.sensitiveAreaAu);
    for (const RawRun &run : raw.runs)
        writer.append(run);
    EXPECT_EQ(writer.appended(), raw.runs.size());
    EXPECT_EQ(whole.str(), incremental.str());
}

TEST_F(StreamTest, IncrementalReaderMatchesReadBeamLog)
{
    CampaignRaw raw = campaign(15);
    std::stringstream ss;
    writeBeamLog(raw, ss);
    CampaignRaw whole = readBeamLog(ss);

    std::stringstream again;
    writeBeamLog(raw, again);
    BeamLogReader reader(again);
    EXPECT_EQ(reader.device(), raw.deviceName);
    EXPECT_EQ(reader.declaredRuns(), raw.runs.size());
    size_t i = 0;
    while (auto run = reader.next()) {
        ASSERT_LT(i, whole.runs.size());
        EXPECT_EQ(run->index, whole.runs[i].index);
        EXPECT_EQ(run->outcome, whole.runs[i].outcome);
        EXPECT_EQ(run->strike.timeFraction,
                  whole.runs[i].strike.timeFraction);
        EXPECT_EQ(run->record.numIncorrect(),
                  whole.runs[i].record.numIncorrect());
        ++i;
    }
    EXPECT_EQ(i, whole.runs.size());
    EXPECT_EQ(reader.read(), whole.runs.size());
}

TEST_F(StreamTest, ReaderRejectsMissingHeader)
{
    std::stringstream ss("#RUN 0 L1Cache BitFlipValue 0.5 1 "
                         "Masked\n");
    EXPECT_THROW(BeamLogReader reader(ss), BeamLogParseError);
}

TEST_F(StreamTest, ReaderRejectsTruncatedAndMiscountedLogs)
{
    CampaignRaw raw = campaign(6);
    std::stringstream ss;
    writeBeamLog(raw, ss);
    std::string text = ss.str();

    // Truncated inside the final run record.
    std::string truncated =
        text.substr(0, text.rfind("#END"));
    truncated = truncated.substr(0, truncated.size() - 1);
    std::stringstream tin(truncated);
    BeamLogReader treader(tin);
    EXPECT_THROW(
        {
            while (treader.next())
                ;
        },
        BeamLogParseError);

    // Complete records but fewer than the header declares.
    size_t last_run = text.rfind("#RUN");
    std::string short_log = text.substr(0, last_run);
    std::stringstream sin(short_log);
    BeamLogReader sreader(sin);
    EXPECT_THROW(
        {
            while (sreader.next())
                ;
        },
        BeamLogParseError);
}

TEST_F(StreamTest, BeamLogSinkAndSourceRoundTripBytes)
{
    CampaignRaw raw = campaign(20);
    std::stringstream original;
    writeBeamLog(raw, original);

    // Stream the log through source -> sink and compare bytes.
    std::stringstream in(original.str());
    BeamLogSource source(in, 6);
    std::stringstream out;
    BeamLogSink sink(out);
    EXPECT_EQ(pumpRaw(source, sink), raw.runs.size());
    EXPECT_EQ(sink.written(), raw.runs.size());
    EXPECT_EQ(original.str(), out.str());
}

TEST_F(StreamTest, AccumulatorMergeMatchesWholeAnalysis)
{
    CampaignRaw raw = campaign(30);
    AnalysisConfig acfg;
    CampaignResult whole = analyzeCampaign(raw, acfg);

    CampaignMeta meta = campaignMeta(raw);
    AnalysisAccumulator front(meta, acfg);
    AnalysisAccumulator back(meta, acfg);
    for (size_t i = 0; i < raw.runs.size(); ++i)
        (i < 13 ? front : back).fold(raw.runs[i]);
    front.merge(std::move(back));
    EXPECT_EQ(front.folded(), raw.runs.size());
    CampaignResult merged = front.finish(raw.stats);
    expectSameAnalysis(whole, merged);
}

TEST_F(StreamTest, AnalyzeCampaignStreamMatchesMaterialized)
{
    CampaignRaw raw = campaign(30);
    AnalysisConfig acfg;
    acfg.filterThresholdPct = 5.0;
    CampaignResult whole = analyzeCampaign(raw, acfg);
    for (uint64_t batch : {1, 4, 30, 100}) {
        CampaignRawSource source(raw, batch);
        CampaignResult streamed =
            analyzeCampaignStream(source, acfg);
        expectSameAnalysis(whole, streamed);
    }
}

class StreamStoreTest : public StreamTest
{
  protected:
    void
    SetUp() override
    {
        const auto *info = ::testing::UnitTest::GetInstance()
                               ->current_test_info();
        dir_ = ::testing::TempDir() + "radcrit_stream_" +
            info->name();
        std::filesystem::remove_all(dir_);
    }

    void TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    std::string dir_;
};

TEST_F(StreamStoreTest, LoadStreamMatchesMaterializedLoad)
{
    auto store = CampaignStore::open(dir_);
    CampaignRaw raw = campaign(25);
    store->save(raw);

    CollectRawSink collect;
    ASSERT_TRUE(store->loadStream(campaignKey(raw), raw.launch,
                                  collect, 7));
    CampaignRaw streamed = collect.take();
    EXPECT_EQ(streamed.runs.size(), raw.runs.size());
    EXPECT_EQ(streamed.deviceName, raw.deviceName);

    std::stringstream a, b;
    writeBeamLog(raw, a);
    writeBeamLog(streamed, b);
    EXPECT_EQ(a.str(), b.str());
    // The rebuilt stats must count every run, like load()'s
    // rebuildSimStats.
    EXPECT_GT(streamed.stats.entries.size(), 0u);
    expectSameAnalysis(analyzeCampaign(raw, {}),
                       analyzeCampaign(streamed, {}));
}

TEST_F(StreamStoreTest, LoadStreamMissLeavesSinkUntouched)
{
    auto store = CampaignStore::open(dir_);
    CampaignRaw raw = campaign(10);
    ProbeSink probe;
    EXPECT_FALSE(store->loadStream(campaignKey(raw), raw.launch,
                                   probe, 4));
    EXPECT_EQ(probe.begins, 0);
    EXPECT_EQ(probe.ends, 0);
}

TEST_F(StreamStoreTest, CorruptEntryIsQuarantinedBeforeSink)
{
    auto store = CampaignStore::open(dir_);
    CampaignRaw raw = campaign(10);
    store->save(raw);

    // Truncate the entry mid-record: validation must fail before
    // the sink consumes anything.
    std::string path = store->pathFor(campaignKey(raw));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    in.close();
    std::string text = buf.str();
    std::ofstream out(path, std::ios::trunc);
    out << text.substr(0, text.size() / 2);
    out.close();

    ProbeSink probe;
    EXPECT_FALSE(store->loadStream(campaignKey(raw), raw.launch,
                                   probe, 4));
    EXPECT_EQ(probe.begins, 0);
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(StreamStoreTest, SaveSinkWritesLoadableEntry)
{
    auto store = CampaignStore::open(dir_);
    CampaignRaw raw = campaign(18);

    auto sink = store->saveSink();
    CampaignRawSource source(raw, 5);
    pumpRaw(source, *sink);

    std::optional<CampaignRaw> back =
        store->load(campaignKey(raw));
    ASSERT_TRUE(back.has_value());
    std::stringstream a, b;
    writeBeamLog(raw, a);
    writeBeamLog(*back, b);
    EXPECT_EQ(a.str(), b.str());
}

TEST_F(StreamStoreTest, SimulateOrLoadStreamHitAndMissAgree)
{
    auto store = CampaignStore::open(dir_);
    SimConfig cfg;
    cfg.faultyRuns = 20;
    cfg.seed = 11;
    cfg.batchRuns = 6;

    CollectRawSink miss;
    simulateOrLoadStream(device_, dgemm_, cfg, store.get(), miss);
    EXPECT_EQ(store->hits(), 0u);
    CampaignRaw simulated = miss.take();

    CollectRawSink hit;
    simulateOrLoadStream(device_, dgemm_, cfg, store.get(), hit);
    EXPECT_EQ(store->hits(), 1u);
    CampaignRaw loaded = hit.take();

    std::stringstream a, b;
    writeBeamLog(simulated, a);
    writeBeamLog(loaded, b);
    EXPECT_EQ(a.str(), b.str());
    expectSameAnalysis(analyzeCampaign(simulated, {}),
                       analyzeCampaign(loaded, {}));
}

/** Inner sink that fails on the I/O thread mid-stream. */
class ThrowingSink : public RawSink
{
  public:
    void begin(const CampaignMeta &) override {}
    void
    consume(RunBatch &&) override
    {
        throw std::runtime_error("disk full");
    }
    void end(const StatsSnapshot &) override {}
};

TEST_F(StreamTest, AsyncSaveSinkPreservesDeliveryShape)
{
    CampaignRaw raw = campaign(20);
    ProbeSink probe;
    AsyncSaveSink async(probe);
    CampaignRawSource source(raw, 6);
    EXPECT_EQ(pumpRaw(source, async), 20u);
    // end() drains the queue, so the probe has seen everything in
    // producer order even though delivery ran on the I/O thread.
    EXPECT_EQ(probe.begins, 1);
    EXPECT_EQ(probe.ends, 1);
    EXPECT_TRUE(probe.indexOk);
    EXPECT_EQ(probe.sizes, (std::vector<size_t>{6, 6, 6, 2}));
    EXPECT_EQ(probe.firstIndices,
              (std::vector<uint64_t>{0, 6, 12, 18}));
    EXPECT_EQ(async.batches(), 4u);
    EXPECT_GE(async.queuePeak(), 1u);
}

TEST_F(StreamTest, AsyncSaveSinkGatedIsByteIdentical)
{
    CampaignRaw raw = campaign(24);
    IoThreadGate gate(1);
    CollectRawSink collect;
    AsyncSaveSink async(collect, &gate, 2);
    CampaignRawSource source(raw, 7);
    pumpRaw(source, async);
    CampaignRaw back = collect.take();

    std::stringstream a, b;
    writeBeamLog(raw, a);
    writeBeamLog(back, b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_EQ(gate.slots(), 1u);
}

TEST_F(StreamTest, AsyncRawSourceMatchesInnerBytes)
{
    CampaignRaw raw = campaign(18);
    CampaignRawSource inner(raw, 5);
    AsyncRawSource async(inner);
    EXPECT_EQ(async.meta().deviceName, raw.deviceName);
    EXPECT_EQ(async.meta().sim.faultyRuns, raw.sim.faultyRuns);

    CollectRawSink collect;
    EXPECT_EQ(pumpRaw(async, collect), 18u);
    CampaignRaw back = collect.take();

    std::stringstream a, b;
    writeBeamLog(raw, a);
    writeBeamLog(back, b);
    EXPECT_EQ(a.str(), b.str());
}

TEST_F(StreamTest, AsyncRawSourcePrefetchKeepsRunOrder)
{
    CampaignRaw raw = campaign(15);
    CampaignRawSource inner(raw, 4);
    IoThreadGate gate(2);
    AsyncRawSource async(inner, &gate, 2);
    ProbeSink probe;
    pumpRaw(async, probe);
    EXPECT_TRUE(probe.indexOk);
    EXPECT_EQ(probe.firstIndices,
              (std::vector<uint64_t>{0, 4, 8, 12}));
    EXPECT_GE(async.queuePeak(), 1u);
}

TEST_F(StreamTest, AsyncSaveSinkPropagatesInnerFailure)
{
    CampaignRaw raw = campaign(12);
    ThrowingSink inner;
    AsyncSaveSink async(inner);
    CampaignRawSource source(raw, 3);
    // The inner sink throws on the I/O thread; the error must
    // surface on the producer (a later consume() or end()), never
    // vanish.
    EXPECT_THROW(pumpRaw(source, async), std::runtime_error);
}

TEST_F(StreamStoreTest, AsyncSaveSinkWritesLoadableEntry)
{
    auto store = CampaignStore::open(dir_);
    CampaignRaw raw = campaign(18);

    IoThreadGate gate(1);
    auto sink = store->saveSink();
    AsyncSaveSink async(*sink, &gate, 2);
    CampaignRawSource source(raw, 5);
    pumpRaw(source, async);

    std::optional<CampaignRaw> back =
        store->load(campaignKey(raw));
    ASSERT_TRUE(back.has_value());
    std::stringstream a, b;
    writeBeamLog(raw, a);
    writeBeamLog(*back, b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(ProcMemTest, ReadsPlausibleSample)
{
    ProcMemSample sample = readProcMem();
    // /proc/self/status exists on every platform the suite runs
    // on; the gauges are best-effort elsewhere.
    if (!sample.valid)
        GTEST_SKIP() << "/proc/self/status not available";
    EXPECT_GT(sample.peakRssBytes, 0u);
    EXPECT_GT(sample.currentRssBytes, 0u);
    EXPECT_GE(sample.peakRssBytes, sample.currentRssBytes);
}

TEST(ProcMemTest, PublishSetsGauges)
{
    StatsRegistry reg;
    ProcMemSample sample = publishProcMem(reg);
    if (!sample.valid)
        GTEST_SKIP() << "/proc/self/status not available";
    StatsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.value("proc.mem.peak_rss_bytes"),
              static_cast<double>(sample.peakRssBytes));
    EXPECT_EQ(snap.value("proc.mem.current_rss_bytes"),
              static_cast<double>(sample.currentRssBytes));
}

TEST_F(StreamTest, StreamCountersStayOutOfCampaignSnapshot)
{
    CampaignRaw raw = campaign(10, 4);
    for (const auto &entry : raw.stats.entries) {
        EXPECT_NE(entry.name.rfind("stream.", 0), 0u)
            << entry.name;
        EXPECT_NE(entry.name.rfind("proc.", 0), 0u) << entry.name;
    }
}

} // anonymous namespace
} // namespace radcrit
